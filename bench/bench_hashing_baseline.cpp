// Experiment P1: the probabilistic contrast (Mehlhorn-Vishkin 1984).
//
// One hashed copy per variable over M = n modules: expected max module
// load for a random step is Theta(log n / log log n) (balls in bins), but
// an adversary who knows the hash forces full serialization — the
// qualitative gap to the paper's deterministic worst-case guarantee.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "hashing/mv_memory.hpp"
#include "pram/trace.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pramsim;

int main() {
  bench::Reporter reporter(
      "P1", "probabilistic baseline (MV'84, §1/§2 context)",
      "hashing achieves r = 1 and O(log n/loglog n) expected "
      "congestion, but only deterministic schemes bound the "
      "worst case");

  util::Table table({"n", "mean max-load", "p99-ish (max of 30)",
                     "adversarial load (2^20-var scan)",
                     "HP-DMMPC rounds (det. worst)"});
  table.set_title("per-step module congestion, M = n modules, r = 1 hash");

  std::vector<double> ns;
  std::vector<double> means;
  for (const std::uint32_t n : {256u, 1024u, 4096u, 16384u}) {
    const std::uint64_t m = static_cast<std::uint64_t>(n) * n;
    hashing::MvMemory memory(m, {.n_modules = n, .k_wise = 2, .seed = 5});
    util::Rng rng(13);
    util::RunningStats loads;
    for (int trial = 0; trial < 30; ++trial) {
      const auto vars = rng.sample_without_replacement(m, n);
      std::vector<VarId> reads;
      reads.reserve(n);
      for (const auto v : vars) {
        reads.emplace_back(static_cast<std::uint32_t>(v));
      }
      std::vector<pram::Word> values(reads.size());
      loads.add(static_cast<double>(memory.step(reads, values, {}).time));
    }

    // Adversarial batch: fill one module's preimage.
    std::map<std::uint32_t, std::vector<std::uint32_t>> by_module;
    for (std::uint32_t v = 0; v < std::min<std::uint64_t>(m, 1 << 20); ++v) {
      by_module[memory.module_of(VarId(v))].push_back(v);
    }
    std::size_t hottest = 0;
    for (const auto& [mod, vars2] : by_module) {
      (void)mod;
      hottest = std::max(hottest, vars2.size());
    }
    const double adversarial =
        static_cast<double>(std::min<std::size_t>(hottest, n));

    // Deterministic comparison point.
    core::SimulationPipeline hp({.kind = core::SchemeKind::kDmmpc, .n = n});
    const auto det = hp.run_stress({.steps_per_family = 2, .seed = 3});

    ns.push_back(n);
    means.push_back(loads.mean());
    table.add_row({static_cast<std::int64_t>(n), loads.mean(), loads.max(),
                   adversarial, det.time.max()});
  }
  reporter.table(table, 2);
  std::printf("\n");
  reporter.fit("MV mean max-load", ns, means, "log n");
  std::printf(
      "(log n and log n/loglog n are within the menu's resolution at these\n"
      "n; the point is the contrast columns: random traffic behaves, the\n"
      "known-hash adversary forces ~n serialization, while the\n"
      "deterministic scheme's WORST case stays constant-ish.)\n");

  // Rehashing cost visibility.
  {
    util::Table rehash_table({"threshold", "steps", "rehashes"});
    rehash_table.set_title("rehash-on-overload policy (n = 1024)");
    for (const std::uint32_t threshold : {3u, 4u, 6u}) {
      const std::uint32_t n = 1024;
      const std::uint64_t m = static_cast<std::uint64_t>(n) * n;
      hashing::MvMemory memory(
          m,
          {.n_modules = n, .k_wise = 2, .seed = 5,
           .rehash_threshold = threshold});
      util::Rng rng(13);
      for (int s = 0; s < 50; ++s) {
        const auto vars = rng.sample_without_replacement(m, n);
        std::vector<VarId> reads;
        for (const auto v : vars) {
          reads.emplace_back(static_cast<std::uint32_t>(v));
        }
        std::vector<pram::Word> values(reads.size());
        memory.step(reads, values, {});
      }
      rehash_table.add_row({static_cast<std::int64_t>(threshold),
                            static_cast<std::int64_t>(50),
                            static_cast<std::int64_t>(memory.rehashes())});
    }
    reporter.table(rehash_table, 0);
    std::printf(
        "Tight thresholds trigger frequent (expensive) migrations — the\n"
        "hidden cost of chasing deterministic-like guarantees with hashing.\n");
  }
  return 0;
}
