// Experiment FT2: fail-during-run faults and scrub-driven recovery.
//
// Every SchemeKind serves the same uniform traffic while a seeded
// DYNAMIC fault model kills a fraction of its modules at one sharp onset
// step, and a budgeted background scrub pass (MemorySystem::scrub) runs
// on a fixed cadence. The per-step trajectory separates three eras:
//
//   before onset   - healthy service, degraded rate 0;
//   onset -> scrub - reads masked (majority votes around erasures, IDA
//                    reconstructs from survivors) or flagged lost
//                    (single-copy schemes);
//   after scrub    - replicated schemes RE-HOME lost copies/shares onto
//                    healthy modules and re-replicate, so the masked
//                    rate falls back toward zero — the live-system story
//                    the static sweep (bench_faults) cannot show. The
//                    single-copy baselines have nothing to rebuild from
//                    and stay degraded forever.
//
// The same probe with scrubbing disabled is the control: degradation is
// permanent without repair, so the delta column is pure scrub effect.
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "obs/journal.hpp"
#include "util/table.hpp"

using namespace pramsim;

namespace {

std::string step_str(std::int64_t step) {
  return step < 0 ? "never" : std::to_string(step);
}

/// Per-kind event counts from a flushed journal's surviving window.
std::array<std::int64_t, obs::kEventKindCount> count_events(
    const obs::Journal& journal) {
  std::array<std::int64_t, obs::kEventKindCount> counts{};
  for (const auto& event : journal.events()) {
    ++counts[static_cast<std::size_t>(event.kind)];
  }
  return counts;
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "recovery", "dynamic faults + background scrubbing (recovery time)",
      "after a mid-run fault onset, constant-redundancy schemes recover "
      "their masked-fault rate via budgeted scrubbing (re-replication / "
      "re-dispersal onto healthy modules); single-copy schemes cannot");

  const std::uint32_t n = 16;
  const std::uint64_t kOnset = 16;

  faults::FaultSpec fault_spec;
  fault_spec.seed = 2027;
  fault_spec.module_kill_rate = 0.15;
  fault_spec.onset_min = kOnset;
  fault_spec.onset_max = kOnset;

  core::RecoveryOptions probe;
  probe.steps = 96;
  probe.seed = 44;
  probe.family = pram::TraceFamily::kUniform;
  probe.scrub_interval = 4;
  probe.scrub_budget = 128;
  probe.recovery_threshold = 0.02;

  // The scrubbed probe also carries the observability sink: the journal
  // table below reads the recovery story straight off the event stream.
  probe.obs_enabled = true;

  core::RecoveryOptions control = probe;
  control.scrub_interval = 0;  // no scrubbing: degradation is permanent
  control.obs_enabled = false;

  util::Table summary({"scheme", "r", "storage x", "onset", "degraded @",
                       "recovered @", "recovery steps", "peak rate",
                       "final (scrub)", "final (no scrub)", "repaired",
                       "relocated"});
  summary.set_title(
      "onset -> degradation -> scrub recovery at n = 16 (15% of modules "
      "die at step " + std::to_string(kOnset) +
      "; scrub every " + std::to_string(probe.scrub_interval) +
      " steps, budget " + std::to_string(probe.scrub_budget) + ")");

  std::vector<core::SchemeKind> trajectory_kinds = {
      core::SchemeKind::kDmmpc, core::SchemeKind::kIda,
      core::SchemeKind::kHashed};
  std::vector<util::Table> trajectories;

  util::Table journal_table(
      {"scheme", "onsets", "deg votes", "deg decodes", "uncorrectable",
       "relocations", "scrub repairs", "wrong reads", "recorded",
       "dropped"});
  journal_table.set_title(
      "event journal of the scrubbed probe (per-kind counts over the "
      "surviving ring window; 'recorded' is lifetime appends)");

  for (const auto kind : core::all_scheme_kinds()) {
    core::SimulationPipeline pipeline({.kind = kind, .n = n, .seed = 33});
    const auto& scheme = pipeline.scheme();
    const auto scrubbed = pipeline.run_recovery(fault_spec, probe);
    const auto unscrubbed = pipeline.run_recovery(fault_spec, control);

    summary.add_row(
        {scheme.name, static_cast<std::int64_t>(scheme.r),
         scheme.storage_factor, static_cast<std::int64_t>(kOnset),
         step_str(scrubbed.first_degraded_step),
         step_str(scrubbed.recovered_step),
         step_str(scrubbed.recovery_steps), scrubbed.peak_degraded_rate,
         scrubbed.final_degraded_rate, unscrubbed.final_degraded_rate,
         static_cast<std::int64_t>(scrubbed.scrub.repaired),
         static_cast<std::int64_t>(scrubbed.scrub.relocated)});

    const auto counts = count_events(scrubbed.obs.journal);
    auto kind_count = [&](obs::EventKind k) {
      return counts[static_cast<std::size_t>(k)];
    };
    journal_table.add_row(
        {scheme.name, kind_count(obs::EventKind::kFaultOnset),
         kind_count(obs::EventKind::kDegradedVote),
         kind_count(obs::EventKind::kDegradedDecode),
         kind_count(obs::EventKind::kUncorrectable),
         kind_count(obs::EventKind::kRelocation),
         kind_count(obs::EventKind::kScrubRepair),
         kind_count(obs::EventKind::kWrongRead),
         static_cast<std::int64_t>(scrubbed.obs.journal.recorded()),
         static_cast<std::int64_t>(scrubbed.obs.journal.dropped())});

    for (std::size_t t = 0; t < trajectory_kinds.size(); ++t) {
      if (trajectory_kinds[t] != kind) {
        continue;
      }
      util::Table trajectory({"step", "reads", "masked", "uncorrectable",
                              "repaired", "relocated", "rate (scrub)",
                              "rate (no scrub)"});
      trajectory.set_title("trajectory: " + scheme.name +
                           " (onset at step " + std::to_string(kOnset) +
                           "; every 4th step shown)");
      // Stride on multiples of 4 so the onset step (and the scrub passes,
      // same cadence) land on shown rows.
      for (std::size_t i = 3; i < scrubbed.trajectory.size(); i += 4) {
        const auto& point = scrubbed.trajectory[i];
        trajectory.add_row(
            {static_cast<std::int64_t>(point.step),
             static_cast<std::int64_t>(point.reads),
             static_cast<std::int64_t>(point.masked),
             static_cast<std::int64_t>(point.uncorrectable),
             static_cast<std::int64_t>(point.repaired),
             static_cast<std::int64_t>(point.relocated),
             point.degraded_rate,
             unscrubbed.trajectory[i].degraded_rate});
      }
      trajectories.push_back(std::move(trajectory));
    }
  }

  reporter.table(summary, 4);
  reporter.table(journal_table, 0);
  for (const auto& trajectory : trajectories) {
    reporter.table(trajectory, 4);
  }

  bench::RunManifest manifest;
  manifest.scheme = "kind sweep (see table rows)";
  manifest.seed = 33;
  manifest.backend = "serial recovery probe";
  manifest.obs_enabled = true;  // scrubbed probe journals its events
  reporter.set_manifest(manifest);

  std::printf(
      "\nReading the trajectories: before step %llu every scheme is\n"
      "healthy. At onset the replicated schemes keep answering (masked\n"
      "faults) while single-copy schemes flag outages. Once scrubbing\n"
      "has walked the address space, majority copies and IDA shares have\n"
      "been re-homed onto healthy modules and re-replicated, so the\n"
      "degraded rate falls back under the threshold — 'final (scrub)' vs\n"
      "'final (no scrub)' is the measured value of the repair pass.\n",
      static_cast<unsigned long long>(kOnset));
  return 0;
}
