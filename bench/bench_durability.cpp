// Experiment D1: durability — WAL + checkpoint + restart recovery cost.
//
// The headline claim: recovery time is governed by the WAL TAIL (the
// records after the last durable checkpoint), not by how long the
// machine had been running. Two run lengths (64 and 256 steps) are
// killed at their final step across a checkpoint-interval sweep; within
// a column the tails match, so the recovery costs match, while total
// run length differs 4x. The second table sweeps the kill points on one
// configuration to price each crash window of the commit protocol.
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "util/table.hpp"

using namespace pramsim;

namespace {

std::string scratch_dir(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "pramsim_bench_durability" / name;
  fs::remove_all(dir);
  return dir.string();
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "durability", "WAL + checkpoint restart recovery (crash at kill step)",
      "recovery replays only the WAL tail after the last checkpoint, so "
      "recovery time scales with the checkpoint interval and is flat in "
      "total run length; every recovery is bit-exact with zero lost "
      "committed writes");

  const core::SchemeSpec spec{.kind = core::SchemeKind::kDmmpc,
                              .n = 32,
                              .seed = 33};
  core::SimulationPipeline pipeline(spec);

  util::Table tail_table({"steps", "ckpt interval", "kill @", "durable @",
                          "ckpt @", "replayed", "wal B", "ckpt B",
                          "bit exact", "recovery us"});
  tail_table.set_title(
      "recovery cost vs checkpoint interval at two run lengths (dmmpc "
      "n = 32, crash after the final flush; 'replayed' is the WAL tail "
      "past the loaded checkpoint)");

  for (const std::uint64_t steps : {64ULL, 256ULL}) {
    for (const std::uint64_t interval : {4ULL, 16ULL, 64ULL}) {
      core::CrashRecoveryOptions options;
      options.steps = steps;
      options.seed = 44;
      options.kill_step = steps;  // deterministic: die at the last step
      options.kill_point = core::KillPoint::kAfterWalFlush;
      options.durability.directory =
          scratch_dir("tail_" + std::to_string(steps) + "_" +
                      std::to_string(interval));
      options.durability.wal_flush_interval = 2;
      options.durability.checkpoint_interval = interval;

      const auto result = pipeline.run_crash_recovery(options);
      tail_table.add_row(
          {static_cast<std::int64_t>(steps),
           static_cast<std::int64_t>(interval),
           static_cast<std::int64_t>(result.kill_step),
           static_cast<std::int64_t>(result.durable_step),
           static_cast<std::int64_t>(result.recovery.checkpoint_step),
           static_cast<std::int64_t>(result.recovery.replayed_records),
           static_cast<std::int64_t>(result.wal_bytes),
           static_cast<std::int64_t>(result.checkpoint_bytes),
           std::string(result.bit_exact ? "yes" : "NO"),
           result.recovery_seconds * 1e6});
    }
  }

  util::Table kill_table({"kill point", "kill @", "durable @", "ckpt loaded",
                          "ckpt @", "replayed", "skipped", "torn tail",
                          "bit exact", "recovery us"});
  kill_table.set_title(
      "the kill-point matrix on one configuration (dmmpc n = 32, 48 "
      "steps, checkpoint every 8, seed-derived kill step): every crash "
      "window of the commit protocol recovers bit-exact");

  for (const auto point : core::all_kill_points()) {
    core::CrashRecoveryOptions options;
    options.steps = 48;
    options.seed = 44;
    options.kill_point = point;
    options.durability.directory =
        scratch_dir(std::string("kill_") + core::to_string(point));
    options.durability.wal_flush_interval = 2;
    options.durability.checkpoint_interval = 8;

    const auto result = pipeline.run_crash_recovery(options);
    kill_table.add_row(
        {std::string(core::to_string(point)),
         static_cast<std::int64_t>(result.kill_step),
         static_cast<std::int64_t>(result.durable_step),
         std::string(result.recovery.checkpoint_loaded ? "yes" : "no"),
         static_cast<std::int64_t>(result.recovery.checkpoint_step),
         static_cast<std::int64_t>(result.recovery.replayed_records),
         static_cast<std::int64_t>(result.recovery.skipped_records),
         std::string(result.recovery.torn_wal_tail ? "yes" : "no"),
         std::string(result.bit_exact ? "yes" : "NO"),
         result.recovery_seconds * 1e6});
  }

  reporter.table(tail_table, 1);
  reporter.table(kill_table, 1);

  bench::RunManifest manifest;
  manifest.scheme = "dmmpc n=32";
  manifest.seed = 44;
  manifest.backend = "serial serve, crash-recovery probe";
  manifest.obs_enabled = false;
  reporter.set_manifest(manifest);

  std::printf(
      "\nReading the tables: in the first, fix a checkpoint-interval\n"
      "column and compare the 64- and 256-step rows — the replayed-tail\n"
      "lengths match, and so do the recovery times, despite the 4x run\n"
      "length. Growing the interval grows the replay tail and the\n"
      "recovery cost: the knob prices checkpoint write traffic against\n"
      "restart latency. The second table walks the five crash windows;\n"
      "torn WAL records and torn checkpoints are detected by CRC and\n"
      "recovery falls back to the last durable state, bit-exact in\n"
      "every window.\n");
  return 0;
}
