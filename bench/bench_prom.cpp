// Experiment X1 (paper conclusion, implemented): the P-ROM — a parallel
// read-only lookup structure for the memory map.
//
// The non-constructive Lemma 2 map must be stored somewhere. Three
// regimes, all implemented in this repository:
//
//   local tables   every processor keeps the full var->modules table:
//                  O(m log rM) bits each, O(mn log rM) total; zero lookup
//                  latency (the paper's default, and its complaint);
//   P-ROM          ONE table distributed over the M modules; every step
//                  begins with a routed lookup phase (measured below);
//                  O(m log rM) bits total — the n-fold reduction the
//                  conclusion asks for;
//   computed map   the HashedMap: no table at all, O(r) arithmetic per
//                  query — the conclusion's other wish, realized with
//                  pseudo-randomness standing in for an explicit
//                  construction.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/prom.hpp"
#include "core/schemes.hpp"
#include "pram/trace.hpp"
#include "util/table.hpp"

using namespace pramsim;

int main() {
  bench::Reporter reporter(
      "X1", "conclusion: the P-ROM proposal, implemented",
      "simulating a P-ROM reduces total look-up storage from "
      "O(mn log rm) to O(m log rm) bits, at the price of one "
      "routed lookup phase per step");

  // ---- storage accounting --------------------------------------------
  {
    util::Table table({"n", "m", "bits/processor table", "local total",
                       "P-ROM total", "reduction", "computed map"});
    table.set_title("map-table storage (r = 7, M = n^2)");
    for (const std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
      const std::uint64_t m = static_cast<std::uint64_t>(n) * n;
      const auto bits = core::map_table_bits(n, m, 7, n * n);
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(m),
                     static_cast<std::int64_t>(bits.per_processor),
                     static_cast<std::int64_t>(bits.local_total),
                     static_cast<std::int64_t>(bits.prom_total),
                     bits.reduction_factor, std::string("0 bits (O(r) ops)")});
    }
    reporter.table(table, 0);
    std::printf("\n");
  }

  // ---- measured lookup-phase cost -------------------------------------
  {
    util::Table table({"n", "cycles/step (local tables)",
                       "cycles/step (P-ROM)", "lookup overhead",
                       "relative"});
    table.set_title("HP-2DMOT with and without the P-ROM lookup phase "
                    "(same traffic, same seeds)");
    std::vector<double> ns;
    std::vector<double> overhead;
    for (const std::uint32_t n : {16u, 32u, 64u, 128u, 256u}) {
      core::SimulationPipeline base(
          {.kind = core::SchemeKind::kHpMot, .n = n, .seed = 5});
      core::SimulationPipeline prom({.kind = core::SchemeKind::kHpMot,
                                     .n = n,
                                     .seed = 5,
                                     .prom_lookup = true});
      const auto rb = base.run_stress(
          {.steps_per_family = 3, .seed = 21,
           .include_map_adversarial = false});
      const auto rp = prom.run_stress(
          {.steps_per_family = 3, .seed = 21,
           .include_map_adversarial = false});
      const double extra = rp.time.mean() - rb.time.mean();
      ns.push_back(n);
      overhead.push_back(extra);
      table.add_row({static_cast<std::int64_t>(n), rb.time.mean(),
                     rp.time.mean(), extra,
                     extra / rb.time.mean()});
    }
    reporter.table(table, 2);
    std::printf("\n");
    reporter.fit("P-ROM lookup overhead (cycles)", ns, overhead, "log n");
    std::printf(
        "The lookup phase costs one routed round trip per request —\n"
        "O(log n) cycles plus contention — i.e. a constant-factor\n"
        "increase in step time in exchange for an n-fold cut in map\n"
        "storage: the trade the paper's conclusion conjectured.\n");
  }
  return 0;
}
