// Experiment T2: Theorem 2 — O(log n)-time simulation with constant
// redundancy on the DMMPC.
//
// For each n, the two-stage majority protocol (Lemma 2 map, M = n^2,
// r = 7) serves stress batches: distinct-variable trace families plus
// map-adversarial batches. Reported time is protocol rounds (each module
// serves one copy access per round — the DMMPC cost model). The series is
// fitted against the standard shape menu; the Upfal-Wigderson MPC
// baseline (M = n, r = Theta(log m)) runs the same traffic for contrast.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "memmap/expansion.hpp"
#include "pram/trace.hpp"
#include "util/table.hpp"

using namespace pramsim;

namespace {

struct SeriesPoint {
  std::uint32_t n;
  std::uint32_t r;
  double mean_rounds;
  double max_rounds;
  double mean_work;
};

SeriesPoint measure(core::SchemeKind kind, std::uint32_t n,
                    std::size_t steps_per_family) {
  core::SimulationPipeline pipeline({.kind = kind, .n = n, .seed = 13});
  const auto result = pipeline.run_stress(
      {.steps_per_family = steps_per_family, .seed = 515});
  return {n, pipeline.scheme().r, result.time.mean(), result.time.max(),
          result.work.mean()};
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "T2", "Theorem 2 (DMMPC upper bound)",
      "an arbitrary P-RAM step simulates on a DMMPC with "
      "M = n^(1+eps) in O(log n) time with r = O(1)");

  const std::size_t steps = 4;
  util::Table table({"n", "scheme", "r", "mean rounds", "max rounds",
                     "mean copy accesses"});
  table.set_title("protocol rounds per P-RAM step (worst over permutation/"
                  "stride/bit-reversal/adversarial batches)");

  std::vector<double> ns;
  std::vector<double> hp_mean;
  std::vector<double> uw_mean;
  for (const std::uint32_t n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const auto hp = measure(core::SchemeKind::kDmmpc, n, steps);
    const auto uw = measure(core::SchemeKind::kUwMpc, n, steps);
    ns.push_back(n);
    hp_mean.push_back(hp.mean_rounds);
    uw_mean.push_back(uw.mean_rounds);
    table.add_row({static_cast<std::int64_t>(n), std::string("HP-DMMPC"),
                   static_cast<std::int64_t>(hp.r), hp.mean_rounds,
                   hp.max_rounds, hp.mean_work});
    table.add_row({static_cast<std::int64_t>(n), std::string("UW-MPC"),
                   static_cast<std::int64_t>(uw.r), uw.mean_rounds,
                   uw.max_rounds, uw.mean_work});
  }
  reporter.table(table, 1);
  std::printf("\n");

  reporter.fit("HP-DMMPC rounds/step", ns, hp_mean, "log n");
  reporter.fit("UW-MPC rounds/step", ns, uw_mean, "log n");

  std::printf(
      "Who wins: HP-DMMPC holds r = 7 at every n while UW-MPC's r grows\n"
      "with log m; both stay polylog in time, and the constant-redundancy\n"
      "scheme is also faster in absolute rounds because fewer copies\n"
      "contend for modules. That is Theorem 2's claim realized.\n");

  // The progress lemma made visible: live-variable decay per round on a
  // deliberately tight configuration (coarse granularity eps = 0.25, so
  // module bandwidth genuinely limits progress) with every live variable
  // probing each round. Lemma 2's expansion guarantees each round serves
  // a constant fraction of the live copies, so the live set must collapse
  // at a bounded rate — the mechanism behind both theorems' time bounds.
  // (The clustered protocol's decay is linear by construction — one
  // member turn per phase — so the contention-limited shape is shown in
  // the all-at-once mode.)
  {
    const std::uint32_t n = 4096;
    auto inst = core::make_scheme({.kind = core::SchemeKind::kDmmpc,
                                   .n = n,
                                   .eps = 0.25,
                                   .seed = 3,
                                   .all_at_once = true});
    const auto batch = memmap::adversarial_batch(inst.map ? *inst.map
                                                          : inst.engine->map(),
                                                 n, 9);
    std::vector<majority::VarRequest> reqs;
    reqs.reserve(batch.size());
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      reqs.push_back({batch[i], ProcId(i)});
    }
    const auto result = inst.engine->run_step(reqs);
    util::Table decay({"round", "live variables", "fraction of n"});
    decay.set_title("live-set decay, adversarial step (n=4096, eps=0.25, all-at-once, r=" +
                    std::to_string(inst.r) + ")");
    const auto& curve = result.stats.live_per_phase;
    std::size_t last_printed = 0;
    for (std::size_t i = 0; i < curve.size();
         i += std::max<std::size_t>(1, curve.size() / 12)) {
      decay.add_row({static_cast<std::int64_t>(i + 1),
                     static_cast<std::int64_t>(curve[i]),
                     static_cast<double>(curve[i]) / n});
      last_printed = i;
    }
    if (last_printed + 1 != curve.size()) {
      decay.add_row({static_cast<std::int64_t>(curve.size()),
                     static_cast<std::int64_t>(curve.back()),
                     static_cast<double>(curve.back()) / n});
    }
    reporter.table(decay, 4);
    std::printf(
        "The live set collapses by a constant factor per protocol sweep —\n"
        "the geometric progress the Lemma 2 expansion guarantees.\n\n");
  }

  // Ablation: clusters vs all-at-once scheduling.
  {
    util::Table ablation({"n", "clustered rounds", "all-at-once rounds"});
    ablation.set_title(
        "ablation: two-stage cluster protocol vs unbounded parallelism");
    for (const std::uint32_t n : {256u, 1024u, 4096u}) {
      core::SimulationPipeline clustered(
          {.kind = core::SchemeKind::kDmmpc, .n = n});
      core::SimulationPipeline flat(
          {.kind = core::SchemeKind::kDmmpc, .n = n, .all_at_once = true});
      const auto rc = clustered.run_stress(
          {.steps_per_family = 3, .seed = 99, .include_map_adversarial = false});
      const auto rf = flat.run_stress(
          {.steps_per_family = 3, .seed = 99, .include_map_adversarial = false});
      ablation.add_row({static_cast<std::int64_t>(n), rc.time.mean(),
                        rf.time.mean()});
    }
    reporter.table(ablation, 1);
    std::printf(
        "All-at-once is the information-theoretic floor; the cluster\n"
        "protocol (what n processors can actually execute) tracks it\n"
        "within its constant factor.\n");
  }
  return 0;
}
