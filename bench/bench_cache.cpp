// Cache layer benchmark: cache::CachedMemory in front of the assembled
// schemes under the skewed trace families.
//
// Table 1: hit rate vs Zipf skew exponent at fixed capacity — one COLD
//   single pass (no replay), so the rate reflects how much of the skewed
//   head the clock policy actually captures, not a fully warmed replay.
// Table 2: end-to-end steps/s, cached vs uncached, per SchemeKind at
//   n = 4096 with capacity = m/8 under kZipfian s = 1.1 — the PR's
//   acceptance configuration (>= 1.5x for >= 2 redundant kinds).
// Table 3: capacity sweep on kDmmpc — hit rate and speedup as the cache
//   shrinks from m/4 to m/32.
//
// Mirrored into BENCH_cache.json (schema v4); a baseline copy lives at
// the repo root and CI diffs schema/manifest against it.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "cache/cached_memory.hpp"
#include "core/plan_builder.hpp"
#include "core/schemes.hpp"
#include "pram/memory_system.hpp"
#include "pram/serve_context.hpp"
#include "pram/trace.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace pramsim;

std::vector<pram::AccessBatch> make_zipf_trace(std::uint32_t n,
                                               std::uint64_t m,
                                               std::size_t steps, double s,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  pram::TraceParams params;
  params.write_fraction = 0.3;
  params.zipf_exponent = s;
  return pram::make_trace(pram::TraceFamily::kZipfian, n, m, steps, rng,
                          params);
}

/// Prebuild plans for `memory` (grouping follows its wants_plan_groups).
struct PlanSet {
  std::vector<std::unique_ptr<core::PlanBuilder>> builders;
  std::vector<const pram::AccessPlan*> plans;
};

PlanSet build_plans(const std::vector<pram::AccessBatch>& trace,
                    const pram::MemorySystem& memory) {
  PlanSet set;
  set.builders.reserve(trace.size());
  set.plans.reserve(trace.size());
  for (const auto& batch : trace) {
    set.builders.push_back(std::make_unique<core::PlanBuilder>());
    set.plans.push_back(&set.builders.back()->build(batch, memory));
  }
  return set;
}

/// Steady-state serve throughput: one untimed warm pass (fills the cache
/// to its steady hot set), then replay until the budget elapses.
double measure_steps_per_sec(pram::MemorySystem& memory,
                             const PlanSet& set, double budget_sec) {
  std::vector<pram::Word> values;
  pram::ServeContext ctx;
  for (const auto* plan : set.plans) {
    values.resize(plan->reads.size());
    ctx.bind(values);
    memory.serve(*plan, ctx);
  }
  std::size_t steps = 0;
  const util::Stopwatch watch;
  double elapsed = 0.0;
  do {
    for (const auto* plan : set.plans) {
      values.resize(plan->reads.size());
      ctx.bind(values);
      memory.serve(*plan, ctx);
    }
    steps += set.plans.size();
    elapsed = watch.elapsed_seconds();
  } while (elapsed < budget_sec);
  return static_cast<double>(steps) / elapsed;
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "cache",
      "hot-set cache layer (src/cache) under skewed P-RAM traffic",
      "at n = 4096, kZipfian s = 1.1, capacity = m/8, the cached serve "
      "path sustains >= 1.5x the uncached steps/s for >= 2 redundant "
      "SchemeKinds, and the hit rate is monotone in the skew exponent");
  {
    bench::RunManifest manifest;
    manifest.scheme = "cache::CachedMemory over assembled schemes";
    manifest.seed = 17;
    manifest.backend = "serial";
    reporter.set_manifest(manifest);
  }

  {
    // Cold-pass hit rate vs skew: FlatMemory behind the cache isolates
    // the policy (no scheme cost in the denominator of anything — this
    // table is about WHAT the clock policy captures, not time).
    const std::uint32_t n = 4096;
    const std::uint64_t m = 262144;
    const std::uint64_t capacity = m / 8;
    util::Table table({"zipf s", "m", "capacity", "accesses", "hits",
                       "evictions", "hit rate"});
    table.set_title("cold-pass hit rate vs Zipf skew exponent "
                    "(FlatMemory inner, capacity = m/8, 64 steps, "
                    "no replay)");
    for (const double s : {0.3, 0.7, 1.1, 1.5}) {
      cache::CachedMemory cached(std::make_unique<pram::FlatMemory>(m),
                                 cache::CacheConfig{.capacity = capacity});
      const auto trace = make_zipf_trace(n, m, 64, s, 17);
      const auto set = build_plans(trace, cached);
      std::vector<pram::Word> values;
      pram::ServeContext ctx;
      for (const auto* plan : set.plans) {
        values.resize(plan->reads.size());
        ctx.bind(values);
        cached.serve(*plan, ctx);
      }
      const auto& stats = cached.stats();
      table.add_row({s, static_cast<std::int64_t>(m),
                     static_cast<std::int64_t>(capacity),
                     static_cast<std::int64_t>(stats.hits + stats.misses),
                     static_cast<std::int64_t>(stats.hits),
                     static_cast<std::int64_t>(stats.evictions),
                     stats.hit_rate()});
      std::fflush(stdout);
    }
    reporter.table(table, 4);
  }

  {
    // The acceptance table: cached vs uncached steps/s per SchemeKind at
    // n = 4096 (k = 1.5 keeps m = n^1.5 = 262144 so the redundant
    // organizations assemble in seconds), capacity = m/8, s = 1.1.
    const std::uint32_t n = 4096;
    const double k = 1.5;
    util::Table table({"scheme", "n", "m", "capacity", "steps/s uncached",
                       "steps/s cached", "speedup", "hit rate"});
    table.set_title("end-to-end serve throughput, cached vs uncached "
                    "(kZipfian s = 1.1, capacity = m/8, steady state)");
    for (const auto kind :
         {core::SchemeKind::kDmmpc, core::SchemeKind::kIda,
          core::SchemeKind::kHashed}) {
      const core::SchemeSpec spec{.kind = kind, .n = n, .k = k, .seed = 3};
      auto uncached = core::make_memory(spec);
      const std::uint64_t m = uncached->size();
      const std::uint64_t capacity = m / 8;
      // 32 distinct steps keep the skewed working set inside an m/8
      // cache (the regime the layer targets); Table 1 charts what
      // happens to the hit rate when it does not fit.
      const auto trace = make_zipf_trace(n, m, 32, 1.1, 17);

      const auto uncached_plans = build_plans(trace, *uncached);
      const double base =
          measure_steps_per_sec(*uncached, uncached_plans, 0.4);

      cache::CachedMemory cached(core::make_memory(spec),
                                 cache::CacheConfig{.capacity = capacity});
      const auto cached_plans = build_plans(trace, cached);
      const double fast = measure_steps_per_sec(cached, cached_plans, 0.4);

      table.add_row({core::to_string(kind), static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(m),
                     static_cast<std::int64_t>(capacity), base, fast,
                     fast / base, cached.stats().hit_rate()});
      std::fflush(stdout);
    }
    reporter.table(table, 3);
  }

  {
    // Capacity sweep: how small can the hot set get before the cache
    // stops paying? kDmmpc at n = 1024, same skew.
    const std::uint32_t n = 1024;
    const core::SchemeSpec spec{.kind = core::SchemeKind::kDmmpc, .n = n,
                                .seed = 3};
    auto uncached = core::make_memory(spec);
    const std::uint64_t m = uncached->size();
    const auto trace = make_zipf_trace(n, m, 32, 1.1, 17);
    const auto uncached_plans = build_plans(trace, *uncached);
    const double base =
        measure_steps_per_sec(*uncached, uncached_plans, 0.3);

    util::Table table({"capacity", "m/capacity", "hit rate",
                       "steps/s cached", "speedup"});
    table.set_title("capacity sweep, kDmmpc n = 1024 (kZipfian s = 1.1; "
                    "uncached baseline " + std::to_string(base) +
                    " steps/s)");
    for (const std::uint64_t divisor : {32, 16, 8, 4}) {
      const std::uint64_t capacity = m / divisor;
      cache::CachedMemory cached(core::make_memory(spec),
                                 cache::CacheConfig{.capacity = capacity});
      const auto cached_plans = build_plans(trace, cached);
      const double fast = measure_steps_per_sec(cached, cached_plans, 0.3);
      table.add_row({static_cast<std::int64_t>(capacity),
                     static_cast<std::int64_t>(divisor),
                     cached.stats().hit_rate(), fast, fast / base});
      std::fflush(stdout);
    }
    reporter.table(table, 3);
  }

  return 0;
}
