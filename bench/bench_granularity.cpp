// Experiment G1: the paper's central thesis as a dose-response curve —
// granularity (M = n^(1+eps)) vs the redundancy needed for polylog
// deterministic simulation.
//
// For each eps the table shows the Lemma 2 threshold c, redundancy
// r = 2c-1, granule size g = r*m/M, the bad-map union bound, and the
// protocol rounds actually measured on the DMMPC at those parameters.
// A second table sweeps the expansion parameter b at fixed eps.
#include <cstdio>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "memmap/params.hpp"
#include "pram/trace.hpp"
#include "util/table.hpp"

using namespace pramsim;

int main() {
  bench::Reporter reporter(
      "G1", "Section 2 (granularity -> redundancy)",
      "raising M from n to n^(1+eps) drops the required "
      "redundancy from Theta(log m/loglog m) to the constant "
      "(bk-eps)/(eps(b-2))");

  const std::uint32_t n = 1024;
  {
    util::Table table({"eps", "M", "granule g", "Lemma2 c", "r=2c-1",
                       "log2 f(bad maps)", "measured rounds/step"});
    table.set_title("granularity sweep at n = 1024, k = 2, b = 4 (DMMPC)");
    for (const double eps : {0.25, 0.5, 0.75, 1.0}) {
      const auto params = memmap::derive_params(n, 2.0, eps, 4.0);
      core::SimulationPipeline pipeline(
          {.kind = core::SchemeKind::kDmmpc, .n = n, .eps = eps, .seed = 7});
      const auto res =
          pipeline.run_stress({.steps_per_family = 3, .seed = 11});
      const double bad = memmap::bad_map_log2_union_bound(
          n, static_cast<double>(params.m),
          static_cast<double>(params.n_modules), params.c, 4.0);
      table.add_row({eps, static_cast<std::int64_t>(params.n_modules),
                     params.granularity, static_cast<std::int64_t>(params.c),
                     static_cast<std::int64_t>(params.r), bad,
                     res.time.mean()});
    }
    reporter.table(table, 2);
    std::printf(
        "\nAs eps rises (finer granules), the Lemma 2 constant c falls and\n"
        "with it the redundancy — at constant measured round counts. The\n"
        "MPC baseline (eps = 0) would need r = Theta(log m) (see T2).\n\n");
  }

  {
    util::Table table({"b", "Lemma2 c", "r=2c-1", "required coverage",
                       "measured rounds/step"});
    table.set_title("expansion-parameter sweep at eps = 1 (larger b: weaker "
                    "coverage requirement, smaller c)");
    for (const double b : {3.0, 4.0, 6.0, 8.0, 16.0}) {
      const auto c = memmap::lemma2_min_c(b, 2.0, 1.0);
      const auto r = 2 * c - 1;
      core::SimulationPipeline pipeline(
          {.kind = core::SchemeKind::kDmmpc, .n = n, .b = b, .seed = 7});
      const auto res = pipeline.run_stress(
          {.steps_per_family = 3, .seed = 11,
           .include_map_adversarial = false});
      table.add_row({b, static_cast<std::int64_t>(c),
                     static_cast<std::int64_t>(r),
                     std::string("(2c-1)q/" + std::to_string(b)),
                     res.time.mean()});
    }
    reporter.table(table, 1);
    std::printf(
        "\nb trades map quality against copies: larger b accepts weaker\n"
        "expansion and buys smaller r; the protocol stays fast because the\n"
        "live set still shrinks geometrically per round.\n");
  }
  return 0;
}
