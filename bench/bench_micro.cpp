// Experiment M1: microbenchmarks (google-benchmark) of the library's hot
// paths — map queries, protocol rounds, packet routing, GF(256) coding,
// P-RAM stepping. These are engineering numbers for users of the library,
// not model quantities.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "ida/dispersal.hpp"
#include "ida/gf256.hpp"
#include "majority/scheduler.hpp"
#include "memmap/memory_map.hpp"
#include "network/paths.hpp"
#include "network/router.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"

using namespace pramsim;

namespace {

void BM_Gf256Mul(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<std::uint8_t> xs(1024);
  for (auto& x : xs) {
    x = static_cast<std::uint8_t>(rng.below(256));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto a = xs[i % xs.size()];
    const auto b = xs[(i + 7) % xs.size()];
    benchmark::DoNotOptimize(ida::GF256::mul(a, b));
    ++i;
  }
}
BENCHMARK(BM_Gf256Mul);

void BM_IdaEncodeWords(benchmark::State& state) {
  const auto b = static_cast<std::uint32_t>(state.range(0));
  ida::Disperser disperser({b, 2 * b});
  util::Rng rng(2);
  std::vector<pram::Word> block(b);
  for (auto& w : block) {
    w = static_cast<pram::Word>(rng.next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(disperser.encode_words(block));
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_IdaEncodeWords)->Arg(8)->Arg(16)->Arg(32);

void BM_IdaRecoverWords(benchmark::State& state) {
  const auto b = static_cast<std::uint32_t>(state.range(0));
  ida::Disperser disperser({b, 2 * b});
  util::Rng rng(3);
  std::vector<pram::Word> block(b);
  for (auto& w : block) {
    w = static_cast<pram::Word>(rng.next());
  }
  const auto shares = disperser.encode_words(block);
  std::vector<std::uint32_t> indices(b);
  std::vector<pram::Word> vals(b);
  for (std::uint32_t j = 0; j < b; ++j) {
    indices[j] = b + j;
    vals[j] = shares[b + j];
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(disperser.recover_words(indices, vals));
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_IdaRecoverWords)->Arg(8)->Arg(16)->Arg(32);

void BM_HashedMapCopies(benchmark::State& state) {
  memmap::HashedMap map(1 << 20, 1 << 16, 7, 5);
  std::array<ModuleId, 7> buf;
  std::uint32_t v = 0;
  for (auto _ : state) {
    map.copies_into(VarId(v++ & ((1 << 20) - 1)), buf);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_HashedMapCopies);

void BM_TableMapCopies(benchmark::State& state) {
  memmap::TableMap map(1 << 16, 1 << 12, 7, 5);
  std::array<ModuleId, 7> buf;
  std::uint32_t v = 0;
  for (auto _ : state) {
    map.copies_into(VarId(v++ & ((1 << 16) - 1)), buf);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_TableMapCopies);

void BM_DmmpcScheduleStep(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto inst = core::make_scheme({.kind = core::SchemeKind::kDmmpc, .n = n});
  util::Rng rng(7);
  const auto vars = rng.sample_without_replacement(inst.m, n);
  std::vector<majority::VarRequest> reqs;
  for (std::uint32_t i = 0; i < n; ++i) {
    reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.engine->run_step(reqs));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DmmpcScheduleStep)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MotEngineStep(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto inst = core::make_scheme({.kind = core::SchemeKind::kHpMot, .n = n});
  util::Rng rng(8);
  const auto vars = rng.sample_without_replacement(inst.m, n);
  std::vector<majority::VarRequest> reqs;
  for (std::uint32_t i = 0; i < n; ++i) {
    reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.engine->run_step(reqs));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MotEngineStep)->Arg(64)->Arg(128)->Arg(256);

void BM_RouterHeavyBatch(benchmark::State& state) {
  const std::uint32_t S = 64;
  util::Rng rng(9);
  std::vector<net::Packet> proto(512);
  for (std::uint32_t p = 0; p < 512; ++p) {
    proto[p].id = p;
    proto[p].path = net::hp_request_path(
        S, static_cast<std::uint32_t>(rng.below(S)),
        static_cast<std::uint32_t>(rng.below(S)),
        static_cast<std::uint32_t>(rng.below(S)));
  }
  for (auto _ : state) {
    auto packets = proto;
    benchmark::DoNotOptimize(net::route_all(packets));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_RouterHeavyBatch);

void BM_PramStepThroughput(benchmark::State& state) {
  const std::uint32_t n = 256;
  auto spec = pram::programs::prefix_sum(n);
  pram::MachineConfig cfg{.n_processors = n,
                          .m_shared_cells = spec.m_required,
                          .policy = pram::ConflictPolicy::kErew};
  for (auto _ : state) {
    state.PauseTiming();
    auto prog = pram::programs::prefix_sum(n);
    pram::Machine machine(cfg, std::move(prog.program));
    state.ResumeTiming();
    benchmark::DoNotOptimize(machine.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PramStepThroughput);

}  // namespace

BENCHMARK_MAIN();
