// Experiment M1: microbenchmarks of the library's hot paths — map
// queries, protocol rounds, packet routing, GF(256) coding, P-RAM
// stepping. These are engineering numbers for users of the library, not
// model quantities. Self-timed (no external benchmark dependency) and
// mirrored to BENCH_micro.json via bench::Reporter like every other
// experiment binary.
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "ida/dispersal.hpp"
#include "ida/gf256.hpp"
#include "majority/scheduler.hpp"
#include "memmap/memory_map.hpp"
#include "network/paths.hpp"
#include "network/router.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pramsim;

namespace {

/// Keep the optimizer honest about a computed value.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct Measurement {
  std::uint64_t iterations = 0;
  double ns_per_op = 0.0;
};

/// Run `op` in growing batches until >= 20 ms of wall time has been
/// measured (after a warmup batch), then report mean ns per call.
template <typename F>
Measurement measure(F&& op, std::uint64_t batch = 64) {
  using clock = std::chrono::steady_clock;
  for (std::uint64_t i = 0; i < batch; ++i) {
    op();  // warmup (page-in, branch training)
  }
  Measurement m;
  double elapsed_ns = 0.0;
  while (elapsed_ns < 2e7 && m.iterations < (1ULL << 30)) {
    const auto start = clock::now();
    for (std::uint64_t i = 0; i < batch; ++i) {
      op();
    }
    const auto stop = clock::now();
    elapsed_ns += std::chrono::duration<double, std::nano>(stop - start)
                      .count();
    m.iterations += batch;
    batch *= 2;  // amortize clock overhead on fast kernels
  }
  m.ns_per_op = elapsed_ns / static_cast<double>(m.iterations);
  return m;
}

void add_row(util::Table& table, const std::string& kernel,
             const std::string& params, const Measurement& m,
             double items_per_op) {
  table.add_row({kernel, params, static_cast<std::int64_t>(m.iterations),
                 m.ns_per_op,
                 items_per_op * 1e9 / std::max(m.ns_per_op, 1e-9)});
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "micro", "hot-path microbenchmarks (engineering numbers)",
      "map queries, protocol rounds, packet routing, GF(256) coding and "
      "P-RAM stepping costs on this host");

  util::Table table({"kernel", "params", "iterations", "ns/op", "items/s"});
  table.set_title("hot paths, self-timed (>= 20 ms per kernel)");

  {
    util::Rng rng(1);
    std::vector<std::uint8_t> xs(1024);
    for (auto& x : xs) {
      x = static_cast<std::uint8_t>(rng.below(256));
    }
    std::size_t i = 0;
    const auto m = measure([&] {
      do_not_optimize(ida::GF256::mul(xs[i % xs.size()],
                                      xs[(i + 7) % xs.size()]));
      ++i;
    });
    add_row(table, "gf256_mul", "-", m, 1.0);
  }

  for (const std::uint32_t b : {8u, 16u, 32u}) {
    ida::Disperser disperser({b, 2 * b});
    util::Rng rng(2);
    std::vector<pram::Word> block(b);
    for (auto& w : block) {
      w = static_cast<pram::Word>(rng.next());
    }
    const auto m = measure([&] {
      do_not_optimize(disperser.encode_words(block));
    }, 8);
    add_row(table, "ida_encode_words", "b=" + std::to_string(b), m, b);

    const auto shares = disperser.encode_words(block);
    std::vector<std::uint32_t> indices(b);
    std::vector<pram::Word> vals(b);
    for (std::uint32_t j = 0; j < b; ++j) {
      indices[j] = b + j;
      vals[j] = shares[b + j];
    }
    const auto mr = measure([&] {
      do_not_optimize(disperser.recover_words(indices, vals));
    }, 8);
    add_row(table, "ida_recover_words", "b=" + std::to_string(b), mr, b);
  }

  {
    memmap::HashedMap map(1 << 20, 1 << 16, 7, 5);
    std::array<ModuleId, 7> buf;
    std::uint32_t v = 0;
    const auto m = measure([&] {
      map.copies_into(VarId(v++ & ((1 << 20) - 1)), buf);
      do_not_optimize(buf);
    });
    add_row(table, "hashed_map_copies", "m=2^20 r=7", m, 7.0);
  }
  {
    memmap::TableMap map(1 << 16, 1 << 12, 7, 5);
    std::array<ModuleId, 7> buf;
    std::uint32_t v = 0;
    const auto m = measure([&] {
      map.copies_into(VarId(v++ & ((1 << 16) - 1)), buf);
      do_not_optimize(buf);
    });
    add_row(table, "table_map_copies", "m=2^16 r=7", m, 7.0);
  }

  for (const std::uint32_t n : {256u, 1024u, 4096u}) {
    auto inst = core::make_scheme({.kind = core::SchemeKind::kDmmpc, .n = n});
    util::Rng rng(7);
    const auto vars = rng.sample_without_replacement(inst.m, n);
    std::vector<majority::VarRequest> reqs;
    for (std::uint32_t i = 0; i < n; ++i) {
      reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
    }
    const auto m = measure([&] {
      do_not_optimize(inst.engine->run_step(reqs));
    }, 1);
    add_row(table, "dmmpc_schedule_step", "n=" + std::to_string(n), m, n);
  }

  for (const std::uint32_t n : {64u, 128u, 256u}) {
    auto inst = core::make_scheme({.kind = core::SchemeKind::kHpMot, .n = n});
    util::Rng rng(8);
    const auto vars = rng.sample_without_replacement(inst.m, n);
    std::vector<majority::VarRequest> reqs;
    for (std::uint32_t i = 0; i < n; ++i) {
      reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
    }
    const auto m = measure([&] {
      do_not_optimize(inst.engine->run_step(reqs));
    }, 1);
    add_row(table, "mot_engine_step", "n=" + std::to_string(n), m, n);
  }

  {
    const std::uint32_t S = 64;
    util::Rng rng(9);
    std::vector<net::Packet> proto(512);
    for (std::uint32_t p = 0; p < 512; ++p) {
      proto[p].id = p;
      proto[p].path = net::hp_request_path(
          S, static_cast<std::uint32_t>(rng.below(S)),
          static_cast<std::uint32_t>(rng.below(S)),
          static_cast<std::uint32_t>(rng.below(S)));
    }
    const auto m = measure([&] {
      auto packets = proto;
      do_not_optimize(net::route_all(packets));
    }, 1);
    add_row(table, "router_heavy_batch", "S=64 pkts=512", m, 512.0);
  }

  {
    const std::uint32_t n = 256;
    auto spec = pram::programs::prefix_sum(n);
    pram::MachineConfig cfg{.n_processors = n,
                            .m_shared_cells = spec.m_required,
                            .policy = pram::ConflictPolicy::kErew};
    const auto m = measure([&] {
      auto prog = pram::programs::prefix_sum(n);
      pram::Machine machine(cfg, std::move(prog.program));
      do_not_optimize(machine.run());
    }, 1);
    add_row(table, "pram_prefix_sum_run", "n=256", m, n);
  }

  reporter.table(table, 2);
  return 0;
}
