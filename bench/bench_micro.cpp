// Experiment M1: microbenchmarks of the library's hot paths — map
// queries, protocol rounds, packet routing, GF(256) coding, P-RAM
// stepping. These are engineering numbers for users of the library, not
// model quantities. Self-timed (no external benchmark dependency) and
// mirrored to BENCH_micro.json via bench::Reporter like every other
// experiment binary.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "ida/dispersal.hpp"
#include "ida/gf256.hpp"
#include "majority/copy_store.hpp"
#include "majority/scheduler.hpp"
#include "memmap/memory_map.hpp"
#include "network/paths.hpp"
#include "network/router.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace pramsim;

namespace {

/// Keep the optimizer honest about a computed value.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct Measurement {
  std::uint64_t iterations = 0;
  double ns_per_op = 0.0;
};

/// Run `op` in growing batches until >= 20 ms of wall time has been
/// measured (after a warmup batch), then report mean ns per call.
template <typename F>
Measurement measure(F&& op, std::uint64_t batch = 64) {
  for (std::uint64_t i = 0; i < batch; ++i) {
    op();  // warmup (page-in, branch training)
  }
  Measurement m;
  double elapsed_ns = 0.0;
  while (elapsed_ns < 2e7 && m.iterations < (1ULL << 30)) {
    const util::Stopwatch watch;
    for (std::uint64_t i = 0; i < batch; ++i) {
      op();
    }
    elapsed_ns += static_cast<double>(watch.elapsed_ns());
    m.iterations += batch;
    batch *= 2;  // amortize clock overhead on fast kernels
  }
  m.ns_per_op = elapsed_ns / static_cast<double>(m.iterations);
  return m;
}

/// `items_per_op` is the logical unit count one call processes (words
/// voted, words recoded, packets routed); bytes/s prices the same call in
/// payload bytes (8 per word) so the region-width sweeps read directly as
/// memory throughput.
void add_row(util::Table& table, const std::string& kernel,
             const std::string& params, const Measurement& m,
             double items_per_op, double bytes_per_op = 0.0) {
  const double per_ns = 1e9 / std::max(m.ns_per_op, 1e-9);
  table.add_row({kernel, params, static_cast<std::int64_t>(m.iterations),
                 m.ns_per_op, items_per_op * per_ns, bytes_per_op * per_ns});
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "micro", "hot-path microbenchmarks (engineering numbers)",
      "map queries, protocol rounds, packet routing, GF(256) coding and "
      "P-RAM stepping costs on this host");

  util::Table table(
      {"kernel", "params", "iterations", "ns/op", "items/s", "bytes/s"});
  table.set_title("hot paths, self-timed (>= 20 ms per kernel)");

  {
    util::Rng rng(1);
    std::vector<std::uint8_t> xs(1024);
    for (auto& x : xs) {
      x = static_cast<std::uint8_t>(rng.below(256));
    }
    std::size_t i = 0;
    const auto m = measure([&] {
      do_not_optimize(ida::GF256::mul(xs[i % xs.size()],
                                      xs[(i + 7) % xs.size()]));
      ++i;
    });
    add_row(table, "gf256_mul", "-", m, 1.0);
  }

  for (const std::uint32_t b : {8u, 16u, 32u}) {
    ida::Disperser disperser({b, 2 * b});
    util::Rng rng(2);
    std::vector<pram::Word> block(b);
    for (auto& w : block) {
      w = static_cast<pram::Word>(rng.next());
    }
    const auto m = measure([&] {
      do_not_optimize(disperser.encode_words(block));
    }, 8);
    add_row(table, "ida_encode_words", "b=" + std::to_string(b), m, b,
            8.0 * b);

    const auto shares = disperser.encode_words(block);
    std::vector<std::uint32_t> indices(b);
    std::vector<pram::Word> vals(b);
    for (std::uint32_t j = 0; j < b; ++j) {
      indices[j] = b + j;
      vals[j] = shares[b + j];
    }
    const auto mr = measure([&] {
      do_not_optimize(disperser.recover_words(indices, vals));
    }, 8);
    add_row(table, "ida_recover_words", "b=" + std::to_string(b), mr, b,
            8.0 * b);
  }

  // ---- region-width sweeps (the PR's tentpole numbers) --------------
  // Majority vote, healthy path: one full certification sweep over 2^14
  // stored words at r = 5 copies. Width 1 is today's word-at-a-time mode
  // (one vote_region call per word — the W = 1 store is bit-identical to
  // the classic layout); wider regions certify whole spans with memcmp.
  for (const std::uint32_t w : {1u, 8u, 64u}) {
    const std::uint64_t m_words = 1 << 14;
    const std::uint32_t r = 5;
    majority::CopyStore store(m_words, r, w);
    util::Rng rng(12);
    for (std::uint64_t v = 0; v < m_words; ++v) {
      const auto value = static_cast<pram::Word>(rng.next());
      for (std::uint32_t copy = 0; copy < r; ++copy) {
        store.write(VarId(static_cast<std::uint32_t>(v)), copy, value, 1);
      }
    }
    const std::uint64_t all_mask = (1ULL << r) - 1;
    const auto m = measure([&] {
      std::uint64_t unanimous = 0;
      for (std::uint64_t region = 0; region < store.num_regions();
           ++region) {
        unanimous += store.vote_region(region, all_mask) >= 0 ? 1 : 0;
      }
      do_not_optimize(unanimous);
    }, 1);
    add_row(table, "majority_vote_sweep",
            "m=2^14 r=5 w=" + std::to_string(w), m,
            static_cast<double>(m_words), 8.0 * static_cast<double>(m_words));
  }

  // IDA recode, healthy path: 64 words through b = 8 blocks. Width 1 is
  // today's per-block word mode (encode_words / recover_words per block);
  // widths 8 and 64 recode 1 and 8 blocks per bulk codec call.
  for (const std::uint32_t w : {1u, 8u, 64u}) {
    const std::uint32_t b = 8;
    const std::uint32_t d = 2 * b;
    const std::uint32_t blocks = 8;  // 64 words total per op
    const std::uint32_t per_call = std::max(1u, w / b);
    ida::Disperser disperser({b, d});
    util::Rng rng(13);
    std::vector<pram::Word> words(blocks * b);
    for (auto& word : words) {
      word = static_cast<pram::Word>(rng.next());
    }
    std::vector<pram::Word> shares(static_cast<std::size_t>(d) * blocks);
    const std::string params = "b=8 blocks=8 w=" + std::to_string(w);
    const auto me = measure([&] {
      if (w == 1) {
        for (std::uint32_t t = 0; t < blocks; ++t) {
          do_not_optimize(disperser.encode_words(
              {words.data() + static_cast<std::size_t>(t) * b, b}));
        }
      } else {
        for (std::uint32_t t = 0; t < blocks; t += per_call) {
          disperser.encode_regions(
              words.data() + static_cast<std::size_t>(t) * b, per_call,
              shares.data() + t, blocks);
        }
        do_not_optimize(shares);
      }
    }, 4);
    add_row(table, "ida_encode_region", params, me, 8.0 * b, 64.0 * b);

    // Stage the share spans once (stride = blocks), then time decode.
    for (std::uint32_t t = 0; t < blocks; t += per_call) {
      disperser.encode_regions(words.data() + static_cast<std::size_t>(t) * b,
                               std::max(1u, per_call), shares.data() + t,
                               blocks);
    }
    std::vector<std::uint32_t> indices(b);
    for (std::uint32_t j = 0; j < b; ++j) {
      indices[j] = j;
    }
    std::vector<pram::Word> out(blocks * b);
    std::vector<pram::Word> vals(b);
    const auto md = measure([&] {
      if (w == 1) {
        for (std::uint32_t t = 0; t < blocks; ++t) {
          for (std::uint32_t j = 0; j < b; ++j) {
            vals[j] = shares[static_cast<std::size_t>(j) * blocks + t];
          }
          do_not_optimize(disperser.recover_words(indices, vals));
        }
      } else {
        for (std::uint32_t t = 0; t < blocks; t += per_call) {
          disperser.decode_regions(
              indices, shares.data() + t, blocks, per_call,
              out.data() + static_cast<std::size_t>(t) * b);
        }
        do_not_optimize(out);
      }
    }, 4);
    add_row(table, "ida_decode_region", params, md, 8.0 * b, 64.0 * b);
  }

  {
    memmap::HashedMap map(1 << 20, 1 << 16, 7, 5);
    std::array<ModuleId, 7> buf;
    std::uint32_t v = 0;
    const auto m = measure([&] {
      map.copies_into(VarId(v++ & ((1 << 20) - 1)), buf);
      do_not_optimize(buf);
    });
    add_row(table, "hashed_map_copies", "m=2^20 r=7", m, 7.0);
  }
  {
    memmap::TableMap map(1 << 16, 1 << 12, 7, 5);
    std::array<ModuleId, 7> buf;
    std::uint32_t v = 0;
    const auto m = measure([&] {
      map.copies_into(VarId(v++ & ((1 << 16) - 1)), buf);
      do_not_optimize(buf);
    });
    add_row(table, "table_map_copies", "m=2^16 r=7", m, 7.0);
  }

  for (const std::uint32_t n : {256u, 1024u, 4096u}) {
    auto inst = core::make_scheme({.kind = core::SchemeKind::kDmmpc, .n = n});
    util::Rng rng(7);
    const auto vars = rng.sample_without_replacement(inst.m, n);
    std::vector<majority::VarRequest> reqs;
    for (std::uint32_t i = 0; i < n; ++i) {
      reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
    }
    const auto m = measure([&] {
      do_not_optimize(inst.engine->run_step(reqs));
    }, 1);
    add_row(table, "dmmpc_schedule_step", "n=" + std::to_string(n), m, n,
            8.0 * n);
  }

  for (const std::uint32_t n : {64u, 128u, 256u}) {
    auto inst = core::make_scheme({.kind = core::SchemeKind::kHpMot, .n = n});
    util::Rng rng(8);
    const auto vars = rng.sample_without_replacement(inst.m, n);
    std::vector<majority::VarRequest> reqs;
    for (std::uint32_t i = 0; i < n; ++i) {
      reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
    }
    const auto m = measure([&] {
      do_not_optimize(inst.engine->run_step(reqs));
    }, 1);
    add_row(table, "mot_engine_step", "n=" + std::to_string(n), m, n,
            8.0 * n);
  }

  {
    const std::uint32_t S = 64;
    util::Rng rng(9);
    std::vector<net::Packet> proto(512);
    for (std::uint32_t p = 0; p < 512; ++p) {
      proto[p].id = p;
      proto[p].path = net::hp_request_path(
          S, static_cast<std::uint32_t>(rng.below(S)),
          static_cast<std::uint32_t>(rng.below(S)),
          static_cast<std::uint32_t>(rng.below(S)));
    }
    const auto m = measure([&] {
      auto packets = proto;
      do_not_optimize(net::route_all(packets));
    }, 1);
    add_row(table, "router_heavy_batch", "S=64 pkts=512", m, 512.0);
  }

  {
    const std::uint32_t n = 256;
    auto spec = pram::programs::prefix_sum(n);
    pram::MachineConfig cfg{.n_processors = n,
                            .m_shared_cells = spec.m_required,
                            .policy = pram::ConflictPolicy::kErew};
    const auto m = measure([&] {
      auto prog = pram::programs::prefix_sum(n);
      pram::Machine machine(cfg, std::move(prog.program));
      do_not_optimize(machine.run());
    }, 1);
    add_row(table, "pram_prefix_sum_run", "n=256", m, n);
  }

  bench::RunManifest manifest;
  manifest.scheme = "kernel sweep (see table rows)";
  manifest.backend = "inline kernels (no serve path)";
  reporter.set_manifest(manifest);

  reporter.table(table, 2);
  return 0;
}
