// Experiment FT1: the redundancy-vs-fault-tolerance frontier.
//
// Every SchemeKind serves the same stress traffic while a seeded static
// fault model (dead modules + silent write corruption, Chlebus et al.'s
// static-fault regime) ramps in intensity. A trace-consistency oracle
// (Wei et al. discipline) validates every read, separating:
//
//   masked        - answered correctly despite bad copies/shares,
//   uncorrectable - flagged outage (the scheme KNOWS it lost the value),
//   wrong         - silent lie (the breaking point).
//
// The frontier: storage redundancy bought at Theta(1) (majority copies,
// IDA shares) masks faults the unreplicated baselines (kHashed, Ranade's
// single-copy rows) cannot — their first measurable disadvantage — while
// IDA's erasure-only code breaks under corruption that majority voting
// out-votes.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "util/table.hpp"

using namespace pramsim;

namespace {

std::string rate_str(double rate) {
  if (rate < 0.0) {
    return "never (in sweep)";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", rate);
  return buf;
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "faults", "redundancy vs fault tolerance (static-fault adversity)",
      "constant storage redundancy (majority copies, IDA shares) masks "
      "module deaths and out-votes corruption; single-copy organizations "
      "lose data immediately");

  const std::uint32_t n = 16;
  core::FaultSweepOptions sweep_options;
  sweep_options.rates = {0.0, 0.0125, 0.025, 0.05, 0.1, 0.2, 0.4};
  sweep_options.proto = {.seed = 2027, .dead_modules = 0,
                         .module_kill_rate = 1.0, .stuck_rate = 0.0,
                         .corruption_rate = 1.0};
  sweep_options.stress = {.steps_per_family = 3, .seed = 44, .trials = 1};
  const double detail_rate = 0.1;

  util::Table frontier({"scheme", "r", "storage x", "first wrong (rate)",
                        "first outage (rate)", "masked/read @0.1",
                        "wrong/read @0.1", "guarantee"});
  frontier.set_title(
      "fault-tolerance frontier at n = 16 (rates ramp module kills AND "
      "write corruption together)");

  util::Table detail({"scheme", "reads", "masked", "erasures",
                      "uncorrectable", "wrong", "writes lost",
                      "corrupt stores"});
  detail.set_title("reliability telemetry at fault rate 0.1");

  // Every SchemeKind, plus the IDA share-checksum variant (the ROADMAP's
  // detection experiment): same sweep, +ck buys detection of stuck/
  // corrupted shares for 2x the bare scheme's storage — read the "first
  // wrong" column against the bare Schuster-IDA row for the delta.
  std::vector<core::SchemeSpec> specs;
  for (const auto kind : core::all_scheme_kinds()) {
    specs.push_back({.kind = kind, .n = n, .seed = 33});
  }
  specs.push_back({.kind = core::SchemeKind::kIda, .n = n, .seed = 33,
                   .ida_check_shares = true});

  for (const auto& spec : specs) {
    core::SimulationPipeline pipeline(spec);
    const auto& scheme = pipeline.scheme();
    const auto sweep = pipeline.run_fault_sweep(sweep_options);

    // Detail row at the level closest to detail_rate (exact when the
    // rate appears in the sweep; robust to edited rate lists otherwise).
    const core::FaultLevelResult* at_detail = &sweep.levels.front();
    for (const auto& level : sweep.levels) {
      if (std::abs(level.rate - detail_rate) <
          std::abs(at_detail->rate - detail_rate)) {
        at_detail = &level;
      }
    }
    const auto& stats = at_detail->run.reliability;
    const double reads =
        stats.reads_served > 0 ? static_cast<double>(stats.reads_served)
                               : 1.0;

    frontier.add_row(
        {scheme.name, static_cast<std::int64_t>(scheme.r),
         scheme.storage_factor,
         rate_str(sweep.total.breaking_fault_rate),
         rate_str(sweep.first_uncorrectable_rate),
         static_cast<double>(stats.faults_masked) / reads,
         static_cast<double>(stats.wrong_reads) / reads,
         std::string(scheme.guarantee)});
    detail.add_row({scheme.name,
                    static_cast<std::int64_t>(stats.reads_served),
                    static_cast<std::int64_t>(stats.faults_masked),
                    static_cast<std::int64_t>(stats.erasures_skipped),
                    static_cast<std::int64_t>(stats.uncorrectable),
                    static_cast<std::int64_t>(stats.wrong_reads),
                    static_cast<std::int64_t>(stats.writes_dropped),
                    static_cast<std::int64_t>(stats.corrupt_stores)});
  }
  reporter.table(frontier, 4);
  reporter.table(detail, 0);

  std::printf(
      "\nReading the frontier: the majority schemes (r = 2c-1 copies)\n"
      "mask dead modules and out-vote non-colluding corruption; IDA's\n"
      "constant-factor shares survive erasures up to d-b per block but an\n"
      "undetected bad share poisons whole-block reconstruction; the\n"
      "single-copy organizations (hashing, butterfly) have nothing to\n"
      "vote with — every fault is an outage or a silent lie. Constant\n"
      "redundancy is what buys graceful degradation. The Schuster-IDA+ck\n"
      "row quantifies share checksums: detected bad shares are excluded\n"
      "from reconstruction like erasures, so the wrong-read rate drops to\n"
      "the flagged-outage column — detection bought with 2x storage.\n");
  return 0;
}
