// Experiment I1: the Schuster/Rabin information-dispersal alternative
// (paper §1): constant *storage* redundancy, Theta(log n) *work*
// amplification — the opposite trade from the paper's scheme.
//
//  Table 1: storage factor and measured work amplification across block
//           sizes b = Theta(log n), vs HP replication at r = 7.
//  Table 2: erasure tolerance: recovery success from exactly b surviving
//           shares over many random erasure patterns.
//  Table 3: encode/recover throughput (host-clock, for scale).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "ida/dispersal.hpp"
#include "ida/ida_memory.hpp"
#include "pram/trace.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pramsim;

int main() {
  bench::Reporter reporter(
      "I1", "Schuster'87 / Rabin'89 IDA alternative (§1)",
      "b,d = Theta(log n): memory grows by a constant factor but "
      "Theta(log n) variables are processed per access");

  // ---- Table 1: the storage/work trade --------------------------------
  {
    util::Table table({"n", "b", "d", "storage factor",
                       "work amplification", "rounds/step"});
    table.set_title("IDA block memory under permutation traffic "
                    "(m = n^2, M = n^(1+eps) modules)");
    for (const std::uint32_t n : {64u, 256u, 1024u}) {
      core::SimulationPipeline pipeline(
          {.kind = core::SchemeKind::kIda, .n = n, .seed = 3});
      const auto b = static_cast<std::uint32_t>(util::ilog2_ceil(n));
      util::Rng rng(9);
      util::RunningStats rounds;
      for (int s = 0; s < 6; ++s) {
        const auto batch = pram::make_batch(pram::TraceFamily::kPermutation,
                                            n, pipeline.scheme().m, rng);
        rounds.add(static_cast<double>(pipeline.run_batch(batch).time));
      }
      // Scheme-level accounting lives on the IDA memory itself.
      const auto* memory = dynamic_cast<const ida::IdaMemory*>(
          pipeline.scheme().memory.get());
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(b),
                     static_cast<std::int64_t>(2 * b),
                     pipeline.scheme().storage_factor,
                     memory != nullptr ? memory->work_amplification() : 0.0,
                     rounds.mean()});
    }
    reporter.table(table, 2);
    std::printf(
        "\nContrast with the paper's scheme: HP replication stores r = 7\n"
        "copies (storage x7, work amplification 1 variable per access);\n"
        "IDA stores x2 but touches b = Theta(log n) variables per access.\n"
        "Both are 'constant redundancy' — in different currencies.\n\n");
  }

  // ---- Table 2: erasure tolerance -------------------------------------
  {
    util::Table table({"b", "d", "erasures", "trials", "recoveries"});
    table.set_title("any-b-of-d recovery under random share loss");
    util::Rng rng(31);
    for (const auto& [b, d] : {std::pair<std::uint32_t, std::uint32_t>{4, 8},
                              {8, 16},
                              {16, 24},
                              {10, 30}}) {
      ida::Disperser disperser({b, d});
      int successes = 0;
      const int trials = 200;
      for (int t = 0; t < trials; ++t) {
        std::vector<ida::GF256::Elem> block(b);
        for (auto& e : block) {
          e = static_cast<ida::GF256::Elem>(rng.below(256));
        }
        const auto shares = disperser.encode_bytes(block);
        const auto keep = rng.sample_without_replacement(d, b);
        std::vector<std::uint32_t> indices;
        std::vector<ida::GF256::Elem> values;
        for (const auto i : keep) {
          indices.push_back(static_cast<std::uint32_t>(i));
          values.push_back(shares[i]);
        }
        successes +=
            disperser.recover_bytes(indices, values) == block ? 1 : 0;
      }
      table.add_row({static_cast<std::int64_t>(b),
                     static_cast<std::int64_t>(d),
                     static_cast<std::int64_t>(d - b),
                     static_cast<std::int64_t>(trials),
                     static_cast<std::int64_t>(successes)});
    }
    reporter.table(table, 0);
  }

  // ---- Table 3: coding throughput -------------------------------------
  {
    util::Table table({"b", "d", "encode Mword/s", "recover Mword/s"});
    table.set_title("host throughput of the GF(256) coder (context only; "
                    "not a model quantity)");
    util::Rng rng(77);
    for (const auto& [b, d] : {std::pair<std::uint32_t, std::uint32_t>{8, 16},
                              {16, 32}}) {
      ida::Disperser disperser({b, d});
      std::vector<pram::Word> block(b);
      for (auto& w : block) {
        w = static_cast<pram::Word>(rng.next());
      }
      const int reps = 2000;
      auto t0 = std::chrono::steady_clock::now();
      std::uint64_t sink = 0;
      for (int i = 0; i < reps; ++i) {
        const auto shares = disperser.encode_words(block);
        sink ^= static_cast<std::uint64_t>(shares[0]);
      }
      auto t1 = std::chrono::steady_clock::now();
      const auto shares = disperser.encode_words(block);
      std::vector<std::uint32_t> indices(b);
      std::vector<pram::Word> vals(b);
      for (std::uint32_t j = 0; j < b; ++j) {
        indices[j] = d - b + j;
        vals[j] = shares[d - b + j];
      }
      auto t2 = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) {
        const auto rec = disperser.recover_words(indices, vals);
        sink ^= static_cast<std::uint64_t>(rec[0]);
      }
      auto t3 = std::chrono::steady_clock::now();
      const double enc_s = std::chrono::duration<double>(t1 - t0).count();
      const double dec_s = std::chrono::duration<double>(t3 - t2).count();
      table.add_row({static_cast<std::int64_t>(b),
                     static_cast<std::int64_t>(d),
                     reps * b / enc_s / 1e6, reps * b / dec_s / 1e6});
      if (sink == 0xDEADBEEF) {  // defeat optimizer, never true in practice
        std::printf("!\n");
      }
    }
    reporter.table(table, 2);
  }
  return 0;
}
