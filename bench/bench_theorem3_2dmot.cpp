// Experiment T3 (HEADLINE): Theorem 3 — deterministic P-RAM simulation on
// a sqrt(M) x sqrt(M) 2DMOT in O(log^2 n / log log n) time with constant
// redundancy.
//
// Cycle-accurate packet routing on the real tree network: requests descend
// the processor's row tree, ascend/descend the target column tree, cross
// the module's unit-bandwidth port, and replies retrace. Three machines
// run the same stress traffic:
//
//   HP-2DMOT     modules at leaves, r = O(1)      <- the paper
//   LPP-2DMOT    modules at roots,  r = Theta(log n)  (Luccio et al. 1990)
//   HP-crossbar  n x M rectangle,   r = O(1), O(nM) switches (Fig. 7)
//
// The reproduction targets are the *shape* of cycles/step and the
// redundancy column: HP matches LPP's time shape while cutting r to a
// constant — the paper's contribution.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "pram/trace.hpp"
#include "util/table.hpp"

using namespace pramsim;

namespace {

struct Point {
  std::uint32_t r = 0;
  std::uint64_t switches = 0;
  double mean_cycles = 0.0;
  double max_cycles = 0.0;
};

Point measure(core::SchemeKind kind, std::uint32_t n,
              std::size_t steps_per_family) {
  core::SimulationPipeline pipeline({.kind = kind, .n = n, .seed = 17});
  const auto result = pipeline.run_stress(
      {.steps_per_family = steps_per_family, .seed = 808});
  return {pipeline.scheme().r, pipeline.scheme().switches,
          result.time.mean(), result.time.max()};
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "T3", "Theorem 3 (the 2DMOT scheme) — headline result",
      "a sqrt(M) x sqrt(M) 2DMOT with M = n^(1+eps) modules at the leaves "
      "simulates a P-RAM step deterministically in O(log^2 n/log log n) "
      "time with r = O(1)");

  const std::size_t steps = 3;
  util::Table table({"n", "scheme", "r", "switches", "mean cycles/step",
                     "max cycles/step"});
  table.set_title("network cycles per P-RAM step (cycle-accurate routing; "
                  "worst over 3 exclusive families + map-adversarial)");

  std::vector<double> ns;
  std::vector<double> hp_series;
  std::vector<double> lpp_series;
  std::vector<double> xbar_series;
  for (const std::uint32_t n : {16u, 32u, 64u, 128u, 256u}) {
    const auto hp = measure(core::SchemeKind::kHpMot, n, steps);
    const auto lpp = measure(core::SchemeKind::kLppMot, n, steps);
    const auto xbar = measure(core::SchemeKind::kCrossbar, n, steps);
    ns.push_back(n);
    hp_series.push_back(hp.mean_cycles);
    lpp_series.push_back(lpp.mean_cycles);
    xbar_series.push_back(xbar.mean_cycles);
    auto add = [&](const char* name, const Point& p) {
      table.add_row({static_cast<std::int64_t>(n), std::string(name),
                     static_cast<std::int64_t>(p.r),
                     static_cast<std::int64_t>(p.switches), p.mean_cycles,
                     p.max_cycles});
    };
    add("HP-2DMOT", hp);
    add("LPP-2DMOT", lpp);
    add("HP-crossbar", xbar);
  }
  reporter.table(table, 1);
  std::printf("\n");

  reporter.fit("HP-2DMOT cycles/step", ns, hp_series,
               "log^2 n/loglog n");
  reporter.fit("LPP-2DMOT cycles/step", ns, lpp_series,
               "log^2 n/loglog n");
  reporter.fit("HP-crossbar cycles/step", ns, xbar_series,
               "log^2 n/loglog n");

  std::printf(
      "Who wins, by what: all three machines track the polylog shape; the\n"
      "paper's HP-2DMOT does it with constant r (vs LPP's Theta(log n))\n"
      "and O(M) switches (vs the crossbar's O(nM)). Crossovers: LPP's\n"
      "extra copies cost it more absolute cycles as n grows, and the\n"
      "crossbar's shorter column trees make it fastest in raw cycles at\n"
      "the price of a Theta(n)-fold switch bill (see bench_fig_models).\n");

  // Ablation: routing via the column-tree root (the paper's rule) vs
  // turning at the lowest common ancestor.
  {
    util::Table ablation({"n", "via root (paper)", "via LCA", "saving"});
    ablation.set_title("ablation: column-tree turnaround rule (HP-2DMOT)");
    for (const std::uint32_t n : {64u, 256u}) {
      core::SimulationPipeline root({.kind = core::SchemeKind::kHpMot,
                                     .n = n,
                                     .seed = 21});
      core::SimulationPipeline lca({.kind = core::SchemeKind::kHpMot,
                                    .n = n,
                                    .seed = 21,
                                    .lca_turnaround = true});
      const auto tr = root.run_stress(
          {.steps_per_family = 3, .seed = 5,
           .include_map_adversarial = false});
      const auto tl = lca.run_stress(
          {.steps_per_family = 3, .seed = 5,
           .include_map_adversarial = false});
      ablation.add_row({static_cast<std::int64_t>(n), tr.time.mean(),
                        tl.time.mean(),
                        1.0 - tl.time.mean() / tr.time.mean()});
    }
    reporter.table(ablation, 2);
    std::printf(
        "The root rule the paper states is within a small constant of the\n"
        "LCA shortcut; the simplification costs little.\n");
  }
  return 0;
}
