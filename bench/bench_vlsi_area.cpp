// Experiment A1: the paper's VLSI area claims (§1 and §3).
//
//  Table 1: 2DMOT layout area / N^2 grows like log^2 N (Leighton's bound,
//           realized constructively by the channelled grid layout).
//  Table 2: simulator memory area vs granule size g: once g = Omega(log^2
//           n), total area is Theta(m) (x the constant r) — the paper's
//           feasibility claim; single-cell granules pay decoder overhead
//           per cell.
//  Table 3: perimeter bandwidth: the sqrt(M) x sqrt(M) 2DMOT exposes
//           Theta(sqrt(M)) memory bandwidth where each MPC module exposes
//           1 — "the 2DMOT simply makes better use of the available
//           perimeter".
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "models/vlsi.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

using namespace pramsim;

int main() {
  bench::Reporter reporter(
      "vlsi_area", "VLSI area accounting (§1, §3)",
      "2DMOT area Theta(N^2(log^2 N + A_leaf)); simulator memory "
      "area Theta(m) once granule g = Omega(log^2 n)");

  {
    util::Table table({"N", "layout area", "area / N^2", "log^2 N"});
    table.set_title("2DMOT layout area (unit leaves)");
    std::vector<double> ns;
    std::vector<double> ratio;
    for (const std::uint64_t N : {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
      const double area = models::mot_layout_area(N, 1.0);
      const double r = area / (static_cast<double>(N) * static_cast<double>(N));
      const double logn = std::log2(static_cast<double>(N));
      ns.push_back(static_cast<double>(N));
      ratio.push_back(r);
      table.add_row({static_cast<std::int64_t>(N), area, r, logn * logn});
    }
    reporter.table(table, 1);
    reporter.fit("2DMOT area / N^2", ns, ratio, "log^2 n");
  }

  {
    const std::uint32_t r = 7;
    const std::uint64_t n = 1024;
    const std::uint64_t m = n * n;
    const double log2n = std::log2(static_cast<double>(n));
    util::Table table({"modules M", "granule g", "g / log^2 n",
                       "area overhead vs P-RAM", "verdict"});
    table.set_title("simulator memory area vs granularity (n=1024, m=n^2, "
                    "r=7; overhead ~r is the paper's Theta(m) claim)");
    for (const std::uint64_t M :
         {m / 1024, m / 128, m / 16, m / 4, m}) {
      const double g = static_cast<double>(m) * r / static_cast<double>(M);
      const double overhead = models::memory_area_overhead(m, r, M);
      const bool granule_ok = g >= log2n * log2n;
      table.add_row(
          {static_cast<std::int64_t>(M), g, g / (log2n * log2n), overhead,
           std::string(overhead <= r * 1.5
                           ? "Theta(m) (x r)"
                           : granule_ok ? "decoder-bound" : "granule too small")});
    }
    reporter.table(table, 2);
    std::printf(
        "\nThe overhead is pinned near r = 7 while g = Omega(log^2 n); at\n"
        "single-cell granules (M = m) the per-module decoders inflate it —\n"
        "exactly the paper's \"granule not exceedingly small\" caveat.\n\n");
  }

  {
    util::Table table({"M", "2DMOT perimeter bandwidth", "MPC module bw",
                       "advantage"});
    table.set_title("memory bandwidth from the same silicon perimeter");
    for (const std::uint64_t M : {1024ull, 16384ull, 262144ull}) {
      const double bw = models::perimeter_bandwidth(M);
      table.add_row({static_cast<std::int64_t>(M), bw, 1.0, bw});
    }
    reporter.table(table, 1);
  }
  return 0;
}
