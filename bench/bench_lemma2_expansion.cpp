// Experiment L2: Lemma 2 — constant-redundancy memory maps exist and
// seeded random maps realize them.
//
//  Table 1: the union bound on the fraction of bad maps vs the access
//           threshold c: a sharp transition at the Lemma 2 threshold.
//  Table 2: the union bound shrinking with n at fixed constants ("for n
//           sufficiently large").
//  Table 3: measured expansion of concrete seeded maps: worst distinct-
//           module coverage of adversarially-chosen live copies over
//           random live sets, vs the required (2c-1)q/b.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "memmap/expansion.hpp"
#include "memmap/memory_map.hpp"
#include "memmap/params.hpp"
#include "util/table.hpp"

using namespace pramsim;

int main() {
  bench::Reporter reporter(
      "lemma2_expansion", "Lemma 2 (constant-redundancy memory map)",
      "for b > 2, c > (bk-eps)/(eps(b-2)): live copies of any "
      "q <= n/(2c-1) live variables cover >= (2c-1)q/b modules");

  // ---- Table 1: phase transition in c ---------------------------------
  {
    const double n = 4096;
    const double m = n * n;
    const double M = n * n;
    const double b = 4.0;
    const auto c_min = memmap::lemma2_min_c(b, 2.0, 1.0);
    util::Table table({"c", "r=2c-1", "log2 f(bad maps)", "meaning"});
    table.set_title("union bound vs threshold c (n=4096, k=2, eps=1, b=4; "
                    "Lemma 2 needs c >= " + std::to_string(c_min) + ")");
    for (std::uint32_t c = 2; c <= 8; ++c) {
      const double f = memmap::bad_map_log2_union_bound(n, m, M, c, b);
      table.add_row({static_cast<std::int64_t>(c),
                     static_cast<std::int64_t>(2 * c - 1), f,
                     std::string(f < 0 ? "maps exist w.h.p."
                                       : "bound vacuous")});
    }
    reporter.table(table, 1);
  }

  // ---- Table 2: the bound vanishes as n grows -------------------------
  {
    util::Table table({"n", "log2 f at c=4", "log2 f at c=5"});
    table.set_title("bad-map fraction vs n (k=2, eps=1, b=4)");
    for (const double n : {256.0, 1024.0, 4096.0, 16384.0, 65536.0}) {
      table.add_row({static_cast<std::int64_t>(n),
                     memmap::bad_map_log2_union_bound(n, n * n, n * n, 4, 4.0),
                     memmap::bad_map_log2_union_bound(n, n * n, n * n, 5, 4.0)});
    }
    reporter.table(table, 1);
  }

  // ---- Table 3: measured expansion on concrete maps -------------------
  {
    util::Table table({"n", "q", "required (2c-1)q/b", "worst adversarial",
                       "worst random", "margin", "property"});
    table.set_title(
        "measured expansion of seeded maps (c=4, r=7, b=4, 40 live-set "
        "trials, greedy adversarial live-copy choice)");
    for (const std::uint32_t n : {256u, 1024u, 4096u}) {
      const auto params = memmap::derive_params(n, 2.0, 1.0, 4.0);
      memmap::HashedMap map(params.m, params.n_modules, params.r,
                            /*seed=*/2027);
      const std::uint64_t q_max = params.n / params.r;
      for (const std::uint64_t q : {q_max / 4, q_max / 2, q_max}) {
        if (q == 0) {
          continue;
        }
        const auto res = memmap::measure_expansion(map, params.c, q,
                                                   /*trials=*/40,
                                                   /*seed=*/7);
        const double required =
            static_cast<double>(params.r) * static_cast<double>(q) / params.b;
        table.add_row(
            {static_cast<std::int64_t>(n), static_cast<std::int64_t>(q),
             required, static_cast<std::int64_t>(res.min_distinct),
             static_cast<std::int64_t>(res.min_distinct_random),
             res.ratio_vs_bound(params.b),
             std::string(res.ratio_vs_bound(params.b) >= 1.0 ? "holds"
                                                             : "VIOLATED")});
      }
    }
    reporter.table(table, 2);
    std::printf(
        "\nEvery sampled live set at the paper's own (c, b) satisfies the\n"
        "expansion requirement with margin > 1: the non-constructive map\n"
        "is realized by a seeded pseudorandom placement (DESIGN.md, "
        "substitution 1).\n");
  }
  return 0;
}
