// Shared helpers for the experiment binaries: experiment banners keyed to
// DESIGN.md's index, scaling-fit reporting against the paper's predicted
// shapes, and a Reporter that mirrors every printed table/fit into a
// machine-readable BENCH_<id>.json so the perf trajectory can be tracked
// across PRs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/phase.hpp"
#include "util/fit.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace pramsim::bench {

/// Version stamp written into every BENCH_*.json. Bump whenever driver
/// semantics change in a way that makes trajectories non-comparable
/// point-for-point with earlier PRs.
///
/// v2: PR 3 made families within a stress trial independent machines
///     (state/telemetry no longer carry across families), so any
///     BENCH_faults.json recorded before that is not point-comparable.
/// v3: dynamic-onset faults + background scrubbing (BENCH_recovery.json
///     introduced; static sweeps with scrubbing disabled and onset 0
///     remain identical to v2).
/// v4: every file carries a "manifest" object (scheme/seed/workers/
///     region width/backend/obs) identifying the run configuration;
///     numeric series are unchanged from v3.
inline constexpr int kBenchSchemaVersion = 4;

/// Run-identity stamp mirrored into every BENCH_*.json: enough context
/// to tell whether two trajectory points were measured under the same
/// configuration. Fields an experiment doesn't vary keep their defaults
/// (empty string / 0) — "unspecified", not "unknown".
struct RunManifest {
  std::string scheme;        ///< scheme spec summary, e.g. "majority r=3"
  std::uint64_t seed = 0;    ///< base RNG seed of the experiment
  std::size_t workers =
      util::parallel_workers(1u << 20);  ///< realized worker ceiling
  std::uint32_t region_width = 0;        ///< region granularity (0 = n/a)
  std::string backend;       ///< serve backend, e.g. "group-parallel"
  bool obs_enabled = false;  ///< observability attached during timing?

  [[nodiscard]] std::string to_json() const {
    return std::string("{\"scheme\": \"") + util::json_escape(scheme) +
           "\", \"seed\": " + std::to_string(seed) +
           ", \"workers\": " + std::to_string(workers) +
           ", \"region_width\": " + std::to_string(region_width) +
           ", \"backend\": \"" + util::json_escape(backend) +
           "\", \"obs_enabled\": " + (obs_enabled ? "true" : "false") +
           ", \"obs_compiled\": " + (obs::kEnabled ? "true" : "false") +
           "}";
  }
};

inline void banner(const char* exp_id, const char* paper_artifact,
                   const char* claim) {
  std::printf("\n############################################################\n");
  std::printf("# experiment %s — %s\n", exp_id, paper_artifact);
  std::printf("# paper claim: %s\n", claim);
  std::printf("############################################################\n\n");
}

/// Shape-fit summary for one measured series.
struct FitReport {
  util::Table table{{"shape", "R^2", "slope", "intercept"}};
  std::string series_name;
  std::string predicted_shape;
  std::string best_shape;
  double predicted_r2 = 0.0;
  double best_r2 = 0.0;
  bool reproduced = false;
};

[[nodiscard]] inline FitReport make_fit_report(
    const std::string& series_name, std::span<const double> n,
    std::span<const double> y, const std::string& predicted_shape,
    double tie_margin = 0.02) {
  FitReport report;
  report.series_name = series_name;
  report.predicted_shape = predicted_shape;
  const auto fits = util::fit_shapes(n, y);
  report.table.set_title("fit of '" + series_name + "' (paper predicts " +
                         predicted_shape + ")");
  for (const auto& fit : fits) {
    report.table.add_row({fit.shape_name, fit.fit.r_squared, fit.fit.slope,
                          fit.fit.intercept});
    if (fit.shape_name == predicted_shape) {
      report.predicted_r2 = fit.fit.r_squared;
    }
  }
  report.best_shape = fits.front().shape_name;
  report.best_r2 = fits.front().fit.r_squared;
  report.reproduced = report.predicted_r2 >= report.best_r2 - tie_margin;
  return report;
}

inline void print_fit(const FitReport& report) {
  report.table.print(4);
  std::printf("-> predicted shape '%s': R^2 = %.4f, best = '%s' (%.4f): %s\n\n",
              report.predicted_shape.c_str(), report.predicted_r2,
              report.best_shape.c_str(), report.best_r2,
              report.reproduced ? "REPRODUCED (within tie margin)"
                                : "shape differs — see EXPERIMENTS.md "
                                  "discussion");
}

/// Print the R^2 of every candidate shape for a measured series and call
/// out whether the paper-predicted shape wins (or statistically ties the
/// winner, within `tie_margin` of R^2).
inline void report_fit(const std::string& series_name,
                       std::span<const double> n, std::span<const double> y,
                       const std::string& predicted_shape,
                       double tie_margin = 0.02) {
  print_fit(make_fit_report(series_name, n, y, predicted_shape, tie_margin));
}

/// Experiment reporter: prints the banner and every table/fit exactly as
/// before, and mirrors them into BENCH_<id>.json (written at destruction,
/// in the working directory) for cross-PR tracking.
class Reporter {
 public:
  Reporter(std::string exp_id, std::string paper_artifact, std::string claim)
      : exp_id_(std::move(exp_id)),
        artifact_(std::move(paper_artifact)),
        claim_(std::move(claim)) {
    banner(exp_id_.c_str(), artifact_.c_str(), claim_.c_str());
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  /// Stamp the run manifest mirrored into the JSON. Optional: a reporter
  /// that never calls this still writes a default manifest (host worker
  /// ceiling + obs compile flag), so every v4 file has one.
  void set_manifest(RunManifest manifest) {
    manifest_ = std::move(manifest);
  }

  /// Print a result table and record it for the JSON mirror.
  void table(const util::Table& t, int precision) {
    t.print(precision);
    table_json_.push_back(t.to_json());
  }

  /// Fit a series, print the verdict, and record it for the JSON mirror.
  void fit(const std::string& series_name, std::span<const double> n,
           std::span<const double> y, const std::string& predicted_shape,
           double tie_margin = 0.02) {
    const auto report =
        make_fit_report(series_name, n, y, predicted_shape, tie_margin);
    print_fit(report);
    fit_json_.push_back(
        "{\"series\": \"" + util::json_escape(report.series_name) +
        "\", \"predicted\": \"" + util::json_escape(report.predicted_shape) +
        "\", \"predicted_r2\": " + std::to_string(report.predicted_r2) +
        ", \"best\": \"" + util::json_escape(report.best_shape) +
        "\", \"best_r2\": " + std::to_string(report.best_r2) +
        ", \"reproduced\": " + (report.reproduced ? "true" : "false") +
        ", \"table\": " + report.table.to_json() + "}");
  }

  ~Reporter() {
    const std::string path = "BENCH_" + exp_id_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return;
    }
    std::string out = "{\"experiment\": \"" + util::json_escape(exp_id_) +
                      "\", \"schema_version\": " +
                      std::to_string(kBenchSchemaVersion) +
                      ", \"artifact\": \"" + util::json_escape(artifact_) +
                      "\", \"manifest\": " + manifest_.to_json() +
                      ", \"tables\": [";
    for (std::size_t i = 0; i < table_json_.size(); ++i) {
      out += (i ? ", " : "") + table_json_[i];
    }
    out += "], \"fits\": [";
    for (std::size_t i = 0; i < fit_json_.size(); ++i) {
      out += (i ? ", " : "") + fit_json_[i];
    }
    out += "]}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("(machine-readable results mirrored to %s)\n", path.c_str());
  }

 private:
  std::string exp_id_;
  std::string artifact_;
  std::string claim_;
  RunManifest manifest_;
  std::vector<std::string> table_json_;
  std::vector<std::string> fit_json_;
};

}  // namespace pramsim::bench
