// Shared helpers for the experiment binaries: experiment banners keyed to
// DESIGN.md's index, and scaling-fit reporting against the paper's
// predicted shapes.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "util/fit.hpp"
#include "util/table.hpp"

namespace pramsim::bench {

inline void banner(const char* exp_id, const char* paper_artifact,
                   const char* claim) {
  std::printf("\n############################################################\n");
  std::printf("# experiment %s — %s\n", exp_id, paper_artifact);
  std::printf("# paper claim: %s\n", claim);
  std::printf("############################################################\n\n");
}

/// Print the R^2 of every candidate shape for a measured series and call
/// out whether the paper-predicted shape wins (or statistically ties the
/// winner, within `tie_margin` of R^2).
inline void report_fit(const std::string& series_name,
                       std::span<const double> n, std::span<const double> y,
                       const std::string& predicted_shape,
                       double tie_margin = 0.02) {
  const auto fits = util::fit_shapes(n, y);
  util::Table table({"shape", "R^2", "slope", "intercept"});
  table.set_title("fit of '" + series_name + "' (paper predicts " +
                  predicted_shape + ")");
  double predicted_r2 = 0.0;
  for (const auto& fit : fits) {
    table.add_row({fit.shape_name, fit.fit.r_squared, fit.fit.slope,
                   fit.fit.intercept});
    if (fit.shape_name == predicted_shape) {
      predicted_r2 = fit.fit.r_squared;
    }
  }
  table.print(4);
  const bool reproduced = predicted_r2 >= fits.front().fit.r_squared - tie_margin;
  std::printf("-> predicted shape '%s': R^2 = %.4f, best = '%s' (%.4f): %s\n\n",
              predicted_shape.c_str(), predicted_r2,
              fits.front().shape_name.c_str(), fits.front().fit.r_squared,
              reproduced ? "REPRODUCED (within tie margin)"
                         : "shape differs — see EXPERIMENTS.md discussion");
}

}  // namespace pramsim::bench
