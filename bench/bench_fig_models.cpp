// Experiments F1-F8: structural reproduction of the paper's Figures 1-8.
//
//  F1-F3, F5, F6: the five machine models (P-RAM, MPC, BDN, DMMPC, DMBDN)
//                 instantiated over an n sweep — the quantities each figure
//                 depicts, plus the realizability axis the paper argues on.
//  F4:            the (N x N)-2DMOT itself: closed-form structure counts
//                 cross-checked against explicit graph expansion, degree
//                 bound, diameter; ASCII sketch of the 4 x 4 instance.
//  F7 vs F8:      switch cost of the two constant-redundancy placements:
//                 the n x M crossbar pays O(nM) switches, the sqrt(M) x
//                 sqrt(M) leaves placement only O(M).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/schemes.hpp"
#include "models/machine_models.hpp"
#include "network/topology.hpp"
#include "util/table.hpp"

using namespace pramsim;

namespace {

void figures_1_to_6(bench::Reporter& reporter) {
  bench::banner("F1-F3,F5,F6", "Figs. 1,2,3,5,6 (machine models)",
                "MPC/BDN fix M = n (coarse granularity); DMMPC/DMBDN free "
                "M, and only BDN/DMBDN are bounded-degree realizable");
  for (const std::uint64_t n : {64ull, 1024ull}) {
    const std::uint64_t m = n * n;
    const std::uint64_t M = m;  // the paper's fine-granularity operating point
    util::Table table({"model", "procs", "modules", "cells/module",
                       "edges", "switches", "max fan-in", "bounded-degree",
                       "note"});
    table.set_title("machine models at n = " + std::to_string(n) +
                    ", m = n^2, M = n^2");
    for (const auto& s : models::describe_all(n, m, M)) {
      table.add_row({std::string(models::to_string(s.model)),
                     static_cast<std::int64_t>(s.processors),
                     static_cast<std::int64_t>(s.memory_modules),
                     s.module_cells,
                     static_cast<std::int64_t>(s.interconnect_edges),
                     static_cast<std::int64_t>(s.switches),
                     static_cast<std::int64_t>(s.max_fanin),
                     std::string(s.bounded_degree ? "yes" : "no"), s.note});
    }
    reporter.table(table, 1);
    std::printf("\n");
  }
}

void figure_4(bench::Reporter& reporter) {
  bench::banner("F4", "Fig. 4 (the 2DMOT network)",
                "N^2 leaves + Theta(N^2) switches, degree <= 4, "
                "diameter 4 log N");
  std::printf("%s\n", net::ascii_sketch(net::square_mot(4)).c_str());

  util::Table table({"side N", "leaves", "switches", "links", "max degree",
                     "diameter", "audit (explicit graph)"});
  table.set_title("2DMOT structure: closed form vs explicit expansion");
  for (const std::uint32_t side : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const auto shape = net::square_mot(side);
    const auto s = net::summarize(shape);
    std::string audit = "(skipped: large)";
    if (shape.leaves() <= (1ULL << 16)) {
      const auto adj = net::build_adjacency(shape);
      std::uint64_t edges = 0;
      std::uint32_t max_degree = 0;
      for (const auto& nbrs : adj) {
        edges += nbrs.size();
        max_degree = std::max<std::uint32_t>(
            max_degree, static_cast<std::uint32_t>(nbrs.size()));
      }
      const bool ok = adj.size() == s.nodes && edges == 2 * s.links &&
                      max_degree == s.max_degree;
      audit = ok ? "matches" : "MISMATCH";
    }
    table.add_row({static_cast<std::int64_t>(side),
                   static_cast<std::int64_t>(s.leaves),
                   static_cast<std::int64_t>(s.switches),
                   static_cast<std::int64_t>(s.links),
                   static_cast<std::int64_t>(s.max_degree),
                   static_cast<std::int64_t>(s.diameter_hops), audit});
  }
  reporter.table(table, 0);
}

void figures_7_vs_8(bench::Reporter& reporter) {
  bench::banner("F7 vs F8", "Figs. 7, 8 (constant-redundancy placements)",
                "crossbar: O(nM) switches; modules-at-leaves: O(M) switches "
                "— same constant redundancy");
  util::Table table({"n", "M", "crossbar switches", "~n*M",
                     "HP-2DMOT switches", "~2M", "ratio xbar/HP"});
  table.set_title("switch cost of granularity, eps = 1 (M = n^2)");
  std::vector<double> ns;
  std::vector<double> xbar;
  std::vector<double> hp;
  for (const std::uint32_t n : {16u, 32u, 64u, 128u, 256u}) {
    const auto hp_inst = core::make_scheme({.kind = core::SchemeKind::kHpMot,
                                            .n = n});
    const auto xb_inst = core::make_scheme(
        {.kind = core::SchemeKind::kCrossbar, .n = n});
    ns.push_back(n);
    xbar.push_back(static_cast<double>(xb_inst.switches));
    hp.push_back(static_cast<double>(hp_inst.switches));
    table.add_row(
        {static_cast<std::int64_t>(n),
         static_cast<std::int64_t>(hp_inst.n_modules),
         static_cast<std::int64_t>(xb_inst.switches),
         static_cast<std::int64_t>(static_cast<std::uint64_t>(n) *
                                   xb_inst.n_modules),
         static_cast<std::int64_t>(hp_inst.switches),
         static_cast<std::int64_t>(2ull * hp_inst.n_modules),
         static_cast<double>(xb_inst.switches) /
             static_cast<double>(hp_inst.switches)});
  }
  reporter.table(table, 1);
  std::printf(
      "\nThe ratio grows ~linearly in n: Fig. 8's placement buys the same\n"
      "granularity for a factor Theta(n) fewer switches than Fig. 7.\n");
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "fig_models", "Figs. 1-8 (machine models and the 2DMOT)",
      "five machine models instantiated over an n sweep; the 2DMOT's "
      "closed-form structure audits clean; modules-at-leaves buys the "
      "crossbar's granularity for Theta(n) fewer switches");
  figures_1_to_6(reporter);
  figure_4(reporter);
  figures_7_vs_8(reporter);
  return 0;
}
