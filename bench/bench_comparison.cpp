// Experiment C1: the cross-scheme summary table the paper's narrative
// implies (its §1 tours UW'87, KU'86, Ranade, HB'88, LPP'90, Schuster/
// Rabin before presenting the DMBDN schemes).
//
// Every implemented organization serves the same stress traffic at
// n = 128 through the one scheme-agnostic SimulationPipeline — one loop,
// no per-scheme branching; formula-only rows (Karlin-Upfal) are included
// for context with their paper-stated bounds and marked as such.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "util/table.hpp"

using namespace pramsim;

int main() {
  bench::Reporter reporter(
      "C1", "implied comparison table (paper §1)",
      "the paper's scheme is the first deterministic polylog "
      "simulation with Theta(1) redundancy on a feasible network");

  const std::uint32_t n = 128;

  util::Table table({"scheme", "model", "deterministic", "storage factor",
                     "time/step", "redundancy-weighted", "switches",
                     "source"});
  table.set_title("all schemes at n = 128, m = n^2, same stress traffic");

  for (const auto kind : core::all_scheme_kinds()) {
    core::SimulationPipeline pipeline({.kind = kind, .n = n, .seed = 33});
    const auto& scheme = pipeline.scheme();
    // Identical traffic for every row: map-adversarial batches are
    // excluded because the mapless schemes (kHashed) cannot serve them,
    // and a cross-scheme mean is only comparable over the same steps.
    const auto res = pipeline.run_stress(
        {.steps_per_family = 3, .seed = 44,
         .include_map_adversarial = false});
    table.add_row({scheme.name, std::string(scheme.model),
                   std::string(scheme.deterministic ? "yes"
                                                    : "no (probabilistic)"),
                   scheme.storage_factor, res.time.mean(),
                   res.redundancy_weighted_cost(),
                   static_cast<std::int64_t>(scheme.switches),
                   std::string(scheme.notes)});
  }

  // --- formula-only context row ------------------------------------------
  table.add_row({std::string("Karlin-Upfal'86"), std::string("BDN"),
                 std::string("no (probabilistic)"), std::string("O(1)"),
                 std::string("O(log n) expected"), std::string("-"),
                 static_cast<std::int64_t>(0),
                 std::string("stated bound only (not built)")});
  reporter.table(table, 1);

  std::printf(
      "\nThe reproduction of the paper's position: among DETERMINISTIC\n"
      "schemes, only HP-DMMPC / HP-2DMOT / HP-crossbar hold redundancy\n"
      "constant, and HP-2DMOT does so on a bounded-degree network with\n"
      "only O(M) switches. IDA matches constant *storage* but pays\n"
      "Theta(log n)-fold work; hashing matches r = 1 but loses determinism.\n"
      "The redundancy-weighted column prices each scheme's time in the\n"
      "memory it actually consumes.\n");
  return 0;
}
