// Experiment C1: the cross-scheme summary table the paper's narrative
// implies (its §1 tours UW'87, KU'86, Ranade, HB'88, LPP'90, Schuster/
// Rabin before presenting the DMBDN schemes).
//
// Every implemented scheme serves the same stress traffic at n = 128;
// formula-only rows (Herley-Bilardi, Karlin-Upfal, Ranade) are included
// for context with their paper-stated bounds and marked as such.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "core/context_engines.hpp"
#include "hashing/mv_memory.hpp"
#include "ida/ida_memory.hpp"
#include "memmap/params.hpp"
#include "pram/trace.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pramsim;

namespace {

/// Run the standard stress traffic through a MemorySystem (for the
/// schemes that are not AccessEngines: IDA, MV hashing).
double mean_time_memory_system(pram::MemorySystem& memory, std::uint32_t n,
                               std::uint64_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  util::RunningStats stats;
  for (const auto family : pram::exclusive_trace_families()) {
    for (int s = 0; s < 3; ++s) {
      const auto batch = pram::make_batch(family, n, m, rng);
      std::vector<VarId> reads;
      std::vector<pram::VarWrite> writes;
      for (const auto& acc : batch) {
        if (acc.op == pram::AccessOp::kRead) {
          reads.push_back(acc.var);
        } else {
          writes.push_back({acc.var, acc.value});
        }
      }
      std::vector<pram::Word> values(reads.size());
      const auto cost = memory.step(reads, values, writes);
      stats.add(static_cast<double>(cost.time));
    }
  }
  return stats.mean();
}

}  // namespace

int main() {
  bench::banner("C1", "implied comparison table (paper §1)",
                "the paper's scheme is the first deterministic polylog "
                "simulation with Theta(1) redundancy on a feasible network");

  const std::uint32_t n = 128;
  const std::uint64_t m = static_cast<std::uint64_t>(n) * n;
  const double logn = std::log2(static_cast<double>(n));
  const double logm = std::log2(static_cast<double>(m));

  util::Table table({"scheme", "model", "deterministic", "redundancy",
                     "time/step (measured or stated)", "switches",
                     "source"});
  table.set_title("all schemes at n = 128, m = n^2");

  // --- measured rows ---------------------------------------------------
  for (const auto kind :
       {core::SchemeKind::kUwMpc, core::SchemeKind::kAltBdn,
        core::SchemeKind::kDmmpc, core::SchemeKind::kLppMot,
        core::SchemeKind::kCrossbar, core::SchemeKind::kHpMot}) {
    auto inst = core::make_scheme({.kind = kind, .n = n, .seed = 33});
    const auto res = core::run_stress(*inst.engine, n, inst.m, 3, 44,
                                      pram::exclusive_trace_families(), true);
    const char* model = kind == core::SchemeKind::kUwMpc ? "MPC"
                        : kind == core::SchemeKind::kAltBdn
                            ? "BDN (sorting)"
                        : kind == core::SchemeKind::kDmmpc
                            ? "DMMPC"
                            : "DMBDN (2DMOT)";
    table.add_row({std::string(core::to_string(kind)), std::string(model),
                   std::string("yes"),
                   std::string("r = " + std::to_string(inst.r)),
                   res.time.mean(),
                   static_cast<std::int64_t>(inst.switches),
                   std::string("measured")});
  }

  // --- Schuster / Rabin IDA -------------------------------------------
  {
    const auto b = static_cast<std::uint32_t>(logn);  // Theta(log n)
    ida::IdaMemory memory(
        m, {.b = b, .d = 2 * b, .n_modules = 1024, .seed = 3});
    const double t = mean_time_memory_system(memory, n, m, 55);
    table.add_row({std::string("Schuster-IDA"), std::string("DMMPC"),
                   std::string("yes"),
                   std::string("storage x" +
                               std::to_string(memory.storage_factor())),
                   t, static_cast<std::int64_t>(0),
                   std::string("measured; + Theta(log n) work/access")});
  }

  // --- Mehlhorn-Vishkin hashing -----------------------------------------
  {
    hashing::MvMemory memory(m, {.n_modules = n, .k_wise = 2, .seed = 5});
    const double t = mean_time_memory_system(memory, n, m, 66);
    table.add_row({std::string("MV-hashing"), std::string("MPC"),
                   std::string("no (probabilistic)"), std::string("r = 1"),
                   t, static_cast<std::int64_t>(0),
                   std::string("measured; adversary can force n rounds")});
  }

  // --- Herley-Bilardi on a concrete random-regular expander -------------
  {
    const auto c = core::hb_c(m);
    auto map = std::make_shared<memmap::HashedMap>(m, n, 2 * c - 1, 5);
    majority::SchedulerConfig cfg;
    cfg.c = c;
    cfg.cluster_size = 2 * c - 1;
    cfg.n_processors = n;
    core::HbExpanderEngine engine(map, cfg, /*graph_degree=*/6,
                                  /*graph_seed=*/9);
    const auto res = core::run_stress(engine, n, m, 3, 77,
                                      pram::exclusive_trace_families(), true);
    table.add_row(
        {std::string("Herley-Bilardi'88"), std::string("BDN (expander)"),
         std::string("yes"),
         std::string("r = " + std::to_string(2 * c - 1) +
                     " (log m/loglog m)"),
         res.time.mean(), static_cast<std::int64_t>(0),
         std::string("measured on a random 6-regular expander (diam " +
                     std::to_string(engine.cycles_per_round()) + ")")});
  }

  // --- Ranade on a concrete butterfly ------------------------------------
  {
    auto map = std::shared_ptr<memmap::MemoryMap>(
        memmap::make_single_copy_map(m, n, 5));
    core::RanadeButterflyEngine engine(map, n);
    const auto res = core::run_stress(engine, n, m, 3, 88,
                                      pram::exclusive_trace_families(),
                                      false);
    table.add_row({std::string("Ranade'87"), std::string("BDN (butterfly)"),
                   std::string("no (probabilistic)"), std::string("r = 1"),
                   res.time.mean(), static_cast<std::int64_t>(0),
                   std::string("measured (dilation+congestion); no "
                               "worst-case bound")});
  }

  // --- formula-only context row ------------------------------------------
  table.add_row({std::string("Karlin-Upfal'86"), std::string("BDN"),
                 std::string("no (probabilistic)"), std::string("r = O(1)"),
                 0.0, static_cast<std::int64_t>(0),
                 std::string("stated: O(log n) expected (not built)")});
  table.print(1);
  (void)logm;

  std::printf(
      "\nThe reproduction of the paper's position: among DETERMINISTIC\n"
      "schemes, only HP-DMMPC / HP-2DMOT / HP-crossbar hold redundancy\n"
      "constant, and HP-2DMOT does so on a bounded-degree network with\n"
      "only O(M) switches. IDA matches constant *storage* but pays\n"
      "Theta(log n)-fold work; hashing matches r = 1 but loses determinism.\n");
  return 0;
}
