// Experiment T1: Theorem 1 — the redundancy lower bound and its collapse
// under fine granularity.
//
// The proof's counting inequality is solved numerically for the minimal
// average updated-copy count p (any scheme's redundancy r >= p):
//
//   (m/2) * C(M-2p, Q-2p) <= (n-1) * C(M, Q),   Q = n/h - 1.
//
// Table 1 sweeps the granularity exponent eps (M = n^(1+eps)) and the
// allowed step time h; Table 2 grows n at fixed parameters to show the
// eps = 0 (MPC-like) bound growing while the eps = 1 bound stays at 1.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "memmap/params.hpp"
#include "util/table.hpp"

using namespace pramsim;

int main() {
  bench::Reporter reporter(
      "theorem1_bound", "Theorem 1 (lower bound on redundancy)",
      "r = Omega((k-1) log n / (eps log n + log h)): constant for "
      "eps > 0 and polylog h, Omega(log n / log h)-like at eps = 0");

  // ---- Table 1: the (eps, h) surface at fixed n ----------------------
  {
    const double n = std::pow(2.0, 20);
    const double m = n * n;  // k = 2
    util::Table table({"eps", "M", "h", "numeric p_min",
                       "closed form (paper)"});
    table.set_title("Theorem 1 bound at n = 2^20, m = n^2");
    for (const double eps : {0.0, 0.25, 0.5, 1.0}) {
      const double M = std::pow(n, 1.0 + eps);
      for (const double h : {2.0, 16.0, 256.0}) {
        const auto p = memmap::theorem1_min_p(n, M, m, h);
        const double closed =
            eps > 0.0 || h > 1.0
                ? memmap::theorem1_closed_form(n, 2.0, eps, h)
                : 0.0;
        table.add_row({eps, M, h, static_cast<std::int64_t>(p), closed});
      }
    }
    reporter.table(table, 2);
    std::printf(
        "\nReading: at eps = 0 (the MPC regime, M = n) fast simulation\n"
        "(h = 2) forces p ~ 10 copies; the same h at eps = 1 needs ~1.\n"
        "The closed form tracks the numeric bound to within its constant.\n");
  }

  // ---- Table 2: growth in n at eps = 0 vs collapse at eps = 1 --------
  {
    util::Table table({"n", "p_min (eps=0)", "p_min (eps=1)",
                       "closed form eps=0", "closed form eps=1"});
    table.set_title("granularity collapse as n grows (k = 2, h = 2)");
    std::vector<double> ns;
    std::vector<double> coarse;
    for (const int log_n : {12, 16, 20, 24, 28}) {
      const double n = std::pow(2.0, log_n);
      const double m = n * n;
      const auto p0 = memmap::theorem1_min_p(n, n, m, 2.0);
      const auto p1 = memmap::theorem1_min_p(n, n * n, m, 2.0);
      ns.push_back(n);
      coarse.push_back(static_cast<double>(p0));
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(p0),
                     static_cast<std::int64_t>(p1),
                     memmap::theorem1_closed_form(n, 2.0, 1e-9, 2.0),
                     memmap::theorem1_closed_form(n, 2.0, 1.0, 2.0)});
    }
    reporter.table(table, 2);
    reporter.fit("p_min at eps=0", ns, coarse, "log n");
    std::printf(
        "The eps = 0 bound grows with n (the classic obstruction); the\n"
        "eps = 1 column is pinned at 1: granularity removes the lower\n"
        "bound, which is what makes Theorem 2/3's O(1) redundancy possible.\n");
  }
  return 0;
}
