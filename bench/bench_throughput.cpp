// Serve-path throughput: steps/sec for every SchemeKind, native plan
// path (MemorySystem::serve over prebuilt arena-backed AccessPlans)
// versus the legacy step() adapter (the default serve() body: forward
// plan.reads/plan.writes to step(), which rebuilds its per-step dedup
// containers). Written to BENCH_throughput.json via bench::Reporter —
// this file seeds the repo's perf trajectory, so keep the configurations
// stable across PRs.
//
// A second table measures the pipeline end to end: run_stress wall time
// with the double-buffered, within-trial-sharded driver.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/plan_builder.hpp"
#include "core/schemes.hpp"
#include "pram/serve_context.hpp"
#include "pram/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace pramsim;

/// Raw batches for the serve loop: alternating permutation / uniform
/// steps (distinct-heavy and collision-heavy traffic).
std::vector<pram::AccessBatch> make_bench_trace(std::uint32_t n,
                                                std::uint64_t m,
                                                std::size_t steps) {
  util::Rng rng(17);
  std::vector<pram::AccessBatch> trace;
  trace.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const auto family = (i % 2 == 0) ? pram::TraceFamily::kPermutation
                                     : pram::TraceFamily::kUniform;
    trace.push_back(pram::make_batch(family, n, m, rng));
  }
  return trace;
}

struct Throughput {
  double legacy_steps_per_sec = 0.0;
  double plan_steps_per_sec = 0.0;
};

/// Time both entries on fresh instances of the same spec over the same
/// prebuilt plans. Plans are built once outside both timed loops: the
/// contrast isolated here is "consume the precomputed joins" vs "rebuild
/// the per-step containers inside step()".
Throughput measure(const core::SchemeSpec& spec,
                   const std::vector<pram::AccessBatch>& trace,
                   double budget_sec) {
  Throughput out;
  auto native = core::make_memory(spec);
  auto legacy = core::make_memory(spec);

  std::vector<std::unique_ptr<core::PlanBuilder>> builders;
  builders.reserve(trace.size());
  std::vector<const pram::AccessPlan*> plans;
  plans.reserve(trace.size());
  for (const auto& batch : trace) {
    builders.push_back(std::make_unique<core::PlanBuilder>());
    plans.push_back(&builders.back()->build(batch, *native));
  }

  std::vector<pram::Word> values;
  pram::ServeContext ctx;
  auto run = [&](pram::MemorySystem& memory, bool plan_path) {
    std::size_t steps = 0;
    const util::Stopwatch watch;
    double elapsed = 0.0;
    do {
      for (const auto* plan : plans) {
        values.resize(plan->reads.size());
        if (plan_path) {
          ctx.bind(values);
          memory.serve(*plan, ctx);
        } else {
          // The legacy serve body, spelled out: forward the combined
          // lists to step(), which redoes its own dedup/grouping.
          memory.step(plan->reads, values, plan->writes);
        }
      }
      steps += plans.size();
      elapsed = watch.elapsed_seconds();
    } while (elapsed < budget_sec);
    return static_cast<double>(steps) / elapsed;
  };

  // Warm both instances once (first-touch allocations, sparse stores).
  for (const auto* plan : plans) {
    values.resize(plan->reads.size());
    ctx.bind(values);
    native->serve(*plan, ctx);
    legacy->step(plan->reads, values, plan->writes);
  }
  out.legacy_steps_per_sec = run(*legacy, /*plan_path=*/false);
  out.plan_steps_per_sec = run(*native, /*plan_path=*/true);
  return out;
}

/// Serve-path throughput of one backend at a pinned executor worker
/// count (0 = the hardware-aware automatic policy), through the v2
/// context entry over prebuilt plans. The worker override steers
/// Executor::plan_workers; ">1 workers" really fans chunks across the
/// parked pool even when the host has fewer cores than that (the forced
/// columns chart dispatch overhead; the auto column is what the
/// pipeline actually runs). Caveat for reading the w1 column: MvMemory
/// takes the group loop at any worker count, but MajorityMemory falls
/// back to its plain value loops when only one chunk would run — so for
/// kDmmpc, w1-vs-w2 differences mix group-indirection cost with
/// dispatch cost; only the kHashed rows isolate dispatch overhead.
double measure_backend(const core::SchemeSpec& spec,
                       const std::vector<pram::AccessBatch>& trace,
                       std::size_t workers, double budget_sec) {
  auto memory = core::make_memory(spec);
  std::vector<std::unique_ptr<core::PlanBuilder>> builders;
  std::vector<const pram::AccessPlan*> plans;
  builders.reserve(trace.size());
  plans.reserve(trace.size());
  for (const auto& batch : trace) {
    builders.push_back(std::make_unique<core::PlanBuilder>());
    plans.push_back(&builders.back()->build(batch, *memory));
  }

  util::Executor executor;
  pram::ServeContext ctx({}, &executor);
  std::vector<pram::Word> values;
  util::set_parallel_workers_override(workers);
  for (const auto* plan : plans) {  // warm-up pass
    values.resize(plan->reads.size());
    ctx.bind(values);
    memory->serve(*plan, ctx);
  }
  std::size_t steps = 0;
  const util::Stopwatch watch;
  double elapsed = 0.0;
  do {
    for (const auto* plan : plans) {
      values.resize(plan->reads.size());
      ctx.bind(values);
      memory->serve(*plan, ctx);
    }
    steps += plans.size();
    elapsed = watch.elapsed_seconds();
  } while (elapsed < budget_sec);
  util::set_parallel_workers_override(0);
  return static_cast<double>(steps) / elapsed;
}

}  // namespace

int main() {
  bench::Reporter reporter(
      "throughput", "serve-path throughput (plan vs legacy step adapter)",
      "the arena-backed plan path serves >= 2x steps/sec over the legacy "
      "per-step-container path on kDmmpc and kHashed at n >= 2^12, and "
      "the kGroupParallel backend serves >= 1.3x the serial backend on "
      "kDmmpc or kHashed at n = 2^12 (auto worker policy)");

  {
    util::Table table({"scheme", "n", "m", "region w", "steps/s legacy",
                       "steps/s plan", "speedup"});
    table.set_title("per-step serve throughput, prebuilt plans "
                    "(permutation+uniform traffic; region w = storage "
                    "granularity in words, 1 = classic layout)");
    struct Config {
      core::SchemeKind kind;
      std::uint32_t n;
      double budget;
      std::uint32_t region = 1;
    };
    std::vector<Config> configs;
    for (const auto kind : core::all_scheme_kinds()) {
      configs.push_back({kind, 256, 0.2});
    }
    // The acceptance configurations: the two schemes the refactor must
    // speed up >= 2x, at production-ish scale.
    configs.push_back({core::SchemeKind::kDmmpc, 4096, 0.5});
    configs.push_back({core::SchemeKind::kHashed, 4096, 0.5});
    // Region-granular storage rows (same traffic, wide rows): the value
    // phases run the bulk memcmp-vote / GF(256)-span paths.
    configs.push_back({core::SchemeKind::kDmmpc, 4096, 0.5, 64});
    configs.push_back({core::SchemeKind::kIda, 256, 0.2, 64});

    for (const auto& config : configs) {
      const core::SchemeSpec spec{.kind = config.kind, .n = config.n,
                                  .seed = 3,
                                  .region_words = config.region};
      const auto instance = core::make_scheme(spec);
      const std::size_t steps = config.n >= 4096 ? 8 : 16;
      const auto trace = make_bench_trace(config.n, instance.m, steps);
      const auto t = measure(spec, trace, config.budget);
      table.add_row({core::to_string(config.kind),
                     static_cast<std::int64_t>(config.n),
                     static_cast<std::int64_t>(instance.m),
                     static_cast<std::int64_t>(instance.region_words),
                     t.legacy_steps_per_sec, t.plan_steps_per_sec,
                     t.plan_steps_per_sec / t.legacy_steps_per_sec});
      std::fflush(stdout);
    }
    reporter.table(table, 1);
  }

  {
    // The parallel-serve trajectory: serial backend vs kGroupParallel at
    // 1/2/4 executor workers, same prebuilt plans, same context entry.
    // Group-parallel wins twice — the precomputed groups replace the
    // per-request placement hashing in the load loop, and the value
    // phase fans across the parked worker pool.
    util::Table table({"scheme", "n", "region w", "steps/s serial",
                       "steps/s gp", "gp / serial", "steps/s gp 1wk",
                       "steps/s gp 2wk", "steps/s gp 4wk"});
    table.set_title("group-parallel serve backend (plan module groups "
                    "fanned across ServeContext executor workers; 'gp' = "
                    "hardware-aware auto policy, wN = forced N workers)");
    struct Config {
      core::SchemeKind kind;
      std::uint32_t n;
      double budget;
      std::uint32_t region = 1;
    };
    const std::vector<Config> configs = {
        {core::SchemeKind::kDmmpc, 256, 0.2},
        {core::SchemeKind::kHashed, 256, 0.2},
        {core::SchemeKind::kDmmpc, 4096, 0.4},
        {core::SchemeKind::kHashed, 4096, 0.4},
        // Width sweep: backend x region granularity on the same traffic.
        {core::SchemeKind::kDmmpc, 4096, 0.4, 8},
        {core::SchemeKind::kDmmpc, 4096, 0.4, 64},
    };
    for (const auto& config : configs) {
      core::SchemeSpec spec{.kind = config.kind, .n = config.n, .seed = 3,
                            .region_words = config.region};
      const auto instance = core::make_scheme(spec);
      const std::size_t steps = config.n >= 4096 ? 8 : 16;
      const auto trace = make_bench_trace(config.n, instance.m, steps);
      const double serial =
          measure_backend(spec, trace, 0, config.budget);
      spec.backend = pram::ServeBackend::kGroupParallel;
      const double gp_auto = measure_backend(spec, trace, 0, config.budget);
      const double gp1 = measure_backend(spec, trace, 1, config.budget);
      const double gp2 = measure_backend(spec, trace, 2, config.budget);
      const double gp4 = measure_backend(spec, trace, 4, config.budget);
      table.add_row({core::to_string(config.kind),
                     static_cast<std::int64_t>(config.n),
                     static_cast<std::int64_t>(instance.region_words),
                     serial, gp_auto, gp_auto / serial, gp1, gp2, gp4});
      std::fflush(stdout);
    }
    reporter.table(table, 1);
  }

  {
    // Each scheme runs twice: observability detached (the default) and
    // attached with every step sampled — the overhead column is the obs
    // acceptance gate (attached tracing should cost low single digits).
    util::Table table({"scheme", "n", "trials", "stress steps", "wall ms",
                       "steps/s", "steps/s obs", "obs ovh %"});
    table.set_title("pipeline stress throughput (double-buffered, "
                    "within-trial family shards; 'obs' = metrics+journal+"
                    "phase timers attached, sample interval 1)");
    for (const auto kind : {core::SchemeKind::kDmmpc, core::SchemeKind::kIda,
                            core::SchemeKind::kHashed}) {
      core::SimulationPipeline pipeline({.kind = kind, .n = 256, .seed = 3});
      core::StressOptions options{.steps_per_family = 16, .seed = 7,
                                  .trials = 2};
      const util::Stopwatch plain_watch;
      const auto result = pipeline.run_stress(options);
      const double wall = plain_watch.elapsed_seconds();

      options.obs_enabled = true;
      const util::Stopwatch obs_watch;
      const auto obs_result = pipeline.run_stress(options);
      const double obs_wall = obs_watch.elapsed_seconds();

      const double plain_rate = static_cast<double>(result.steps) / wall;
      const double obs_rate =
          static_cast<double>(obs_result.steps) / obs_wall;
      table.add_row({core::to_string(kind), std::int64_t{256},
                     static_cast<std::int64_t>(options.trials),
                     static_cast<std::int64_t>(result.steps), wall * 1e3,
                     plain_rate, obs_rate,
                     (plain_rate / obs_rate - 1.0) * 100.0});
    }
    reporter.table(table, 1);
  }

  bench::RunManifest manifest;
  manifest.scheme = "kind sweep (see table rows)";
  manifest.seed = 3;
  manifest.backend = "serial + group-parallel (per table)";
  manifest.obs_enabled = false;  // timed loops run detached by default
  reporter.set_manifest(manifest);

  return 0;
}
