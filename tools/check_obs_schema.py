#!/usr/bin/env python3
"""Validate an obs JSON snapshot (obs::to_json) against the v1 schema.

Stdlib-only, used by CI after running example_observability_tour:

    python3 tools/check_obs_schema.py OBS_snapshot.json

Checks layout (required keys, types), the event vocabulary, journal
bookkeeping invariants (recorded = dropped + events held, non-decreasing
step stamps), and histogram bucket structure. Exits non-zero with a
message per violation.
"""
import json
import sys

SCHEMA_VERSION = 1

# Enum order of obs::EventKind — the first component of the canonical
# per-step sort key (kind, entity, unit, a, b).
EVENT_KINDS = [
    "fault_onset",
    "degraded_vote",
    "degraded_decode",
    "checksum_reject",
    "uncorrectable",
    "relocation",
    "scrub_repair",
    "wrong_read",
    "rehash",
    "cache_invalidate_dead",
    "cache_invalidate_scrub",
    "checkpoint_begin",
    "checkpoint_end",
    "wal_replay",
]
EVENT_KIND_INDEX = {kind: i for i, kind in enumerate(EVENT_KINDS)}

PHASES = {
    "plan_build",
    "serve",
    "engine_schedule",
    "value_phase",
    "decode",
    "encode",
    "scrub",
    "oracle",
}


def fail(errors, msg):
    errors.append(msg)


def check_uint(errors, obj, key, where):
    value = obj.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(errors, f"{where}: '{key}' must be a non-negative integer, "
                     f"got {value!r}")
        return None
    return value


def check_snapshot(doc):
    errors = []
    if not isinstance(doc, dict):
        return ["top level: expected a JSON object"]

    version = doc.get("obs_schema_version")
    if version != SCHEMA_VERSION:
        fail(errors, f"obs_schema_version: expected {SCHEMA_VERSION}, "
                     f"got {version!r}")
    if not isinstance(doc.get("compiled"), bool):
        fail(errors, "'compiled' must be a boolean")
    check_uint(errors, doc, "sample_interval", "top level")
    if "manifest" not in doc:
        fail(errors, "'manifest' key missing (null is fine)")
    elif doc["manifest"] is not None and not isinstance(doc["manifest"],
                                                       dict):
        fail(errors, "'manifest' must be null or an object")

    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(errors, "'counters' must be an object")
    else:
        for name, value in counters.items():
            check_uint(errors, counters, name, "counters")

    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        fail(errors, "'gauges' must be an object")
    else:
        for name, value in gauges.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(errors, f"gauges: '{name}' must be a number")

    histograms = doc.get("histograms")
    if not isinstance(histograms, dict):
        fail(errors, "'histograms' must be an object")
    else:
        for name, hist in histograms.items():
            if not isinstance(hist, dict):
                fail(errors, f"histograms: '{name}' must be an object")
                continue
            count = check_uint(errors, hist, "count", f"histogram '{name}'")
            check_uint(errors, hist, "sum", f"histogram '{name}'")
            buckets = hist.get("buckets")
            if buckets is None:
                continue  # deterministic snapshots may omit buckets
            if not isinstance(buckets, list):
                fail(errors, f"histogram '{name}': 'buckets' must be a list")
                continue
            total = 0
            prev_floor = -1
            for pair in buckets:
                if (not isinstance(pair, list) or len(pair) != 2
                        or not all(isinstance(x, int) for x in pair)):
                    fail(errors, f"histogram '{name}': bucket entries are "
                                 f"[floor, count] pairs, got {pair!r}")
                    continue
                floor, n = pair
                if floor <= prev_floor:
                    fail(errors, f"histogram '{name}': bucket floors must "
                                 f"be strictly increasing")
                prev_floor = floor
                total += n
            if count is not None and total != count:
                fail(errors, f"histogram '{name}': bucket counts sum to "
                             f"{total}, 'count' says {count}")

    phases = doc.get("phases")
    if not isinstance(phases, list):
        fail(errors, "'phases' must be a list")
    else:
        for entry in phases:
            if not isinstance(entry, dict):
                fail(errors, f"phases: entries must be objects, got "
                             f"{entry!r}")
                continue
            name = entry.get("phase")
            if name not in PHASES:
                fail(errors, f"phases: unknown phase {name!r}")
            count = check_uint(errors, entry, "count", f"phase {name!r}")
            if count == 0:
                fail(errors, f"phase {name!r}: zero-count phases are "
                             f"omitted from snapshots")

    journal = doc.get("journal")
    if not isinstance(journal, dict):
        fail(errors, "'journal' must be an object")
        return errors
    capacity = check_uint(errors, journal, "capacity", "journal")
    recorded = check_uint(errors, journal, "recorded", "journal")
    dropped = check_uint(errors, journal, "dropped", "journal")
    events = journal.get("events")
    if not isinstance(events, list):
        fail(errors, "journal: 'events' must be a list")
        return errors
    if capacity is not None and len(events) > capacity:
        fail(errors, f"journal: {len(events)} events exceed capacity "
                     f"{capacity}")
    if recorded is not None and dropped is not None:
        if recorded != dropped + len(events):
            fail(errors, f"journal: recorded ({recorded}) != dropped "
                         f"({dropped}) + events held ({len(events)})")
    # Step stamps are non-decreasing WITHIN a shard's journal; the driver
    # merges per-shard journals by concatenation in shard order, so a
    # step decrease marks a shard boundary (legal). Within one step of
    # one shard, events commit in the canonical (kind, entity, unit, a,
    # b) order — that part of the determinism contract is checkable.
    prev_step = -1
    prev_key = None
    segments = 1
    for i, event in enumerate(events):
        where = f"journal event {i}"
        if not isinstance(event, dict):
            fail(errors, f"{where}: must be an object")
            continue
        kind = event.get("kind")
        if kind not in EVENT_KIND_INDEX:
            fail(errors, f"{where}: unknown kind {kind!r}")
        step = check_uint(errors, event, "step", where)
        for key in ("entity", "unit", "a", "b"):
            check_uint(errors, event, key, where)
        if step is None or kind not in EVENT_KIND_INDEX:
            prev_key = None
            continue
        key = (EVENT_KIND_INDEX[kind], event.get("entity"),
               event.get("unit"), event.get("a"), event.get("b"))
        if step < prev_step:
            segments += 1  # shard boundary: step clock restarts
        elif step == prev_step and prev_key is not None and key < prev_key:
            fail(errors, f"{where}: breaks the canonical per-step sort "
                         f"(kind, entity, unit, a, b) within step {step}")
        prev_step = step
        prev_key = key
    if segments > 1:
        print(f"note: {segments} shard segments in the merged journal")
    return errors


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} <snapshot.json>", file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{argv[1]}: {e}", file=sys.stderr)
        return 1
    errors = check_snapshot(doc)
    if errors:
        for error in errors:
            print(f"{argv[1]}: {error}", file=sys.stderr)
        print(f"{argv[1]}: FAILED ({len(errors)} schema violations)",
              file=sys.stderr)
        return 1
    journal = doc.get("journal", {})
    print(f"{argv[1]}: OK — schema v{doc['obs_schema_version']}, "
          f"{len(doc.get('counters', {}))} counters, "
          f"{len(doc.get('phases', []))} phases, "
          f"{len(journal.get('events', []))} journal events "
          f"({journal.get('dropped', 0)} dropped)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
