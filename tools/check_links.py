#!/usr/bin/env python3
"""Fail on dead RELATIVE links in the documentation tree.

Scans README.md and docs/*.md for markdown links/images. External links
(http/https/mailto) are ignored; every relative target must exist on
disk, resolved against the file containing the link (anchors are
stripped; a bare '#fragment' link is checked against its own file's
headings only for existence of the file, not the heading).

Usage: python3 tools/check_links.py [repo_root]
Exit status: 0 = all relative links resolve, 1 = at least one is dead.
"""
import os
import re
import sys
from pathlib import Path

# [text](target) and ![alt](target); stops at the first ')' not preceded
# by a matching '(' — good enough for the plain targets used here.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def doc_files(root: Path):
    readme = root / "README.md"
    if readme.exists():
        yield readme
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    dead = []
    checked = 0
    for doc in doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue  # same-file anchor
            resolved = (doc.parent / path_part).resolve()
            checked += 1
            if not resolved.exists():
                dead.append(f"{doc.relative_to(root)}: dead link -> {target}")
    for line in dead:
        print(f"ERROR: {line}", file=sys.stderr)
    print(f"checked {checked} relative link(s) in "
          f"{len(list(doc_files(root)))} file(s); {len(dead)} dead")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
