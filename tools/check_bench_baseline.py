#!/usr/bin/env python3
"""Diff a freshly generated BENCH_*.json against its committed baseline.

Stdlib-only, used by the CI bench smoke:

    python3 tools/check_bench_baseline.py BASELINE.json FRESH.json

The committed baselines at the repo root pin the SHAPE of the perf
trajectory, not the numbers: experiment id, schema version, the set of
tables (titles and column headers, order-sensitive), and the manifest
key set must match. Measured values are machine-dependent and are NOT
compared — a perf regression shows up in the trajectory, not as a CI
failure; a silently dropped table or renamed column does fail.

Exits non-zero with one message per violation.
"""
import json
import sys


def load(path, errors):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        errors.append(f"{path}: cannot load: {err}")
        return None


def check(baseline, fresh, errors):
    for key in ("experiment", "schema_version"):
        if baseline.get(key) != fresh.get(key):
            errors.append(
                f"'{key}' mismatch: baseline {baseline.get(key)!r} "
                f"vs fresh {fresh.get(key)!r}")

    base_manifest = baseline.get("manifest")
    fresh_manifest = fresh.get("manifest")
    if not isinstance(base_manifest, dict):
        errors.append("baseline: 'manifest' missing or not an object")
    elif not isinstance(fresh_manifest, dict):
        errors.append("fresh: 'manifest' missing or not an object")
    else:
        missing = sorted(set(base_manifest) - set(fresh_manifest))
        if missing:
            errors.append(f"fresh manifest lost keys: {missing}")

    base_tables = baseline.get("tables")
    fresh_tables = fresh.get("tables")
    if not isinstance(base_tables, list) or not isinstance(fresh_tables,
                                                           list):
        errors.append("'tables' must be a list in both files")
        return
    if len(base_tables) != len(fresh_tables):
        errors.append(f"table count changed: baseline {len(base_tables)} "
                      f"vs fresh {len(fresh_tables)}")
        return
    for i, (base, new) in enumerate(zip(base_tables, fresh_tables)):
        where = f"tables[{i}]"
        base_title = base.get("title", "")
        new_title = new.get("title", "")
        # Titles may embed measured numbers (e.g. a baseline steps/s);
        # compare only the descriptive prefix up to the first digit run
        # that differs... keep it simple: exact match unless either
        # embeds a digit, then compare the non-numeric skeleton.
        if _skeleton(base_title) != _skeleton(new_title):
            errors.append(f"{where}: title changed:\n"
                          f"  baseline: {base_title!r}\n"
                          f"  fresh:    {new_title!r}")
        if base.get("headers") != new.get("headers"):
            errors.append(f"{where}: column headers changed:\n"
                          f"  baseline: {base.get('headers')!r}\n"
                          f"  fresh:    {new.get('headers')!r}")
        if not new.get("rows"):
            errors.append(f"{where}: fresh table has no rows")


def _skeleton(title):
    """The title with digit runs collapsed (titles may embed numbers)."""
    return "".join("#" if c.isdigit() else c for c in str(title))


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    baseline = load(sys.argv[1], errors)
    fresh = load(sys.argv[2], errors)
    if baseline is not None and fresh is not None:
        check(baseline, fresh, errors)
    if errors:
        for err in errors:
            print(f"check_bench_baseline: {err}", file=sys.stderr)
        return 1
    print(f"check_bench_baseline: {sys.argv[2]} matches the shape of "
          f"{sys.argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
