// pramlint fixture: ambient randomness — both the header and the device.
// expect: ban-random, ban-random
#include <random>

namespace pramsim::pram {

unsigned random_probe() {
  std::random_device rd;
  return rd();
}

}  // namespace pramsim::pram
