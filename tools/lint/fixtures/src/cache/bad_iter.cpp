// pramlint fixture: unordered iteration without an ordered-fold
// annotation — both the range-for form and the explicit .begin() form.
// expect: unordered-iter, unordered-iter
#include <cstdint>
#include <unordered_map>

namespace pramsim::cache {

class IterProbe {
 public:
  std::uint64_t fold() const {
    std::uint64_t sum = 0;
    for (const auto& [key, value] : table_) {
      sum += key + value;
    }
    auto it = table_.begin();
    return it == table_.end() ? sum : sum + it->second;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> table_;
};

}  // namespace pramsim::cache
