// pramlint fixture: unordered iteration carrying an ordered-fold
// annotation with its invariant — suppressed at the site, not the file.
// expect: none
#include <cstdint>
#include <unordered_map>

namespace pramsim::cache {

class AnnotatedProbe {
 public:
  std::uint64_t max_count() const {
    std::uint64_t best = 0;
    // pramlint: ordered-fold (max over per-key counts is commutative)
    for (const auto& [key, count] : counts_) {
      (void)key;
      best = best > count ? best : count;
    }
    return best;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

}  // namespace pramsim::cache
