// pramlint fixture: raw chrono outside util::Stopwatch.
// expect: ban-chrono, ban-chrono
#include <chrono>

namespace pramsim::faults {

long long chrono_probe() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace pramsim::faults
