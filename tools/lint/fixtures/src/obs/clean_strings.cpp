// pramlint fixture: banned tokens inside comments, string literals and
// raw strings must never fire — this exercises the tokenizer.
// A mention of std::random_device in a comment is fine, as is a
// commented-out directive:
//   #include <chrono>
// expect: none
#include <cstdint>
#include <string>

namespace pramsim::obs {

/* Block comments too: std::thread, time(nullptr), getenv("X"). */
inline std::string strings_probe() {
  std::string doc = "std::random_device and rand() live in this string";
  doc += "call getenv(\"HOME\") or std::chrono::steady_clock::now()";
  doc += R"raw(
#include <thread>
std::mutex inside a raw string, plus time( and srand( for good measure
)raw";
  const char marker = '"';
  doc.push_back(marker);
  return doc;
}

}  // namespace pramsim::obs
