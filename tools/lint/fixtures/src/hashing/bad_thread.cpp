// pramlint fixture: raw threading primitives outside util::parallel.
// expect: ban-thread, ban-thread
#include <mutex>

namespace pramsim::hashing {

int thread_probe() {
  std::mutex gate;
  gate.lock();
  gate.unlock();
  return 5;
}

}  // namespace pramsim::hashing
