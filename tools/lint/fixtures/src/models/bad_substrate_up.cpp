// pramlint fixture: substrate layers (models/network/memmap) sit below
// the simulation stack and must not include it.
// expect: layer-dag
#include "network/topology.hpp"
#include "pram/machine.hpp"

namespace pramsim::models {

int substrate_up_probe() { return 3; }

}  // namespace pramsim::models
