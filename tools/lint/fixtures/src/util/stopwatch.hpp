// pramlint fixture: the ban-chrono escape hatch — src/util/stopwatch.*
// is the one place raw chrono is allowed, by construction.
// expect: none
#pragma once

#include <chrono>
#include <cstdint>

namespace pramsim::util {

inline std::uint64_t stopwatch_probe() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>((t1 - t0).count());
}

}  // namespace pramsim::util
