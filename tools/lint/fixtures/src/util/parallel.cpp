// pramlint fixture: the ban-thread escape hatch — src/util/parallel.*
// owns the raw primitives that util::Executor wraps.
// expect: none
#include <mutex>
#include <thread>

namespace pramsim::util {

int parallel_probe() {
  std::mutex gate;
  std::thread worker([&gate] {
    gate.lock();
    gate.unlock();
  });
  worker.join();
  return 6;
}

}  // namespace pramsim::util
