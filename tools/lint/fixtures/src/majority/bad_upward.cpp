// pramlint fixture: an organization reaching up the layer DAG.
// expect: layer-dag, layer-dag
#include "core/driver.hpp"
#include "faults/fault_model.hpp"
#include "pram/memory_system.hpp"
#include "util/assert.hpp"

namespace pramsim::majority {

int upward_probe() { return 1; }

}  // namespace pramsim::majority
