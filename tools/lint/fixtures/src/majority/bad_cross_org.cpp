// pramlint fixture: two storage organizations must not see each other —
// they are peers behind pram::MemorySystem.
// expect: org-cross
#include "ida/ida_memory.hpp"
#include "pram/memory_system.hpp"

namespace pramsim::majority {

int cross_org_probe() { return 2; }

}  // namespace pramsim::majority
