// pramlint fixture: iterating an unordered container through an
// accessor that returns a reference to one.
// expect: unordered-iter
#include <cstdint>
#include <unordered_map>

namespace pramsim::ida {

class AccessorProbe {
 public:
  std::uint64_t fold() const {
    std::uint64_t sum = 0;
    for (const auto& [key, value] : shadow()) {
      sum += key + value;
    }
    return sum;
  }

 private:
  const std::unordered_map<std::uint64_t, std::uint64_t>& shadow() const {
    return shadow_store;
  }

  std::unordered_map<std::uint64_t, std::uint64_t> shadow_store;
};

}  // namespace pramsim::ida
