// pramlint fixture: a well-behaved substrate header — util only.
// expect: none
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace pramsim::net {

inline std::uint64_t clean_probe(const std::vector<std::uint64_t>& xs) {
  std::uint64_t sum = 0;
  for (const auto x : xs) {
    sum += x;
  }
  return sum;
}

}  // namespace pramsim::net
