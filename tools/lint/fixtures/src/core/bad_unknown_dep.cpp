// pramlint fixture: an include into a directory that is not a layer at
// all — somebody invented a subsystem without registering it.
// expect: layer-dag
#include "plugins/extension.hpp"

namespace pramsim::core {

int unknown_dep_probe() { return 4; }

}  // namespace pramsim::core
