// pramlint fixture: wall-clock reads and ambient configuration.
// expect: ban-time, ban-env
#include <cstdlib>

namespace pramsim::core {

long time_env_probe() {
  long stamp = static_cast<long>(time(nullptr));
  const char* knob = getenv("PRAMSIM_KNOB");
  return stamp + (knob != nullptr ? 1 : 0);
}

}  // namespace pramsim::core
