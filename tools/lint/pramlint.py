#!/usr/bin/env python3
"""pramlint — project-specific static analysis for pramsim.

Stdlib-only, like every tool in tools/. Mechanically enforces the
contracts the docs state in prose, so the guarantees the repo makes
(bit-identical results at any worker count, deterministic fault
injection from one seed, trace-consistency verifiable after the fact)
are machine-checked on every commit instead of resting on review memory.

Rule catalog (docs/static-analysis.md is the narrative version):

  Layering (include graph, src/ only; bench/examples/tests are free)
    layer-dag       an #include edge not allowed by the layer DAG from
                    docs/architecture.md (encoded in LAYER_DEPS below)
    org-cross       an include between two storage organizations
                    (majority / ida / hashing / sortnet) — organizations
                    talk through pram::MemorySystem, never directly

  Determinism bans (src/ only; tokenizer-aware, so bans inside strings
  and comments never fire)
    ban-random      std::random_device / rand() / srand() /
                    random_shuffle — all randomness flows through the
                    seeded util::Rng
    ban-time        time() / clock() / gettimeofday / localtime —
                    wall-clock reads outside util::Stopwatch
    ban-env         getenv / setenv / putenv — configuration is explicit
                    (specs and options structs), never ambient
    ban-chrono      std::chrono / <chrono> outside src/util/stopwatch.*
                    (bench/ is free: benches are wall-clock by design)
    ban-thread      std::thread / jthread / async / mutex /
                    condition_variable / <future> outside
                    src/util/parallel.* — threading goes through
                    util::Executor / util::parallel_for (the documented
                    driver double-buffer site is allowlisted)
    unordered-iter  range-for / .begin() iteration over a
                    std::unordered_{map,set} in src/: iteration order is
                    implementation-defined, so any fold over it that
                    reaches telemetry, journal, or snapshot bytes breaks
                    the cross-platform determinism contract. Declaring
                    and probing unordered containers is fine; iterating
                    one needs a `// pramlint: ordered-fold (<invariant>)`
                    annotation on the loop (same line or the two lines
                    above) stating why order cannot be observed.

  Cross-artifact consistency (whole-tree runs only)
    xa-obs-events   obs::EventKind (src/obs/journal.hpp) vs
                    journal.cpp to_string vs EVENT_KINDS in
                    tools/check_obs_schema.py vs docs/observability.md
    xa-phase-vocab  obs::Phase (src/obs/phase.hpp) vs phase.cpp
                    to_string vs PHASES in tools/check_obs_schema.py vs
                    docs/observability.md
    xa-scheme-table core::SchemeKind (src/core/schemes.hpp) vs the
                    README scheme table vs the to_string + make_scheme
                    switches in src/core/schemes.cpp
    xa-bench-schema bench::kBenchSchemaVersion (bench/bench_common.hpp)
                    vs the committed BENCH_*.json baselines

  Allowlist hygiene
    allowlist       malformed tools/lint/allow.txt entries (reason is
                    mandatory) and stale entries that suppress nothing

Suppression has exactly two mechanisms, both carrying a written reason:
  * site-level: `// pramlint: ordered-fold (<why order is safe>)` for
    unordered-iter findings only;
  * file-level: a `<rule-id> <path> <reason>` line in
    tools/lint/allow.txt for everything else.

Usage:
    python3 tools/lint/pramlint.py [repo_root]   # whole-tree run
    python3 tools/lint/pramlint.py --self-test   # fixture suite
    python3 tools/lint/pramlint.py --list-rules

Output is one `path:line: [rule] message` per finding (plus a fix hint),
exit status 1 when any unsuppressed finding remains, 0 otherwise.
"""
import bisect
import json
import os
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# The layer DAG — the machine-checked encoding of the diagram in
# docs/architecture.md ("Layers, bottom-up") and of the CMake
# target_link_libraries edges. A subsystem may include its own headers,
# plus exactly the subsystems listed here. Keep the three sources (this
# table, docs/architecture.md, CMakeLists.txt) in sync; this table is the
# one that bites.
# --------------------------------------------------------------------------

LAYER_DEPS = {
    "util": set(),
    "obs": {"util"},
    "memmap": {"util"},
    "network": {"util"},
    "sortnet": {"util"},
    "models": {"util", "network"},
    "pram": {"util", "obs"},
    "majority": {"util", "obs", "memmap", "pram"},
    "ida": {"util", "obs", "memmap", "pram"},
    "hashing": {"util", "obs", "pram"},
    "faults": {"util", "obs", "pram"},
    "cache": {"util", "obs", "memmap", "pram"},
    "durability": {"util", "obs", "pram"},
    "core": {"util", "obs", "memmap", "network", "sortnet", "models",
             "pram", "majority", "ida", "hashing", "faults", "cache",
             "durability"},
}

# Storage organizations: peers behind pram::MemorySystem. An include
# between two of them is a contract violation even where a rank-based
# reading of the DAG might allow it.
ORGANIZATIONS = {"majority", "ida", "hashing", "sortnet"}

RULES = {
    "layer-dag": "include edge not allowed by the layer DAG "
                 "(docs/architecture.md)",
    "org-cross": "include between storage organizations (peers behind "
                 "pram::MemorySystem)",
    "ban-random": "nondeterministic randomness source (use the seeded "
                  "util::Rng)",
    "ban-time": "wall-clock read outside util::Stopwatch",
    "ban-env": "ambient environment read (configuration must be "
               "explicit)",
    "ban-chrono": "std::chrono outside src/util/stopwatch.*",
    "ban-thread": "raw threading primitive outside src/util/parallel.*",
    "unordered-iter": "iteration over an unordered container "
                      "(implementation-defined order)",
    "xa-obs-events": "obs::EventKind vocabulary drift across artifacts",
    "xa-phase-vocab": "obs::Phase vocabulary drift across artifacts",
    "xa-scheme-table": "SchemeKind drift across enum / README / factory",
    "xa-bench-schema": "bench schema version drift vs committed "
                       "baselines",
    "allowlist": "allowlist hygiene (reason mandatory, no stale "
                 "entries)",
}

HINTS = {
    "layer-dag": "depend downward only; if the edge is genuinely new, "
                 "update docs/architecture.md, CMakeLists.txt and "
                 "LAYER_DEPS in tools/lint/pramlint.py together",
    "org-cross": "talk through pram::MemorySystem / pram vocabulary "
                 "types instead",
    "ban-random": "derive a util::Rng / util::SplitMix64 stream from "
                  "the run seed",
    "ban-time": "route timing through util::Stopwatch; benches own "
                "their own clocks under bench/",
    "ban-env": "thread the setting through the owning options struct "
               "(SchemeSpec, StressOptions, ...)",
    "ban-chrono": "use util::Stopwatch (src/util/stopwatch.hpp); raw "
                  "chrono is allowed only inside it and under bench/",
    "ban-thread": "use util::parallel_for / util::Executor; a genuinely "
                  "new threading site needs an allow.txt entry with a "
                  "written rationale",
    "unordered-iter": "sort the keys first (snapshot/telemetry order), "
                      "or annotate the loop with "
                      "`// pramlint: ordered-fold (<invariant>)` if the "
                      "fold is provably order-free",
    "xa-obs-events": "update src/obs/journal.{hpp,cpp}, "
                     "tools/check_obs_schema.py EVENT_KINDS and "
                     "docs/observability.md together",
    "xa-phase-vocab": "update src/obs/phase.{hpp,cpp}, "
                      "tools/check_obs_schema.py PHASES and "
                      "docs/observability.md together",
    "xa-scheme-table": "update src/core/schemes.hpp, the README scheme "
                       "table and both switches in src/core/schemes.cpp "
                       "together",
    "xa-bench-schema": "bump bench::kBenchSchemaVersion and regenerate "
                       "every committed BENCH_*.json in the same PR",
    "allowlist": "format: `<rule-id> <path> <reason>`; delete entries "
                 "that no longer suppress anything",
}

ANNOTATION = "pramlint: ordered-fold"

UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path      # repo-relative, posix separators
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
                f"    hint: {HINTS[self.rule]}")


# --------------------------------------------------------------------------
# Tokenizer: strip comments and string/char literals (contents replaced
# with spaces, newlines kept) so positions and line numbers survive.
# Handles //, /* */, "..." with escapes, '...', and raw strings
# R"delim( ... )delim" with any encoding prefix (u8R, LR, uR, UR).
# --------------------------------------------------------------------------

class SourceView:
    def __init__(self, text):
        self.text = text
        self.code, self.comments = _strip(text)
        self._line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def line_of(self, offset):
        return bisect.bisect_right(self._line_starts, offset)

    def comment_on(self, line):
        """Concatenated comment text appearing on `line` (1-based)."""
        return self.comments.get(line, "")


_RAW_PREFIX_RE = re.compile(r'(?:u8|[uUL])?R$')


def _strip(text):
    out = []
    comments = {}
    i, n = 0, len(text)
    line = 1

    def blank(upto):
        """Copy text[i:upto] as spaces, preserving newlines."""
        nonlocal i, line
        for j in range(i, upto):
            if text[j] == "\n":
                out.append("\n")
                line += 1
            else:
                out.append(" ")
        i = upto

    def note_comment(start, end):
        for ln, chunk in _split_lines(text, start, end):
            comments[ln] = comments.get(ln, "") + chunk

    def _split_lines(src, start, end):
        ln = line
        seg_start = start
        for j in range(start, end):
            if src[j] == "\n":
                yield ln, src[seg_start:j]
                ln += 1
                seg_start = j + 1
        yield ln, src[seg_start:end]

    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            start = i
            j = i + 2
            while j < n and text[j] != "\n":
                # A line comment continues past a backslash-newline.
                if text[j] == "\\" and j + 1 < n and text[j + 1] == "\n":
                    j += 2
                    continue
                j += 1
            note_comment(start, j)
            blank(j)
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            start = i
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            note_comment(start, j)
            blank(j)
        elif ch == '"':
            # Raw string? Look back over the identifier touching the quote.
            is_raw = False
            if i > 0:
                k = i
                while k > 0 and (text[k - 1].isalnum() or text[k - 1] == "_"):
                    k -= 1
                is_raw = bool(_RAW_PREFIX_RE.search(text[k:i]))
            if is_raw:
                dend = text.find("(", i + 1)
                if dend < 0:
                    blank(n)
                    continue
                delim = text[i + 1:dend]
                closer = ")" + delim + '"'
                j = text.find(closer, dend + 1)
                j = n if j < 0 else j + len(closer)
                out.append('"')
                i += 1
                blank(j)
            else:
                out.append('"')
                j = i + 1
                while j < n and text[j] != '"':
                    if text[j] == "\\":
                        j += 1
                    j += 1
                j = min(j + 1, n)
                i += 1
                blank(j)
        elif ch == "'":
            out.append("'")
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            i += 1
            blank(j)
        else:
            out.append(ch)
            if ch == "\n":
                line += 1
            i += 1
    return "".join(out), comments


# --------------------------------------------------------------------------
# Per-file checks
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]*("([^"]+)"|<([^>]+)>)',
                        re.MULTILINE)

BAN_PATTERNS = [
    ("ban-random", re.compile(r"std\s*::\s*random_device\b"),
     "std::random_device"),
    ("ban-random", re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    ("ban-random", re.compile(r"\brandom_shuffle\b"), "random_shuffle"),
    ("ban-time", re.compile(r"(?<![\w:.])(?:std\s*::\s*)?time\s*\("),
     "time()"),
    ("ban-time", re.compile(r"(?<![\w:.])(?:std\s*::\s*)?clock\s*\("),
     "clock()"),
    ("ban-time", re.compile(r"\b(?:gettimeofday|localtime|gmtime|strftime)"
                            r"\b"), "C time API"),
    ("ban-env", re.compile(r"\b(?:getenv|setenv|putenv|secure_getenv)\b"),
     "environment access"),
    ("ban-chrono", re.compile(r"std\s*::\s*chrono\b"), "std::chrono"),
    ("ban-thread", re.compile(r"std\s*::\s*(?:jthread|thread|async|mutex|"
                              r"recursive_mutex|shared_mutex|timed_mutex|"
                              r"condition_variable(?:_any)?|barrier|latch|"
                              r"counting_semaphore|binary_semaphore)\b"),
     "raw threading primitive"),
]

BAN_INCLUDES = {
    "chrono": "ban-chrono",
    "thread": "ban-thread",
    "mutex": "ban-thread",
    "shared_mutex": "ban-thread",
    "condition_variable": "ban-thread",
    "future": "ban-thread",
    "random": "ban-random",
    "ctime": "ban-time",
    "time.h": "ban-time",
    "cstdlib": None,  # fine by itself; rand()/getenv() calls are caught
}

# Files exempt from a ban by construction (the rule's own escape hatch,
# as opposed to allow.txt which is for everything else).
BAN_EXEMPT = {
    "ban-chrono": re.compile(r"^src/util/stopwatch\.(hpp|cpp)$"),
    "ban-thread": re.compile(r"^src/util/parallel\.(hpp|cpp)$"),
}


def subsystem_of(relpath):
    parts = Path(relpath).parts
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def check_includes(relpath, view, findings):
    sub = subsystem_of(relpath)
    # Include paths are string literals, which the sanitized view blanks;
    # scan the raw text and use the sanitized view only to drop
    # directives living inside comments or string literals.
    for m in INCLUDE_RE.finditer(view.text):
        hash_off = view.text.index("#", m.start())
        if view.code[hash_off] != "#":
            continue  # commented-out or quoted include
        line = view.line_of(m.start())
        quoted, angled = m.group(2), m.group(3)
        if angled is not None:
            rule = BAN_INCLUDES.get(angled)
            if rule and sub is not None:
                exempt = BAN_EXEMPT.get(rule)
                if exempt and exempt.match(relpath):
                    continue
                findings.append(Finding(
                    relpath, line, rule,
                    f"#include <{angled}> — {RULES[rule]}"))
            continue
        if sub is None:
            continue
        target = quoted.split("/", 1)[0]
        if target == sub:
            continue
        if target not in LAYER_DEPS:
            findings.append(Finding(
                relpath, line, "layer-dag",
                f'#include "{quoted}": unknown subsystem "{target}" (not '
                f"a layer in docs/architecture.md)"))
            continue
        if target in LAYER_DEPS[sub]:
            continue
        if sub in ORGANIZATIONS and target in ORGANIZATIONS:
            findings.append(Finding(
                relpath, line, "org-cross",
                f'"{sub}" includes "{quoted}": organizations are peers '
                f"behind pram::MemorySystem and must not see each other"))
        else:
            findings.append(Finding(
                relpath, line, "layer-dag",
                f'"{sub}" may not include "{quoted}" (allowed: '
                f'{", ".join(sorted(LAYER_DEPS[sub])) or "nothing"})'))


def check_bans(relpath, view, findings):
    if subsystem_of(relpath) is None:
        return
    for rule, pattern, what in BAN_PATTERNS:
        exempt = BAN_EXEMPT.get(rule)
        if exempt and exempt.match(relpath):
            continue
        for m in pattern.finditer(view.code):
            findings.append(Finding(
                relpath, view.line_of(m.start()), rule,
                f"{what} — {RULES[rule]}"))


# ---- unordered-container iteration ---------------------------------------

def unordered_names(view):
    """(variables, accessors) declared with an unordered type in this
    translation unit: variable/member names, and names of functions whose
    declared return type is (a reference to) an unordered container."""
    code = view.code
    variables, accessors = set(), set()
    for m in UNORDERED_RE.finditer(code):
        i = m.end()
        while i < len(code) and code[i].isspace():
            i += 1
        if i >= len(code) or code[i] != "<":
            continue
        depth = 1
        i += 1
        while i < len(code) and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        # Skip cv/ref decoration between the type and the declared name.
        while True:
            while i < len(code) and (code[i].isspace() or code[i] in "&*"):
                i += 1
            word = IDENT_RE.match(code, i)
            if word and word.group(0) == "const":
                i = word.end()
                continue
            break
        if not word:
            continue
        name = word.group(0)
        j = word.end()
        while j < len(code) and code[j].isspace():
            j += 1
        if j < len(code) and code[j] == "(":
            accessors.add(name)
        elif j < len(code) and code[j] in ";=,{)":
            variables.add(name)
    return variables, accessors


def _top_level_colon(s):
    depth = 0
    i = 0
    while i < len(s):
        c = s[i]
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        elif c == ":" and depth == 0:
            if i + 1 < len(s) and s[i + 1] == ":":
                i += 2
                continue
            if i > 0 and s[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


RANGE_TARGET_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(\s*\)\s*$")
RANGE_TARGET_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def check_unordered_iteration(relpath, view, dir_vars, dir_accessors,
                              findings):
    if subsystem_of(relpath) is None:
        return
    local_vars, local_accessors = unordered_names(view)
    tracked_vars = local_vars | dir_vars
    tracked_calls = local_accessors | dir_accessors
    code = view.code

    def annotated(line):
        return any(ANNOTATION in view.comment_on(ln)
                   for ln in range(max(1, line - 2), line + 1))

    for m in re.finditer(r"\bfor\s*\(", code):
        open_paren = m.end() - 1
        depth = 0
        j = open_paren
        while j < len(code):
            if code[j] == "(":
                depth += 1
            elif code[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        head = code[open_paren + 1:j]
        colon = _top_level_colon(head)
        if colon < 0:
            continue
        rhs = head[colon + 1:].strip()
        call = RANGE_TARGET_CALL_RE.search(rhs)
        name = None
        via = None
        if call and call.group(1) in tracked_calls:
            name, via = call.group(1), "accessor"
        elif not call:
            plain = RANGE_TARGET_NAME_RE.search(rhs)
            if plain and plain.group(1) in tracked_vars:
                name, via = plain.group(1), "container"
        if name is None:
            continue
        line = view.line_of(m.start())
        if annotated(line):
            continue
        findings.append(Finding(
            relpath, line, "unordered-iter",
            f"range-for over unordered {via} '{name}': iteration order "
            f"is implementation-defined and this fold is not annotated"))

    for m in re.finditer(r"([A-Za-z_]\w*)\s*\.\s*begin\s*\(", code):
        if m.group(1) not in tracked_vars:
            continue
        line = view.line_of(m.start())
        if annotated(line):
            continue
        findings.append(Finding(
            relpath, line, "unordered-iter",
            f".begin() on unordered container '{m.group(1)}' without an "
            f"ordered-fold annotation"))


# --------------------------------------------------------------------------
# Cross-artifact consistency
# --------------------------------------------------------------------------

def _enum_body(code, enum_name):
    m = re.search(r"enum\s+class\s+" + enum_name + r"\b[^{]*\{", code)
    if not m:
        return None, 0
    start = m.end()
    end = code.find("};", start)
    return code[start:end if end >= 0 else len(code)], start


def _enum_entries(view, enum_name):
    body, start = _enum_body(view.code, enum_name)
    if body is None:
        return []
    entries = []
    for m in re.finditer(r"\b(k[A-Z]\w*)\b\s*(?:=\s*\w+\s*)?(?=,|\})", body):
        entries.append((m.group(1), view.line_of(start + m.start())))
    return entries


def snake(entry):
    """kCacheInvalidateDead -> cache_invalidate_dead."""
    body = entry[1:] if entry.startswith("k") else entry
    return re.sub(r"(?<!^)(?=[A-Z])", "_", body).lower()


def _read_view(root, rel):
    path = root / rel
    if not path.exists():
        return None
    return SourceView(path.read_text(encoding="utf-8"))


def _vocab_check(root, rule, findings, enum_rel, enum_name, count_const,
                 impl_rel, schema_list_re, doc_rel):
    """Shared engine for xa-obs-events / xa-phase-vocab: enum vs
    to_string vs check_obs_schema.py vocabulary vs docs list."""
    enum_view = _read_view(root, enum_rel)
    if enum_view is None:
        findings.append(Finding(enum_rel, 1, rule, f"{enum_rel} missing"))
        return
    entries = _enum_entries(enum_view, enum_name)
    if not entries:
        findings.append(Finding(enum_rel, 1, rule,
                                f"could not parse enum {enum_name}"))
        return
    names = [snake(e) for e, _ in entries]

    cm = re.search(count_const + r"\s*=\s*(\d+)", enum_view.code)
    if cm and int(cm.group(1)) != len(entries):
        findings.append(Finding(
            enum_rel, enum_view.line_of(cm.start()), rule,
            f"{count_const} = {cm.group(1)} but {enum_name} has "
            f"{len(entries)} entries"))

    impl_view = _read_view(root, impl_rel)
    if impl_view is not None:
        # Scan the raw text: the string literals to_string returns are
        # blanked in the sanitized .code view.
        returned = re.findall(
            enum_name + r"::(k\w+)\s*:\s*return\s*"
            r'"([a-z0-9_]+)"', impl_view.text)
        for entry_name, literal in returned:
            if snake(entry_name) != literal:
                findings.append(Finding(
                    impl_rel, 1, rule,
                    f"to_string({enum_name}::{entry_name}) returns "
                    f'"{literal}", expected "{snake(entry_name)}"'))
        covered = {e for e, _ in returned}
        missing = [e for e, _ in entries if e not in covered]
        if missing:
            findings.append(Finding(
                impl_rel, 1, rule,
                f"to_string switch misses {enum_name} entries: "
                f"{', '.join(missing)}"))

    schema_rel = "tools/check_obs_schema.py"
    schema_path = root / schema_rel
    if schema_path.exists():
        text = schema_path.read_text(encoding="utf-8")
        m = schema_list_re.search(text)
        if not m:
            findings.append(Finding(schema_rel, 1, rule,
                                    "vocabulary list not found"))
        else:
            listed = re.findall(r'"([a-z0-9_]+)"', m.group(1))
            line = text[:m.start()].count("\n") + 1
            if rule == "xa-obs-events":
                if listed != names:
                    findings.append(Finding(
                        schema_rel, line, rule,
                        f"EVENT_KINDS {listed} != enum order {names} "
                        f"(order matters: it is the canonical sort key)"))
            elif set(listed) != set(names):
                findings.append(Finding(
                    schema_rel, line, rule,
                    f"vocabulary {sorted(listed)} != enum "
                    f"{sorted(names)}"))

    doc_path = root / doc_rel
    if doc_path.exists():
        doc = doc_path.read_text(encoding="utf-8")
        documented = set(re.findall(r"`([a-z0-9_]+)`", doc))
        missing = [n for n in names if n not in documented]
        if missing:
            findings.append(Finding(
                doc_rel, 1, rule,
                f"{doc_rel} does not document: {', '.join(missing)}"))
    else:
        findings.append(Finding(doc_rel, 1, rule, f"{doc_rel} missing"))


def check_scheme_table(root, findings):
    rule = "xa-scheme-table"
    header_rel = "src/core/schemes.hpp"
    view = _read_view(root, header_rel)
    if view is None:
        findings.append(Finding(header_rel, 1, rule, "schemes.hpp missing"))
        return
    entries = [e for e, _ in _enum_entries(view, "SchemeKind")]
    if not entries:
        findings.append(Finding(header_rel, 1, rule,
                                "could not parse enum SchemeKind"))
        return

    readme_rel = "README.md"
    readme = (root / readme_rel)
    if readme.exists():
        text = readme.read_text(encoding="utf-8")
        table = re.findall(r"^\|\s*`(k\w+)`", text, re.MULTILINE)
        if table != entries:
            findings.append(Finding(
                readme_rel, 1, rule,
                f"README scheme table {table} != SchemeKind enum "
                f"{entries} (set and order must match)"))
    else:
        findings.append(Finding(readme_rel, 1, rule, "README.md missing"))

    impl_rel = "src/core/schemes.cpp"
    impl = _read_view(root, impl_rel)
    if impl is None:
        findings.append(Finding(impl_rel, 1, rule, "schemes.cpp missing"))
        return
    cases = re.findall(r"case\s+SchemeKind::(k\w+)", impl.code)
    for entry in entries:
        hits = cases.count(entry)
        if hits < 2:
            findings.append(Finding(
                impl_rel, 1, rule,
                f"SchemeKind::{entry} handled in {hits} switch case(s) in "
                f"schemes.cpp — every kind needs both a to_string case "
                f"and a make_scheme case"))
    unknown = sorted(set(cases) - set(entries))
    if unknown:
        findings.append(Finding(
            impl_rel, 1, rule,
            f"schemes.cpp switches on unknown kinds: {', '.join(unknown)}"))


def check_bench_schema(root, findings):
    rule = "xa-bench-schema"
    common_rel = "bench/bench_common.hpp"
    common = root / common_rel
    if not common.exists():
        findings.append(Finding(common_rel, 1, rule,
                                "bench_common.hpp missing"))
        return
    text = common.read_text(encoding="utf-8")
    m = re.search(r"kBenchSchemaVersion\s*=\s*(\d+)", text)
    if not m:
        findings.append(Finding(common_rel, 1, rule,
                                "kBenchSchemaVersion not found"))
        return
    version = int(m.group(1))
    line = text[:m.start()].count("\n") + 1
    baselines = sorted(root.glob("BENCH_*.json"))
    if not baselines:
        findings.append(Finding(common_rel, line, rule,
                                "no committed BENCH_*.json baselines found"))
    for baseline in baselines:
        rel = baseline.name
        try:
            doc = json.loads(baseline.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as err:
            findings.append(Finding(rel, 1, rule, f"cannot parse: {err}"))
            continue
        got = doc.get("schema_version")
        if got != version:
            findings.append(Finding(
                rel, 1, rule,
                f"schema_version {got!r} != bench::kBenchSchemaVersion "
                f"{version}"))


def cross_artifact_checks(root, findings):
    _vocab_check(
        root, "xa-obs-events", findings,
        enum_rel="src/obs/journal.hpp", enum_name="EventKind",
        count_const="kEventKindCount", impl_rel="src/obs/journal.cpp",
        schema_list_re=re.compile(r"EVENT_KINDS\s*=\s*\[(.*?)\]", re.DOTALL),
        doc_rel="docs/observability.md")
    _vocab_check(
        root, "xa-phase-vocab", findings,
        enum_rel="src/obs/phase.hpp", enum_name="Phase",
        count_const="kPhaseCount", impl_rel="src/obs/phase.cpp",
        schema_list_re=re.compile(r"PHASES\s*=\s*\{(.*?)\}", re.DOTALL),
        doc_rel="docs/observability.md")
    check_scheme_table(root, findings)
    check_bench_schema(root, findings)


# --------------------------------------------------------------------------
# Allowlist
# --------------------------------------------------------------------------

class AllowEntry:
    __slots__ = ("rule", "path", "reason", "line", "used")

    def __init__(self, rule, path, reason, line):
        self.rule = rule
        self.path = path
        self.reason = reason
        self.line = line
        self.used = False


def load_allowlist(root, findings):
    rel = "tools/lint/allow.txt"
    path = root / rel
    entries = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split(None, 2)
        if len(parts) < 3:
            findings.append(Finding(
                rel, lineno, "allowlist",
                f"malformed entry {stripped!r}: need "
                f"`<rule-id> <path> <reason>` — the reason is mandatory"))
            continue
        rule, target, reason = parts
        if rule not in RULES:
            findings.append(Finding(
                rel, lineno, "allowlist",
                f"unknown rule id {rule!r} (see --list-rules)"))
            continue
        if len(reason.strip()) < 10:
            findings.append(Finding(
                rel, lineno, "allowlist",
                f"reason for ({rule}, {target}) is too thin "
                f"({reason.strip()!r}) — state WHY the violation is safe"))
            continue
        entries.append(AllowEntry(rule, target, reason, lineno))
    return entries


def apply_allowlist(findings, entries):
    kept = []
    suppressed = 0
    for finding in findings:
        match = next((e for e in entries
                      if e.rule == finding.rule and e.path == finding.path),
                     None)
        if match is not None:
            match.used = True
            suppressed += 1
        else:
            kept.append(finding)
    for entry in entries:
        if not entry.used:
            kept.append(Finding(
                "tools/lint/allow.txt", entry.line, "allowlist",
                f"stale entry ({entry.rule}, {entry.path}): it suppresses "
                f"nothing — delete it"))
    return kept, suppressed


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------

SOURCE_EXTS = {".hpp", ".cpp", ".h", ".cc"}


def scan_tree(root):
    findings = []
    src = root / "src"
    files = sorted(p for p in src.rglob("*")
                   if p.suffix in SOURCE_EXTS) if src.is_dir() else []
    # Directory-scope name sets: members (trailing underscore) and
    # accessors are visible to every file in the same subsystem (a .cpp
    # iterating a member declared in its header).
    dir_members, dir_accessors = {}, {}
    views = {}
    for path in files:
        rel = path.relative_to(root).as_posix()
        view = SourceView(path.read_text(encoding="utf-8"))
        views[rel] = view
        sub = subsystem_of(rel)
        variables, accessors = unordered_names(view)
        members = {v for v in variables if v.endswith("_")}
        dir_members.setdefault(sub, set()).update(members)
        dir_accessors.setdefault(sub, set()).update(accessors)
    for path in files:
        rel = path.relative_to(root).as_posix()
        view = views[rel]
        sub = subsystem_of(rel)
        check_includes(rel, view, findings)
        check_bans(rel, view, findings)
        check_unordered_iteration(
            rel, view, dir_members.get(sub, set()),
            dir_accessors.get(sub, set()), findings)
    cross_artifact_checks(root, findings)
    return findings, len(files)


def run_tree(root):
    findings, n_files = scan_tree(root)
    allow_findings = []
    entries = load_allowlist(root, allow_findings)
    findings, suppressed = apply_allowlist(findings, entries)
    findings.extend(allow_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding.render(), file=sys.stderr)
    if findings:
        print(f"pramlint: FAILED — {len(findings)} finding(s) across "
              f"{n_files} src files ({suppressed} allowlisted)",
              file=sys.stderr)
        return 1
    print(f"pramlint: OK — {n_files} src files, {len(RULES)} rules, "
          f"{suppressed} allowlisted finding(s), cross-artifact "
          f"vocabularies in sync")
    return 0


EXPECT_RE = re.compile(r"//\s*expect:\s*(.+)$", re.MULTILINE)


def run_self_test(fixtures_root):
    """Each fixture under fixtures/src/<layer>/ declares its expected
    findings in `// expect: rule-id[, rule-id...]` header lines (or
    `// expect: none`). The fixture tree mirrors src/ so path-based
    rules (layer DAG, exemptions) exercise the real code paths."""
    files = sorted(p for p in (fixtures_root / "src").rglob("*")
                   if p.suffix in SOURCE_EXTS)
    if not files:
        print(f"pramlint --self-test: no fixtures under {fixtures_root}",
              file=sys.stderr)
        return 1
    # Build directory scopes over the fixture tree, same as a real run.
    dir_members, dir_accessors, views = {}, {}, {}
    for path in files:
        rel = path.relative_to(fixtures_root).as_posix()
        view = SourceView(path.read_text(encoding="utf-8"))
        views[rel] = view
        sub = subsystem_of(rel)
        variables, accessors = unordered_names(view)
        dir_members.setdefault(sub, set()).update(
            {v for v in variables if v.endswith("_")})
        dir_accessors.setdefault(sub, set()).update(accessors)
    failures = 0
    for path in files:
        rel = path.relative_to(fixtures_root).as_posix()
        view = views[rel]
        expected = []
        for m in EXPECT_RE.finditer(path.read_text(encoding="utf-8")):
            spec = m.group(1).strip()
            if spec != "none":
                expected.extend(s.strip() for s in spec.split(","))
        unknown = [r for r in expected if r not in RULES]
        if unknown:
            print(f"FAIL {rel}: expectation names unknown rule(s) "
                  f"{unknown}", file=sys.stderr)
            failures += 1
            continue
        findings = []
        sub = subsystem_of(rel)
        check_includes(rel, view, findings)
        check_bans(rel, view, findings)
        check_unordered_iteration(
            rel, view, dir_members.get(sub, set()),
            dir_accessors.get(sub, set()), findings)
        got = sorted(f.rule for f in findings)
        if got != sorted(expected):
            print(f"FAIL {rel}: expected {sorted(expected)}, got {got}",
                  file=sys.stderr)
            for finding in findings:
                print(f"  {finding.render()}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {rel}: {len(expected)} expected finding(s)")
    total = len(files)
    if failures:
        print(f"pramlint --self-test: FAILED {failures}/{total} fixtures",
              file=sys.stderr)
        return 1
    print(f"pramlint --self-test: OK — {total} fixtures")
    return 0


def main(argv):
    here = Path(os.path.dirname(os.path.abspath(__file__)))
    if "--list-rules" in argv:
        for rule in sorted(RULES):
            print(f"{rule:16s} {RULES[rule]}")
        return 0
    if "--self-test" in argv:
        return run_self_test(here / "fixtures")
    root = Path(argv[1]) if len(argv) > 1 else here.parent.parent
    if not (root / "src").is_dir():
        print(f"pramlint: {root} has no src/ directory", file=sys.stderr)
        return 2
    return run_tree(root.resolve())


if __name__ == "__main__":
    sys.exit(main(sys.argv))
