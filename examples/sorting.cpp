// Odd-even transposition sort, end to end, comparing the constant-
// redundancy HP machine with the log-redundancy LPP baseline on the same
// input. Both must sort correctly; the interesting column is the cost.
//
// Expected output: the sorted sequence (verified against std::sort),
// then one row per machine with its redundancy r, simulated time, and
// redundancy-weighted cost — the HP machine wins the weighted column,
// which is the paper's headline trade.
//
// Build & run:  ./build/example_sorting
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/schemes.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace pramsim;
  const std::uint32_t n = 32;

  util::Rng rng(77);
  std::vector<pram::Word> input(n);
  for (auto& v : input) {
    v = static_cast<pram::Word>(rng.below(1000));
  }
  std::vector<pram::Word> expected = input;
  std::sort(expected.begin(), expected.end());

  util::Table table(
      {"machine", "r", "M", "steps", "sim time", "slowdown", "sorted"});
  table.set_title("odd_even_sort(32): constant vs logarithmic redundancy");

  for (const auto kind :
       {core::SchemeKind::kHpMot, core::SchemeKind::kLppMot}) {
    auto prog = pram::programs::odd_even_sort(n);
    pram::MachineConfig cfg{.n_processors = n,
                            .m_shared_cells = prog.m_required,
                            .policy = pram::ConflictPolicy::kErew};
    core::SchemeSpec spec{.kind = kind,
                          .n = n,
                          .seed = 4,
                          .min_vars = prog.m_required};
    const auto inst = core::make_scheme(spec);
    pram::Machine machine(cfg, std::move(prog.program),
                          core::make_memory(spec));
    for (std::uint32_t i = 0; i < n; ++i) {
      machine.poke_shared(VarId(i), input[i]);
    }
    const auto run = machine.run(4'000'000);
    bool sorted = run.completed();
    for (std::uint32_t i = 0; i < n && sorted; ++i) {
      sorted = machine.shared(VarId(i)) == expected[i];
    }
    table.add_row({std::string(core::to_string(kind)),
                   static_cast<std::int64_t>(inst.r),
                   static_cast<std::int64_t>(inst.n_modules),
                   static_cast<std::int64_t>(run.steps),
                   static_cast<std::int64_t>(run.mem_time),
                   static_cast<double>(run.mem_time) /
                       static_cast<double>(std::max<std::uint64_t>(run.steps, 1)),
                   std::string(sorted ? "yes" : "NO")});
    if (!sorted) {
      std::fprintf(stderr, "sort failed on %s\n", core::to_string(kind));
      return 1;
    }
  }
  table.print(1);
  std::printf(
      "\nHP achieves the sort with %u copies/variable; LPP needs a\n"
      "logarithmically growing map for the same job.\n",
      core::make_scheme({.kind = core::SchemeKind::kHpMot, .n = n}).r);
  return 0;
}
