// Matrix-vector product on the simulated machine — the 2DMOT's original
// workload (Nath, Maheshwari & Bhatt 1983 proposed "orthogonal trees" for
// exactly this, as the paper recounts).
//
// Demonstrates a CREW P-RAM program end to end: y = A*x with one
// processor per row runs on the Theorem 3 machine; concurrent reads of
// x[j] are combined before the protocol runs, so the constant-redundancy
// scheme serves them once.
//
// Expected output: the computed y vector side by side with the directly
// evaluated product (always equal), plus the simulated step count and
// per-step cost the machine charged for it.
//
// Build & run:  ./build/example_matrix_vector
#include <cstdio>
#include <vector>

#include "core/schemes.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"

int main() {
  using namespace pramsim;
  const std::uint32_t N = 16;

  auto prog = pram::programs::matvec(N);
  pram::MachineConfig cfg{.n_processors = N,
                          .m_shared_cells = prog.m_required,
                          .policy = pram::ConflictPolicy::kCrew};
  core::SchemeSpec spec{.kind = core::SchemeKind::kHpMot,
                        .n = N,
                        .seed = 11,
                        .min_vars = prog.m_required};
  pram::Machine machine(cfg, std::move(prog.program),
                        core::make_memory(spec));

  // Fill A (tridiagonal-ish) and x.
  util::Rng rng(5);
  std::vector<std::vector<pram::Word>> A(N, std::vector<pram::Word>(N, 0));
  std::vector<pram::Word> x(N);
  for (std::uint32_t i = 0; i < N; ++i) {
    for (std::uint32_t j = 0; j < N; ++j) {
      A[i][j] = (i == j) ? 2 : (i + 1 == j || j + 1 == i) ? -1 : 0;
      machine.poke_shared(VarId(i * N + j), A[i][j]);
    }
    x[i] = static_cast<pram::Word>(rng.below(10));
    machine.poke_shared(VarId(N * N + i), x[i]);
  }

  const auto run = machine.run();
  if (!run.completed()) {
    std::fprintf(stderr, "simulation did not complete\n");
    return 1;
  }

  std::printf("y = A*x on the HP-2DMOT simulated P-RAM (N = %u)\n", N);
  std::printf("P-RAM steps: %llu, simulated cycles: %llu (%.1fx/step)\n\n",
              static_cast<unsigned long long>(run.steps),
              static_cast<unsigned long long>(run.mem_time),
              static_cast<double>(run.mem_time) /
                  static_cast<double>(run.steps));

  bool all_ok = true;
  std::printf("  i    y[i]  expected\n");
  for (std::uint32_t i = 0; i < N; ++i) {
    pram::Word expect = 0;
    for (std::uint32_t j = 0; j < N; ++j) {
      expect += A[i][j] * x[j];
    }
    const auto got = machine.shared(VarId(N * N + N + i));
    all_ok = all_ok && got == expect;
    std::printf("%3u  %6lld  %8lld%s\n", i, static_cast<long long>(got),
                static_cast<long long>(expect),
                got == expect ? "" : "   <-- MISMATCH");
  }
  std::printf("\n%s\n", all_ok ? "all rows correct" : "ERRORS found");
  return all_ok ? 0 : 1;
}
