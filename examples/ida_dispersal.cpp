// Rabin information dispersal demo (the Schuster alternative from the
// paper's introduction): recode a message into d shares, destroy d-b of
// them, recover the message from the survivors, and show the
// work-amplification accounting of the block memory built on it.
//
// Expected output: the original message echoed back intact after d-b
// share deletions (the GF(256) erasure-code guarantee, exercised for
// real), followed by the IdaMemory's storage factor d/b and measured
// work amplification ~ b — the Theta(log n) processing-per-access cost
// the paper's scheme avoids.
//
// Build & run:  ./build/example_ida_dispersal
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ida/dispersal.hpp"
#include "ida/ida_memory.hpp"
#include "util/rng.hpp"

int main() {
  using namespace pramsim;

  // ---- 1. disperse a message ----------------------------------------
  const std::string message = "SPAA'89:granularity";
  const std::uint32_t b = static_cast<std::uint32_t>(message.size());
  const std::uint32_t d = 2 * b;  // storage factor 2, tolerate b erasures
  ida::Disperser disperser({b, d});

  std::vector<ida::GF256::Elem> block(message.begin(), message.end());
  const auto shares = disperser.encode_bytes(block);
  std::printf("message  : \"%s\" (%u bytes)\n", message.c_str(), b);
  std::printf("dispersed: %u shares, storage factor %.2f\n", d,
              disperser.storage_factor());

  // ---- 2. destroy d-b shares at random -------------------------------
  util::Rng rng(13);
  const auto survivors = rng.sample_without_replacement(d, b);
  std::vector<std::uint32_t> indices;
  std::vector<ida::GF256::Elem> values;
  for (const auto s : survivors) {
    indices.push_back(static_cast<std::uint32_t>(s));
    values.push_back(shares[s]);
  }
  std::printf("erased   : %u of %u shares (kept:", d - b, d);
  for (const auto idx : indices) {
    std::printf(" %u", idx);
  }
  std::printf(")\n");

  const auto recovered = disperser.recover_bytes(indices, values);
  const std::string out(recovered.begin(), recovered.end());
  std::printf("recovered: \"%s\"  %s\n\n", out.c_str(),
              out == message ? "[exact]" : "[CORRUPTED]");
  if (out != message) {
    return 1;
  }

  // ---- 3. the Schuster block memory ----------------------------------
  ida::IdaMemoryConfig cfg{.b = 8, .d = 16, .n_modules = 64, .seed = 7};
  ida::IdaMemory memory(1024, cfg);
  std::printf("IdaMemory: m = 1024 vars in blocks of b = %u, d = %u shares\n",
              cfg.b, cfg.d);

  // Write then read a few scattered variables.
  std::vector<pram::VarWrite> writes;
  for (std::uint32_t i = 0; i < 16; ++i) {
    writes.push_back({VarId(i * 61 % 1024),
                      static_cast<pram::Word>(1000 + i)});
  }
  const auto wcost = memory.step({}, {}, writes);
  std::vector<VarId> reads;
  reads.reserve(writes.size());
  for (const auto& w : writes) {
    reads.push_back(w.var);
  }
  std::vector<pram::Word> got(reads.size());
  const auto rcost = memory.step(reads, got, {});
  bool ok = true;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    ok = ok && got[i] == writes[i].value;
  }
  std::printf("  16 writes: %llu rounds, %llu share accesses\n",
              static_cast<unsigned long long>(wcost.time),
              static_cast<unsigned long long>(wcost.work));
  std::printf("  16 reads : %llu rounds, %llu share accesses\n",
              static_cast<unsigned long long>(rcost.time),
              static_cast<unsigned long long>(rcost.work));
  std::printf("  values   : %s\n", ok ? "all correct" : "MISMATCH");
  std::printf(
      "  work amplification: %.1f variables processed per access\n"
      "  (constant storage like the paper's scheme, but Theta(b) extra\n"
      "  work per access — the trade the paper's Section 1 describes)\n",
      memory.work_amplification());
  return ok ? 0 : 1;
}
