// Quickstart: the 60-second tour of pramsim's public API.
//
// Demonstrates the three moves everything else builds on: (1) assemble
// the paper's machine (Theorem 3: a 2DMOT with constant redundancy) with
// one core::make_scheme call, (2) feed it a worst-case-ish P-RAM step
// through the SimulationPipeline and read the simulated cost, (3) run a
// real P-RAM program (parallel sum) on top of it via pram::Machine and
// check the answer.
//
// Expected output: a few banner lines with the assembled machine's
// parameters (n, M, r), one cost line for the served step (time in
// rounds, work, max queue), and a final line confirming the program's
// result matches the ideal P-RAM's — always, since the simulation is
// exact.
//
// Build & run:  ./build/example_quickstart
#include <cstdio>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "pram/trace.hpp"
#include "util/rng.hpp"

int main() {
  using namespace pramsim;

  // ---- 1. the Theorem 3 machine -------------------------------------
  const std::uint32_t n = 64;  // P-RAM processors
  core::SchemeSpec spec{.kind = core::SchemeKind::kHpMot, .n = n, .seed = 42};
  core::SimulationPipeline pipeline(spec);
  const auto& scheme = pipeline.scheme();
  std::printf("scheme          : %s\n", scheme.name.c_str());
  std::printf("processors      : %u\n", n);
  std::printf("shared vars (m) : %llu\n",
              static_cast<unsigned long long>(scheme.m));
  std::printf("modules (M)     : %u  (granularity eps = %.2f)\n",
              scheme.n_modules, scheme.eps_effective);
  std::printf("redundancy (r)  : %u copies/var  <- constant, the headline\n",
              scheme.r);
  std::printf("switches        : %llu  (O(M), Fig. 8)\n\n",
              static_cast<unsigned long long>(scheme.switches));

  // ---- 2. one hard P-RAM step ----------------------------------------
  util::Rng rng(7);
  const auto batch =
      pram::make_batch(pram::TraceFamily::kPermutation, n, scheme.m, rng);
  const auto step = pipeline.run_batch(batch);
  std::printf("one P-RAM step (%zu accesses):\n", batch.size());
  std::printf("  network cycles : %llu\n",
              static_cast<unsigned long long>(step.time));
  std::printf("  copy accesses  : %llu\n",
              static_cast<unsigned long long>(step.work));
  std::printf("  live after stage 1: %llu (bound n/(2c-1) = %u)\n\n",
              static_cast<unsigned long long>(step.live_after_stage1),
              n / scheme.r);

  // ---- 3. a real program end-to-end ----------------------------------
  auto program = pram::programs::prefix_sum(n);
  pram::MachineConfig cfg{.n_processors = n,
                          .m_shared_cells = program.m_required,
                          .policy = pram::ConflictPolicy::kErew};
  spec.min_vars = program.m_required;
  pram::Machine machine(cfg, std::move(program.program),
                        core::make_memory(spec));
  for (std::uint32_t i = 0; i < n; ++i) {
    machine.poke_shared(VarId(i), 1);  // prefix-sum of all ones = 1..n
  }
  const auto run = machine.run();
  std::printf("prefix_sum(%u) on the simulated machine:\n", n);
  std::printf("  completed      : %s\n", run.completed() ? "yes" : "NO");
  std::printf("  P-RAM steps    : %llu\n",
              static_cast<unsigned long long>(run.steps));
  std::printf("  simulated time : %llu cycles (slowdown %.1fx)\n",
              static_cast<unsigned long long>(run.mem_time),
              static_cast<double>(run.mem_time) /
                  static_cast<double>(run.steps));
  std::printf("  x[n-1] = %lld (expect %u)\n",
              static_cast<long long>(machine.shared(VarId(n - 1))), n);
  return machine.shared(VarId(n - 1)) == n ? 0 : 1;
}
