// Parallel prefix sums through the full simulation stack, on every scheme.
//
// Demonstrates that one EREW P-RAM program (Hillis-Steele with double
// buffering) runs unchanged on the ideal P-RAM and on the simulating
// machines; all must agree bit-for-bit, and the printed table shows what
// each machine charges for the privilege — the redundancy/time trade the
// paper is about.
//
// Expected output: a per-scheme table of total simulated time and work
// for the same prefix-sum run, preceded by an agreement check line —
// any mismatch would abort, so the table itself is the proof of
// bit-exact simulation.
//
// Build & run:  ./build/example_parallel_prefix
#include <cstdio>
#include <vector>

#include "core/schemes.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace pramsim;
  const std::uint32_t n = 64;

  // Reference run on the ideal P-RAM.
  auto ref_spec = pram::programs::prefix_sum(n);
  pram::MachineConfig cfg{.n_processors = n,
                          .m_shared_cells = ref_spec.m_required,
                          .policy = pram::ConflictPolicy::kErew};
  pram::Machine ideal(cfg, std::move(ref_spec.program));
  util::Rng rng(2024);
  std::vector<pram::Word> input(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    input[i] = static_cast<pram::Word>(rng.below(1000));
    ideal.poke_shared(VarId(i), input[i]);
  }
  const auto ideal_run = ideal.run();
  std::printf("ideal P-RAM: %llu steps, every step unit time\n\n",
              static_cast<unsigned long long>(ideal_run.steps));

  util::Table table({"scheme", "redundancy r", "modules M", "sim time",
                     "slowdown/step", "matches ideal"});
  table.set_title("prefix_sum(64) across simulation schemes");

  for (const auto kind :
       {core::SchemeKind::kHpMot, core::SchemeKind::kCrossbar,
        core::SchemeKind::kLppMot, core::SchemeKind::kDmmpc,
        core::SchemeKind::kUwMpc}) {
    auto prog = pram::programs::prefix_sum(n);
    core::SchemeSpec spec{.kind = kind,
                          .n = n,
                          .seed = 3,
                          .min_vars = prog.m_required};
    const auto inst = core::make_scheme(spec);
    pram::Machine machine(cfg, std::move(prog.program),
                          core::make_memory(spec));
    for (std::uint32_t i = 0; i < n; ++i) {
      machine.poke_shared(VarId(i), input[i]);
    }
    const auto run = machine.run();
    bool match = run.completed();
    for (std::uint32_t i = 0; i < n && match; ++i) {
      match = machine.shared(VarId(i)) == ideal.shared(VarId(i));
    }
    table.add_row({std::string(core::to_string(kind)),
                   static_cast<std::int64_t>(inst.r),
                   static_cast<std::int64_t>(inst.n_modules),
                   static_cast<std::int64_t>(run.mem_time),
                   static_cast<double>(run.mem_time) /
                       static_cast<double>(run.steps),
                   std::string(match ? "yes" : "NO")});
    if (!match) {
      std::fprintf(stderr, "MISMATCH on %s\n", core::to_string(kind));
      return 1;
    }
  }
  table.print(1);
  std::printf(
      "\nNote the contrast: HP-2DMOT holds r constant where LPP/UW-MPC pay\n"
      "Theta(log) copies, at comparable polylog time per step.\n");
  return 0;
}
