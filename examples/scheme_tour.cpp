// Scheme tour: one identical adversarially-flavoured P-RAM step served by
// every memory organization in the library — the paper's §1 narrative as
// a single program run. One loop over the scheme factory; the pipeline
// does the combining and stepping, so no engine is special-cased.
//
// Expected output: one table with a row per SchemeKind (all ten) showing
// each machine's model, redundancy r, storage blow-up, and the simulated
// time/work it charged for the same step — the constant-redundancy
// schemes cluster at storage x ~ r with bounded time, the probabilistic
// single-copy rows are cheap on storage but exposed on adversarial time.
//
// Build & run:  ./build/example_scheme_tour
#include <cstdio>
#include <vector>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "memmap/expansion.hpp"
#include "memmap/memory_map.hpp"
#include "util/table.hpp"

int main() {
  using namespace pramsim;
  const std::uint32_t n = 64;
  const std::uint64_t m = static_cast<std::uint64_t>(n) * n;

  // One shared step: n distinct variables chosen to concentrate module
  // load under a reference map (an "arbitrary P-RAM step" with teeth).
  memmap::HashedMap probe_map(m, n * n, 7, 1);
  const auto vars = memmap::adversarial_batch(probe_map, n, 99);
  pram::AccessBatch batch;
  batch.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    batch.push_back({ProcId(i), pram::AccessOp::kRead, vars[i], 0});
  }

  util::Table table({"engine", "storage", "time", "unit", "work",
                     "guarantee"});
  table.set_title("one adversarial step of n = 64 accesses, every engine");

  for (const auto kind : core::all_scheme_kinds()) {
    core::SimulationPipeline pipeline({.kind = kind, .n = n, .seed = 7});
    const auto cost = pipeline.run_batch(batch);
    const auto& scheme = pipeline.scheme();
    table.add_row({scheme.name, scheme.storage_factor,
                   static_cast<std::int64_t>(cost.time),
                   std::string(scheme.time_unit),
                   static_cast<std::int64_t>(cost.work),
                   std::string(scheme.guarantee)});
  }

  table.print(1);
  std::printf(
      "\nSame traffic everywhere, one driver. The paper's point, in one\n"
      "table: only the HP engines combine a deterministic worst-case\n"
      "guarantee with constant redundancy — and HP-2DMOT does it on a\n"
      "bounded-degree network with O(M) switches.\n");
  return 0;
}
