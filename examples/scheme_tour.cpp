// Scheme tour: one identical adversarially-flavoured P-RAM step served by
// every simulation engine in the library — the paper's §1 narrative as a
// single program run. Prints machine model, redundancy, simulated time
// and work for each.
//
// Build & run:  ./build/examples/example_scheme_tour
#include <cstdio>
#include <memory>
#include <vector>

#include "core/context_engines.hpp"
#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "memmap/expansion.hpp"
#include "memmap/memory_map.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace pramsim;
  const std::uint32_t n = 64;
  const std::uint64_t m = static_cast<std::uint64_t>(n) * n;

  // One shared step: n distinct variables chosen to concentrate module
  // load under a reference map (an "arbitrary P-RAM step" with teeth).
  memmap::HashedMap probe_map(m, n * n, 7, 1);
  const auto vars = memmap::adversarial_batch(probe_map, n, 99);
  std::vector<majority::VarRequest> reqs;
  reqs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    reqs.push_back({vars[i], ProcId(i)});
  }

  util::Table table({"engine", "redundancy", "time", "unit", "work",
                     "guarantee"});
  table.set_title("one adversarial step of n = 64 accesses, every engine");

  // The five factory schemes.
  for (const auto kind :
       {core::SchemeKind::kUwMpc, core::SchemeKind::kAltBdn,
        core::SchemeKind::kDmmpc, core::SchemeKind::kLppMot,
        core::SchemeKind::kCrossbar, core::SchemeKind::kHpMot}) {
    auto inst = core::make_scheme({.kind = kind, .n = n, .seed = 7});
    const auto res = inst.engine->run_step(reqs);
    const bool rounds = kind == core::SchemeKind::kUwMpc ||
                        kind == core::SchemeKind::kDmmpc;
    table.add_row({std::string(core::to_string(kind)),
                   std::string("r = " + std::to_string(inst.r)),
                   static_cast<std::int64_t>(res.time),
                   std::string(rounds ? "rounds" : "cycles"),
                   static_cast<std::int64_t>(res.work),
                   std::string("deterministic worst-case")});
  }

  // Herley-Bilardi on a concrete expander.
  {
    const auto c = core::hb_c(m);
    auto map = std::make_shared<memmap::HashedMap>(m, n, 2 * c - 1, 7);
    majority::SchedulerConfig cfg;
    cfg.c = c;
    cfg.cluster_size = 2 * c - 1;
    cfg.n_processors = n;
    core::HbExpanderEngine engine(map, cfg, 6, 11);
    const auto res = engine.run_step(reqs);
    table.add_row({std::string("HB-expander"),
                   std::string("r = " + std::to_string(2 * c - 1)),
                   static_cast<std::int64_t>(res.time),
                   std::string("cycles"),
                   static_cast<std::int64_t>(res.work),
                   std::string("deterministic worst-case")});
  }

  // Ranade on a butterfly (probabilistic).
  {
    auto map = std::shared_ptr<memmap::MemoryMap>(
        memmap::make_single_copy_map(m, n, 7));
    core::RanadeButterflyEngine engine(map, n);
    const auto res = engine.run_step(reqs);
    table.add_row({std::string("Ranade-butterfly"), std::string("r = 1"),
                   static_cast<std::int64_t>(res.time),
                   std::string("cycles"),
                   static_cast<std::int64_t>(res.work),
                   std::string("expected only")});
  }

  table.print(0);
  std::printf(
      "\nSame traffic everywhere. The paper's point, in one table: only\n"
      "the HP engines combine a deterministic worst-case guarantee with\n"
      "constant redundancy — and HP-2DMOT does it on a bounded-degree\n"
      "network with O(M) switches.\n");
  return 0;
}
