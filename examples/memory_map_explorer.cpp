// Memory-map explorer: poke at Lemma 2 interactively-ish.
//
// Demonstrates the memory-map layer on its own: for a machine size
// (n, k) it walks the granularity knob eps and the expansion parameter
// b, printing for each configuration the Lemma 2 threshold c and
// redundancy r = 2c-1, the union-bound log2 fraction of "bad" random
// maps, and the measured worst-case expansion of a concrete seeded map
// under a greedy adversarial live-copy selection.
//
// Expected output: one table row per (eps, b) configuration; the
// "ratio" column >= 1 on every row means the Lemma 2 expansion property
// held on every sampled live set — smaller eps (coarser granularity)
// needs larger c to keep it there, which is the paper's central knob.
//
// Usage: ./build/example_memory_map_explorer [n] [k]  (defaults: 256 2.0)
#include <cstdio>
#include <cstdlib>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "memmap/expansion.hpp"
#include "memmap/memory_map.hpp"
#include "memmap/params.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pramsim;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  const double k = argc > 2 ? std::atof(argv[2]) : 2.0;
  if (n < 16) {
    std::fprintf(stderr, "n must be >= 16\n");
    return 1;
  }

  std::printf("Lemma 2 explorer: n = %u processors, m = n^%.1f variables\n\n",
              n, k);

  util::Table table({"eps", "b", "c", "r=2c-1", "M", "granule g",
                     "log2 f(bad maps)", "measured ratio", "property",
                     "rounds/step"});
  table.set_title("constant redundancy as granularity rises");

  for (const double eps : {0.5, 1.0, 1.5, 2.0}) {
    for (const double b : {3.0, 4.0, 8.0}) {
      const auto params = memmap::derive_params(n, k, eps, b);
      const double bad = memmap::bad_map_log2_union_bound(
          n, static_cast<double>(params.m),
          static_cast<double>(params.n_modules), params.c, b);
      memmap::HashedMap map(params.m, params.n_modules, params.r,
                            /*seed=*/1234);
      const std::uint64_t q =
          std::max<std::uint64_t>(1, params.n / params.r);
      const auto exp =
          memmap::measure_expansion(map, params.c, q, /*trials=*/20,
                                    /*seed=*/99);
      const double ratio = exp.ratio_vs_bound(b);
      // What these map parameters buy at run time: the same (eps, b)
      // through the unified pipeline on the Theorem 2 machine.
      core::SimulationPipeline pipeline({.kind = core::SchemeKind::kDmmpc,
                                         .n = n,
                                         .k = k,
                                         .eps = eps,
                                         .b = b,
                                         .seed = 1234});
      const auto stress = pipeline.run_stress(
          {.steps_per_family = 1, .seed = 99,
           .include_map_adversarial = false});
      table.add_row({eps, b, static_cast<std::int64_t>(params.c),
                     static_cast<std::int64_t>(params.r),
                     static_cast<std::int64_t>(params.n_modules),
                     params.granularity, bad, ratio,
                     std::string(ratio >= 1.0 ? "holds" : "VIOLATED"),
                     stress.time.mean()});
    }
  }
  table.print(2);

  std::printf(
      "\nReading the table: c depends only on (b, k, eps) — never on n.\n"
      "log2 f << 0 means almost every random map has the Lemma 2 expansion\n"
      "property; 'measured ratio' confirms it on this concrete seeded map\n"
      "(distinct modules covered / required (2c-1)q/b, minimum over trials\n"
      "under a greedy adversarial choice of live copies); 'rounds/step' is\n"
      "the same configuration actually simulated by the pipeline.\n");
  return 0;
}
