// Observability tour: watch the engine narrate its own run.
//
// One stress run on the paper's Theorem 2 machine (HP-DMMPC) with a
// dynamic fault onset and background scrubbing, observed end to end by
// the obs subsystem: the metrics registry counts every vote and scrub
// pass, the phase timers break the wall time into plan-build / serve /
// schedule / value / scrub / oracle, and the deterministic event journal
// records each fault onset, degraded vote, relocation, and repair with
// its step stamp.
//
// Expected output: the counters/gauges table, the phase breakdown, the
// journal tail (onsets at the configured step, then degraded votes, then
// relocations as scrubbing re-homes copies), a Prometheus exposition
// excerpt, and an OBS_snapshot.json written next to the binary — the
// file tools/check_obs_schema.py validates in CI.
//
// Build & run:  ./build/example_observability_tour
#include <cstdio>
#include <string>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "obs/export.hpp"
#include "util/parallel.hpp"

using namespace pramsim;

int main() {
  std::printf("=== observability tour: HP-DMMPC under dynamic faults ===\n\n");
  if (!obs::kEnabled) {
    std::printf("(compiled with -DPRAMSIM_OBS=OFF — hooks are no-ops; the\n"
                " snapshot below is structurally valid but empty)\n\n");
  }

  const core::SchemeSpec spec{.kind = core::SchemeKind::kDmmpc, .n = 16,
                              .seed = 3};
  core::SimulationPipeline pipeline(spec);

  // 20% of the modules die mid-run; scrub every other step rebuilds the
  // lost copies onto healthy modules.
  const faults::FaultSpec fault_spec{.seed = 41,
                                     .module_kill_rate = 0.2,
                                     .onset_min = 4,
                                     .onset_max = 8};
  core::StressOptions options{.steps_per_family = 8, .seed = 9,
                              .trials = 2};
  options.scrub_interval = 2;
  options.scrub_budget = 128;
  options.obs_enabled = true;

  auto run = pipeline.run_with_faults(fault_spec, options);

  std::printf("run: %llu steps served, %llu reads, %llu faults masked, "
              "%llu wrong reads\n\n",
              static_cast<unsigned long long>(run.steps),
              static_cast<unsigned long long>(run.reliability.reads_served),
              static_cast<unsigned long long>(run.reliability.faults_masked),
              static_cast<unsigned long long>(run.reliability.wrong_reads));

  // Human-readable dump: counters, phase breakdown, journal tail.
  for (const auto& table : obs::to_tables(run.obs, /*journal_tail=*/12)) {
    table.print(2);
  }

  // Prometheus exposition excerpt (first lines).
  const std::string prom = obs::to_prometheus(run.obs);
  std::printf("== prometheus exposition (excerpt) ==\n");
  std::size_t shown = 0;
  for (std::size_t pos = 0; pos < prom.size() && shown < 8;) {
    const std::size_t eol = prom.find('\n', pos);
    std::printf("%s\n", prom.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }
  std::printf("...\n\n");

  // The schema-versioned JSON snapshot, manifest embedded — the form
  // tools/check_obs_schema.py validates.
  obs::SnapshotOptions snapshot;
  snapshot.manifest_json =
      std::string("{\"scheme\": \"HP-DMMPC\", \"n\": 16, \"seed\": 3, ") +
      "\"workers\": " +
      std::to_string(util::parallel_workers(1u << 20)) +
      ", \"backend\": \"" +
      (pipeline.scheme().backend == pram::ServeBackend::kGroupParallel
           ? "group-parallel"
           : "serial") +
      "\", \"obs_enabled\": true}";
  const std::string json = obs::to_json(run.obs, snapshot);
  const char* path = "OBS_snapshot.json";
  std::FILE* f = std::fopen(path, "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("snapshot written to %s (%zu bytes) — validate with\n"
                "  python3 tools/check_obs_schema.py %s\n",
                path, json.size() + 1, path);
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", path);
    return 1;
  }
  return 0;
}
