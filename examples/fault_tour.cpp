// Fault tour: watch one scheme survive module death.
//
// Demonstrates the faults subsystem on the paper's Theorem 2 machine
// (HP-DMMPC, r = 2c-1 copies per variable over M = n^2 modules): wrap it
// in a FaultableMemory and kill an escalating number of memory modules.
// The degraded-mode protocol (write-through + majority vote over
// surviving copies) keeps answering correctly long after an unreplicated
// memory would have lost data — and the trace-consistency oracle
// certifies that no read ever lied. (bench_faults sweeps all ten schemes
// to their breaking points; bench_recovery adds mid-run onsets and
// scrub-driven repair.)
//
// Expected output: a table comparing HP-DMMPC against MV-hashing at an
// escalating dead-module count: the majority column stays at 100%
// correct reads with a growing masked-fault count and a clean oracle
// verdict, while the hashing column loses reads as soon as modules die.
//
// Build & run:  ./build/example_fault_tour
#include <cstdio>
#include <memory>

#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "faults/faultable_memory.hpp"
#include "pram/memory_system.hpp"

using namespace pramsim;

namespace {

/// Write `count` sentinel values, then read them all back; returns how
/// many reads came back correct.
std::uint32_t write_read_cycle(pram::MemorySystem& memory,
                               std::uint32_t count) {
  for (std::uint32_t v = 0; v < count; ++v) {
    const pram::VarWrite writes[] = {{VarId(v), 1000 + v}};
    (void)memory.step({}, {}, writes);
  }
  std::uint32_t correct = 0;
  for (std::uint32_t v = 0; v < count; ++v) {
    const VarId reads[] = {VarId(v)};
    pram::Word values[] = {0};
    (void)memory.step(reads, values, {});
    correct += values[0] == 1000 + v;
  }
  return correct;
}

}  // namespace

int main() {
  const std::uint32_t n = 16;
  const std::uint32_t vars = 128;
  std::printf("fault tour: HP-DMMPC vs MV-hashing at n = %u, killing "
              "modules\n\n", n);
  std::printf("%8s | %12s | %14s | %14s | %s\n", "dead", "scheme",
              "correct reads", "masked faults", "oracle verdict");
  std::printf("---------+--------------+----------------+----------------+"
              "---------------\n");

  for (const std::uint32_t dead : {0u, 8u, 32u, 64u, 128u}) {
    for (const auto kind :
         {core::SchemeKind::kDmmpc, core::SchemeKind::kHashed}) {
      auto inst = core::make_scheme({.kind = kind, .n = n, .seed = 7});
      // A static fault set: `dead` modules (of inst.n_modules) are gone
      // before the computation starts and stay gone.
      faults::FaultableMemory memory(
          std::move(inst.memory),
          {.seed = 2027, .dead_modules = dead});
      const auto correct = write_read_cycle(memory, vars);
      const auto stats = memory.reliability();
      std::printf("%8u | %12s | %7u / %-4u | %14llu | %s\n", dead,
                  inst.name.c_str(), correct, vars,
                  static_cast<unsigned long long>(stats.faults_masked),
                  stats.wrong_reads == 0
                      ? "no silent lies"
                      : "SILENT WRONG READS");
    }
  }

  std::printf(
      "\nThe replicated scheme keeps every variable readable while the\n"
      "single-copy baseline loses the address ranges of dead modules\n"
      "(flagged as outages). Constant redundancy = graceful degradation;\n"
      "see bench_faults for the full frontier across all schemes.\n");
  return 0;
}
