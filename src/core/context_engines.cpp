#include "core/context_engines.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "majority/scheduler.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::core {

RanadeButterflyEngine::RanadeButterflyEngine(
    std::shared_ptr<const memmap::MemoryMap> map, std::uint32_t n_processors)
    : map_(std::move(map)), n_processors_(n_processors) {
  PRAMSIM_ASSERT(map_ != nullptr);
  PRAMSIM_ASSERT_MSG(map_->redundancy() == 1,
                     "Ranade's emulation keeps a single hashed copy");
  shape_ = net::butterfly(map_->num_modules());
  PRAMSIM_ASSERT(n_processors_ >= 1);
}

majority::EngineResult RanadeButterflyEngine::run_step(
    std::span<const majority::VarRequest> requests) {
  majority::EngineResult result;
  result.accessed_mask.assign(requests.size(), 1);  // the single copy
  if (requests.empty()) {
    return result;
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(requests.size());
  std::vector<ModuleId> copy(1);
  for (const auto& req : requests) {
    map_->copies_into(req.var, copy);
    // Source: the requester's input row (processors spread over rows).
    const std::uint32_t src =
        req.requester.value() % shape_.rows;
    pairs.emplace_back(src, copy[0].value());
  }
  const auto load = net::route_congestion(shape_, pairs);
  // Pipelined store-and-forward with combining: dilation + congestion - 1
  // cycles for the batch, doubled for the reply sweep.
  result.time = 2ULL * (load.dilation + load.max_congestion - 1);
  result.work = requests.size();
  result.stats.phases = 1;
  result.stats.max_queue = load.max_congestion;
  return result;
}

std::uint32_t hb_c(std::uint64_t m_vars) {
  PRAMSIM_ASSERT(m_vars >= 16);
  const double logm = std::log2(static_cast<double>(m_vars));
  const double loglogm = std::log2(logm);
  return std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::ceil(logm / loglogm)));
}

HbExpanderEngine::HbExpanderEngine(
    std::shared_ptr<const memmap::MemoryMap> map,
    majority::SchedulerConfig scheduler, std::uint32_t graph_degree,
    std::uint64_t graph_seed)
    : map_(std::move(map)),
      scheduler_(scheduler),
      graph_(scheduler.n_processors, graph_degree, graph_seed),
      network_diameter_(graph_.diameter()) {
  PRAMSIM_ASSERT(map_ != nullptr);
  PRAMSIM_ASSERT(map_->redundancy() == 2 * scheduler_.c - 1);
  PRAMSIM_ASSERT_MSG(map_->num_modules() == scheduler_.n_processors,
                     "HB's BDN has one module per node");
  PRAMSIM_ASSERT_MSG(graph_.connected(), "expander must be connected");
}

majority::EngineResult HbExpanderEngine::run_step(
    std::span<const majority::VarRequest> requests) {
  const auto schedule = majority::schedule_step(*map_, requests, scheduler_);
  majority::EngineResult result;
  result.time = schedule.rounds * network_diameter_;
  result.work = schedule.total_copy_accesses;
  result.accessed_mask = schedule.accessed_mask;
  result.stats.phases = schedule.rounds;
  result.stats.stage1_phases = schedule.stage1_rounds;
  result.stats.stage2_phases = schedule.stage2_rounds;
  result.stats.live_after_stage1 = schedule.live_after_stage1;
  result.stats.max_queue = schedule.max_module_queue;
  result.stats.live_per_phase = schedule.live_per_round;
  return result;
}

}  // namespace pramsim::core
