// AltBdnEngine: the Alt-Hagerup-Mehlhorn-Preparata (1987) deterministic
// BDN baseline, as reviewed in the paper's §1.
//
// Their simulation realizes each round of the Upfal-Wigderson protocol on
// a bounded-degree network by SORTING the round's copy requests by
// destination module (a Batcher network of depth log n (log n + 1)/2),
// delivering along the sorted order, and returning replies the same way
// — O(log n log m) total. We model it faithfully at the round level: the
// round structure comes from the real two-stage scheduler over an
// M = n, r = Theta(log m) map (the MPC geometry the scheme assumes), and
// each round is charged the *exact* depth of the concrete Batcher
// network plus 2 log n delivery hops. The comparator network itself is
// real and tested (src/sortnet); only the per-comparator data movement is
// abstracted into the depth charge, which is the quantity their analysis
// counts.
#pragma once

#include <cstdint>
#include <memory>

#include "majority/engine.hpp"
#include "memmap/memory_map.hpp"
#include "sortnet/batcher.hpp"

namespace pramsim::core {

class AltBdnEngine final : public majority::AccessEngine {
 public:
  /// `map` must be an M = n_processors map (the BDN has one module per
  /// node), redundancy 2c-1 with scheduler.c == c.
  AltBdnEngine(std::shared_ptr<const memmap::MemoryMap> map,
               majority::SchedulerConfig scheduler);

  [[nodiscard]] majority::EngineResult run_step(
      std::span<const majority::VarRequest> requests) override;

  [[nodiscard]] const memmap::MemoryMap& map() const override {
    return *map_;
  }
  [[nodiscard]] std::uint32_t n_processors() const override {
    return scheduler_.n_processors;
  }
  /// Cycles charged per protocol round: sort depth + delivery.
  [[nodiscard]] std::uint64_t cycles_per_round() const {
    return cycles_per_round_;
  }
  [[nodiscard]] const sortnet::ComparatorNetwork& network() const {
    return network_;
  }

 private:
  std::shared_ptr<const memmap::MemoryMap> map_;
  majority::SchedulerConfig scheduler_;
  sortnet::ComparatorNetwork network_;
  std::uint64_t cycles_per_round_ = 1;
};

}  // namespace pramsim::core
