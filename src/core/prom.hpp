// P-ROM: the paper's conclusion-section proposal, implemented.
//
// The non-constructive Lemma 2 map must be *stored*: naively every
// processor keeps its own copy of the full variable->modules table,
// O(m log rM) bits each, O(mn log rM) total — the cost the paper calls
// out. Its proposed remedy: "simulate a P-ROM, a parallel read-only
// memory, that would support simultaneous address look-up for all
// processors, and thus reduce the total look-up table size from
// O(mn log rm) to O(m log rm) bits."
//
// We realize exactly that on the 2DMOT: the table is distributed over the
// M leaf modules (the entry for variable v lives at module hash(v)); a
// simulation step is preceded by a lookup phase in which every requesting
// processor routes a read to its variable's table entry and back. The
// phase costs network cycles (measured by bench_prom) but removes the
// per-processor tables; MotEngineConfig::prom_lookup turns it on.
//
// (With a HashedMap the table is not needed at all — copies are computed
// — which is the paper's *other* wish, "a memory map that could be
// constructed by simple computations within a processor"; the bench
// contrasts all three storage regimes.)
#pragma once

#include <cstdint>

#include "util/strong_id.hpp"

namespace pramsim::core {

/// Storage accounting for the three map-table regimes.
struct MapTableBits {
  std::uint64_t per_processor = 0;  ///< one local table: m * r * ceil(log2 M)
  std::uint64_t local_total = 0;    ///< n local tables (the naive cost)
  std::uint64_t prom_total = 0;     ///< one distributed table (the P-ROM)
  double reduction_factor = 0.0;    ///< local_total / prom_total (= n)
};

[[nodiscard]] MapTableBits map_table_bits(std::uint32_t n_processors,
                                          std::uint64_t m_vars,
                                          std::uint32_t redundancy,
                                          std::uint32_t n_modules);

/// The module holding variable `var`'s table entry (uniform, stateless).
[[nodiscard]] ModuleId prom_home_module(VarId var, std::uint32_t n_modules);

}  // namespace pramsim::core
