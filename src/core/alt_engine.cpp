#include "core/alt_engine.hpp"

#include <utility>

#include "majority/scheduler.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::core {

AltBdnEngine::AltBdnEngine(std::shared_ptr<const memmap::MemoryMap> map,
                           majority::SchedulerConfig scheduler)
    : map_(std::move(map)),
      scheduler_(scheduler),
      network_(sortnet::batcher_sort(
          util::is_pow2(scheduler.n_processors)
              ? scheduler.n_processors
              : static_cast<std::uint32_t>(
                    util::next_pow2(scheduler.n_processors)))) {
  PRAMSIM_ASSERT(map_ != nullptr);
  PRAMSIM_ASSERT(map_->redundancy() == 2 * scheduler_.c - 1);
  PRAMSIM_ASSERT_MSG(map_->num_modules() == scheduler_.n_processors,
                     "the BDN hosts one module per processor node");
  const auto log_n = static_cast<std::uint64_t>(
      scheduler_.n_processors > 1
          ? util::ilog2_ceil(scheduler_.n_processors)
          : 1);
  cycles_per_round_ = network_.depth() + 2 * log_n;
}

majority::EngineResult AltBdnEngine::run_step(
    std::span<const majority::VarRequest> requests) {
  const auto schedule =
      majority::schedule_step(*map_, requests, scheduler_);
  majority::EngineResult result;
  result.time = schedule.rounds * cycles_per_round_;
  result.work = schedule.total_copy_accesses;
  result.accessed_mask = schedule.accessed_mask;
  result.stats.phases = schedule.rounds;
  result.stats.stage1_phases = schedule.stage1_rounds;
  result.stats.stage2_phases = schedule.stage2_rounds;
  result.stats.live_after_stage1 = schedule.live_after_stage1;
  result.stats.max_queue = schedule.max_module_queue;
  result.stats.live_per_phase = schedule.live_per_round;
  return result;
}

}  // namespace pramsim::core
