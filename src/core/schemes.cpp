#include "core/schemes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cache/cached_memory.hpp"
#include "core/alt_engine.hpp"
#include "core/context_engines.hpp"
#include "core/mot_engine.hpp"
#include "hashing/mv_memory.hpp"
#include "ida/ida_memory.hpp"
#include "network/topology.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::core {

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kHpMot: return "HP-2DMOT";
    case SchemeKind::kCrossbar: return "HP-crossbar";
    case SchemeKind::kLppMot: return "LPP-2DMOT";
    case SchemeKind::kDmmpc: return "HP-DMMPC";
    case SchemeKind::kUwMpc: return "UW-MPC";
    case SchemeKind::kAltBdn: return "Alt-BDN(sort)";
    case SchemeKind::kHbExpander: return "HB-expander";
    case SchemeKind::kRanade: return "Ranade-butterfly";
    case SchemeKind::kIda: return "Schuster-IDA";
    case SchemeKind::kHashed: return "MV-hashing";
  }
  return "???";
}

const std::vector<SchemeKind>& all_scheme_kinds() {
  static const std::vector<SchemeKind> kinds = {
      SchemeKind::kUwMpc,  SchemeKind::kAltBdn,     SchemeKind::kDmmpc,
      SchemeKind::kLppMot, SchemeKind::kCrossbar,   SchemeKind::kHpMot,
      SchemeKind::kHbExpander, SchemeKind::kRanade, SchemeKind::kIda,
      SchemeKind::kHashed,
  };
  return kinds;
}

namespace {

std::uint64_t vars_for(const SchemeSpec& spec) {
  const auto m = static_cast<std::uint64_t>(
      std::llround(std::pow(static_cast<double>(spec.n), spec.k)));
  return std::max<std::uint64_t>({m, spec.min_vars, spec.n});
}

double effective_eps(std::uint32_t n, std::uint64_t n_modules) {
  return std::log2(static_cast<double>(n_modules)) /
             std::log2(static_cast<double>(n)) -
         1.0;
}

/// Wrap a majority access engine into the unified memory interface and
/// keep the protocol-introspection view alive. Reads the instance's
/// (already clamped) region_words so every replicated kind honors the
/// spec's storage-granularity knob through one seam.
void install_engine(SchemeInstance& inst,
                    std::unique_ptr<majority::AccessEngine> engine) {
  auto memory = std::make_unique<majority::MajorityMemory>(
      std::move(engine), inst.region_words);
  inst.engine = &memory->engine();
  inst.memory = std::move(memory);
}

}  // namespace

SchemeInstance make_scheme(const SchemeSpec& spec) {
  PRAMSIM_ASSERT(spec.n >= 4);
  SchemeInstance inst;
  inst.kind = spec.kind;
  inst.name = to_string(spec.kind);
  inst.m = vars_for(spec);
  inst.region_words = std::max<std::uint32_t>(spec.region_words, 1);
  inst.guarantee = "deterministic worst-case";

  const double nd = spec.n;
  switch (spec.kind) {
    case SchemeKind::kHpMot: {
      PRAMSIM_ASSERT(util::is_pow2(spec.n));
      // Square side: at least n (processors at the first n row roots),
      // at least ~n^((1+eps)/2), power of two.
      const auto target_side = static_cast<std::uint64_t>(
          std::llround(std::pow(nd, (1.0 + spec.eps) / 2.0)));
      const std::uint64_t side = std::max<std::uint64_t>(
          spec.n, util::next_pow2(std::max<std::uint64_t>(target_side, 4)));
      const std::uint64_t M = side * side;
      PRAMSIM_ASSERT_MSG(M <= inst.m,
                         "module count exceeds variables; raise k or min_vars");
      inst.n_modules = static_cast<std::uint32_t>(M);
      inst.eps_effective = effective_eps(spec.n, inst.n_modules);
      inst.c = memmap::lemma2_min_c(spec.b, spec.k,
                                    std::max(inst.eps_effective, 0.25));
      inst.r = 2 * inst.c - 1;
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      MotEngineConfig cfg;
      cfg.scheme = MotScheme::kHpLeaves;
      cfg.n_processors = spec.n;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.lca_turnaround = spec.lca_turnaround;
      cfg.prom_lookup = spec.prom_lookup;
      auto engine = std::make_unique<MotEngine>(map, cfg);
      inst.switches = net::summarize(engine->shape()).switches;
      inst.request_hops = engine->request_hops();
      inst.map = std::move(map);
      install_engine(inst, std::move(engine));
      inst.model = "DMBDN (2DMOT)";
      inst.time_unit = "cycles";
      inst.notes = "Theorem 3";
      break;
    }
    case SchemeKind::kCrossbar: {
      PRAMSIM_ASSERT(util::is_pow2(spec.n));
      const auto target = static_cast<std::uint64_t>(
          std::llround(std::pow(nd, 1.0 + spec.eps)));
      const std::uint64_t M = std::min<std::uint64_t>(
          util::next_pow2(std::max<std::uint64_t>(target, 4)), inst.m);
      PRAMSIM_ASSERT(util::is_pow2(M));
      inst.n_modules = static_cast<std::uint32_t>(M);
      inst.eps_effective = effective_eps(spec.n, inst.n_modules);
      inst.c = memmap::lemma2_min_c(spec.b, spec.k,
                                    std::max(inst.eps_effective, 0.25));
      inst.r = 2 * inst.c - 1;
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      MotEngineConfig cfg;
      cfg.scheme = MotScheme::kCrossbar;
      cfg.n_processors = spec.n;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.prom_lookup = spec.prom_lookup;
      auto engine = std::make_unique<MotEngine>(map, cfg);
      inst.switches = net::summarize(engine->shape()).switches;
      inst.request_hops = engine->request_hops();
      inst.map = std::move(map);
      install_engine(inst, std::move(engine));
      inst.model = "DMBDN (2DMOT)";
      inst.time_unit = "cycles";
      inst.notes = "Fig. 7";
      break;
    }
    case SchemeKind::kLppMot: {
      PRAMSIM_ASSERT(util::is_pow2(spec.n) && spec.n >= 4);
      inst.n_modules = spec.n;  // one module per root processor
      inst.eps_effective = 0.0;
      inst.c = memmap::uw_c(inst.m, spec.b);
      inst.r = 2 * inst.c - 1;
      PRAMSIM_ASSERT_MSG(inst.r <= inst.n_modules,
                         "log-redundancy map needs r <= n modules");
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      MotEngineConfig cfg;
      cfg.scheme = MotScheme::kLppRoots;
      cfg.n_processors = spec.n;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.prom_lookup = spec.prom_lookup;
      auto engine = std::make_unique<MotEngine>(map, cfg);
      inst.switches = net::summarize(engine->shape()).switches;
      inst.request_hops = engine->request_hops();
      inst.map = std::move(map);
      install_engine(inst, std::move(engine));
      inst.model = "DMBDN (2DMOT)";
      inst.time_unit = "cycles";
      inst.notes = "LPP'90";
      break;
    }
    case SchemeKind::kDmmpc: {
      const auto M64 = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(
              std::llround(std::pow(nd, 1.0 + spec.eps))),
          inst.m);
      inst.n_modules = static_cast<std::uint32_t>(M64);
      inst.eps_effective = effective_eps(spec.n, inst.n_modules);
      inst.c = memmap::lemma2_min_c(spec.b, spec.k, spec.eps);
      inst.r = 2 * inst.c - 1;
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      majority::SchedulerConfig cfg;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.n_processors = spec.n;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.all_at_once = spec.all_at_once;
      install_engine(inst,
                     std::make_unique<majority::DmmpcEngine>(map, cfg));
      inst.map = std::move(map);
      inst.model = "DMMPC";
      inst.notes = "Theorem 2";
      break;
    }
    case SchemeKind::kUwMpc: {
      inst.n_modules = spec.n;  // the MPC: one module per processor
      inst.eps_effective = 0.0;
      inst.c = memmap::uw_c(inst.m, spec.b);
      inst.r = 2 * inst.c - 1;
      PRAMSIM_ASSERT_MSG(inst.r <= inst.n_modules,
                         "log-redundancy map needs r <= n modules");
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      majority::SchedulerConfig cfg;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.n_processors = spec.n;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.all_at_once = spec.all_at_once;
      install_engine(inst,
                     std::make_unique<majority::DmmpcEngine>(map, cfg));
      inst.map = std::move(map);
      inst.model = "MPC";
      inst.notes = "UW'87";
      break;
    }
    case SchemeKind::kAltBdn: {
      PRAMSIM_ASSERT(util::is_pow2(spec.n));
      inst.n_modules = spec.n;  // BDN: one module per node
      inst.eps_effective = 0.0;
      inst.c = memmap::uw_c(inst.m, spec.b);
      inst.r = 2 * inst.c - 1;
      PRAMSIM_ASSERT_MSG(inst.r <= inst.n_modules,
                         "log-redundancy map needs r <= n modules");
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      majority::SchedulerConfig cfg;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.n_processors = spec.n;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.all_at_once = spec.all_at_once;
      auto engine = std::make_unique<AltBdnEngine>(map, cfg);
      inst.request_hops = engine->cycles_per_round();
      inst.map = std::move(map);
      install_engine(inst, std::move(engine));
      inst.model = "BDN (sorting)";
      inst.time_unit = "cycles";
      inst.notes = "Alt et al. '87";
      break;
    }
    case SchemeKind::kHbExpander: {
      inst.n_modules = spec.n;  // modules at the expander's nodes
      inst.eps_effective = 0.0;
      inst.c = hb_c(inst.m);
      inst.r = 2 * inst.c - 1;
      PRAMSIM_ASSERT_MSG(inst.r <= inst.n_modules,
                         "log/loglog-redundancy map needs r <= n modules");
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      majority::SchedulerConfig cfg;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.n_processors = spec.n;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.all_at_once = spec.all_at_once;
      auto engine = std::make_unique<HbExpanderEngine>(
          map, cfg, /*graph_degree=*/6, /*graph_seed=*/spec.seed + 101);
      inst.request_hops = engine->cycles_per_round();
      inst.map = std::move(map);
      install_engine(inst, std::move(engine));
      inst.model = "BDN (expander)";
      inst.time_unit = "cycles";
      inst.notes = "HB'88; measured 6-regular expander";
      break;
    }
    case SchemeKind::kRanade: {
      PRAMSIM_ASSERT(util::is_pow2(spec.n));
      inst.n_modules = spec.n;  // one module per butterfly output row
      inst.eps_effective = 0.0;
      inst.c = 1;
      inst.r = 1;
      std::shared_ptr<const memmap::MemoryMap> map =
          memmap::make_single_copy_map(inst.m, inst.n_modules, spec.seed);
      auto engine =
          std::make_unique<RanadeButterflyEngine>(map, spec.n);
      inst.map = std::move(map);
      install_engine(inst, std::move(engine));
      inst.model = "BDN (butterfly)";
      inst.time_unit = "cycles";
      inst.deterministic = false;
      inst.guarantee = "expected only";
      inst.notes = "Ranade'87; no worst-case bound";
      break;
    }
    case SchemeKind::kIda: {
      // Block size b = Theta(log n), d = 2b shares: constant (x2) storage
      // redundancy, Theta(log n) variables processed per access — the
      // opposite trade from the paper's replication.
      const auto block = std::max<std::uint32_t>(
          2, static_cast<std::uint32_t>(util::ilog2_ceil(spec.n)));
      const std::uint32_t d = 2 * block;
      const auto M64 = std::max<std::uint64_t>(
          d, std::min<std::uint64_t>(
                 {static_cast<std::uint64_t>(
                      std::llround(std::pow(nd, 1.0 + spec.eps))),
                  inst.m,
                  std::numeric_limits<std::uint32_t>::max()}));
      inst.n_modules = static_cast<std::uint32_t>(M64);
      inst.eps_effective = effective_eps(spec.n, inst.n_modules);
      // The word-granularity knob lands here in BLOCKS (a region spans
      // whole blocks); region_words below b collapses to the classic
      // one-row-per-block layout.
      const std::uint32_t region_blocks =
          std::max<std::uint32_t>(inst.region_words / block, 1);
      inst.region_words = region_blocks * block;
      inst.memory = std::make_unique<ida::IdaMemory>(
          inst.m, ida::IdaMemoryConfig{.b = block,
                                       .d = d,
                                       .n_modules = inst.n_modules,
                                       .seed = spec.seed,
                                       .check_shares =
                                           spec.ida_check_shares,
                                       .region_blocks = region_blocks});
      if (spec.ida_check_shares) {
        inst.name += "+ck";  // share checksums: detection bought with 2x
      }
      inst.model = "DMMPC";
      inst.guarantee = "deterministic; Theta(log n) work/access";
      inst.notes = "Schuster'87/Rabin'89";
      break;
    }
    case SchemeKind::kHashed: {
      inst.n_modules = spec.n;  // the MPC: one module per processor
      inst.eps_effective = 0.0;
      inst.region_words = 1;  // single-copy hashing has no region layout
      inst.memory = std::make_unique<hashing::MvMemory>(
          inst.m, hashing::MvMemoryConfig{.n_modules = inst.n_modules,
                                          .k_wise = 2,
                                          .seed = spec.seed});
      inst.model = "MPC";
      inst.deterministic = false;
      inst.guarantee = "expected only";
      inst.notes = "MV'84; adversary can force n rounds";
      break;
    }
  }
  inst.storage_factor = inst.memory->storage_redundancy();
  if (spec.cache_lines > 0) {
    // The cache wraps the assembled scheme; engine/map introspection
    // handles stay valid because the wrapper owns the scheme. Fault
    // wrappers (faults::FaultableMemory) go OUTSIDE the cache, so the
    // oracle scores cache-served values too.
    inst.memory = std::make_unique<cache::CachedMemory>(
        std::move(inst.memory),
        cache::CacheConfig{.capacity = spec.cache_lines});
    inst.name += "+cache";
  }
  // Backend selection is uniform: the memory downgrades a request its
  // capabilities (or configuration) cannot honor, and the instance
  // records what is actually in effect.
  inst.backend = inst.memory->set_serve_backend(spec.backend);
  return inst;
}

std::unique_ptr<pram::MemorySystem> make_memory(const SchemeSpec& spec) {
  return std::move(make_scheme(spec).memory);
}

}  // namespace pramsim::core
