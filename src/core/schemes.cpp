#include "core/schemes.hpp"

#include <algorithm>
#include <cmath>

#include "core/alt_engine.hpp"
#include "core/mot_engine.hpp"
#include "network/topology.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::core {

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kHpMot: return "HP-2DMOT";
    case SchemeKind::kCrossbar: return "HP-crossbar";
    case SchemeKind::kLppMot: return "LPP-2DMOT";
    case SchemeKind::kDmmpc: return "HP-DMMPC";
    case SchemeKind::kUwMpc: return "UW-MPC";
    case SchemeKind::kAltBdn: return "Alt-BDN(sort)";
  }
  return "???";
}

namespace {

std::uint64_t vars_for(const SchemeSpec& spec) {
  const auto m = static_cast<std::uint64_t>(
      std::llround(std::pow(static_cast<double>(spec.n), spec.k)));
  return std::max<std::uint64_t>({m, spec.min_vars, spec.n});
}

double effective_eps(std::uint32_t n, std::uint64_t n_modules) {
  return std::log2(static_cast<double>(n_modules)) /
             std::log2(static_cast<double>(n)) -
         1.0;
}

}  // namespace

SchemeInstance make_scheme(const SchemeSpec& spec) {
  PRAMSIM_ASSERT(spec.n >= 4);
  SchemeInstance inst;
  inst.name = to_string(spec.kind);
  inst.m = vars_for(spec);

  const double nd = spec.n;
  switch (spec.kind) {
    case SchemeKind::kHpMot: {
      PRAMSIM_ASSERT(util::is_pow2(spec.n));
      // Square side: at least n (processors at the first n row roots),
      // at least ~n^((1+eps)/2), power of two.
      const auto target_side = static_cast<std::uint64_t>(
          std::llround(std::pow(nd, (1.0 + spec.eps) / 2.0)));
      const std::uint64_t side = std::max<std::uint64_t>(
          spec.n, util::next_pow2(std::max<std::uint64_t>(target_side, 4)));
      const std::uint64_t M = side * side;
      PRAMSIM_ASSERT_MSG(M <= inst.m,
                         "module count exceeds variables; raise k or min_vars");
      inst.n_modules = static_cast<std::uint32_t>(M);
      inst.eps_effective = effective_eps(spec.n, inst.n_modules);
      inst.c = memmap::lemma2_min_c(spec.b, spec.k,
                                    std::max(inst.eps_effective, 0.25));
      inst.r = 2 * inst.c - 1;
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      MotEngineConfig cfg;
      cfg.scheme = MotScheme::kHpLeaves;
      cfg.n_processors = spec.n;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.lca_turnaround = spec.lca_turnaround;
      cfg.prom_lookup = spec.prom_lookup;
      auto engine = std::make_unique<MotEngine>(map, cfg);
      inst.switches =
          net::summarize(engine->shape()).switches;
      inst.request_hops = engine->request_hops();
      inst.map = std::move(map);
      inst.engine = std::move(engine);
      break;
    }
    case SchemeKind::kCrossbar: {
      PRAMSIM_ASSERT(util::is_pow2(spec.n));
      const auto target = static_cast<std::uint64_t>(
          std::llround(std::pow(nd, 1.0 + spec.eps)));
      const std::uint64_t M = std::min<std::uint64_t>(
          util::next_pow2(std::max<std::uint64_t>(target, 4)), inst.m);
      PRAMSIM_ASSERT(util::is_pow2(M));
      inst.n_modules = static_cast<std::uint32_t>(M);
      inst.eps_effective = effective_eps(spec.n, inst.n_modules);
      inst.c = memmap::lemma2_min_c(spec.b, spec.k,
                                    std::max(inst.eps_effective, 0.25));
      inst.r = 2 * inst.c - 1;
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      MotEngineConfig cfg;
      cfg.scheme = MotScheme::kCrossbar;
      cfg.n_processors = spec.n;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.prom_lookup = spec.prom_lookup;
      auto engine = std::make_unique<MotEngine>(map, cfg);
      inst.switches = net::summarize(engine->shape()).switches;
      inst.request_hops = engine->request_hops();
      inst.map = std::move(map);
      inst.engine = std::move(engine);
      break;
    }
    case SchemeKind::kLppMot: {
      PRAMSIM_ASSERT(util::is_pow2(spec.n) && spec.n >= 4);
      inst.n_modules = spec.n;  // one module per root processor
      inst.eps_effective = 0.0;
      inst.c = memmap::uw_c(inst.m, spec.b);
      inst.r = 2 * inst.c - 1;
      PRAMSIM_ASSERT_MSG(inst.r <= inst.n_modules,
                         "log-redundancy map needs r <= n modules");
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      MotEngineConfig cfg;
      cfg.scheme = MotScheme::kLppRoots;
      cfg.n_processors = spec.n;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.prom_lookup = spec.prom_lookup;
      auto engine = std::make_unique<MotEngine>(map, cfg);
      inst.switches = net::summarize(engine->shape()).switches;
      inst.request_hops = engine->request_hops();
      inst.map = std::move(map);
      inst.engine = std::move(engine);
      break;
    }
    case SchemeKind::kDmmpc: {
      const auto M64 = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(
              std::llround(std::pow(nd, 1.0 + spec.eps))),
          inst.m);
      inst.n_modules = static_cast<std::uint32_t>(M64);
      inst.eps_effective = effective_eps(spec.n, inst.n_modules);
      inst.c = memmap::lemma2_min_c(spec.b, spec.k, spec.eps);
      inst.r = 2 * inst.c - 1;
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      majority::SchedulerConfig cfg;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.n_processors = spec.n;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.all_at_once = spec.all_at_once;
      inst.engine = std::make_unique<majority::DmmpcEngine>(map, cfg);
      inst.map = std::move(map);
      break;
    }
    case SchemeKind::kUwMpc: {
      inst.n_modules = spec.n;  // the MPC: one module per processor
      inst.eps_effective = 0.0;
      inst.c = memmap::uw_c(inst.m, spec.b);
      inst.r = 2 * inst.c - 1;
      PRAMSIM_ASSERT_MSG(inst.r <= inst.n_modules,
                         "log-redundancy map needs r <= n modules");
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      majority::SchedulerConfig cfg;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.n_processors = spec.n;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.all_at_once = spec.all_at_once;
      inst.engine = std::make_unique<majority::DmmpcEngine>(map, cfg);
      inst.map = std::move(map);
      break;
    }
    case SchemeKind::kAltBdn: {
      PRAMSIM_ASSERT(util::is_pow2(spec.n));
      inst.n_modules = spec.n;  // BDN: one module per node
      inst.eps_effective = 0.0;
      inst.c = memmap::uw_c(inst.m, spec.b);
      inst.r = 2 * inst.c - 1;
      PRAMSIM_ASSERT_MSG(inst.r <= inst.n_modules,
                         "log-redundancy map needs r <= n modules");
      auto map = std::make_shared<memmap::HashedMap>(inst.m, inst.n_modules,
                                                     inst.r, spec.seed);
      majority::SchedulerConfig cfg;
      cfg.c = inst.c;
      cfg.cluster_size = inst.r;
      cfg.n_processors = spec.n;
      cfg.stage1_turns = spec.stage1_turns;
      cfg.all_at_once = spec.all_at_once;
      auto engine = std::make_unique<AltBdnEngine>(map, cfg);
      inst.request_hops = engine->cycles_per_round();
      inst.map = std::move(map);
      inst.engine = std::move(engine);
      break;
    }
  }
  return inst;
}

std::unique_ptr<majority::MajorityMemory> make_memory(const SchemeSpec& spec) {
  auto inst = make_scheme(spec);
  return std::make_unique<majority::MajorityMemory>(std::move(inst.engine));
}

}  // namespace pramsim::core
