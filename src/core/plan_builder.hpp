// PlanBuilder: combines one raw access batch into an arena-backed
// pram::AccessPlan — the reusable execution state of the serve path.
//
// This subsumes the old free-standing combine_batch()/to_requests()
// helpers (kept below as thin compatibility wrappers): the builder owns
// all the scratch the combining pass needs — the epoch-stamped dedup
// table, the (key, request) sort buffer for module grouping, and the
// arena the plan's SoA arrays live in — so a warmed-up builder combines
// and groups a step with zero heap allocations.
//
// One builder = one plan slot: the emitted plan aliases the builder's
// arena and stays valid until the next build(). The double-buffered
// pipeline keeps two builders and flips between them, letting a generator
// thread build plan N+1 while a worker serves plan N.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "majority/scheduler.hpp"
#include "pram/access_plan.hpp"
#include "pram/memory_system.hpp"
#include "pram/types.hpp"
#include "util/arena.hpp"
#include "util/scratch_map.hpp"

namespace pramsim::core {

/// One P-RAM step after concurrent-access combining: distinct read
/// variables, and distinct writes with their winning values. A variable
/// both read and written appears in both lists (the read sees the
/// pre-step value; the write commits after).
struct CombinedStep {
  std::vector<VarId> reads;
  std::vector<pram::VarWrite> writes;
};

class PlanBuilder {
 public:
  PlanBuilder() = default;
  PlanBuilder(const PlanBuilder&) = delete;
  PlanBuilder& operator=(const PlanBuilder&) = delete;

  /// Combine `batch` and group it for `memory` (per its plan_group_of /
  /// wants_plan_groups). The returned plan aliases this builder's arena:
  /// valid until the next build() on this builder.
  const pram::AccessPlan& build(const pram::AccessBatch& batch,
                                const pram::MemorySystem& memory);

  /// Most recently built plan.
  [[nodiscard]] const pram::AccessPlan& plan() const { return plan_; }

  /// Combine a raw access batch: concurrent reads collapse to one read,
  /// concurrent writes resolve to the lowest-processor-id writer (the
  /// deterministic CW convention used machine-wide). Owning-vector form
  /// of the combining half of build().
  [[nodiscard]] CombinedStep combine(const pram::AccessBatch& batch);

  /// Deduplicate a raw access batch into distinct-variable requests for
  /// engine-level drivers, in first-appearance order across ALL accesses.
  /// A variable both read and written produces a single request that
  /// PRESERVES THE WRITE: op = kWrite and the requester is the winning
  /// (lowest-id) writer, never whichever access happened to come first.
  [[nodiscard]] std::vector<majority::VarRequest> to_requests(
      const pram::AccessBatch& batch);

 private:
  /// var -> index into the array being deduplicated (requests or plan
  /// rows), epoch-cleared per build.
  util::ScratchMap<std::uint32_t> index_;
  /// Winning writer per write row (CW resolution scratch).
  std::vector<ProcId> writer_;
  /// (group key, request index) pairs, sorted to derive the CSR groups.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> sort_scratch_;
  util::Arena arena_;
  pram::AccessPlan plan_;
};

/// Compatibility wrappers over a throwaway PlanBuilder; hot paths should
/// hold a PlanBuilder and reuse it instead.
[[nodiscard]] CombinedStep combine_batch(const pram::AccessBatch& batch);
[[nodiscard]] std::vector<majority::VarRequest> to_requests(
    const pram::AccessBatch& batch);

}  // namespace pramsim::core
