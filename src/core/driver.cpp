#include "core/driver.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "durability/checkpoint.hpp"
#include "durability/wal.hpp"
#include "faults/faultable_memory.hpp"
#include "faults/trace_checker.hpp"
#include "memmap/expansion.hpp"
#include "pram/serve_context.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace pramsim::core {

void TraceRunResult::merge(const TraceRunResult& other) {
  time.merge(other.time);
  work.merge(other.work);
  live_after_stage1.merge(other.live_after_stage1);
  max_queue.merge(other.max_queue);
  steps += other.steps;
  reliability.merge(other.reliability);
  scrub_passes += other.scrub_passes;
  scrub.merge(other.scrub);
  obs.merge(other.obs);
  if (other.breaking_fault_rate >= 0.0 &&
      (breaking_fault_rate < 0.0 ||
       other.breaking_fault_rate < breaking_fault_rate)) {
    breaking_fault_rate = other.breaking_fault_rate;
  }
}

namespace {

void record_step(TraceRunResult& result, const pram::MemStepCost& cost) {
  result.time.add(static_cast<double>(cost.time));
  result.work.add(static_cast<double>(cost.work));
  result.live_after_stage1.add(static_cast<double>(cost.live_after_stage1));
  result.max_queue.add(static_cast<double>(cost.max_queue));
  ++result.steps;
}

/// Interleaved background-scrub cadence (StressOptions scrub knobs).
struct ScrubCadence {
  std::uint32_t interval = 0;  ///< scrub every this many served steps
  std::uint64_t budget = 0;
  obs::Sink* sink = nullptr;  ///< optional: time passes, count repairs

  [[nodiscard]] bool enabled() const { return interval > 0 && budget > 0; }

  /// Run a pass when the cadence says so; `served` is the number of
  /// steps completed on this memory. Accumulates into `result`.
  void maybe_scrub(pram::MemorySystem& memory, std::size_t served,
                   TraceRunResult& result) const {
    if (!enabled() || served % interval != 0) {
      return;
    }
    ++result.scrub_passes;
    pram::ScrubResult pass;
    {
      obs::ScopedPhase timer(
          sink != nullptr && sink->sample(served) ? &sink->phases : nullptr,
          obs::Phase::kScrub);
      pass = memory.scrub(budget);
    }
    if (sink != nullptr) {
      sink->metrics.add("scrub.passes");
      sink->metrics.add("scrub.scanned", pass.scanned);
      sink->metrics.add("scrub.repaired", pass.repaired);
      sink->metrics.add("scrub.relocated", pass.relocated);
      sink->metrics.add("scrub.work", pass.work);
    }
    result.scrub.merge(pass);
  }
};

/// Serve `trace` through the plan path. With `double_buffer` (and a trace
/// long enough to amortize the thread), a generator thread builds plan
/// N+1 into the spare builder slot while this thread serves plan N —
/// batch combining/grouping fully overlaps engine stepping. Results are
/// identical to the serial loop: plans are served strictly in trace
/// order, and plan building never touches memory state (plan_group_of is
/// immutable by contract). Scrub passes run on the serving thread after
/// a step completes, so they are ordered with serving either way.
TraceRunResult run_trace_pipelined(pram::MemorySystem& memory,
                                   std::span<const pram::AccessBatch> trace,
                                   bool double_buffer,
                                   const ScrubCadence& scrub = {},
                                   util::Executor* executor = nullptr,
                                   obs::Sink* sink = nullptr) {
  TraceRunResult result;
  result.storage_factor = memory.storage_redundancy();
  std::vector<pram::Word> values;
  // Sampling decision for step i+1 (0 = never time), shared by the
  // kPlanBuild and kServe timers around that step.
  const auto timing = [sink](std::size_t step) -> obs::PhaseSet* {
    return sink != nullptr && sink->sample(step) ? &sink->phases : nullptr;
  };
  // One context per run: rebound per step, executor attached when the
  // shard level leaves workers free for intra-step (group) fan-out.
  pram::ServeContext ctx({}, executor);
  if (!double_buffer || trace.size() < 4) {
    PlanBuilder builder;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      obs::PhaseSet* phases = timing(i + 1);
      const pram::AccessPlan* plan;
      {
        obs::ScopedPhase timer(phases, obs::Phase::kPlanBuild);
        plan = &builder.build(trace[i], memory);
      }
      values.resize(plan->reads.size());
      ctx.bind(values);
      {
        obs::ScopedPhase timer(phases, obs::Phase::kServe);
        record_step(result, memory.serve(*plan, ctx));
      }
      scrub.maybe_scrub(memory, i + 1, result);
    }
    return result;
  }

  PlanBuilder slots[2];
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t built = 0;   // plans fully built
  std::size_t served = 0;  // plans fully served (their slot is free)
  std::thread generator([&] {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return i < served + 2; });
      }
      {
        // The generator thread writes ONLY the kPlanBuild row; the
        // serving thread writes kServe/kScrub — distinct PhaseSet slots,
        // single writer each (see obs/phase.hpp).
        obs::ScopedPhase timer(timing(i + 1), obs::Phase::kPlanBuild);
        slots[i % 2].build(trace[i], memory);
      }
      {
        const std::lock_guard lock(mutex);
        built = i + 1;
      }
      cv.notify_all();
    }
  });
  for (std::size_t i = 0; i < trace.size(); ++i) {
    {
      std::unique_lock lock(mutex);
      cv.wait(lock, [&] { return built > i; });
    }
    const pram::AccessPlan& plan = slots[i % 2].plan();
    values.resize(plan.reads.size());
    ctx.bind(values);
    {
      obs::ScopedPhase timer(timing(i + 1), obs::Phase::kServe);
      record_step(result, memory.serve(plan, ctx));
    }
    scrub.maybe_scrub(memory, i + 1, result);
    {
      const std::lock_guard lock(mutex);
      served = i + 1;
    }
    cv.notify_all();
  }
  generator.join();
  return result;
}

}  // namespace

TraceRunResult run_trace(pram::MemorySystem& memory,
                         std::span<const pram::AccessBatch> trace) {
  return run_trace_pipelined(memory, trace, /*double_buffer=*/false);
}

SimulationPipeline::SimulationPipeline(SchemeSpec spec)
    : spec_(spec), instance_(make_scheme(spec)) {}

pram::MemStepCost SimulationPipeline::run_batch(const pram::AccessBatch& batch) {
  const pram::AccessPlan& plan = builder_.build(batch, *instance_.memory);
  std::vector<pram::Word> values(plan.reads.size());
  pram::ServeContext ctx(values, &executor_);
  return instance_.memory->serve(plan, ctx);
}

TraceRunResult SimulationPipeline::run_stress(
    const StressOptions& options) const {
  return run_stress_impl(options, nullptr);
}

TraceRunResult SimulationPipeline::run_with_faults(
    const faults::FaultSpec& fault_spec, const StressOptions& options) const {
  return run_stress_impl(options, &fault_spec);
}

TraceRunResult SimulationPipeline::run_stress_impl(
    const StressOptions& options, const faults::FaultSpec* fault_spec) const {
  // Per-run setup hoisted out of the shard loop (it used to be re-derived
  // inside every trial): the family list — including the
  // exclusive_trace_families() default — is resolved exactly once;
  // per-shard setup below only shifts seeds.
  const std::vector<pram::TraceFamily>& families =
      options.families.empty() ? pram::exclusive_trace_families()
                               : options.families;
  const std::uint32_t n = spec_.n;
  const std::uint64_t m = instance_.m;
  const std::size_t trials = std::max<std::size_t>(options.trials, 1);
  // Within-trial sharding: every (trial, family) pair — plus each trial's
  // adversarial phase — is one shard, so trials = 1 workloads spread over
  // the host's threads too.
  const std::size_t stages =
      families.size() + (options.include_map_adversarial ? 1 : 0);
  // Overlap plan building with serving — and hand shards an executor
  // for intra-step group fan-out — only when the shard level is not
  // already saturating the host's cores: a generator thread (or a group
  // worker pool) per shard on top of a full parallel_for would just
  // oversubscribe.
  const bool shard_level_serial =
      util::parallel_workers(trials * stages) == 1;
  const bool double_buffer = options.double_buffer && shard_level_serial;

  std::vector<TraceRunResult> shards(trials * stages);
  util::parallel_for(0, trials * stages, [&](std::size_t s) {
    const std::size_t trial = s / stages;
    const std::size_t stage = s % stages;
    // Fresh memory per shard (same scheme seed: the map under test is
    // fixed; the traffic stream derives from (seed, trial, family)).
    // Under fault injection every shard of a trial shares the trial's
    // fault seed: one machine's static fault set, observed per family.
    auto instance = make_scheme(spec_);
    std::unique_ptr<pram::MemorySystem> memory = std::move(instance.memory);
    if (fault_spec != nullptr) {
      faults::FaultSpec trial_faults = *fault_spec;
      trial_faults.seed += trial * 0xC2B2AE3D27D4EB4FULL;
      memory = std::make_unique<faults::FaultableMemory>(std::move(memory),
                                                         trial_faults);
    }
    util::Rng rng(options.seed + trial * 0x9E3779B97F4A7C15ULL);
    util::Executor executor;
    TraceRunResult& shard = shards[s];
    // Shard-local sink, folded into the merged result in shard order
    // below. Kept outside `shard` while serving: the family stage
    // assigns the whole TraceRunResult at once.
    obs::Sink sink(obs::SinkOptions{options.obs_sample_interval,
                                    options.obs_journal_capacity});
    obs::Sink* obs_sink =
        obs::kEnabled && options.obs_enabled ? &sink : nullptr;
    if (obs_sink != nullptr) {
      memory->set_observer(obs_sink);
    }
    if (stage < families.size()) {
      // Reach this family's stream: family f uses the (f+1)-th split of
      // the trial generator, exactly as the sequential loop drew them.
      for (std::size_t f = 0; f < stage; ++f) {
        (void)rng.split();
      }
      auto family_rng = rng.split();
      const auto trace = pram::make_trace(families[stage], n, m,
                                          options.steps_per_family,
                                          family_rng, options.trace);
      shard = run_trace_pipelined(
          *memory, trace, double_buffer,
          ScrubCadence{options.scrub_interval, options.scrub_budget,
                       obs_sink},
          shard_level_serial ? &executor : nullptr, obs_sink);
    } else {
      for (std::size_t f = 0; f < families.size(); ++f) {
        (void)rng.split();
      }
      // Map-crafted congestion batches when the scheme exposes its map;
      // otherwise the scheme's own adversary (e.g. the hashed baseline's
      // known-hash preimage attack). Schemes with neither are skipped.
      // Generation stays interleaved with serving — never pre-built or
      // double-buffered — so a state-dependent adversary (virtual
      // adversarial_vars) keeps tracking any placement change serving
      // causes (e.g. a rehashing backend redrawing its hash).
      const memmap::MemoryMap* map = memory->memory_map();
      shard.storage_factor = memory->storage_redundancy();
      const ScrubCadence scrub{options.scrub_interval, options.scrub_budget,
                               obs_sink};
      PlanBuilder builder;
      std::vector<pram::Word> values;
      pram::ServeContext ctx({}, shard_level_serial ? &executor : nullptr);
      for (std::size_t step = 0; step < options.steps_per_family; ++step) {
        const auto vars =
            map != nullptr ? memmap::adversarial_batch(*map, n, rng.next())
                           : memory->adversarial_vars(n, rng.next());
        if (vars.empty()) {
          break;
        }
        pram::AccessBatch batch;
        batch.reserve(vars.size());
        for (std::uint32_t i = 0; i < vars.size(); ++i) {
          batch.push_back({ProcId(i % n), pram::AccessOp::kRead, vars[i], 0});
        }
        obs::PhaseSet* phases = obs_sink != nullptr &&
                                        obs_sink->sample(step + 1)
                                    ? &obs_sink->phases
                                    : nullptr;
        const pram::AccessPlan* plan;
        {
          obs::ScopedPhase timer(phases, obs::Phase::kPlanBuild);
          plan = &builder.build(batch, *memory);
        }
        values.resize(plan->reads.size());
        ctx.bind(values);
        {
          obs::ScopedPhase timer(phases, obs::Phase::kServe);
          record_step(shard, memory->serve(*plan, ctx));
        }
        scrub.maybe_scrub(*memory, step + 1, shard);
      }
    }
    shard.reliability = memory->reliability();
    if (obs_sink != nullptr) {
      memory->set_observer(nullptr);
      sink.journal.flush();
      shard.obs = std::move(sink);
    }
  });

  // Deterministic merge in (trial, family, step) order — shard order is
  // fixed by construction, so the fold is identical at any thread count.
  TraceRunResult merged;
  merged.storage_factor = instance_.memory->storage_redundancy();
  if (obs::kEnabled && options.obs_enabled) {
    // Same ring bound for the merged journal as for each shard's.
    merged.obs = obs::Sink(obs::SinkOptions{options.obs_sample_interval,
                                            options.obs_journal_capacity});
  }
  for (const auto& shard : shards) {
    merged.merge(shard);
  }
  merged.obs.journal.flush();
  return merged;
}

FaultSweepResult SimulationPipeline::run_fault_sweep(
    const FaultSweepOptions& options) const {
  FaultSweepResult result;
  result.total.storage_factor = instance_.memory->storage_redundancy();
  for (const double rate : options.rates) {
    const auto level_spec = faults::at_rate(options.proto, rate);
    FaultLevelResult level;
    level.rate = rate;
    level.run = run_with_faults(level_spec, options.stress);
    if (level.run.reliability.wrong_reads > 0) {
      level.run.breaking_fault_rate = rate;
    }
    if (result.first_uncorrectable_rate < 0.0 &&
        level.run.reliability.uncorrectable > 0) {
      result.first_uncorrectable_rate = rate;
    }
    if (options.measure_recovery && !level_spec.inert()) {
      level.recovery_steps =
          run_recovery(level_spec, options.recovery).recovery_steps;
      if (level.recovery_steps > result.worst_recovery_steps) {
        result.worst_recovery_steps = level.recovery_steps;
      }
    }
    result.total.merge(level.run);
    result.levels.push_back(std::move(level));
  }
  return result;
}

const char* to_string(KillPoint point) {
  switch (point) {
    case KillPoint::kCleanShutdown: return "clean_shutdown";
    case KillPoint::kMidWalAppend: return "mid_wal_append";
    case KillPoint::kAfterWalFlush: return "after_wal_flush";
    case KillPoint::kMidCheckpoint: return "mid_checkpoint";
    case KillPoint::kAfterCheckpointPreTruncate:
      return "after_checkpoint_pre_truncate";
  }
  return "unknown";
}

std::vector<KillPoint> all_kill_points() {
  return {KillPoint::kCleanShutdown, KillPoint::kMidWalAppend,
          KillPoint::kAfterWalFlush, KillPoint::kMidCheckpoint,
          KillPoint::kAfterCheckpointPreTruncate};
}

CrashRecoveryResult SimulationPipeline::run_crash_recovery(
    const CrashRecoveryOptions& options,
    const faults::FaultSpec* fault_spec) const {
  namespace fs = std::filesystem;
  CrashRecoveryResult result;
  const DurabilityOptions& dur = options.durability;
  PRAMSIM_ASSERT_MSG(!dur.directory.empty(),
                     "CrashRecoveryOptions needs a durability directory");
  fs::create_directories(dur.directory);
  const std::string wal_path =
      (fs::path(dur.directory) / "wal.log").string();
  // A crash run owns its directory: stale files from a previous run must
  // not leak into this run's recovery.
  fs::remove(wal_path);
  for (const auto& entry : fs::directory_iterator(dur.directory)) {
    if (entry.path().filename().string().rfind("ckpt-", 0) == 0) {
      fs::remove(entry.path());
    }
  }

  const std::size_t steps = std::max<std::size_t>(options.steps, 1);
  // The kill step derives from the seed (decorrelated from the traffic
  // stream), so a matrix sweep over seeds covers kill positions all over
  // the run without hand-picking them.
  util::Rng kill_rng(options.seed ^ 0xD1B54A32D192ED03ULL);
  const std::uint64_t kill =
      options.kill_step != 0
          ? std::min<std::uint64_t>(options.kill_step, steps)
          : 1 + kill_rng.below(steps);
  result.kill_step = kill;

  util::Rng trace_rng(options.seed);
  const auto trace = pram::make_trace(options.family, spec_.n, instance_.m,
                                      steps, trace_rng, options.trace);

  obs::Sink sink(obs::SinkOptions{options.obs_sample_interval,
                                  options.obs_journal_capacity});
  obs::Sink* obs_sink =
      obs::kEnabled && options.obs_enabled ? &sink : nullptr;

  // The crashed run, the recovered machine, and the reference run must
  // be three instances of the SAME configuration (scheme seed and fault
  // seed included), or restore/compare would be meaningless.
  const auto build_memory = [&]() -> std::unique_ptr<pram::MemorySystem> {
    auto instance = make_scheme(spec_);
    std::unique_ptr<pram::MemorySystem> memory =
        std::move(instance.memory);
    if (fault_spec != nullptr) {
      memory = std::make_unique<faults::FaultableMemory>(std::move(memory),
                                                         *fault_spec);
    }
    return memory;
  };

  durability::Wal::RecordSpan torn_span;
  {
    auto memory = build_memory();
    if (obs_sink != nullptr) {
      memory->set_observer(obs_sink);
    }
    // Fault-onset acknowledgements: the durable run logs each realized
    // onset once the step clock crosses it, so the post-crash log shows
    // which failures the run had already acknowledged.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> onsets;
    if (fault_spec != nullptr) {
      const auto& model =
          static_cast<faults::FaultableMemory*>(memory.get())->model();
      for (const auto module : model.dead_modules()) {
        onsets.emplace_back(model.module_onset(module), module.index());
      }
      std::sort(onsets.begin(), onsets.end());
    }
    std::size_t onset_cursor = 0;

    durability::Wal wal({wal_path, dur.wal_flush_interval}, obs_sink);
    durability::Checkpointer checkpointer(
        {dur.directory, dur.keep_checkpoints}, obs_sink);

    PlanBuilder builder;
    std::vector<pram::Word> values;
    util::Executor executor;
    pram::ServeContext ctx({}, &executor);
    for (std::uint64_t step = 1; step <= kill; ++step) {
      const pram::AccessPlan* plan;
      plan = &builder.build(trace[step - 1], *memory);
      values.resize(plan->reads.size());
      ctx.bind(values);
      (void)memory->serve(*plan, ctx);
      while (onset_cursor < onsets.size() &&
             onsets[onset_cursor].first <= step) {
        wal.append_onset(step, onsets[onset_cursor].second);
        ++onset_cursor;
      }
      wal.append_step(step, plan->writes);
      if (step == kill) {
        break;
      }
      wal.maybe_flush(step);
      if (dur.checkpoint_interval != 0 &&
          step % dur.checkpoint_interval == 0) {
        wal.flush();
        checkpointer.write(*memory, step);
        wal.truncate_through(step);
      }
    }

    switch (options.kill_point) {
      case KillPoint::kCleanShutdown:
        wal.flush();
        checkpointer.write(*memory, kill);
        wal.truncate_through(kill);
        break;
      case KillPoint::kMidWalAppend:
        // Flush everything, then (post-scope) cut the file inside the
        // final record's byte span: the classic torn final write.
        wal.flush();
        torn_span = wal.last_record();
        break;
      case KillPoint::kAfterWalFlush:
        wal.flush();
        break;
      case KillPoint::kMidCheckpoint: {
        // The WAL is durable through the kill step; the checkpoint that
        // was being written when the process died is a torn prefix on
        // disk. Recovery must reject it and fall back.
        wal.flush();
        const std::vector<std::uint8_t> image =
            durability::Checkpointer::file_image(*memory, kill);
        const std::size_t cut = 1 + kill_rng.below(image.size() - 1);
        const std::string path =
            durability::Checkpointer::path_for(dur.directory, kill);
        std::FILE* file = std::fopen(path.c_str(), "wb");
        PRAMSIM_ASSERT(file != nullptr);
        PRAMSIM_ASSERT(std::fwrite(image.data(), 1, cut, file) == cut);
        std::fclose(file);
        break;
      }
      case KillPoint::kAfterCheckpointPreTruncate:
        // Checkpoint durable, truncate never ran: the log still holds
        // records the checkpoint covers; replay must filter them.
        wal.flush();
        checkpointer.write(*memory, kill);
        break;
    }
    result.checkpoint_bytes = checkpointer.last_bytes();
    if (obs_sink != nullptr) {
      memory->set_observer(nullptr);
    }
  }  // the crash: Wal closes here WITHOUT flushing any buffered tail

  if (options.kill_point == KillPoint::kMidWalAppend &&
      torn_span.length > 1) {
    fs::resize_file(wal_path, torn_span.offset + 1 +
                                  kill_rng.below(torn_span.length - 1));
  }
  result.wal_bytes = fs::exists(wal_path) ? fs::file_size(wal_path) : 0;

  // Restart: a fresh machine recovers from what survived on disk.
  auto recovered = build_memory();
  if (obs_sink != nullptr) {
    recovered->set_observer(obs_sink);
  }
  util::Stopwatch timer;
  result.recovery = durability::recover(*recovered, wal_path,
                                        dur.directory, dur.scrub_budget,
                                        obs_sink);
  result.recovery_seconds = timer.elapsed_seconds();
  result.durable_step = result.recovery.recovered_step;
  if (obs_sink != nullptr) {
    recovered->set_observer(nullptr);
  }

  // Reference: an uninterrupted run of the same trace, stopped at the
  // durable horizon. Its committed-write trace doubles as the oracle for
  // the zero-lost-durable-writes check.
  auto reference = build_memory();
  faults::TraceChecker committed;
  {
    PlanBuilder builder;
    std::vector<pram::Word> values;
    util::Executor executor;
    pram::ServeContext ctx({}, &executor);
    for (std::uint64_t step = 1; step <= result.durable_step; ++step) {
      const pram::AccessPlan* plan =
          &builder.build(trace[step - 1], *reference);
      values.resize(plan->reads.size());
      ctx.bind(values);
      (void)reference->serve(*plan, ctx);
      for (const pram::VarWrite& write : plan->writes) {
        committed.record_write(write.var, write.value);
      }
    }
  }

  result.bit_exact = true;
  const std::uint64_t m = reference->size();
  for (std::uint64_t v = 0; v < m; ++v) {
    const VarId var(static_cast<std::uint32_t>(v));
    if (reference->peek(var) != recovered->peek(var)) {
      result.bit_exact = false;
    }
    ++result.vars_checked;
  }
  // Under fault injection peek is fault-aware (a dead module's loss is
  // visible in BOTH instances), so the ideal-value comparison is only
  // meaningful fault-free; the bit_exact reference comparison above is
  // the authoritative check either way.
  if (fault_spec == nullptr) {
    for (const auto& [var, value] : committed.ideal()) {
      if (recovered->peek(VarId(static_cast<std::uint32_t>(var))) !=
          value) {
        ++result.lost_committed_writes;
      }
    }
  }
  if (obs_sink != nullptr) {
    sink.journal.flush();
    result.obs = std::move(sink);
  }
  return result;
}

RecoveryResult SimulationPipeline::run_recovery(
    const faults::FaultSpec& fault_spec,
    const RecoveryOptions& options) const {
  RecoveryResult result;
  // One fresh machine, wrapped for injection + oracle checking; the whole
  // probe is served on this thread so the trajectory is bit-identical at
  // any worker-thread count.
  auto instance = make_scheme(spec_);
  const std::uint64_t m = instance.m;
  auto memory = std::make_unique<faults::FaultableMemory>(
      std::move(instance.memory), fault_spec);
  result.onset_step =
      static_cast<std::int64_t>(memory->model().first_onset());

  obs::Sink* obs_sink = nullptr;
  if (obs::kEnabled && options.obs_enabled) {
    result.obs = obs::Sink(obs::SinkOptions{options.obs_sample_interval,
                                            options.obs_journal_capacity});
    obs_sink = &result.obs;
    memory->set_observer(obs_sink);
  }

  util::Rng rng(options.seed);
  const auto trace = pram::make_trace(options.family, spec_.n, m,
                                      options.steps, rng, options.trace);
  const ScrubCadence scrub{options.scrub_interval, options.scrub_budget,
                           obs_sink};

  PlanBuilder builder;
  std::vector<pram::Word> values;
  util::Executor executor;
  pram::ServeContext ctx({}, &executor);
  pram::ReliabilityStats prev;
  result.trajectory.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    obs::PhaseSet* phases =
        obs_sink != nullptr && obs_sink->sample(i + 1) ? &obs_sink->phases
                                                       : nullptr;
    const pram::AccessPlan* plan;
    {
      obs::ScopedPhase timer(phases, obs::Phase::kPlanBuild);
      plan = &builder.build(trace[i], *memory);
    }
    values.resize(plan->reads.size());
    ctx.bind(values);
    {
      obs::ScopedPhase timer(phases, obs::Phase::kServe);
      (void)memory->serve(*plan, ctx);
    }
    // Scrub AFTER sampling? No: scrub between steps, then sample, so a
    // step's point reflects the reads it served and the repairs that
    // followed it — the next step is the first to benefit.
    TraceRunResult scrub_sink;
    scrub.maybe_scrub(*memory, i + 1, scrub_sink);
    result.scrub.merge(scrub_sink.scrub);

    const pram::ReliabilityStats now = memory->reliability();
    RecoveryPoint point;
    point.step = i + 1;
    point.reads = now.reads_served - prev.reads_served;
    point.masked = now.faults_masked - prev.faults_masked;
    point.uncorrectable = now.uncorrectable - prev.uncorrectable;
    point.wrong = now.wrong_reads - prev.wrong_reads;
    point.repaired = now.units_repaired - prev.units_repaired;
    point.relocated = now.units_relocated - prev.units_relocated;
    point.degraded_rate =
        point.reads > 0 ? static_cast<double>(point.masked +
                                              point.uncorrectable) /
                              static_cast<double>(point.reads)
                        : 0.0;
    prev = now;
    result.trajectory.push_back(point);
  }
  result.reliability = memory->reliability();
  if (obs_sink != nullptr) {
    memory->set_observer(nullptr);
    result.obs.journal.flush();
  }

  // Read the recovery time off the trajectory: the first over-threshold
  // step is the injury, and recovery is the first step from which the
  // degraded rate STAYS at or below the threshold.
  std::int64_t last_bad = -1;
  for (const auto& point : result.trajectory) {
    result.peak_degraded_rate =
        std::max(result.peak_degraded_rate, point.degraded_rate);
    if (point.degraded_rate > options.recovery_threshold) {
      if (result.first_degraded_step < 0) {
        result.first_degraded_step = static_cast<std::int64_t>(point.step);
      }
      last_bad = static_cast<std::int64_t>(point.step);
    }
  }
  if (!result.trajectory.empty()) {
    result.final_degraded_rate = result.trajectory.back().degraded_rate;
  }
  if (result.first_degraded_step >= 0) {
    const auto last_step =
        static_cast<std::int64_t>(result.trajectory.back().step);
    if (last_bad < last_step) {
      result.recovered_step = last_bad + 1;
      result.recovery_steps =
          result.recovered_step - result.first_degraded_step;
    }
  }
  return result;
}

}  // namespace pramsim::core
