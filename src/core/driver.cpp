#include "core/driver.hpp"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "faults/faultable_memory.hpp"
#include "memmap/expansion.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace pramsim::core {

CombinedStep combine_batch(const pram::AccessBatch& batch) {
  CombinedStep step;
  struct WriteSlot {
    std::size_t index;
    ProcId writer;
  };
  std::unordered_set<std::uint32_t> seen_read;
  std::unordered_map<std::uint32_t, WriteSlot> writes;
  step.reads.reserve(batch.size());
  step.writes.reserve(batch.size());
  for (const auto& access : batch) {
    if (access.op == pram::AccessOp::kRead) {
      if (seen_read.insert(access.var.value()).second) {
        step.reads.push_back(access.var);
      }
      continue;
    }
    const auto [it, fresh] = writes.try_emplace(
        access.var.value(), WriteSlot{step.writes.size(), access.proc});
    if (fresh) {
      step.writes.push_back({access.var, access.value});
    } else if (access.proc.value() < it->second.writer.value()) {
      // Lowest processor id wins — the deterministic CW convention.
      step.writes[it->second.index].value = access.value;
      it->second.writer = access.proc;
    }
  }
  return step;
}

std::vector<majority::VarRequest> to_requests(const pram::AccessBatch& batch) {
  std::vector<majority::VarRequest> requests;
  requests.reserve(batch.size());
  std::unordered_map<std::uint32_t, std::size_t> index;
  index.reserve(batch.size());
  for (const auto& access : batch) {
    const auto [it, fresh] = index.try_emplace(access.var.value(),
                                               requests.size());
    if (fresh) {
      requests.push_back({access.var, access.proc, access.op});
      continue;
    }
    auto& request = requests[it->second];
    if (access.op != pram::AccessOp::kWrite) {
      continue;  // reads never displace an existing request
    }
    // A write always takes over the request; among writers the lowest
    // processor id wins (deterministic CW convention).
    if (request.op != pram::AccessOp::kWrite ||
        access.proc.value() < request.requester.value()) {
      request.requester = access.proc;
    }
    request.op = pram::AccessOp::kWrite;
  }
  return requests;
}

void TraceRunResult::merge(const TraceRunResult& other) {
  time.merge(other.time);
  work.merge(other.work);
  live_after_stage1.merge(other.live_after_stage1);
  max_queue.merge(other.max_queue);
  steps += other.steps;
  reliability.merge(other.reliability);
  if (other.breaking_fault_rate >= 0.0 &&
      (breaking_fault_rate < 0.0 ||
       other.breaking_fault_rate < breaking_fault_rate)) {
    breaking_fault_rate = other.breaking_fault_rate;
  }
}

namespace {

void record_step(TraceRunResult& result, const pram::MemStepCost& cost) {
  result.time.add(static_cast<double>(cost.time));
  result.work.add(static_cast<double>(cost.work));
  result.live_after_stage1.add(static_cast<double>(cost.live_after_stage1));
  result.max_queue.add(static_cast<double>(cost.max_queue));
  ++result.steps;
}

pram::MemStepCost serve_batch(pram::MemorySystem& memory,
                              const pram::AccessBatch& batch) {
  const auto combined = combine_batch(batch);
  std::vector<pram::Word> values(combined.reads.size());
  return memory.step(combined.reads, values, combined.writes);
}

}  // namespace

TraceRunResult run_trace(pram::MemorySystem& memory,
                         std::span<const pram::AccessBatch> trace) {
  TraceRunResult result;
  result.storage_factor = memory.storage_redundancy();
  for (const auto& batch : trace) {
    record_step(result, serve_batch(memory, batch));
  }
  return result;
}

SimulationPipeline::SimulationPipeline(SchemeSpec spec)
    : spec_(spec), instance_(make_scheme(spec)) {}

pram::MemStepCost SimulationPipeline::run_batch(const pram::AccessBatch& batch) {
  return serve_batch(*instance_.memory, batch);
}

TraceRunResult SimulationPipeline::run_stress(
    const StressOptions& options) const {
  return run_stress_impl(options, nullptr);
}

TraceRunResult SimulationPipeline::run_with_faults(
    const faults::FaultSpec& fault_spec, const StressOptions& options) const {
  return run_stress_impl(options, &fault_spec);
}

TraceRunResult SimulationPipeline::run_stress_impl(
    const StressOptions& options, const faults::FaultSpec* fault_spec) const {
  const std::vector<pram::TraceFamily>& families =
      options.families.empty() ? pram::exclusive_trace_families()
                               : options.families;
  const std::uint32_t n = spec_.n;
  const std::uint64_t m = instance_.m;
  const std::size_t trials = std::max<std::size_t>(options.trials, 1);

  std::vector<TraceRunResult> shards(trials);
  util::parallel_for(0, trials, [&](std::size_t trial) {
    // Fresh memory per shard (same scheme seed: the map under test is
    // fixed; the traffic seed shifts per trial). Under fault injection
    // the per-trial fault seed shifts too: each trial is an independent
    // machine with its own static fault set at the same intensity.
    auto instance = make_scheme(spec_);
    std::unique_ptr<pram::MemorySystem> memory = std::move(instance.memory);
    if (fault_spec != nullptr) {
      faults::FaultSpec trial_faults = *fault_spec;
      trial_faults.seed += trial * 0xC2B2AE3D27D4EB4FULL;
      memory = std::make_unique<faults::FaultableMemory>(std::move(memory),
                                                         trial_faults);
    }
    util::Rng rng(options.seed + trial * 0x9E3779B97F4A7C15ULL);
    TraceRunResult& total = shards[trial];
    total.storage_factor = memory->storage_redundancy();
    for (const auto family : families) {
      auto family_rng = rng.split();
      const auto trace =
          pram::make_trace(family, n, m, options.steps_per_family, family_rng);
      total.merge(run_trace(*memory, trace));
    }
    if (options.include_map_adversarial) {
      const memmap::MemoryMap* map = memory->memory_map();
      for (std::size_t s = 0; s < options.steps_per_family; ++s) {
        // Map-crafted congestion batches when the scheme exposes its
        // map; otherwise the scheme's own adversary (e.g. the hashed
        // baseline's known-hash preimage attack). Schemes with neither
        // are skipped.
        const auto vars =
            map != nullptr
                ? memmap::adversarial_batch(*map, n, rng.next())
                : memory->adversarial_vars(n, rng.next());
        if (vars.empty()) {
          break;
        }
        pram::AccessBatch batch;
        batch.reserve(vars.size());
        for (std::uint32_t i = 0; i < vars.size(); ++i) {
          batch.push_back(
              {ProcId(i % n), pram::AccessOp::kRead, vars[i], 0});
        }
        record_step(total, serve_batch(*memory, batch));
      }
    }
    total.reliability = memory->reliability();
  });

  TraceRunResult merged;
  merged.storage_factor = instance_.memory->storage_redundancy();
  for (const auto& shard : shards) {
    merged.merge(shard);
  }
  return merged;
}

FaultSweepResult SimulationPipeline::run_fault_sweep(
    const FaultSweepOptions& options) const {
  FaultSweepResult result;
  result.total.storage_factor = instance_.memory->storage_redundancy();
  for (const double rate : options.rates) {
    const auto level_spec = faults::at_rate(options.proto, rate);
    FaultLevelResult level;
    level.rate = rate;
    level.run = run_with_faults(level_spec, options.stress);
    if (level.run.reliability.wrong_reads > 0) {
      level.run.breaking_fault_rate = rate;
    }
    if (result.first_uncorrectable_rate < 0.0 &&
        level.run.reliability.uncorrectable > 0) {
      result.first_uncorrectable_rate = rate;
    }
    result.total.merge(level.run);
    result.levels.push_back(std::move(level));
  }
  return result;
}

}  // namespace pramsim::core
