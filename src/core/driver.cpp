#include "core/driver.hpp"

#include <unordered_set>

#include "memmap/expansion.hpp"
#include "util/rng.hpp"

namespace pramsim::core {

std::vector<majority::VarRequest> to_requests(const pram::AccessBatch& batch) {
  std::vector<majority::VarRequest> requests;
  requests.reserve(batch.size());
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(batch.size());
  for (const auto& access : batch) {
    if (seen.insert(access.var.value()).second) {
      requests.push_back({access.var, access.proc});
    }
  }
  return requests;
}

TraceRunResult run_trace(majority::AccessEngine& engine,
                         std::span<const pram::AccessBatch> trace) {
  TraceRunResult result;
  for (const auto& batch : trace) {
    const auto requests = to_requests(batch);
    const auto step = engine.run_step(requests);
    result.time.add(static_cast<double>(step.time));
    result.work.add(static_cast<double>(step.work));
    result.live_after_stage1.add(
        static_cast<double>(step.stats.live_after_stage1));
    ++result.steps;
  }
  return result;
}

TraceRunResult run_stress(majority::AccessEngine& engine, std::uint32_t n,
                          std::uint64_t m, std::size_t steps_per_family,
                          std::uint64_t seed,
                          std::span<const pram::TraceFamily> families,
                          bool include_map_adversarial) {
  util::Rng rng(seed);
  TraceRunResult total;
  for (const auto family : families) {
    auto family_rng = rng.split();
    const auto trace =
        pram::make_trace(family, n, m, steps_per_family, family_rng);
    const auto partial = run_trace(engine, trace);
    total.time.merge(partial.time);
    total.work.merge(partial.work);
    total.live_after_stage1.merge(partial.live_after_stage1);
    total.steps += partial.steps;
  }
  if (include_map_adversarial) {
    for (std::size_t s = 0; s < steps_per_family; ++s) {
      const auto vars =
          memmap::adversarial_batch(engine.map(), n, rng.next());
      std::vector<majority::VarRequest> requests;
      requests.reserve(vars.size());
      for (std::uint32_t i = 0; i < vars.size(); ++i) {
        requests.push_back({vars[i], ProcId(i % n)});
      }
      const auto step = engine.run_step(requests);
      total.time.add(static_cast<double>(step.time));
      total.work.add(static_cast<double>(step.work));
      total.live_after_stage1.add(
          static_cast<double>(step.stats.live_after_stage1));
      ++total.steps;
    }
  }
  return total;
}

}  // namespace pramsim::core
