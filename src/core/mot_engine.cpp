#include "core/mot_engine.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/prom.hpp"
#include "network/paths.hpp"
#include "network/router.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::core {

const char* to_string(MotScheme scheme) {
  switch (scheme) {
    case MotScheme::kHpLeaves: return "HP-2DMOT(leaves)";
    case MotScheme::kLppRoots: return "LPP-2DMOT(roots)";
    case MotScheme::kCrossbar: return "HP-crossbar(nxM)";
  }
  return "???";
}

MotEngine::MotEngine(std::shared_ptr<const memmap::MemoryMap> map,
                     MotEngineConfig config)
    : map_(std::move(map)), config_(config) {
  PRAMSIM_ASSERT(map_ != nullptr);
  PRAMSIM_ASSERT(config_.n_processors >= 1);
  PRAMSIM_ASSERT(map_->redundancy() == 2 * config_.c - 1);
  const std::uint32_t M = map_->num_modules();
  switch (config_.scheme) {
    case MotScheme::kHpLeaves: {
      const auto side = static_cast<std::uint32_t>(
          util::isqrt(static_cast<std::uint64_t>(M)));
      PRAMSIM_ASSERT_MSG(static_cast<std::uint64_t>(side) * side == M,
                         "kHpLeaves requires a square module count");
      PRAMSIM_ASSERT_MSG(config_.n_processors <= side,
                         "processors sit at the first n row-tree roots");
      shape_ = net::square_mot(static_cast<std::uint32_t>(side));
      const auto depth = static_cast<std::uint64_t>(util::ilog2_floor(side));
      request_hops_ = 3 * depth + 1;
      break;
    }
    case MotScheme::kLppRoots: {
      PRAMSIM_ASSERT_MSG(M == config_.n_processors,
                         "kLppRoots has one module per root processor");
      shape_ = net::square_mot(static_cast<std::uint32_t>(M));
      const auto depth = static_cast<std::uint64_t>(util::ilog2_floor(M));
      request_hops_ = 2 * depth + 1;
      break;
    }
    case MotScheme::kCrossbar: {
      shape_ = net::rect_mot(config_.n_processors, M);
      request_hops_ =
          static_cast<std::uint64_t>(util::ilog2_floor(M)) +
          static_cast<std::uint64_t>(util::ilog2_floor(config_.n_processors)) +
          1;
      break;
    }
  }
  const std::uint64_t round_trip = 2 * request_hops_ - 1;
  phase_budget_ = config_.phase_budget_cycles != 0
                      ? config_.phase_budget_cycles
                      : 2 * round_trip + config_.cluster_size;
  phase_overhead_ =
      config_.phase_overhead_cycles != ~0ULL
          ? config_.phase_overhead_cycles
          : (config_.n_processors > 1
                 ? static_cast<std::uint64_t>(
                       util::ilog2_ceil(config_.n_processors))
                 : 0);
}

std::vector<net::EdgeKey> MotEngine::round_trip_path(
    std::uint32_t proc, std::uint32_t module) const {
  net::Path request;
  switch (config_.scheme) {
    case MotScheme::kHpLeaves: {
      const std::uint32_t side = shape_.rows;
      request = net::hp_request_path(side, proc, module / side, module % side,
                                     config_.lca_turnaround);
      break;
    }
    case MotScheme::kLppRoots:
    case MotScheme::kCrossbar:
      request = net::root_module_request_path(shape_, proc, module);
      break;
  }
  // Reply retraces everything but the module port.
  net::Path back(request.begin(), request.end() - 1);
  net::append(request, net::reversed(back));
  return request;
}

majority::EngineResult MotEngine::run_step(
    std::span<const majority::VarRequest> requests) {
  const std::uint32_t r = map_->redundancy();
  const std::uint32_t c = config_.c;
  const std::uint32_t s = std::max<std::uint32_t>(config_.cluster_size, 1);

  majority::EngineResult result;
  result.accessed_mask.assign(requests.size(), 0);
  if (requests.empty()) {
    return result;
  }

  // ---- optional P-ROM address-translation phase ----------------------
  // Before any copy access, every requester fetches its variable's map
  // entry from the distributed table (one routed round trip to the
  // entry's home module). This is the paper's conclusion-section scheme;
  // with it, processors need no local O(m log rM)-bit tables.
  if (config_.prom_lookup) {
    std::vector<net::Packet> lookups;
    lookups.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto home =
          prom_home_module(requests[i].var, map_->num_modules());
      net::Packet packet;
      packet.id = static_cast<std::uint32_t>(i);
      packet.path = round_trip_path(
          requests[i].requester.value() % config_.n_processors,
          home.value());
      lookups.push_back(std::move(packet));
    }
    const auto report = net::route_all(lookups, /*max_cycles=*/1'000'000);
    PRAMSIM_ASSERT_MSG(report.delivered == lookups.size(),
                       "P-ROM lookup phase failed to complete");
    result.time += report.cycles;
    prom_cycles_ += report.cycles;
  }

  struct State {
    std::uint32_t cluster = 0;
    std::uint32_t member = 0;
    std::uint32_t accessed = 0;
    std::uint64_t mask = 0;
    bool dead = false;
    std::vector<ModuleId> copies;
  };
  std::vector<State> states(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    states[i].cluster = requests[i].requester.value() / s;
    states[i].member = requests[i].requester.value() % s;
    states[i].copies = map_->copies(requests[i].var);
  }

  const std::uint32_t n_clusters = (config_.n_processors + s - 1) / s;
  std::uint64_t budget = phase_budget_;
  std::uint32_t packet_id = 0;

  // Runs one routed phase for the given active request indices; returns
  // the number of copy accesses completed.
  auto run_phase = [&](const std::vector<std::uint32_t>& active) {
    std::vector<net::Packet> packets;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> origin;  // req, copy
    for (const auto idx : active) {
      State& st = states[idx];
      if (st.dead) {
        continue;
      }
      for (std::uint32_t copy = 0; copy < r; ++copy) {
        if ((st.mask >> copy) & 1ULL) {
          continue;
        }
        // Cluster member `copy mod s` handles this copy: the packet
        // starts from that processor's row-tree root. Members take turns
        // injecting (injected_at staggers same-source packets).
        const std::uint32_t proc =
            (st.cluster * s + copy % s) % config_.n_processors;
        net::Packet packet;
        packet.id = packet_id++;
        packet.injected_at = copy / s;  // serialize a member's own packets
        packet.path = round_trip_path(proc, st.copies[copy].value());
        packets.push_back(std::move(packet));
        origin.emplace_back(static_cast<std::uint32_t>(idx), copy);
      }
    }
    if (packets.empty()) {
      return std::uint64_t{0};
    }
    const auto report = net::route_all(packets, budget);
    result.time += report.cycles + phase_overhead_;
    result.stats.max_queue =
        std::max(result.stats.max_queue, report.max_edge_queue);
    std::uint64_t completed = 0;
    for (std::size_t p = 0; p < packets.size(); ++p) {
      if (!packets[p].delivered()) {
        continue;
      }
      State& st = states[origin[p].first];
      if (st.dead) {
        continue;  // copies beyond c still count as work, not access
      }
      st.mask |= 1ULL << origin[p].second;
      ++st.accessed;
      ++completed;
      ++result.work;
      if (st.accessed >= c) {
        st.dead = true;
      }
    }
    ++result.stats.phases;
    result.stats.live_per_phase.push_back(static_cast<std::uint64_t>(
        std::count_if(states.begin(), states.end(),
                      [](const State& st) { return !st.dead; })));
    return completed;
  };

  auto all_dead = [&] {
    return std::all_of(states.begin(), states.end(),
                       [](const State& st) { return st.dead; });
  };

  // ---- stage 1: interleaved cluster turns ----------------------------
  std::unordered_map<std::uint64_t, std::uint32_t> slot;
  for (std::uint32_t i = 0; i < states.size(); ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(states[i].cluster) << 32) |
        states[i].member;
    slot[key] = i;
  }
  const std::uint64_t stage1_phases =
      static_cast<std::uint64_t>(config_.stage1_turns) * s;
  std::vector<std::uint32_t> active;
  for (std::uint64_t phase = 0; phase < stage1_phases && !all_dead();
       ++phase) {
    active.clear();
    for (std::uint32_t k = 0; k < n_clusters; ++k) {
      const auto member = static_cast<std::uint32_t>((phase + k) % s);
      const auto it =
          slot.find((static_cast<std::uint64_t>(k) << 32) | member);
      if (it != slot.end() && !states[it->second].dead) {
        active.push_back(it->second);
      }
    }
    if (active.empty()) {
      continue;
    }
    run_phase(active);
    ++result.stats.stage1_phases;
  }
  result.stats.live_after_stage1 = static_cast<std::uint64_t>(
      std::count_if(states.begin(), states.end(),
                    [](const State& st) { return !st.dead; }));

  // ---- stage 2: drain leftovers, one variable per cluster ------------
  std::vector<std::uint32_t> pending;
  for (std::uint32_t i = 0; i < states.size(); ++i) {
    if (!states[i].dead) {
      pending.push_back(i);
    }
  }
  std::size_t next_pending = 0;
  std::vector<std::uint32_t> assigned;
  auto refill = [&] {
    assigned.erase(
        std::remove_if(assigned.begin(), assigned.end(),
                       [&](std::uint32_t i) { return states[i].dead; }),
        assigned.end());
    while (assigned.size() < n_clusters && next_pending < pending.size()) {
      const auto i = pending[next_pending++];
      if (!states[i].dead) {
        assigned.push_back(i);
      }
    }
  };
  refill();
  while (!assigned.empty()) {
    const auto completed = run_phase(assigned);
    ++result.stats.stage2_phases;
    if (completed == 0) {
      // Phase budget too tight for the current congestion; widen it so
      // the protocol always terminates (never triggers at the defaults).
      budget *= 2;
    }
    refill();
  }

  for (std::size_t i = 0; i < states.size(); ++i) {
    PRAMSIM_ASSERT(states[i].accessed >= c);
    result.accessed_mask[i] = states[i].mask;
  }
  return result;
}

}  // namespace pramsim::core
