// Scheme factory: one entry point that assembles each of the memory
// organizations studied (or contrasted) in the paper, with all parameters
// derived from (n, k, eps, b, seed):
//
//  | kind        | machine model        | interconnect     | redundancy    |
//  |-------------|----------------------|------------------|---------------|
//  | kHpMot      | DMBDN (Theorem 3)    | sqrt(M) x sqrt(M)| Theta(1)      |
//  |             |                      | 2DMOT, modules   | (Lemma 2)     |
//  |             |                      | at leaves        |               |
//  | kCrossbar   | DMBDN (Fig. 7)       | n x M 2DMOT      | Theta(1)      |
//  | kLppMot     | BDN (LPP'90 baseline)| n x n 2DMOT,     | Theta(log n)  |
//  |             |                      | modules at roots |               |
//  | kDmmpc      | DMMPC (Theorem 2)    | complete K_{n,M} | Theta(1)      |
//  | kUwMpc      | MPC (UW'87 baseline) | complete K_n     | Theta(log m)  |
//  | kAltBdn     | BDN (Alt et al. '87) | sorting network  | Theta(log m)  |
//  | kHbExpander | BDN (HB'88 baseline) | random-regular   | Theta(log m / |
//  |             |                      | expander         |  loglog m)    |
//  | kRanade     | BDN (Ranade '87)     | butterfly        | 1 (hashed,    |
//  |             |                      |                  |  probabilistic)|
//  | kIda        | DMMPC (Schuster '87) | complete K_{n,M} | storage d/b   |
//  |             |                      |                  | = Theta(1)    |
//  | kHashed     | MPC (MV'84 baseline) | complete K_n     | 1 (hashed,    |
//  |             |                      |                  |  probabilistic)|
//
// Every kind yields a pram::MemorySystem — the scheme-agnostic engine
// interface — so any organization plugs into pram::Machine and into the
// core::SimulationPipeline stress driver with zero per-scheme branching.
//
// Geometry notes: the square 2DMOT hosts processors at the first n
// row-tree roots, so its side is max(n, ~n^((1+eps)/2)) rounded to a power
// of two; with the default eps = 1 the side is exactly n and M = n^2. The
// scheme's effective granularity exponent (derived from the actual module
// count) feeds the Lemma 2 threshold so redundancy is always honest.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "majority/engine.hpp"
#include "majority/majority_memory.hpp"
#include "memmap/memory_map.hpp"
#include "memmap/params.hpp"
#include "pram/memory_system.hpp"

namespace pramsim::core {

enum class SchemeKind : std::uint8_t {
  kHpMot,       ///< the paper's contribution (Theorem 3)
  kCrossbar,    ///< Fig. 7 variant
  kLppMot,      ///< Luccio et al. 1990 baseline
  kDmmpc,       ///< Theorem 2 machine
  kUwMpc,       ///< Upfal-Wigderson 1987 MPC baseline
  kAltBdn,      ///< Alt et al. 1987 sorting-network BDN baseline (modeled)
  kHbExpander,  ///< Herley-Bilardi 1988 expander baseline
  kRanade,      ///< Ranade 1987 butterfly baseline (probabilistic)
  kIda,         ///< Schuster/Rabin information-dispersal blocks
  kHashed,      ///< Mehlhorn-Vishkin 1984 hashed single copy (probabilistic)
};

[[nodiscard]] const char* to_string(SchemeKind kind);

/// Every kind, in a stable order (for cross-scheme sweeps and tests).
[[nodiscard]] const std::vector<SchemeKind>& all_scheme_kinds();

struct SchemeSpec {
  SchemeKind kind = SchemeKind::kHpMot;
  std::uint32_t n = 64;    ///< processors (power of two >= 4 for MOT kinds)
  double k = 2.0;          ///< m = n^k
  double eps = 1.0;        ///< target M = n^(1+eps) (granularity)
  double b = 4.0;          ///< Lemma 2 expansion parameter
  std::uint64_t seed = 1;  ///< memory-map seed
  /// Ensure the map covers at least this many variables (program
  /// footprints); 0 = just n^k.
  std::uint64_t min_vars = 0;
  // Protocol knobs.
  std::uint32_t stage1_turns = 2;
  bool lca_turnaround = false;
  bool all_at_once = false;  ///< DMMPC ablation (no clustering)
  /// MOT kinds only: precede steps with the P-ROM address-translation
  /// phase (paper conclusion; replaces per-processor map tables).
  bool prom_lookup = false;
  /// Serve backend to request from the assembled memory (kSerial or
  /// kGroupParallel); schemes without the capability stay serial — the
  /// backend actually in effect is SchemeInstance::backend, so benches
  /// sweep both behind the same factory call.
  pram::ServeBackend backend = pram::ServeBackend::kSerial;
  /// kIda only: per-share checksum words verified on decode (detected
  /// bad shares become erasures instead of silent block poison); doubles
  /// the scheme's storage factor. See ida::IdaMemoryConfig::check_shares.
  bool ida_check_shares = false;
  /// Storage region granularity in WORDS, clamped to >= 1. 1 (the
  /// default) is the classic word-at-a-time layout, bit-identical to the
  /// pre-region code. Wider regions store each copy's slice of
  /// region_words consecutive variables contiguously (majority kinds:
  /// CopyStore region rows; kIda: region_words / b blocks per region
  /// row, at least 1) so the value phases run bulk memcmp votes and
  /// GF(256) span recodes. Purely a storage/throughput knob: values,
  /// costs, and fault semantics are identical at every width.
  std::uint32_t region_words = 1;
  /// Hot-set cache in front of the assembled memory, in LINES (one
  /// variable per line). 0 (the default) assembles the bare scheme;
  /// > 0 wraps it in cache::CachedMemory (clock second-chance eviction,
  /// dirty write-back, fault-consistent invalidation — see src/cache/).
  std::uint64_t cache_lines = 0;
};

/// A fully assembled scheme behind the unified engine interface: the
/// memory system plus the bookkeeping every bench table needs, so call
/// sites never branch on the kind.
struct SchemeInstance {
  std::string name;
  SchemeKind kind = SchemeKind::kHpMot;
  /// The scheme as a pluggable shared memory — always set; this is the
  /// handle the SimulationPipeline and pram::Machine drive.
  std::unique_ptr<pram::MemorySystem> memory;
  /// Non-owning view of the majority-protocol engine inside `memory`
  /// (protocol introspection: live-decay curves, P-ROM phases). Null for
  /// organizations without one (kIda, kHashed).
  majority::AccessEngine* engine = nullptr;
  std::shared_ptr<const memmap::MemoryMap> map;  ///< null for kIda/kHashed
  std::uint64_t m = 0;           ///< variables covered
  /// Serve backend actually in effect (the spec's request, downgraded to
  /// kSerial when the scheme lacks the capability).
  pram::ServeBackend backend = pram::ServeBackend::kSerial;
  std::uint32_t n_modules = 0;   ///< M
  std::uint32_t c = 0;           ///< access threshold (0: no majority rule)
  std::uint32_t r = 0;           ///< copies per variable (0: not replicated)
  std::uint32_t region_words = 1;  ///< storage granularity actually in effect
  double storage_factor = 1.0;   ///< storage blow-up vs flat memory
  double eps_effective = 0.0;    ///< log2(M)/log2(n) - 1 actually realized
  std::uint64_t switches = 0;    ///< extra network nodes (0 for MPC/DMMPC)
  std::uint64_t request_hops = 0;  ///< one-way route length (MOT kinds)
  // Table metadata, so comparison benches are pure loops.
  const char* model = "";        ///< "DMMPC", "DMBDN (2DMOT)", ...
  const char* time_unit = "rounds";
  bool deterministic = true;
  const char* guarantee = "";    ///< "deterministic worst-case" / ...
  const char* notes = "";        ///< source / caveat column text
};

[[nodiscard]] SchemeInstance make_scheme(const SchemeSpec& spec);

/// The scheme as a pluggable shared memory for pram::Machine — every
/// SchemeKind, one call, no branches at the call site.
[[nodiscard]] std::unique_ptr<pram::MemorySystem> make_memory(
    const SchemeSpec& spec);

}  // namespace pramsim::core
