#include "core/plan_builder.hpp"

#include <algorithm>

namespace pramsim::core {

namespace {
constexpr std::uint32_t kNone = pram::AccessPlan::kNone;
}  // namespace

const pram::AccessPlan& PlanBuilder::build(const pram::AccessBatch& batch,
                                           const pram::MemorySystem& memory) {
  arena_.reset();
  index_.clear();
  index_.reserve(batch.size());
  writer_.clear();

  // Upper bound every array by the batch size, then shrink the spans to
  // the combined counts; the arena recycles the slack next build.
  const std::size_t cap = batch.size();
  auto reads = arena_.alloc<VarId>(cap);
  auto writes = arena_.alloc<pram::VarWrite>(cap);
  auto requests = arena_.alloc<pram::PlanRequest>(cap);
  auto read_request = arena_.alloc<std::uint32_t>(cap);
  auto write_request = arena_.alloc<std::uint32_t>(cap);
  auto request_write = arena_.alloc<std::uint32_t>(cap);

  std::uint32_t n_reads = 0;
  std::uint32_t n_writes = 0;
  std::uint32_t n_requests = 0;

  // Pass 1 — reads: the request list leads with every read variable in
  // first-appearance order (the order the legacy per-scheme dedup built).
  for (const auto& access : batch) {
    if (access.op != pram::AccessOp::kRead) {
      continue;
    }
    const auto [slot, fresh] = index_.try_emplace(access.var.value(),
                                                  n_requests);
    (void)slot;
    if (fresh) {
      requests[n_requests] = {access.var, pram::AccessOp::kRead, true};
      request_write[n_requests] = kNone;
      reads[n_reads] = access.var;
      read_request[n_reads] = n_requests;
      ++n_reads;
      ++n_requests;
    }
  }

  // Pass 2 — writes: CW resolution (lowest processor id wins); write-only
  // variables extend the request list in write first-appearance order.
  for (const auto& access : batch) {
    if (access.op != pram::AccessOp::kWrite) {
      continue;
    }
    const auto [slot, fresh] = index_.try_emplace(access.var.value(),
                                                  n_requests);
    const std::uint32_t req = *slot;
    if (fresh) {
      requests[n_requests] = {access.var, pram::AccessOp::kWrite, false};
      request_write[n_requests] = kNone;
      ++n_requests;
    }
    if (requests[req].op != pram::AccessOp::kWrite) {
      requests[req].op = pram::AccessOp::kWrite;
    }
    if (request_write[req] == kNone) {
      writes[n_writes] = {access.var, access.value};
      write_request[n_writes] = req;
      request_write[req] = n_writes;
      writer_.push_back(access.proc);
      ++n_writes;
    } else {
      const std::uint32_t w = request_write[req];
      if (access.proc.value() < writer_[w].value()) {
        writes[w].value = access.value;
        writer_[w] = access.proc;
      }
    }
  }

  plan_.reads = reads.first(n_reads);
  plan_.writes = writes.first(n_writes);
  plan_.requests = requests.first(n_requests);
  plan_.read_request = read_request.first(n_reads);
  plan_.write_request = write_request.first(n_writes);
  plan_.request_write = request_write.first(n_requests);

  plan_.group_keys = {};
  plan_.group_offsets = {};
  plan_.group_requests = {};
  plan_.request_group = {};
  if (memory.wants_plan_groups() && n_requests > 0) {
    sort_scratch_.clear();
    for (std::uint32_t j = 0; j < n_requests; ++j) {
      sort_scratch_.emplace_back(memory.plan_group_of(requests[j].var), j);
    }
    // Pair order = (key, request index): a stable grouping without
    // stable_sort's temp buffer.
    std::sort(sort_scratch_.begin(), sort_scratch_.end());
    auto group_requests = arena_.alloc<std::uint32_t>(n_requests);
    auto request_group = arena_.alloc<std::uint32_t>(n_requests);
    auto group_keys = arena_.alloc<std::uint64_t>(n_requests);
    auto group_offsets = arena_.alloc<std::uint32_t>(n_requests + 1);
    std::uint32_t g = 0;
    for (std::uint32_t i = 0; i < n_requests; ++i) {
      const auto [key, req] = sort_scratch_[i];
      if (i == 0 || key != sort_scratch_[i - 1].first) {
        group_keys[g] = key;
        group_offsets[g] = i;
        ++g;
      }
      group_requests[i] = req;
      request_group[req] = g - 1;
    }
    group_offsets[g] = n_requests;
    plan_.group_keys = group_keys.first(g);
    plan_.group_offsets = group_offsets.first(g + 1);
    plan_.group_requests = group_requests.first(n_requests);
    plan_.request_group = request_group.first(n_requests);
  }
  return plan_;
}

CombinedStep PlanBuilder::combine(const pram::AccessBatch& batch) {
  // Reuse the build pass against an ungrouped target, then materialize
  // owning vectors for callers that outlive the builder.
  class Ungrouped final : public pram::MemorySystem {
   public:
    pram::MemStepCost step(std::span<const VarId>, std::span<pram::Word>,
                           std::span<const pram::VarWrite>) override {
      return {};
    }
    [[nodiscard]] std::uint64_t size() const override { return 0; }
    [[nodiscard]] pram::Word peek(VarId) const override { return 0; }
    void poke(VarId, pram::Word) override {}
  };
  static const Ungrouped kUngrouped;
  const auto& plan = build(batch, kUngrouped);
  CombinedStep step;
  step.reads.assign(plan.reads.begin(), plan.reads.end());
  step.writes.assign(plan.writes.begin(), plan.writes.end());
  return step;
}

std::vector<majority::VarRequest> PlanBuilder::to_requests(
    const pram::AccessBatch& batch) {
  std::vector<majority::VarRequest> requests;
  requests.reserve(batch.size());
  index_.clear();
  index_.reserve(batch.size());
  for (const auto& access : batch) {
    const auto [slot, fresh] = index_.try_emplace(
        access.var.value(), static_cast<std::uint32_t>(requests.size()));
    if (fresh) {
      requests.push_back({access.var, access.proc, access.op});
      continue;
    }
    auto& request = requests[*slot];
    if (access.op != pram::AccessOp::kWrite) {
      continue;  // reads never displace an existing request
    }
    // A write always takes over the request; among writers the lowest
    // processor id wins (deterministic CW convention).
    if (request.op != pram::AccessOp::kWrite ||
        access.proc.value() < request.requester.value()) {
      request.requester = access.proc;
    }
    request.op = pram::AccessOp::kWrite;
  }
  return requests;
}

CombinedStep combine_batch(const pram::AccessBatch& batch) {
  PlanBuilder builder;
  return builder.combine(batch);
}

std::vector<majority::VarRequest> to_requests(const pram::AccessBatch& batch) {
  PlanBuilder builder;
  return builder.to_requests(batch);
}

}  // namespace pramsim::core
