// MotEngine: the paper's 2DMOT simulation schemes, cycle-accurate.
//
// Three placements on the mesh-of-trees substrate:
//
//  * kHpLeaves (Fig. 8, Theorem 3 — THE contribution): square S x S 2DMOT
//    with S = sqrt(M); the n processors sit at the roots of the first n
//    row trees, the M memory modules at the leaves. A request from
//    processor l for a copy in module (i,j) descends row tree l to leaf
//    (l,j), ascends column tree j to its root, descends to leaf (i,j),
//    crosses the module's unit-bandwidth port, and the reply retraces the
//    path. Constant-redundancy Lemma 2 map. O(M) switches.
//
//  * kLppRoots (Luccio-Pietracaprina-Pucci 1990 baseline): square n x n
//    2DMOT, processors at the n coalesced roots, one memory module per
//    root (M = n, the classic coarse granularity). Requests run down the
//    row tree and up the column tree to the target root. Redundancy
//    Theta(log n) (UW map).
//
//  * kCrossbar (Fig. 7): rectangular n x M 2DMOT used as a crossbar;
//    modules at the M column-tree roots. Constant redundancy, but O(nM)
//    switches — the expensive way to buy granularity.
//
// The engine drives the same two-stage cluster protocol as the DMMPC
// scheduler, but each phase routes real packets under FIFO link
// arbitration and unit-capacity module ports; elapsed time is network
// cycles. A per-phase control overhead of ceil(log2 n) cycles accounts
// for the prefix/sorting control work the LPP machinery performs on the
// trees between phases (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <memory>

#include "majority/engine.hpp"
#include "memmap/memory_map.hpp"
#include "network/topology.hpp"

namespace pramsim::core {

enum class MotScheme : std::uint8_t {
  kHpLeaves,   ///< Theorem 3: modules at leaves, constant redundancy
  kLppRoots,   ///< LPP'90: modules at roots, log redundancy
  kCrossbar,   ///< Fig. 7: n x M crossbar, constant redundancy
};

[[nodiscard]] const char* to_string(MotScheme scheme);

struct MotEngineConfig {
  MotScheme scheme = MotScheme::kHpLeaves;
  std::uint32_t n_processors = 0;
  std::uint32_t c = 2;             ///< access threshold (r = 2c-1)
  std::uint32_t cluster_size = 3;  ///< usually 2c-1
  std::uint32_t stage1_turns = 2;
  bool lca_turnaround = false;     ///< ablation: turn at column-tree LCA
  /// Precede each step with a P-ROM address-translation phase: every
  /// request routes a lookup to its variable's distributed table entry
  /// before any copy is accessed (paper conclusion; see core/prom.hpp).
  bool prom_lookup = false;
  /// Cycles allotted per protocol phase; 0 = auto (2x round trip +
  /// cluster size). Phases that complete early are charged actual cycles.
  std::uint64_t phase_budget_cycles = 0;
  /// Control overhead charged per phase; default ceil(log2 n) when
  /// n_processors > 1, emulating the tree-borne bookkeeping of LPP.
  std::uint64_t phase_overhead_cycles = ~0ULL;  // ~0 = auto
};

class MotEngine final : public majority::AccessEngine {
 public:
  /// The map's module count must match the scheme geometry:
  /// kHpLeaves: a square number S^2 (S a power of two >= 4, n <= S);
  /// kLppRoots: exactly n (power of two >= 4);
  /// kCrossbar: a power of two (columns), n a power of two (rows).
  MotEngine(std::shared_ptr<const memmap::MemoryMap> map,
            MotEngineConfig config);

  [[nodiscard]] majority::EngineResult run_step(
      std::span<const majority::VarRequest> requests) override;

  [[nodiscard]] const memmap::MemoryMap& map() const override {
    return *map_;
  }
  [[nodiscard]] std::uint32_t n_processors() const override {
    return config_.n_processors;
  }
  [[nodiscard]] const MotEngineConfig& config() const { return config_; }
  [[nodiscard]] const net::MotShape& shape() const { return shape_; }
  /// One-way request path length in hops (including the module port).
  [[nodiscard]] std::uint64_t request_hops() const { return request_hops_; }
  /// Cycles spent in P-ROM lookup phases so far (0 unless enabled).
  [[nodiscard]] std::uint64_t prom_cycles() const { return prom_cycles_; }

 private:
  [[nodiscard]] std::vector<net::EdgeKey> round_trip_path(
      std::uint32_t proc, std::uint32_t module) const;

  std::shared_ptr<const memmap::MemoryMap> map_;
  MotEngineConfig config_;
  net::MotShape shape_;
  std::uint64_t request_hops_ = 0;
  std::uint64_t phase_budget_ = 0;
  std::uint64_t phase_overhead_ = 0;
  std::uint64_t prom_cycles_ = 0;
};

}  // namespace pramsim::core
