// Context baselines from the paper's §1 comparison, built on real
// substrate objects with measured (not quoted) structural costs:
//
//  * RanadeButterflyEngine — Ranade (1987): probabilistic emulation on a
//    butterfly with one hashed copy per variable (r = 1). Each step's
//    requests route along their bit-fixing paths; the engine charges
//    dilation + congestion - 1 network cycles, the delay pipelined
//    queueing with combining achieves up to constants. Expected time is
//    O(log n); there is NO worst-case guarantee (a known-hash adversary
//    congests one output row), which is the contrast the paper draws
//    with its deterministic schemes.
//
//  * HbExpanderEngine — Herley & Bilardi (1988): deterministic simulation
//    on bounded-degree expander-based networks with redundancy
//    r = Theta(log m / log log m). The protocol rounds come from the real
//    two-stage scheduler over an M = n map at that redundancy; each round
//    is charged the MEASURED diameter of a concrete random-regular
//    expander (an actual graph, audited for connectivity, diameter and
//    spectral gap — standing in for HB's constructive expanders exactly
//    as the paper describes them: same asymptotics, better constants
//    from randomness).
//
// Mask semantics: RanadeButterflyEngine has r = 1, so accessed_mask is
// always 1 (bit 0); it cannot back a MajorityMemory (which needs odd
// r = 2c-1 >= 1 — r = 1, c = 1 is in fact valid there too).
#pragma once

#include <cstdint>
#include <memory>

#include "majority/engine.hpp"
#include "memmap/memory_map.hpp"
#include "network/butterfly.hpp"
#include "network/expander.hpp"

namespace pramsim::core {

class RanadeButterflyEngine final : public majority::AccessEngine {
 public:
  /// `map` must have redundancy 1 and module count == butterfly rows.
  RanadeButterflyEngine(std::shared_ptr<const memmap::MemoryMap> map,
                        std::uint32_t n_processors);

  [[nodiscard]] majority::EngineResult run_step(
      std::span<const majority::VarRequest> requests) override;

  [[nodiscard]] const memmap::MemoryMap& map() const override {
    return *map_;
  }
  [[nodiscard]] std::uint32_t n_processors() const override {
    return n_processors_;
  }
  [[nodiscard]] const net::ButterflyShape& shape() const { return shape_; }

 private:
  std::shared_ptr<const memmap::MemoryMap> map_;
  std::uint32_t n_processors_;
  net::ButterflyShape shape_;
};

class HbExpanderEngine final : public majority::AccessEngine {
 public:
  /// `map`: M == n_processors modules at r = 2c-1 = Theta(log m/loglog m)
  /// (scheduler.c must match). `graph_degree` sets the expander degree.
  HbExpanderEngine(std::shared_ptr<const memmap::MemoryMap> map,
                   majority::SchedulerConfig scheduler,
                   std::uint32_t graph_degree, std::uint64_t graph_seed);

  [[nodiscard]] majority::EngineResult run_step(
      std::span<const majority::VarRequest> requests) override;

  [[nodiscard]] const memmap::MemoryMap& map() const override {
    return *map_;
  }
  [[nodiscard]] std::uint32_t n_processors() const override {
    return scheduler_.n_processors;
  }
  [[nodiscard]] const net::RegularGraph& graph() const { return graph_; }
  [[nodiscard]] std::uint32_t cycles_per_round() const {
    return network_diameter_;
  }

 private:
  std::shared_ptr<const memmap::MemoryMap> map_;
  majority::SchedulerConfig scheduler_;
  net::RegularGraph graph_;
  std::uint32_t network_diameter_;
};

/// HB's redundancy choice: the smallest odd r = 2c-1 with
/// c = max(2, ceil(log2 m / log2 log2 m)).
[[nodiscard]] std::uint32_t hb_c(std::uint64_t m_vars);

}  // namespace pramsim::core
