#include "core/prom.hpp"

#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pramsim::core {

MapTableBits map_table_bits(std::uint32_t n_processors, std::uint64_t m_vars,
                            std::uint32_t redundancy,
                            std::uint32_t n_modules) {
  PRAMSIM_ASSERT(n_processors >= 1 && m_vars >= 1 && redundancy >= 1 &&
                 n_modules >= 1);
  const auto bits_per_entry =
      static_cast<std::uint64_t>(redundancy) *
      static_cast<std::uint64_t>(util::ilog2_ceil(n_modules) + 1);
  MapTableBits out;
  out.per_processor = m_vars * bits_per_entry;
  out.local_total = out.per_processor * n_processors;
  out.prom_total = out.per_processor;
  out.reduction_factor = static_cast<double>(n_processors);
  return out;
}

ModuleId prom_home_module(VarId var, std::uint32_t n_modules) {
  PRAMSIM_ASSERT(n_modules >= 1);
  // Stateless uniform placement; any fixed hash works since the entry
  // location must only be computable by every processor locally.
  util::SplitMix64 mixer(0x9E3779B97F4A7C15ULL ^
                         (static_cast<std::uint64_t>(var.value()) * 0x2545F4914F6CDD1DULL));
  return ModuleId(static_cast<std::uint32_t>(mixer.next() % n_modules));
}

}  // namespace pramsim::core
