// Trace driver: feeds synthetic access batches (pram/trace.hpp) and
// map-adversarial batches through an AccessEngine and aggregates the
// per-step costs. This is the measurement loop behind the Theorem 2/3
// benches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "majority/engine.hpp"
#include "pram/trace.hpp"
#include "util/stats.hpp"

namespace pramsim::core {

struct TraceRunResult {
  util::RunningStats time;   ///< per-step simulated time (rounds/cycles)
  util::RunningStats work;   ///< per-step copy accesses
  util::RunningStats live_after_stage1;
  std::uint64_t steps = 0;
};

/// Deduplicate a raw access batch into distinct-variable requests,
/// keeping the first requesting processor per variable.
[[nodiscard]] std::vector<majority::VarRequest> to_requests(
    const pram::AccessBatch& batch);

/// Run every batch of `trace` through the engine.
[[nodiscard]] TraceRunResult run_trace(
    majority::AccessEngine& engine,
    std::span<const pram::AccessBatch> trace);

/// Convenience: `steps` batches of each given family, plus (optionally)
/// map-adversarial batches, through the engine; returns aggregate over
/// everything (the "arbitrary step" stress the theorems quantify over).
[[nodiscard]] TraceRunResult run_stress(
    majority::AccessEngine& engine, std::uint32_t n, std::uint64_t m,
    std::size_t steps_per_family, std::uint64_t seed,
    std::span<const pram::TraceFamily> families,
    bool include_map_adversarial = true);

}  // namespace pramsim::core
