// Scheme-agnostic simulation pipeline: feeds synthetic access batches
// (pram/trace.hpp) and map-adversarial batches through any memory
// organization behind the unified pram::MemorySystem interface. Each
// batch is combined ONCE into an arena-backed pram::AccessPlan
// (core::PlanBuilder) and served through MemorySystem::serve; stress
// traffic is double-buffered (a generator thread builds plan N+1 while
// the worker serves plan N) and sharded WITHIN trials — every
// (trial, family) pair is an independent shard — with util::parallel_for,
// then merged in deterministic (trial, family, step) order so results are
// bit-identical at any worker-thread count. This is the measurement loop
// behind every cross-scheme bench; no caller builds a per-scheme loop by
// hand.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <string>

#include "core/plan_builder.hpp"
#include "core/schemes.hpp"
#include "durability/recovery.hpp"
#include "faults/fault_model.hpp"
#include "majority/engine.hpp"
#include "obs/sink.hpp"
#include "pram/memory_system.hpp"
#include "pram/trace.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace pramsim::core {

/// Aggregate over every step served: simulated time, work, live-set and
/// contention telemetry, and the scheme's storage redundancy so cost can
/// be weighted by the memory it actually consumes.
struct TraceRunResult {
  util::RunningStats time;   ///< per-step simulated time (rounds/cycles)
  util::RunningStats work;   ///< per-step copy/share accesses
  util::RunningStats live_after_stage1;
  util::RunningStats max_queue;  ///< per-step peak module/edge contention
  std::uint64_t steps = 0;
  double storage_factor = 1.0;  ///< redundancy of the scheme measured
  /// Reliability telemetry (all-zero unless the run injected faults).
  pram::ReliabilityStats reliability;
  /// First fault intensity at which the scheme SILENTLY returned a wrong
  /// value (set by run_fault_sweep); negative = never broke in the sweep.
  double breaking_fault_rate = -1.0;
  /// Background-scrub telemetry (all-zero unless StressOptions enabled
  /// scrubbing): passes the driver interleaved and what they performed.
  std::uint64_t scrub_passes = 0;
  pram::ScrubResult scrub;
  /// Observability capture (StressOptions::obs_enabled): per-shard sinks
  /// folded in shard order, so counters and journal are bit-identical at
  /// any worker count; phase timings are wall-clock (see obs/sink.hpp).
  /// Empty unless the run enabled observation.
  obs::Sink obs;

  /// Redundancy-weighted cost: mean step time scaled by the storage
  /// blow-up — the "time x memory" currency the paper's trade-offs
  /// compare (constant-redundancy schemes win exactly here).
  [[nodiscard]] double redundancy_weighted_cost() const {
    return time.mean() * storage_factor;
  }

  void merge(const TraceRunResult& other);
};

/// Run every batch of `trace` through `memory`: one PlanBuilder combines
/// each batch once and memory.serve() consumes the plan. Single-threaded
/// (the double-buffered variant lives inside run_stress).
[[nodiscard]] TraceRunResult run_trace(
    pram::MemorySystem& memory, std::span<const pram::AccessBatch> trace);

/// Stress-run parameters: trace families x steps, optional
/// map-adversarial batches, and independent trials. Work is sharded
/// WITHIN trials: every (trial, family) pair — and the adversarial phase
/// of each trial — runs as its own shard on a fresh memory built from the
/// same spec (same scheme seed: the map under test is fixed; traffic
/// seeds derive from (seed, trial, family)). Shards spread across host
/// threads via util::parallel_for and merge in (trial, family, step)
/// order, so results are deterministic given (spec, options) at ANY
/// worker-thread count.
struct StressOptions {
  std::size_t steps_per_family = 3;
  std::uint64_t seed = 1;
  /// Trace families to sweep; empty = pram::exclusive_trace_families().
  std::vector<pram::TraceFamily> families = {};
  /// Per-family knobs for the generated traffic (Zipf exponent,
  /// working-set geometry, hotspot fraction, write mix) — one set shared
  /// by every swept family.
  pram::TraceParams trace = {};
  /// Include worst-case batches: crafted against the scheme's memory map
  /// when it exposes one, otherwise against the scheme's own placement
  /// knowledge (pram::MemorySystem::adversarial_vars — e.g. the hashed
  /// baseline's known-hash preimage attack). Skipped only for schemes
  /// with neither (e.g. kIda).
  bool include_map_adversarial = true;
  /// Independent trials (fresh memory, shifted traffic seed).
  std::size_t trials = 1;
  /// Overlap plan building with serving inside each shard (a generator
  /// thread builds plan N+1 while the shard serves plan N). Results are
  /// identical either way. Engaged only when the shard level is not
  /// already saturating the host's cores (and never for the adversarial
  /// phase, whose state-dependent batch generation must stay interleaved
  /// with serving); off disables the overlap entirely.
  bool double_buffer = true;
  /// Background scrubbing: every `scrub_interval` served steps the driver
  /// calls memory.scrub(scrub_budget) between steps (0 = disabled). The
  /// pass runs on the serving thread, after the step completes and
  /// before the next plan is served, so double-buffered plan building is
  /// unaffected (plans never depend on memory state).
  std::uint32_t scrub_interval = 0;
  std::uint64_t scrub_budget = 0;
  /// Observability: attach an obs::Sink to every shard's memory (scheme
  /// counters, phase timers, event journal) and fold the sinks in shard
  /// order into TraceRunResult::obs. Off by default — the hot loop then
  /// carries a null observer and the hooks cost one predicted branch.
  bool obs_enabled = false;
  /// Phase-timer sampling interval (SinkOptions::sample_interval): time
  /// step s when s % interval == 0; 0 disables timers but keeps
  /// counters/journal. No effect on deterministic sections.
  std::uint32_t obs_sample_interval = 1;
  /// Event-journal ring bound per shard (and for the merged result).
  std::size_t obs_journal_capacity = obs::Journal::kDefaultCapacity;
};

/// Recovery-probe parameters: a single machine serves one trace family
/// while dynamic faults (the spec's onset window) land mid-run and a
/// budgeted scrub pass runs every `scrub_interval` steps; the probe
/// records the per-step masked-fault trajectory the recovery time is
/// read off. Single-threaded by construction: trajectories are
/// bit-identical at any worker-thread count.
struct RecoveryOptions {
  std::size_t steps = 64;
  std::uint64_t seed = 1;
  pram::TraceFamily family = pram::TraceFamily::kUniform;
  /// Knobs for the probe's traffic (Zipf exponent, working set, ...).
  pram::TraceParams trace = {};
  /// Scrub cadence (0 = scrubbing disabled: degradation-only baseline).
  std::uint32_t scrub_interval = 4;
  std::uint64_t scrub_budget = 64;
  /// A step is "recovered" when its masked+uncorrectable rate (bad reads
  /// per read) is at or below this.
  double recovery_threshold = 0.02;
  /// Observability knobs, as StressOptions: capture the probe's fault
  /// onsets / degraded votes / scrub repairs into RecoveryResult::obs.
  bool obs_enabled = false;
  std::uint32_t obs_sample_interval = 1;
  std::size_t obs_journal_capacity = obs::Journal::kDefaultCapacity;
};

/// Fault-sweep parameters: ramp the prototype's rate axes through
/// `rates` (faults::at_rate), running the same stress traffic at each
/// level.
struct FaultSweepOptions {
  std::vector<double> rates = {0.0, 0.0125, 0.025, 0.05, 0.1, 0.2, 0.4};
  /// Which fault axes scale with the ramp (defaults: module kills and
  /// write corruption; stuck cells off). Give the proto an onset window
  /// (FaultSpec::onset_min/onset_max) for fail-during-run sweeps.
  faults::FaultSpec proto{
      .seed = 1, .dead_modules = 0, .module_kill_rate = 1.0,
      .stuck_rate = 0.0, .corruption_rate = 1.0};
  StressOptions stress;
  /// Additionally run a single-machine recovery probe (run_recovery) at
  /// each level and report steps-to-recover alongside the breaking
  /// point. Meaningful with a dynamic-onset proto + scrubbing enabled in
  /// `recovery`; the probe never affects the sweep's own telemetry.
  bool measure_recovery = false;
  RecoveryOptions recovery;
};

/// One step of a recovery trajectory (per-step deltas, not cumulative).
struct RecoveryPoint {
  std::uint64_t step = 0;       ///< 1-based step number
  std::uint64_t reads = 0;      ///< reads served this step
  std::uint64_t masked = 0;     ///< reads masked despite >= 1 bad unit
  std::uint64_t uncorrectable = 0;  ///< flagged losses this step
  std::uint64_t wrong = 0;      ///< silent lies this step (oracle)
  std::uint64_t repaired = 0;   ///< entities repaired by scrubs this step
  std::uint64_t relocated = 0;  ///< copies/shares re-homed this step
  double degraded_rate = 0.0;   ///< (masked + uncorrectable) / reads
};

struct RecoveryResult {
  std::vector<RecoveryPoint> trajectory;
  /// Earliest fault onset the model realized: the first dead-module
  /// onset, or the onset window's start for stuck/corruption-only specs
  /// (whose lazy per-unit onsets cannot be enumerated); 0 when static.
  std::int64_t onset_step = -1;
  /// First step whose degraded rate exceeded the threshold; -1 = never
  /// degraded (faults missed the touched working set).
  std::int64_t first_degraded_step = -1;
  /// First step from which the degraded rate stays at or below the
  /// threshold for the rest of the run; -1 = still degraded at the end.
  std::int64_t recovered_step = -1;
  /// recovered_step - first_degraded_step; -1 when either is undefined.
  std::int64_t recovery_steps = -1;
  double peak_degraded_rate = 0.0;
  double final_degraded_rate = 0.0;  ///< last recorded step's rate
  pram::ReliabilityStats reliability;  ///< run totals
  pram::ScrubResult scrub;             ///< scrub totals
  /// Observability capture (RecoveryOptions::obs_enabled): the probe is
  /// single-threaded, so the journal IS the onset->repair story in step
  /// order. Empty unless enabled.
  obs::Sink obs;
};

/// One ramp level's outcome.
struct FaultLevelResult {
  double rate = 0.0;
  TraceRunResult run;
  /// Scrub-driven recovery time at this level (FaultSweepOptions::
  /// measure_recovery); semantics as RecoveryResult::recovery_steps.
  std::int64_t recovery_steps = -1;
};

struct FaultSweepResult {
  std::vector<FaultLevelResult> levels;
  /// Everything merged; `total.breaking_fault_rate` is the first rate
  /// whose run silently returned a wrong value (the breaking point).
  TraceRunResult total;
  /// First rate with any flagged (uncorrectable) read; negative = none.
  double first_uncorrectable_rate = -1.0;
  /// Slowest measured recovery across levels; -1 = none measured (or
  /// some level never recovered, reported per level).
  std::int64_t worst_recovery_steps = -1;
};

/// Durability knobs for crash-recovery runs: where the WAL and
/// checkpoints live and how often each is made durable. The WAL flushes
/// (group commit) every `wal_flush_interval` committed steps; a full
/// checkpoint is written every `checkpoint_interval` steps, after which
/// the WAL is truncated through the checkpointed step.
struct DurabilityOptions {
  std::string directory;  ///< holds wal.log + ckpt-<step>.bin files
  std::uint32_t wal_flush_interval = 2;
  std::uint32_t checkpoint_interval = 8;
  std::uint32_t keep_checkpoints = 2;
  /// Post-replay scrub budget handed to durability::recover (0 = skip).
  std::uint64_t scrub_budget = 256;
};

/// Where the simulated crash lands relative to the durability protocol's
/// phase boundaries — the kill-point axis of the crash-test matrix.
enum class KillPoint : std::uint8_t {
  /// Flush + checkpoint + truncate, then exit: recovery must be a
  /// no-op that still lands on the exact committed state.
  kCleanShutdown = 0,
  /// The final WAL record is torn mid-write (the file ends inside the
  /// record's byte span): recovery must use the last COMPLETE record.
  kMidWalAppend,
  /// Crash right after a group-commit flush: the buffered-but-unflushed
  /// suffix (if any) is lost; everything flushed must survive.
  kAfterWalFlush,
  /// Crash mid-checkpoint write: a torn ckpt-<step>.bin prefix is on
  /// disk; recovery must fall back to the previous checkpoint + WAL.
  kMidCheckpoint,
  /// Crash after the checkpoint is durable but BEFORE the WAL truncate:
  /// the log still holds records the checkpoint covers; replay must
  /// filter (or idempotently re-apply) them.
  kAfterCheckpointPreTruncate,
};

[[nodiscard]] const char* to_string(KillPoint point);
[[nodiscard]] std::vector<KillPoint> all_kill_points();

/// Crash-recovery run parameters: a single machine serves one trace
/// family with durability enabled, is killed at a kill point on a
/// seed-derived step, restarts from disk, and is verified bit-for-bit
/// against an uninterrupted reference run of the same trace.
struct CrashRecoveryOptions {
  std::size_t steps = 32;
  std::uint64_t seed = 1;
  pram::TraceFamily family = pram::TraceFamily::kUniform;
  pram::TraceParams trace = {};
  DurabilityOptions durability;
  KillPoint kill_point = KillPoint::kAfterWalFlush;
  /// Kill after serving this step (1-based); 0 = derive from the seed.
  std::uint64_t kill_step = 0;
  /// Observability knobs, as StressOptions: capture the run + recovery's
  /// checkpoint/replay events into CrashRecoveryResult::obs.
  bool obs_enabled = false;
  std::uint32_t obs_sample_interval = 1;
  std::size_t obs_journal_capacity = obs::Journal::kDefaultCapacity;
};

struct CrashRecoveryResult {
  std::uint64_t kill_step = 0;     ///< last step served before the crash
  /// The durable horizon at the crash (recovery's contract: every
  /// committed write at or before this step survives).
  std::uint64_t durable_step = 0;
  durability::RecoveryOutcome recovery;
  /// Recovered state equals the uninterrupted reference state at the
  /// durable horizon, across ALL m variables.
  bool bit_exact = false;
  std::uint64_t vars_checked = 0;
  /// Committed-and-durable writes the recovered memory lost (0 required).
  std::uint64_t lost_committed_writes = 0;
  double recovery_seconds = 0.0;  ///< wall clock around recover()
  std::uint64_t checkpoint_bytes = 0;  ///< last checkpoint's file size
  std::uint64_t wal_bytes = 0;         ///< WAL size at the crash
  /// Observability capture (CrashRecoveryOptions::obs_enabled).
  obs::Sink obs;
};

/// The one driver every scheme kind runs through. Construct from a spec;
/// the pipeline assembles the scheme, owns a prototype instance for
/// metadata/one-shot steps, and builds fresh per-trial memories for
/// sharded stress runs.
class SimulationPipeline {
 public:
  explicit SimulationPipeline(SchemeSpec spec);

  /// The assembled prototype (metadata: r, switches, model, ...).
  [[nodiscard]] const SchemeInstance& scheme() const { return instance_; }
  [[nodiscard]] const SchemeSpec& spec() const { return spec_; }

  /// Serve one raw batch on the prototype memory (combining included).
  pram::MemStepCost run_batch(const pram::AccessBatch& batch);

  /// Families x steps (+ adversarial) x trials, merged deterministically.
  [[nodiscard]] TraceRunResult run_stress(const StressOptions& options = {}) const;

  /// run_stress with every per-trial memory wrapped in a
  /// faults::FaultableMemory under `fault_spec` (per-trial fault seeds
  /// are decorrelated). The result's `reliability` carries the merged
  /// telemetry; wrong_reads > 0 means the scheme silently lied.
  [[nodiscard]] TraceRunResult run_with_faults(
      const faults::FaultSpec& fault_spec,
      const StressOptions& options = {}) const;

  /// Ramp fault intensity until (and past) each scheme's breaking point.
  [[nodiscard]] FaultSweepResult run_fault_sweep(
      const FaultSweepOptions& options = {}) const;

  /// The onset -> degradation -> scrub-recovery probe: one fresh machine
  /// under `fault_spec` (typically dynamic-onset) serves one trace
  /// family while the driver scrubs on the configured cadence, recording
  /// the per-step masked/uncorrectable trajectory and the recovery time
  /// (steps from first degradation until the degraded rate stays below
  /// the threshold). Deterministic given (spec, fault_spec, options).
  [[nodiscard]] RecoveryResult run_recovery(
      const faults::FaultSpec& fault_spec,
      const RecoveryOptions& options = {}) const;

  /// The crash-test harness: run a durable machine (WAL + checkpoints)
  /// to a kill step, crash it at the configured KillPoint (including
  /// file surgery for torn-write points), recover a fresh machine from
  /// disk, and verify the recovered state bit-for-bit against an
  /// uninterrupted reference run truncated at the durable horizon.
  /// Deterministic given (spec, options); fault_spec may be null for
  /// fault-free durability runs.
  [[nodiscard]] CrashRecoveryResult run_crash_recovery(
      const CrashRecoveryOptions& options = {},
      const faults::FaultSpec* fault_spec = nullptr) const;

 private:
  [[nodiscard]] TraceRunResult run_stress_impl(
      const StressOptions& options,
      const faults::FaultSpec* fault_spec) const;

  SchemeSpec spec_;
  SchemeInstance instance_;
  /// Plan slot for one-shot run_batch serving on the prototype.
  PlanBuilder builder_;
  /// Group-fan-out workers for one-shot serving on the prototype (the
  /// stress/recovery paths keep per-shard executors of their own).
  util::Executor executor_;
};

}  // namespace pramsim::core
