// Host-side parallel sweep helper.
//
// Experiment harnesses run many independent trials (Monte-Carlo map
// verification, per-seed step simulations). parallel_for partitions
// [begin, end) into contiguous blocks, one per worker thread; the partition
// depends only on (range, worker count), and callers derive per-index RNG
// streams from the index, so results are deterministic regardless of
// scheduling. The simulated machines themselves are single-threaded and
// deterministic by construction.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace pramsim::util {

/// Number of workers parallel_for will use for a range of `n` items.
[[nodiscard]] std::size_t parallel_workers(std::size_t n);

/// Force parallel_for to use exactly min(workers, n) workers (0 restores
/// the automatic policy). The partition depends only on (range, worker
/// count), so A/B determinism tests pin 1 vs hardware_concurrency and
/// assert bit-identical results. Not thread-safe against concurrent
/// parallel_for calls; set it from the orchestrating thread only.
void set_parallel_workers_override(std::size_t workers);

/// Invoke fn(i) for every i in [begin, end), possibly from multiple
/// threads. fn must not throw; indices are disjoint across workers.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Force-serial variant for A/B determinism tests.
void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn);

/// Persistent worker pool for fine-grained INTRA-step fan-out (the
/// group-parallel serve backend). parallel_for spawns threads per call,
/// which is fine for coarse shards but dominates a sub-millisecond serve
/// step; an Executor keeps its workers parked on a condition variable
/// between dispatches, so per-step overhead is one wake/join handshake.
///
/// Determinism contract: run() partitions [0, n) into contiguous chunks,
/// one per worker, and the partition depends only on (n, worker count).
/// Worker count honors set_parallel_workers_override, so A/B tests can
/// pin 1 vs many — callers must make chunk results order-independent
/// (disjoint output slots, or commutative telemetry merged in a fixed
/// order) so ANY worker count yields bit-identical results.
///
/// Not thread-safe: one dispatch at a time per Executor (the serve
/// contract already guarantees one serving thread).
class Executor {
 public:
  Executor();
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Workers a fan-out of `n` units totalling ~`work` leaf items would
  /// get: min(override, n) when an override is set, else scaled so each
  /// worker gets a meaningful slice of `work` (tiny steps stay serial).
  [[nodiscard]] std::size_t plan_workers(std::size_t n,
                                         std::size_t work) const;

  /// Invoke fn(begin, end) over a contiguous partition of [0, n) with
  /// `workers` chunks — pass a cached plan_workers() result, so the
  /// chunk geometry (chunk = ceil(n / workers), chunk index =
  /// begin / chunk) agrees with any per-chunk scratch the caller
  /// pre-sized (plan_workers never exceeds the pool size, so the
  /// dispatcher partitions with exactly this count). Chunk 0 runs on
  /// the calling thread; blocks until every chunk completes. fn must
  /// not throw.
  void run_with(std::size_t n, std::size_t workers,
                const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Pool;
  std::unique_ptr<Pool> pool_;  ///< lazily created on first parallel run
};

}  // namespace pramsim::util
