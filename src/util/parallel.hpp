// Host-side parallel sweep helper.
//
// Experiment harnesses run many independent trials (Monte-Carlo map
// verification, per-seed step simulations). parallel_for partitions
// [begin, end) into contiguous blocks, one per worker thread; the partition
// depends only on (range, worker count), and callers derive per-index RNG
// streams from the index, so results are deterministic regardless of
// scheduling. The simulated machines themselves are single-threaded and
// deterministic by construction.
#pragma once

#include <cstddef>
#include <functional>

namespace pramsim::util {

/// Number of workers parallel_for will use for a range of `n` items.
[[nodiscard]] std::size_t parallel_workers(std::size_t n);

/// Force parallel_for to use exactly min(workers, n) workers (0 restores
/// the automatic policy). The partition depends only on (range, worker
/// count), so A/B determinism tests pin 1 vs hardware_concurrency and
/// assert bit-identical results. Not thread-safe against concurrent
/// parallel_for calls; set it from the orchestrating thread only.
void set_parallel_workers_override(std::size_t workers);

/// Invoke fn(i) for every i in [begin, end), possibly from multiple
/// threads. fn must not throw; indices are disjoint across workers.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Force-serial variant for A/B determinism tests.
void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn);

}  // namespace pramsim::util
