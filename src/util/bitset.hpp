// DynamicBitset: a fixed-capacity-at-construction bitset sized at runtime.
//
// Used on hot paths of the protocol schedulers (live-variable masks,
// module-busy masks) where std::vector<bool> is too slow to scan and
// std::bitset requires a compile-time size.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace pramsim::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t n_bits, bool value = false)
      : n_bits_(n_bits),
        words_((n_bits + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  [[nodiscard]] std::size_t size() const { return n_bits_; }

  void set(std::size_t i) {
    PRAMSIM_DASSERT(i < n_bits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void reset(std::size_t i) {
    PRAMSIM_DASSERT(i < n_bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  [[nodiscard]] bool test(std::size_t i) const {
    PRAMSIM_DASSERT(i < n_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (const std::uint64_t w : words_) {
      total += static_cast<std::size_t>(std::popcount(w));
    }
    return total;
  }

  [[nodiscard]] bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool none() const { return !any(); }

  void clear_all() {
    for (auto& w : words_) {
      w = 0;
    }
  }

  void set_all() {
    for (auto& w : words_) {
      w = ~0ULL;
    }
    trim();
  }

  /// Index of the first set bit at or after `from`, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t from) const {
    if (from >= n_bits_) {
      return n_bits_;
    }
    std::size_t word_idx = from >> 6;
    std::uint64_t w = words_[word_idx] & (~0ULL << (from & 63));
    while (true) {
      if (w != 0) {
        const std::size_t bit =
            (word_idx << 6) +
            static_cast<std::size_t>(std::countr_zero(w));
        return bit < n_bits_ ? bit : n_bits_;
      }
      if (++word_idx == words_.size()) {
        return n_bits_;
      }
      w = words_[word_idx];
    }
  }

  friend bool operator==(const DynamicBitset&, const DynamicBitset&) = default;

 private:
  void trim() {
    const std::size_t tail = n_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (1ULL << tail) - 1;
    }
  }

  std::size_t n_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pramsim::util
