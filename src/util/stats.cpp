#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace pramsim::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::percentile(double p) const {
  PRAMSIM_ASSERT(!xs_.empty());
  PRAMSIM_ASSERT(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  if (xs_.size() == 1) {
    return xs_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) {
    return xs_.back();
  }
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

double SampleSet::max() const {
  PRAMSIM_ASSERT(!xs_.empty());
  return *std::max_element(xs_.begin(), xs_.end());
}

double SampleSet::mean() const {
  PRAMSIM_ASSERT(!xs_.empty());
  double s = 0.0;
  for (const double x : xs_) {
    s += x;
  }
  return s / static_cast<double>(xs_.size());
}

Histogram::Histogram(std::size_t max_value) : buckets_(max_value + 1, 0) {}

void Histogram::add(std::uint64_t value) {
  ++total_;
  if (value < buckets_.size()) {
    ++buckets_[value];
  } else {
    ++overflow_;
  }
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  PRAMSIM_ASSERT(i < buckets_.size());
  return buckets_[i];
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::uint64_t peak = overflow_;
  for (const auto b : buckets_) {
    peak = std::max(peak, b);
  }
  if (peak == 0) {
    return "(empty histogram)\n";
  }
  std::string out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const auto width = static_cast<std::size_t>(
        static_cast<double>(buckets_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out.append(std::to_string(i));
    out.append(": ");
    out.append(std::max<std::size_t>(width, 1), '#');
    out.append(" (");
    out.append(std::to_string(buckets_[i]));
    out.append(")\n");
  }
  if (overflow_ > 0) {
    out.append(">");
    out.append(std::to_string(buckets_.size() - 1));
    out.append(": (");
    out.append(std::to_string(overflow_));
    out.append(" overflow)\n");
  }
  return out;
}

}  // namespace pramsim::util
