#include "util/fit.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace pramsim::util {

LinearFit least_squares(std::span<const double> x, std::span<const double> y) {
  PRAMSIM_ASSERT(x.size() == y.size());
  PRAMSIM_ASSERT(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-12) {
    // Degenerate x (e.g. constant shape): best fit is the mean.
    fit.intercept = sy / n;
    fit.slope = 0.0;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  const double mean_y = sy / n;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.eval(x[i]);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r_squared = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

namespace {
double shape_const(double) { return 1.0; }
double shape_log(double n) { return std::log2(n); }
double shape_log_sq(double n) {
  const double l = std::log2(n);
  return l * l;
}
double shape_log_sq_over_loglog(double n) {
  const double l = std::log2(n);
  return l * l / std::log2(l);
}
double shape_sqrt(double n) { return std::sqrt(n); }
double shape_linear(double n) { return n; }
}  // namespace

const std::vector<ScalingShape>& standard_shapes() {
  static const std::vector<ScalingShape> shapes = {
      {"1", shape_const},
      {"log n", shape_log},
      {"log^2 n", shape_log_sq},
      {"log^2 n/loglog n", shape_log_sq_over_loglog},
      {"sqrt n", shape_sqrt},
      {"n", shape_linear},
  };
  return shapes;
}

std::vector<ShapeFit> fit_shapes(std::span<const double> n,
                                 std::span<const double> y,
                                 const std::vector<ScalingShape>& shapes) {
  PRAMSIM_ASSERT(n.size() == y.size());
  std::vector<ShapeFit> fits;
  fits.reserve(shapes.size());
  std::vector<double> fx(n.size());
  for (const auto& shape : shapes) {
    for (std::size_t i = 0; i < n.size(); ++i) {
      PRAMSIM_ASSERT(n[i] >= 4.0);
      fx[i] = shape.f(n[i]);
    }
    fits.push_back({shape.name, least_squares(fx, y)});
  }
  std::stable_sort(fits.begin(), fits.end(),
                   [](const ShapeFit& a, const ShapeFit& b) {
                     return a.fit.r_squared > b.fit.r_squared;
                   });
  return fits;
}

std::string best_shape(std::span<const double> n, std::span<const double> y) {
  return fit_shapes(n, y).front().shape_name;
}

}  // namespace pramsim::util
