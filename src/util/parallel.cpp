#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace pramsim::util {

namespace {
std::atomic<std::size_t> g_workers_override{0};
}  // namespace

void set_parallel_workers_override(std::size_t workers) {
  g_workers_override.store(workers, std::memory_order_relaxed);
}

std::size_t parallel_workers(std::size_t n) {
  const std::size_t forced = g_workers_override.load(std::memory_order_relaxed);
  if (forced != 0) {
    return std::clamp<std::size_t>(forced, 1, std::max<std::size_t>(n, 1));
  }
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  // Below ~4 items per worker the thread spawn cost dominates.
  return std::clamp<std::size_t>(n / 4, 1, hw);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t workers = parallel_workers(n);
  if (workers == 1) {
    serial_for(begin, end, fn);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) {
      break;
    }
    threads.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) {
        fn(i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = begin; i < end; ++i) {
    fn(i);
  }
}

// ---- Executor: parked worker pool for intra-step fan-out -------------------

struct Executor::Pool {
  explicit Pool(std::size_t n_threads) {
    threads.reserve(n_threads);
    for (std::size_t w = 0; w < n_threads; ++w) {
      threads.emplace_back([this, w] { worker_loop(w + 1); });
    }
  }

  ~Pool() {
    {
      const std::lock_guard lock(mutex);
      stopping.store(true, std::memory_order_relaxed);
      generation.fetch_add(1, std::memory_order_release);
    }
    wake.notify_all();
    for (auto& t : threads) {
      t.join();
    }
  }

  /// Dispatch one job: `workers` total chunks (chunk 0 is the caller's),
  /// pool threads 1..workers-1 each take their fixed chunk. The static
  /// slot assignment keeps the partition a pure function of (n, workers).
  ///
  /// The handshake is spin-assisted: workers spin briefly on the atomic
  /// generation counter before parking on the condition variable, and
  /// the caller spins on the remaining-chunks counter — a serve step's
  /// fan-out lasts microseconds, so sleeping through it would cost more
  /// than the chunks themselves.
  void dispatch(std::size_t n, std::size_t workers,
                const std::function<void(std::size_t, std::size_t)>& fn) {
    const std::size_t chunk = (n + workers - 1) / workers;
    std::size_t pending = 0;
    for (std::size_t w = 1; w < workers; ++w) {
      if (w * chunk < n) {
        ++pending;
      }
    }
    // Seqlock-style publication: job fields are relaxed atomics written
    // BEFORE the generation release-bump; readers validate the
    // generation after copying them (workers that straddle two
    // dispatches — possible only for chunk-less slots — retry on a
    // stale mix instead of acting on it).
    job.store(&fn, std::memory_order_relaxed);
    job_n.store(n, std::memory_order_relaxed);
    job_chunk.store(chunk, std::memory_order_relaxed);
    job_workers.store(workers, std::memory_order_relaxed);
    remaining.store(pending, std::memory_order_relaxed);
    {
      // The mutex pairs the generation bump with sleeping workers'
      // predicate check; spinning workers see the release store alone.
      const std::lock_guard lock(mutex);
      generation.fetch_add(1, std::memory_order_release);
    }
    if (sleepers.load(std::memory_order_acquire) > 0) {
      wake.notify_all();
    }
    fn(0, std::min(n, chunk));
    // Completion: spin briefly (pointless on a single hardware thread,
    // where the workers need this core), then sleep on `done`.
    for (std::uint32_t spin = 0; spin < spin_budget; ++spin) {
      if (remaining.load(std::memory_order_acquire) == 0) {
        return;
      }
    }
    if (remaining.load(std::memory_order_acquire) != 0) {
      std::unique_lock lock(mutex);
      done.wait(lock, [&] {
        return remaining.load(std::memory_order_acquire) == 0;
      });
    }
  }

  void worker_loop(std::size_t slot) {
    std::uint64_t seen = 0;
    for (;;) {
      // Spin first: the next dispatch usually lands within microseconds.
      std::uint64_t gen = generation.load(std::memory_order_acquire);
      for (std::uint32_t spin = 0; gen == seen && spin < spin_budget;
           ++spin) {
        gen = generation.load(std::memory_order_acquire);
      }
      if (gen == seen) {
        sleepers.fetch_add(1, std::memory_order_acq_rel);
        std::unique_lock lock(mutex);
        wake.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 generation.load(std::memory_order_acquire) != seen;
        });
        sleepers.fetch_sub(1, std::memory_order_acq_rel);
        gen = generation.load(std::memory_order_acquire);
      }
      if (stopping.load(std::memory_order_relaxed)) {
        return;
      }
      // Seqlock read: copy the job, then re-check the generation. A
      // worker that was counted into `pending` always sees stable
      // fields (the dispatcher cannot publish the next job until it
      // finishes); only a chunk-less slot can catch the next dispatch
      // mid-write, and the validation sends it back around the loop.
      const auto* fn = job.load(std::memory_order_relaxed);
      const std::size_t jn = job_n.load(std::memory_order_relaxed);
      const std::size_t jc = job_chunk.load(std::memory_order_relaxed);
      const std::size_t jw = job_workers.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (generation.load(std::memory_order_relaxed) != gen) {
        continue;  // stale mix: retry against the new generation
      }
      seen = gen;
      if (slot < jw && slot * jc < jn) {
        const std::size_t lo = slot * jc;
        const std::size_t hi = std::min(jn, lo + jc);
        (*fn)(lo, hi);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Last chunk done: pair with a possibly-sleeping dispatcher
          // (the empty critical section orders us against its wait).
          { const std::lock_guard lock(mutex); }
          done.notify_one();
        }
      }
    }
  }

  std::mutex mutex;
  std::condition_variable wake;
  std::condition_variable done;
  std::vector<std::thread> threads;
  /// Spinning only pays when another hardware thread can make progress
  /// while we burn cycles; on a single-core host go straight to sleep.
  const std::uint32_t spin_budget =
      std::thread::hardware_concurrency() > 1 ? 8192 : 0;
  // Job slot: relaxed atomics published before the generation
  // release-bump and validated seqlock-style by readers.
  std::atomic<const std::function<void(std::size_t, std::size_t)>*> job{
      nullptr};
  std::atomic<std::size_t> job_n{0};
  std::atomic<std::size_t> job_chunk{0};
  std::atomic<std::size_t> job_workers{0};
  std::atomic<std::size_t> remaining{0};
  std::atomic<std::size_t> sleepers{0};
  std::atomic<std::uint64_t> generation{0};
  std::atomic<bool> stopping{false};
};

namespace {
/// Leaf items per worker below which fanning out costs more than it buys.
constexpr std::size_t kExecutorGrain = 768;
/// Pool size cap: intra-step fan-out should never grab the whole host.
constexpr std::size_t kExecutorMaxThreads = 8;
}  // namespace

Executor::Executor() = default;
Executor::~Executor() = default;

std::size_t Executor::plan_workers(std::size_t n, std::size_t work) const {
  if (n <= 1) {
    return 1;
  }
  const std::size_t forced =
      g_workers_override.load(std::memory_order_relaxed);
  if (forced != 0) {
    // Cap at the pool size here, not just in run_with: callers size
    // per-chunk scratch from this value, so it must equal the count the
    // dispatcher actually partitions with.
    return std::min({forced, n, kExecutorMaxThreads + 1});
  }
  // hardware_concurrency() is a syscall; this runs once per served step,
  // so cache it (the core count does not change under us).
  static const std::size_t hw = std::min<std::size_t>(
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1),
      kExecutorMaxThreads + 1);
  return std::clamp<std::size_t>(work / kExecutorGrain, 1, std::min(hw, n));
}

void Executor::run_with(
    std::size_t n, std::size_t workers,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  // Clamp to the pool size too: chunks are assigned to fixed worker
  // slots, so more chunks than slots (+ the caller) would never drain.
  workers = std::clamp<std::size_t>(workers, 1,
                                    std::min(n, kExecutorMaxThreads + 1));
  if (workers <= 1) {
    fn(0, n);
    return;
  }
  if (pool_ == nullptr) {
    pool_ = std::make_unique<Pool>(kExecutorMaxThreads);
  }
  pool_->dispatch(n, workers, fn);
}

}  // namespace pramsim::util
