#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace pramsim::util {

namespace {
std::atomic<std::size_t> g_workers_override{0};
}  // namespace

void set_parallel_workers_override(std::size_t workers) {
  g_workers_override.store(workers, std::memory_order_relaxed);
}

std::size_t parallel_workers(std::size_t n) {
  const std::size_t forced = g_workers_override.load(std::memory_order_relaxed);
  if (forced != 0) {
    return std::clamp<std::size_t>(forced, 1, std::max<std::size_t>(n, 1));
  }
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  // Below ~4 items per worker the thread spawn cost dominates.
  return std::clamp<std::size_t>(n / 4, 1, hw);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t workers = parallel_workers(n);
  if (workers == 1) {
    serial_for(begin, end, fn);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) {
      break;
    }
    threads.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) {
        fn(i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = begin; i < end; ++i) {
    fn(i);
  }
}

}  // namespace pramsim::util
