// Monotonic nanosecond stopwatch — the one timing primitive for benches
// and the obs phase tracers, replacing ad-hoc std::chrono plumbing.
//
// Deterministic fake-clock override (mirroring
// util::set_parallel_workers_override): tests that assert on timing
// output install a fake clock whose now_ns() advances by a fixed tick
// per query, so "elapsed" values are exact and reproducible. The
// override is process-global and NOT meant for concurrent timing — a
// ticking global makes durations interleaving-dependent — it exists so
// single-threaded timing-dependent tests stop being flaky, not to make
// wall-clock deterministic in general.
#pragma once

#include <cstdint>

namespace pramsim::util {

class Stopwatch {
 public:
  /// Starts running at construction.
  Stopwatch() : start_(now_ns()) {}

  void restart() { start_ = now_ns(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return now_ns() - start_;
  }

  [[nodiscard]] double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  /// The clock itself: steady_clock nanoseconds, or the fake clock when
  /// an override is installed (each query advances it by one tick).
  [[nodiscard]] static std::uint64_t now_ns();

 private:
  std::uint64_t start_;
};

/// Install the deterministic fake clock: now_ns() returns start_ns,
/// start_ns + tick_ns, start_ns + 2 * tick_ns, ... until cleared.
void set_fake_clock_override(std::uint64_t start_ns, std::uint64_t tick_ns);
void clear_fake_clock_override();
[[nodiscard]] bool fake_clock_active();

}  // namespace pramsim::util
