#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace pramsim::util {

namespace {

std::string format_cell(const Table::Cell& cell, int precision) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    return *s;
  }
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  const double d = std::get<double>(cell);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, d);
  return buf;
}

bool is_numeric(const Table::Cell& cell) {
  return !std::holds_alternative<std::string>(cell);
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PRAMSIM_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  PRAMSIM_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(int precision) const {
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  std::vector<std::size_t> widths(headers_.size());
  std::vector<bool> numeric(headers_.size(), true);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c], precision));
      widths[c] = std::max(widths[c], cells.back().size());
      if (!is_numeric(row[c])) {
        numeric[c] = false;
      }
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream out;
  if (!title_.empty()) {
    out << "== " << title_ << " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto pad = widths[c] - cells[c].size();
      out << ' ';
      if (numeric[c]) {
        out << std::string(pad, ' ') << cells[c];
      } else {
        out << cells[c] << std::string(pad, ' ');
      }
      out << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    out << "+";
    for (const auto w : widths) {
      out << std::string(w + 2, '-') << "+";
    }
    out << "\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rendered) {
    emit_row(row);
  }
  emit_rule();
  return out.str();
}

std::string Table::to_csv(int precision) const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << headers_[c] << (c + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << format_cell(row[c], precision)
          << (c + 1 < row.size() ? "," : "\n");
    }
  }
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

std::string json_cell(const Table::Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    std::string out;
    out += '"';
    out += json_escape(*s);
    out += '"';
    return out;
  }
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  const double d = std::get<double>(cell);
  if (d != d || d - d != 0.0) {
    return "null";  // NaN / inf are not representable in JSON
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

}  // namespace

std::string Table::to_json() const {
  std::ostringstream out;
  out << "{\"title\": \"" << json_escape(title_) << "\", \"headers\": [";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? ", " : "") << "\"" << json_escape(headers_[c]) << "\"";
  }
  out << "], \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << (r ? ", " : "") << "[";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      out << (c ? ", " : "") << json_cell(rows_[r][c]);
    }
    out << "]";
  }
  out << "]}";
  return out.str();
}

void Table::print(int precision) const {
  std::fputs(to_string(precision).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace pramsim::util
