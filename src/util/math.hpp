// Integer and log-space math used throughout the simulator and the
// Theorem 1 / Lemma 2 calculators.
//
// Conventions: all logs named log2* are base 2 (the paper's bounds are
// stated up to constant factors, but base-2 keeps measured fits and printed
// tables consistent); ln* are natural. Counting quantities (binomials over
// sets of memory maps) overflow anything fixed-width, so they are handled
// exclusively in log space via lgamma.
#pragma once

#include <cstdint>

namespace pramsim::util {

/// floor(log2(x)) for x >= 1. Precondition: x >= 1.
[[nodiscard]] int ilog2_floor(std::uint64_t x);

/// ceil(log2(x)) for x >= 1. ilog2_ceil(1) == 0.
[[nodiscard]] int ilog2_ceil(std::uint64_t x);

/// True iff x is a power of two (x >= 1).
[[nodiscard]] bool is_pow2(std::uint64_t x);

/// Smallest power of two >= x (x >= 1).
[[nodiscard]] std::uint64_t next_pow2(std::uint64_t x);

/// ceil(a / b) for b > 0.
[[nodiscard]] std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b);

/// Integer power base^exp; asserts on overflow of uint64.
[[nodiscard]] std::uint64_t ipow(std::uint64_t base, unsigned exp);

/// Integer square root: floor(sqrt(x)).
[[nodiscard]] std::uint64_t isqrt(std::uint64_t x);

/// Natural log of the binomial coefficient C(n, k).
/// Returns -infinity when k < 0 or k > n (the coefficient is 0).
[[nodiscard]] double ln_binomial(double n, double k);

/// log2 of C(n, k); -infinity when the coefficient is 0.
[[nodiscard]] double log2_binomial(double n, double k);

/// Natural log of n! via lgamma.
[[nodiscard]] double ln_factorial(double n);

/// log2(x) as double; precondition x > 0.
[[nodiscard]] double log2d(double x);

/// The paper's recurring time shape log^2(n) / log log(n), in base 2,
/// defined for n >= 4 (log log n > 0); asserts otherwise.
[[nodiscard]] double log2_sq_over_loglog(double n);

/// Numerically stable log(exp(a) + exp(b)) for natural-log inputs;
/// tolerates -infinity arguments.
[[nodiscard]] double ln_add_exp(double a, double b);

}  // namespace pramsim::util
