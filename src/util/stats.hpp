// Streaming statistics and histograms for the measurement harnesses.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pramsim::util {

/// Welford's online mean/variance plus min/max. Numerically stable; used to
/// summarize per-step round counts, queue depths, congestion, etc.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1 divisor)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel sweeps).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over retained samples (the harness sample counts are
/// small enough that retention is cheaper than sketching).
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  /// Percentile p in [0,100], linear interpolation; asserts on empty set.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Fixed-width integer histogram (bucket i counts values == i, with an
/// overflow bucket); prints compact ASCII bars.
class Histogram {
 public:
  explicit Histogram(std::size_t max_value);
  void add(std::uint64_t value);
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const;
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::string ascii(std::size_t max_width = 40) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace pramsim::util
