// Strong ID types.
//
// The simulator juggles many kinds of integer identifiers: processors,
// memory modules, shared variables, network nodes, variable copies. Mixing
// them up is the classic P-RAM-simulator bug (a module index used as a
// variable index silently "works" whenever M <= m). Following
// CppCoreGuidelines I.4 we wrap each in a distinct strong type; conversion
// to the raw value is explicit via .value().
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace pramsim {

/// CRTP-free strong integer id. `Tag` makes each instantiation a distinct
/// type; ids are ordered and hashable so they can key standard containers.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  /// Convenience for indexing into std::vector without a cast at call sites.
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  value_type value_ = 0;
};

struct ProcTag {};
struct ModuleTag {};
struct VarTag {};
struct NodeTag {};
struct ClusterTag {};

/// Index of a P-RAM / simulating-machine processor, 0..n-1.
using ProcId = StrongId<ProcTag>;
/// Index of a memory module, 0..M-1.
using ModuleId = StrongId<ModuleTag>;
/// Index of a shared P-RAM variable (shared-memory cell), 0..m-1.
using VarId = StrongId<VarTag>;
/// Index of a node in a simulated interconnection network.
using NodeId = StrongId<NodeTag>;
/// Index of a processor cluster in the UW/LPP protocols.
using ClusterId = StrongId<ClusterTag>;

}  // namespace pramsim

template <typename Tag>
struct std::hash<pramsim::StrongId<Tag>> {
  std::size_t operator()(pramsim::StrongId<Tag> id) const noexcept {
    return std::hash<typename pramsim::StrongId<Tag>::value_type>{}(
        id.value());
  }
};
