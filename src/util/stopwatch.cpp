#include "util/stopwatch.hpp"

#include <atomic>
#include <chrono>

namespace pramsim::util {

namespace {
std::atomic<bool> g_fake_active{false};
std::atomic<std::uint64_t> g_fake_now{0};
std::atomic<std::uint64_t> g_fake_tick{0};
}  // namespace

std::uint64_t Stopwatch::now_ns() {
  if (g_fake_active.load(std::memory_order_relaxed)) {
    return g_fake_now.fetch_add(g_fake_tick.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_fake_clock_override(std::uint64_t start_ns, std::uint64_t tick_ns) {
  g_fake_now.store(start_ns, std::memory_order_relaxed);
  g_fake_tick.store(tick_ns, std::memory_order_relaxed);
  g_fake_active.store(true, std::memory_order_relaxed);
}

void clear_fake_clock_override() {
  g_fake_active.store(false, std::memory_order_relaxed);
}

bool fake_clock_active() {
  return g_fake_active.load(std::memory_order_relaxed);
}

}  // namespace pramsim::util
