// Bump arena for per-step scratch storage.
//
// The hot serve path (core::PlanBuilder and the native AccessPlan
// implementations) rebuilds the same families of arrays every P-RAM step.
// Allocating them from the heap each step dominated the serve loop; the
// arena hands out typed spans from reusable blocks and recycles the whole
// lot with one reset() per step, so a warmed-up arena performs zero heap
// allocations regardless of how many steps it serves.
//
// Spans returned by alloc() are valid until the next reset(); blocks are
// never shrunk, so pointers handed out between resets stay stable even as
// further allocations land in later blocks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace pramsim::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 4096)
      : initial_bytes_(initial_bytes < 64 ? 64 : initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Recycle every span handed out so far; capacity is retained.
  void reset() {
    block_ = 0;
    used_ = 0;
  }

  /// Uninitialized storage for `count` objects of trivial type T. The
  /// caller fills the span; contents do not survive reset().
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is recycled without running destructors");
    if (count == 0) {
      return {};
    }
    void* p = raw_alloc(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Total bytes reserved across all blocks (capacity, not live usage).
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const auto& block : blocks_) {
      total += block.capacity;
    }
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
  };

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const std::size_t aligned = (used_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.capacity) {
        used_ = aligned + bytes;
        return b.data.get() + aligned;
      }
      ++block_;
      used_ = 0;
    }
    // Grow geometrically so long-lived builders converge to one block.
    std::size_t capacity = blocks_.empty() ? initial_bytes_
                                           : blocks_.back().capacity * 2;
    while (capacity < bytes + align) {
      capacity *= 2;
    }
    blocks_.push_back({std::make_unique<std::byte[]>(capacity), capacity});
    block_ = blocks_.size() - 1;
    const auto base = reinterpret_cast<std::uintptr_t>(
        blocks_.back().data.get());
    const std::size_t aligned = ((base + align - 1) & ~(align - 1)) - base;
    used_ = aligned + bytes;
    return blocks_.back().data.get() + aligned;
  }

  std::size_t initial_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;  ///< index of the block currently bumping
  std::size_t used_ = 0;   ///< bytes used in the current block
};

}  // namespace pramsim::util
