// Assertion macros for pramsim.
//
// PRAMSIM_ASSERT   - checked in all build types; used for invariants whose
//                    violation means the simulation result is meaningless.
// PRAMSIM_DASSERT  - debug-only (compiled out under NDEBUG); used in hot
//                    loops of the network engine and protocol schedulers.
//
// Both print file:line and the failed expression, then abort. We prefer
// abort over exceptions here: a failed invariant in a simulator is a
// programming error, not a recoverable condition (CppCoreGuidelines I.6).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pramsim::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "pramsim assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace pramsim::detail

#define PRAMSIM_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::pramsim::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                     \
  } while (false)

#define PRAMSIM_ASSERT_MSG(expr, msg)                                 \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::pramsim::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define PRAMSIM_DASSERT(expr) \
  do {                        \
  } while (false)
#else
#define PRAMSIM_DASSERT(expr) PRAMSIM_ASSERT(expr)
#endif
