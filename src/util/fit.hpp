// Scaling-shape fits.
//
// The reproduction targets of this repository are asymptotic *shapes*
// (Theorem 2: O(log n); Theorem 3: O(log^2 n / log log n)), so the bench
// harnesses fit measured series T(n) against a fixed menu of candidate
// shapes f(n) via least squares on T ~ a + b*f(n) and report R^2 and the
// best-fitting shape. A good reproduction shows the paper-predicted shape
// winning (or statistically tying) the menu.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace pramsim::util {

/// Result of an ordinary least-squares fit y ~ intercept + slope * f(x).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;

  [[nodiscard]] double eval(double fx) const { return intercept + slope * fx; }
};

/// OLS of y against x (both already transformed). Requires >= 2 points.
[[nodiscard]] LinearFit least_squares(std::span<const double> x,
                                      std::span<const double> y);

/// A named scaling shape f(n).
struct ScalingShape {
  std::string name;
  double (*f)(double n);
};

/// The standard menu: 1, log n, log^2 n, log^2 n/log log n, sqrt n, n.
[[nodiscard]] const std::vector<ScalingShape>& standard_shapes();

/// Fit of one shape to a measured series.
struct ShapeFit {
  std::string shape_name;
  LinearFit fit;
};

/// Fit every shape in `shapes` to (n_i, y_i); results sorted by descending
/// R^2, best first. n values must be >= 4 so log log n is defined.
[[nodiscard]] std::vector<ShapeFit> fit_shapes(
    std::span<const double> n, std::span<const double> y,
    const std::vector<ScalingShape>& shapes = standard_shapes());

/// Convenience: name of the best-fitting shape.
[[nodiscard]] std::string best_shape(std::span<const double> n,
                                     std::span<const double> y);

}  // namespace pramsim::util
