// Reusable open-addressing hash map with O(1) clear.
//
// The serve path needs small per-step maps (batch dedup tables, the
// scheduler's per-round module claims) that used to be freshly constructed
// std::unordered_maps — a heap allocation storm at every step. ScratchMap
// keeps its slot array alive across steps and invalidates old entries by
// bumping an epoch counter, so clear() is one increment and a warmed-up
// map never allocates.
//
// Live entries are additionally threaded through an insertion-order list,
// so iteration order is the insertion order — deterministic across
// platforms and standard libraries, unlike unordered_map.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace pramsim::util {

template <typename Value>
class ScratchMap {
 public:
  /// Drop all entries; capacity and allocations are retained.
  void clear() {
    ++epoch_;
    touched_.clear();
  }

  /// Ensure capacity for `n` live entries without rehashing mid-step.
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want < 2 * n) {
      want *= 2;
    }
    if (want > slots_.size()) {
      rehash(want);
    }
  }

  /// Insert key with `init` if absent. Returns (value, inserted-fresh).
  std::pair<Value*, bool> try_emplace(std::uint64_t key, Value init) {
    if (2 * (touched_.size() + 1) > slots_.size()) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    std::size_t i = probe(key);
    if (slots_[i].epoch == epoch_) {
      return {&slots_[i].value, false};
    }
    slots_[i].key = key;
    slots_[i].epoch = epoch_;
    slots_[i].value = std::move(init);
    touched_.push_back(static_cast<std::uint32_t>(i));
    return {&slots_[i].value, true};
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] Value* find(std::uint64_t key) {
    if (slots_.empty()) {
      return nullptr;
    }
    const std::size_t i = probe(key);
    return slots_[i].epoch == epoch_ ? &slots_[i].value : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return touched_.size(); }

  /// Live slot indices in insertion order (use key_at/value_at).
  [[nodiscard]] const std::vector<std::uint32_t>& touched() const {
    return touched_;
  }
  [[nodiscard]] std::uint64_t key_at(std::uint32_t slot) const {
    return slots_[slot].key;
  }
  [[nodiscard]] Value& value_at(std::uint32_t slot) {
    return slots_[slot].value;
  }
  [[nodiscard]] const Value& value_at(std::uint32_t slot) const {
    return slots_[slot].value;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t epoch = 0;  ///< live iff == map epoch
    Value value{};
  };

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    return x ^ (x >> 33);
  }

  /// First live-with-key or free slot for `key` (linear probing; the load
  /// factor is kept below 1/2 so probes terminate).
  [[nodiscard]] std::size_t probe(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (slots_[i].epoch == epoch_ && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void rehash(std::size_t capacity) {
    PRAMSIM_ASSERT((capacity & (capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    std::vector<std::uint32_t> order = std::move(touched_);
    slots_.assign(capacity, Slot{});
    touched_.clear();
    touched_.reserve(order.size());
    ++epoch_;
    for (const auto idx : order) {
      Slot& from = old[idx];
      const std::size_t i = probe(from.key);
      slots_[i].key = from.key;
      slots_[i].epoch = epoch_;
      slots_[i].value = std::move(from.value);
      touched_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> touched_;
  std::uint64_t epoch_ = 1;
};

}  // namespace pramsim::util
