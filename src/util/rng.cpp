#include "util/rng.hpp"

#include <unordered_set>

namespace pramsim::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
  // An all-zero state would fix the generator at zero; SplitMix64 cannot
  // produce four zero outputs from any seed, but guard regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  PRAMSIM_ASSERT(bound >= 1);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  PRAMSIM_ASSERT(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  shuffle(perm);
  return perm;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  PRAMSIM_ASSERT(k <= n);
  // Floyd's algorithm: O(k) expected time, independent of n.
  std::unordered_set<std::uint64_t> chosen;
  std::vector<std::uint64_t> result;
  result.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = below(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

Rng Rng::split() { return Rng(next() ^ 0xA3EC647659359ACDULL); }

}  // namespace pramsim::util
