// Deterministic, seedable pseudo-randomness.
//
// All randomness in pramsim flows through Xoshiro256** seeded via
// SplitMix64. The library never touches std::random_device: the Lemma 2
// memory maps, the trace generators and the Monte-Carlo verifiers must be
// exactly reproducible from a printed seed (the bad-map union bound and the
// expansion measurements in EXPERIMENTS.md reference specific seeds).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace pramsim::util {

/// SplitMix64: used only to expand a single 64-bit seed into the
/// Xoshiro256** state (the construction recommended by its authors).
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality, 256-bit-state generator. Satisfies
/// std::uniform_random_bit_generator so it can drive <random> if needed,
/// though pramsim uses its own bias-free bounded sampling below.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// with rejection). Precondition: bound >= 1.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an arbitrary random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    const std::size_t n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// A uniformly random permutation of 0..n-1.
  std::vector<std::uint32_t> permutation(std::uint32_t n);

  /// k distinct values sampled uniformly from [0, n) (Floyd's algorithm);
  /// result is in the order generated, not sorted. Precondition: k <= n.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

  /// A decorrelated child generator (for per-thread / per-trial streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace pramsim::util
