// ASCII table / CSV emitter for the bench harnesses.
//
// Every experiment binary prints its results as one or more of these
// tables; EXPERIMENTS.md quotes them verbatim. Numeric cells are
// right-aligned, text left-aligned.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace pramsim::util {

/// Escape a string for embedding inside a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& s);

class Table {
 public:
  using Cell = std::variant<std::string, std::int64_t, double>;

  explicit Table(std::vector<std::string> headers);

  /// Title line printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

  /// Render with box-drawing ASCII. `precision` controls double formatting.
  [[nodiscard]] std::string to_string(int precision = 3) const;
  [[nodiscard]] std::string to_csv(int precision = 6) const;
  /// Machine-readable form: {"title":..., "headers":[...], "rows":[[...]]}.
  /// Numeric cells stay numbers; strings are JSON-escaped.
  [[nodiscard]] std::string to_json() const;

  /// Print to stdout.
  void print(int precision = 3) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace pramsim::util
