#include "util/math.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace pramsim::util {

int ilog2_floor(std::uint64_t x) {
  PRAMSIM_ASSERT(x >= 1);
  return 63 - std::countl_zero(x);
}

int ilog2_ceil(std::uint64_t x) {
  PRAMSIM_ASSERT(x >= 1);
  const int f = ilog2_floor(x);
  return is_pow2(x) ? f : f + 1;
}

bool is_pow2(std::uint64_t x) { return x >= 1 && std::has_single_bit(x); }

std::uint64_t next_pow2(std::uint64_t x) {
  PRAMSIM_ASSERT(x >= 1);
  return std::bit_ceil(x);
}

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  PRAMSIM_ASSERT(b > 0);
  return (a + b - 1) / b;
}

std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t result = 1;
  for (unsigned i = 0; i < exp; ++i) {
    PRAMSIM_ASSERT_MSG(base == 0 ||
                           result <= std::numeric_limits<std::uint64_t>::max() / base,
                       "ipow overflow");
    result *= base;
  }
  return result;
}

std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) {
    return 0;
  }
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  // std::sqrt on large uint64 can be off by one in either direction.
  while (r > 0 && r * r > x) {
    --r;
  }
  while ((r + 1) * (r + 1) <= x) {
    ++r;
  }
  return r;
}

double ln_binomial(double n, double k) {
  if (k < 0.0 || k > n || n < 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

double log2_binomial(double n, double k) {
  constexpr double kLn2 = 0.6931471805599453;
  return ln_binomial(n, k) / kLn2;
}

double ln_factorial(double n) {
  PRAMSIM_ASSERT(n >= 0.0);
  return std::lgamma(n + 1.0);
}

double log2d(double x) {
  PRAMSIM_ASSERT(x > 0.0);
  return std::log2(x);
}

double log2_sq_over_loglog(double n) {
  PRAMSIM_ASSERT(n >= 4.0);
  const double l = std::log2(n);
  return l * l / std::log2(l);
}

double ln_add_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) {
    return b;
  }
  if (b == -std::numeric_limits<double>::infinity()) {
    return a;
  }
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  return hi + std::log1p(std::exp(lo - hi));
}

}  // namespace pramsim::util
