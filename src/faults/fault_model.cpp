#include "faults/fault_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pramsim::faults {

namespace {

/// Map a hash to [0, 1) with 53 uniform bits (Bernoulli trials).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultSpec at_rate(FaultSpec proto, double rate) {
  proto.module_kill_rate *= rate;
  proto.stuck_rate *= rate;
  proto.corruption_rate *= rate;
  return proto;
}

FaultModel::FaultModel(FaultSpec spec, std::uint32_t n_modules)
    : spec_(spec), dead_(std::max(n_modules, 1u), 0) {
  // Exact kills first (sampled without replacement), then the
  // independent per-module kill rate on top; both from the same seed so
  // the set is a pure function of (spec, n_modules).
  const auto M = static_cast<std::uint32_t>(dead_.size());
  const std::uint32_t exact = std::min(spec_.dead_modules, M);
  if (exact > 0) {
    util::Rng rng(spec_.seed ^ 0xDEADC0DEDEADC0DEULL);
    for (const auto module : rng.sample_without_replacement(M, exact)) {
      dead_[module] = 1;
    }
  }
  if (spec_.module_kill_rate > 0.0) {
    for (std::uint32_t module = 0; module < M; ++module) {
      if (to_unit(mix(1, module, 0, 0)) < spec_.module_kill_rate) {
        dead_[module] = 1;
      }
    }
  }
  for (const auto flag : dead_) {
    n_dead_ += flag;
  }
  // Onset steps are drawn INDEPENDENTLY of the kill decision (different
  // mix tag), so widening or moving the onset window never changes which
  // modules die — only when.
  onset_.assign(dead_.size(), 0);
  if (spec_.dynamic()) {
    for (std::uint32_t module = 0; module < M; ++module) {
      if (dead_[module] != 0) {
        onset_[module] = unit_onset(6, module, 0);
      }
    }
  }
}

std::uint64_t FaultModel::mix(std::uint64_t tag, std::uint64_t a,
                              std::uint64_t b, std::uint64_t c) const {
  util::SplitMix64 sm(spec_.seed ^ (tag * 0x9E3779B97F4A7C15ULL));
  std::uint64_t h = sm.next() ^ (a * 0xBF58476D1CE4E5B9ULL);
  h = util::SplitMix64(h ^ (b * 0x94D049BB133111EBULL)).next();
  return util::SplitMix64(h ^ (c * 0xD6E8FEB86659FD93ULL)).next();
}

std::uint64_t FaultModel::unit_onset(std::uint64_t tag, std::uint64_t a,
                                     std::uint64_t b) const {
  if (!spec_.dynamic()) {
    return 0;
  }
  const std::uint64_t lo = std::min(spec_.onset_min, spec_.onset_max);
  const std::uint64_t hi = std::max(spec_.onset_min, spec_.onset_max);
  return lo + mix(tag, a, b, 0) % (hi - lo + 1);
}

bool FaultModel::module_dead(ModuleId module, std::uint64_t step) const {
  return module.index() < dead_.size() && dead_[module.index()] != 0 &&
         step >= onset_[module.index()];
}

bool FaultModel::stuck_at(std::uint64_t entity, std::uint32_t copy,
                          std::uint64_t step, pram::Word& value) const {
  if (spec_.stuck_rate <= 0.0) {
    return false;
  }
  const std::uint64_t h = mix(2, entity, copy, 0);
  if (to_unit(h) >= spec_.stuck_rate) {
    return false;
  }
  if (step < unit_onset(7, entity, copy)) {
    return false;  // dynamic fault not yet active
  }
  // The stuck garbage is itself a pure function of the cell.
  value = static_cast<pram::Word>(mix(3, entity, copy, 0));
  return true;
}

bool FaultModel::corrupt_write(std::uint64_t entity, std::uint32_t copy,
                               std::uint64_t stamp, std::uint64_t step,
                               pram::Word& value) const {
  if (spec_.corruption_rate <= 0.0) {
    return false;
  }
  const std::uint64_t h = mix(4, entity, copy, stamp);
  if (to_unit(h) >= spec_.corruption_rate) {
    return false;
  }
  if (step < unit_onset(8, entity, copy)) {
    return false;  // the store path is still healthy before its onset
  }
  // XOR with a nonzero mask guarantees the committed word is wrong.
  value ^= static_cast<pram::Word>(mix(5, entity, copy, stamp) | 1ULL);
  return true;
}

std::vector<ModuleId> FaultModel::dead_modules() const {
  std::vector<ModuleId> out;
  out.reserve(n_dead_);
  for (std::uint32_t module = 0; module < dead_.size(); ++module) {
    if (dead_[module] != 0) {
      out.emplace_back(module);
    }
  }
  return out;
}

std::uint64_t FaultModel::module_onset(ModuleId module) const {
  PRAMSIM_ASSERT(module.index() < onset_.size());
  return onset_[module.index()];
}

std::uint64_t FaultModel::first_onset() const {
  std::uint64_t first = 0;
  bool found = false;
  for (std::uint32_t module = 0; module < dead_.size(); ++module) {
    if (dead_[module] != 0 && (!found || onset_[module] < first)) {
      first = onset_[module];
      found = true;
    }
  }
  if (found) {
    return first;
  }
  // No module ever dies: stuck/corruption onsets are lazy per-unit
  // hashes we cannot enumerate, so report the earliest possible onset.
  return spec_.dynamic() ? std::min(spec_.onset_min, spec_.onset_max) : 0;
}

}  // namespace pramsim::faults
