#include "faults/fault_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pramsim::faults {

namespace {

/// Map a hash to [0, 1) with 53 uniform bits (Bernoulli trials).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultSpec at_rate(FaultSpec proto, double rate) {
  proto.module_kill_rate *= rate;
  proto.stuck_rate *= rate;
  proto.corruption_rate *= rate;
  return proto;
}

FaultModel::FaultModel(FaultSpec spec, std::uint32_t n_modules)
    : spec_(spec), dead_(std::max(n_modules, 1u), 0) {
  // Exact kills first (sampled without replacement), then the
  // independent per-module kill rate on top; both from the same seed so
  // the set is a pure function of (spec, n_modules).
  const auto M = static_cast<std::uint32_t>(dead_.size());
  const std::uint32_t exact = std::min(spec_.dead_modules, M);
  if (exact > 0) {
    util::Rng rng(spec_.seed ^ 0xDEADC0DEDEADC0DEULL);
    for (const auto module : rng.sample_without_replacement(M, exact)) {
      dead_[module] = 1;
    }
  }
  if (spec_.module_kill_rate > 0.0) {
    for (std::uint32_t module = 0; module < M; ++module) {
      if (to_unit(mix(1, module, 0, 0)) < spec_.module_kill_rate) {
        dead_[module] = 1;
      }
    }
  }
  for (const auto flag : dead_) {
    n_dead_ += flag;
  }
}

std::uint64_t FaultModel::mix(std::uint64_t tag, std::uint64_t a,
                              std::uint64_t b, std::uint64_t c) const {
  util::SplitMix64 sm(spec_.seed ^ (tag * 0x9E3779B97F4A7C15ULL));
  std::uint64_t h = sm.next() ^ (a * 0xBF58476D1CE4E5B9ULL);
  h = util::SplitMix64(h ^ (b * 0x94D049BB133111EBULL)).next();
  return util::SplitMix64(h ^ (c * 0xD6E8FEB86659FD93ULL)).next();
}

bool FaultModel::module_dead(ModuleId module) const {
  return module.index() < dead_.size() && dead_[module.index()] != 0;
}

bool FaultModel::stuck_at(std::uint64_t entity, std::uint32_t copy,
                          pram::Word& value) const {
  if (spec_.stuck_rate <= 0.0) {
    return false;
  }
  const std::uint64_t h = mix(2, entity, copy, 0);
  if (to_unit(h) >= spec_.stuck_rate) {
    return false;
  }
  // The stuck garbage is itself a pure function of the cell.
  value = static_cast<pram::Word>(mix(3, entity, copy, 0));
  return true;
}

bool FaultModel::corrupt_write(std::uint64_t entity, std::uint32_t copy,
                               std::uint64_t stamp,
                               pram::Word& value) const {
  if (spec_.corruption_rate <= 0.0) {
    return false;
  }
  const std::uint64_t h = mix(4, entity, copy, stamp);
  if (to_unit(h) >= spec_.corruption_rate) {
    return false;
  }
  // XOR with a nonzero mask guarantees the committed word is wrong.
  value ^= static_cast<pram::Word>(mix(5, entity, copy, stamp) | 1ULL);
  return true;
}

std::vector<ModuleId> FaultModel::dead_modules() const {
  std::vector<ModuleId> out;
  out.reserve(n_dead_);
  for (std::uint32_t module = 0; module < dead_.size(); ++module) {
    if (dead_[module] != 0) {
      out.emplace_back(module);
    }
  }
  return out;
}

}  // namespace pramsim::faults
