// FaultableMemory: degrade ANY pram::MemorySystem under a seeded
// FaultModel (static or dynamic-onset) and verify every surviving read
// against a trace-consistency oracle — the adversity harness the paper's
// redundancy claims are scored on.
//
// Two injection regimes, chosen automatically:
//
//  * replica-level (preferred): the inner scheme accepts the fault hooks
//    (set_fault_hooks returns true) and applies them at its own copy/
//    share granularity — majority voting really sees divergent copies,
//    IDA really interpolates around missing shares. The wrapper then
//    only contributes the oracle check (silent-wrong-read detection).
//
//  * wrapper-level (fallback): for schemes without replica hooks the
//    wrapper degrades traffic externally — writes to dead (synthetic)
//    modules are dropped, stored words may corrupt, stuck cells override
//    reads. Coarser, but it makes every memory organization, even an
//    opaque one, fault-sweepable.
//
// reliability() merges the wrapper's oracle counters with the inner
// scheme's own telemetry, so callers read one struct either way.
#pragma once

#include <cstdint>
#include <memory>

#include "faults/fault_model.hpp"
#include "faults/trace_checker.hpp"
#include "pram/memory_system.hpp"

namespace pramsim::faults {

class FaultableMemory final : public pram::MemorySystem {
 public:
  FaultableMemory(std::unique_ptr<pram::MemorySystem> inner, FaultSpec spec);

  pram::MemStepCost step(std::span<const VarId> reads,
                         std::span<pram::Word> read_values,
                         std::span<const pram::VarWrite> writes) override;

  [[nodiscard]] std::uint64_t size() const override {
    return inner_->size();
  }
  /// Fault-aware like every replica-level scheme's peek: under
  /// wrapper-level injection a dead synthetic module reads 0 and a
  /// stuck cell reads its stuck value, so peek-based verifiers observe
  /// what the degraded runtime reads observe.
  [[nodiscard]] pram::Word peek(VarId var) const override;
  void poke(VarId var, pram::Word value) override;

  // The widened engine surface passes through to the wrapped scheme, so
  // a FaultableMemory drops into pram::Machine and the pipeline exactly
  // where the bare scheme did.
  [[nodiscard]] double storage_redundancy() const override {
    return inner_->storage_redundancy();
  }
  [[nodiscard]] const memmap::MemoryMap* memory_map() const override {
    return inner_->memory_map();
  }
  [[nodiscard]] std::uint32_t num_modules() const override {
    return inner_->num_modules();
  }
  [[nodiscard]] std::vector<VarId> adversarial_vars(
      std::uint32_t count, std::uint64_t seed) const override {
    return inner_->adversarial_vars(count, seed);
  }
  [[nodiscard]] pram::ReliabilityStats reliability() const override;
  /// Background repair passes through to the wrapped scheme (replica-
  /// level injection repairs at copy/share granularity; wrapper-level
  /// schemes have nothing to rebuild from, so the pass is a no-op).
  pram::ScrubResult scrub(std::uint64_t budget) override;

  [[nodiscard]] const FaultModel& model() const { return model_; }
  [[nodiscard]] const TraceChecker& checker() const { return checker_; }
  /// True when the wrapped scheme injects at its own replica/share
  /// granularity; false when the wrapper degrades it externally.
  [[nodiscard]] bool replica_level_injection() const {
    return inner_injects_;
  }
  [[nodiscard]] pram::MemorySystem& inner() { return *inner_; }

 private:
  /// Synthetic variable->module placement for wrapper-level injection on
  /// schemes that expose no map of their own.
  [[nodiscard]] ModuleId synthetic_module(VarId var) const;

  std::unique_ptr<pram::MemorySystem> inner_;
  FaultModel model_;
  TraceChecker checker_;
  bool inner_injects_ = false;
  std::uint64_t steps_ = 0;  ///< wrapper-level corruption stamp
  pram::ReliabilityStats wrapper_stats_;
};

}  // namespace pramsim::faults
