// FaultableMemory: degrade ANY pram::MemorySystem under a seeded
// FaultModel (static or dynamic-onset) and verify every surviving read
// against a trace-consistency oracle — the adversity harness the paper's
// redundancy claims are scored on.
//
// Two injection regimes, chosen automatically:
//
//  * replica-level (preferred): the inner scheme accepts the fault hooks
//    (set_fault_hooks returns true) and applies them at its own copy/
//    share granularity — majority voting really sees divergent copies,
//    IDA really interpolates around missing shares. The wrapper then
//    only contributes the oracle check (silent-wrong-read detection).
//
//  * wrapper-level (fallback): for schemes without replica hooks the
//    wrapper degrades traffic externally — writes to dead (synthetic)
//    modules are dropped, stored words may corrupt, stuck cells override
//    reads. Coarser, but it makes every memory organization, even an
//    opaque one, fault-sweepable.
//
// reliability() merges the wrapper's oracle counters with the inner
// scheme's own telemetry, so callers read one struct either way.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "faults/fault_model.hpp"
#include "faults/trace_checker.hpp"
#include "pram/memory_system.hpp"

namespace pramsim::faults {

class FaultableMemory final : public pram::MemorySystem {
 public:
  FaultableMemory(std::unique_ptr<pram::MemorySystem> inner, FaultSpec spec);

  pram::MemStepCost step(std::span<const VarId> reads,
                         std::span<pram::Word> read_values,
                         std::span<const pram::VarWrite> writes) override;

  /// Replica-level injection serves plans NATIVELY: the plan forwards to
  /// the inner scheme's own serve (which applies the hooks at copy/share
  /// granularity — including a group-parallel backend fanning groups
  /// across ctx's executor) and the wrapper contributes only the oracle
  /// pass, reading outage flags from the context. Wrapper-level
  /// injection keeps the pre-v2 behavior: the default adapter funnels
  /// the plan through step(), which degrades traffic externally.
  pram::MemStepCost serve(const pram::AccessPlan& plan,
                          pram::ServeContext& ctx) override;

  /// Plan grouping passes through under replica-level injection (the
  /// plan reaches the inner scheme verbatim); wrapper-level injection
  /// serves via step(), so grouping would be wasted sort work.
  [[nodiscard]] std::uint64_t plan_group_of(VarId var) const override {
    return inner_->plan_group_of(var);
  }
  [[nodiscard]] bool wants_plan_groups() const override {
    return inner_injects_ && inner_->wants_plan_groups();
  }
  [[nodiscard]] std::uint32_t capabilities() const override {
    return inner_injects_ ? inner_->capabilities() : 0;
  }
  pram::ServeBackend set_serve_backend(
      pram::ServeBackend backend) override {
    return inner_->set_serve_backend(backend);
  }

  [[nodiscard]] std::uint64_t size() const override {
    return inner_->size();
  }
  /// Fault-aware like every replica-level scheme's peek: under
  /// wrapper-level injection a dead synthetic module reads 0 and a
  /// stuck cell reads its stuck value, so peek-based verifiers observe
  /// what the degraded runtime reads observe.
  [[nodiscard]] pram::Word peek(VarId var) const override;
  void poke(VarId var, pram::Word value) override;

  // The widened engine surface passes through to the wrapped scheme, so
  // a FaultableMemory drops into pram::Machine and the pipeline exactly
  // where the bare scheme did.
  [[nodiscard]] double storage_redundancy() const override {
    return inner_->storage_redundancy();
  }
  [[nodiscard]] const memmap::MemoryMap* memory_map() const override {
    return inner_->memory_map();
  }
  [[nodiscard]] std::uint32_t num_modules() const override {
    return inner_->num_modules();
  }
  [[nodiscard]] std::vector<VarId> adversarial_vars(
      std::uint32_t count, std::uint64_t seed) const override {
    return inner_->adversarial_vars(count, seed);
  }
  [[nodiscard]] pram::ReliabilityStats reliability() const override;

  /// One sink observes both layers: the wrapper's oracle/onset events
  /// and the inner scheme's vote/decode/scrub events land in the same
  /// journal (the step-stamp orders them).
  void set_observer(obs::Sink* sink) override {
    pram::MemorySystem::set_observer(sink);
    inner_->set_observer(sink);
  }
  /// Background repair passes through to the wrapped scheme (replica-
  /// level injection repairs at copy/share granularity; wrapper-level
  /// schemes have nothing to rebuild from, so the pass is a no-op).
  pram::ScrubResult scrub(std::uint64_t budget) override;

  /// The wrapper's own outage view: the inner scheme's flags under
  /// replica-level injection, the synthetic dead-module flags under
  /// wrapper-level injection. Populated by every serving entry (the
  /// default serve() funnels through step(), which fills this), so
  /// ServeContext callers see flags through the wrapper too — before the
  /// ServeContext migration the wrapper computed these flags internally
  /// and silently dropped them.
  [[nodiscard]] std::span<const std::uint8_t> flagged_reads()
      const override {
    return flagged_;
  }

  [[nodiscard]] const FaultModel& model() const { return model_; }
  [[nodiscard]] const TraceChecker& checker() const { return checker_; }
  /// True when the wrapped scheme injects at its own replica/share
  /// granularity; false when the wrapper degrades it externally.
  [[nodiscard]] bool replica_level_injection() const {
    return inner_injects_;
  }
  [[nodiscard]] pram::MemorySystem& inner() { return *inner_; }

 protected:
  /// Snapshot: the inner scheme's full nested frame, then the oracle's
  /// committed-write image (sorted), so a recovered wrapper keeps
  /// catching silent wrong reads against the SAME ideal replica — a
  /// crash must not reset the consistency contract. The fault model
  /// itself is seed-derived (rebuilt by construction) and the onset
  /// journal cursor restarts, so a sink attached after restore re-sees
  /// every onset the restored clock has crossed.
  void snapshot_body(pram::SnapshotSink& sink) override;
  [[nodiscard]] bool restore_body(pram::SnapshotSource& source) override;

 private:
  /// Synthetic variable->module placement for wrapper-level injection on
  /// schemes that expose no map of their own.
  [[nodiscard]] ModuleId synthetic_module(VarId var) const;

  /// Journal every fault onset the step clock has crossed (kFaultOnset,
  /// once per dead module). The cursor only advances while a sink is
  /// attached, so a sink attached mid-run still sees every onset.
  void emit_onsets(std::uint64_t step);

  std::unique_ptr<pram::MemorySystem> inner_;
  FaultModel model_;
  TraceChecker checker_;
  bool inner_injects_ = false;
  pram::ReliabilityStats wrapper_stats_;
  std::vector<std::uint8_t> flagged_;  ///< last step's outage flags
  /// The realized kill set as (onset step, module), sorted by onset —
  /// the emit_onsets cursor walks it as the step clock advances.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> onsets_;
  std::size_t onset_cursor_ = 0;
};

}  // namespace pramsim::faults
