// Trace-consistency oracle, after Wei et al. ("Verifying PRAM
// Consistency over Read/Write Traces of Data Replicas"): replay the
// committed write trace on an ideal single-copy replica and validate
// every observed read against it. A faulty memory can drop replicas and
// still answer correctly (masked fault); what the checker catches is the
// SILENT failure — a read that returned a value no correct replica ever
// held. Storage is sparse (untouched cells read 0, like FlatMemory after
// construction), so wrapping full-scale memories stays cheap.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "pram/types.hpp"

namespace pramsim::faults {

class TraceChecker {
 public:
  /// Record a committed write (the IDEAL value, before any corruption).
  void record_write(VarId var, pram::Word value) {
    ideal_[var.index()] = value;
  }

  /// The value a correct memory must return for `var` right now.
  [[nodiscard]] pram::Word expected(VarId var) const {
    const auto it = ideal_.find(var.index());
    return it == ideal_.end() ? 0 : it->second;
  }

  /// Validate an observed read; returns true when consistent.
  bool check_read(VarId var, pram::Word observed) {
    ++reads_checked_;
    if (observed == expected(var)) {
      return true;
    }
    ++mismatches_;
    return false;
  }

  [[nodiscard]] std::uint64_t reads_checked() const { return reads_checked_; }
  [[nodiscard]] std::uint64_t mismatches() const { return mismatches_; }

  /// Snapshot surface: the sparse ideal replica (the committed-write
  /// image). Serializers iterate keys in sorted order for a canonical
  /// byte stream.
  [[nodiscard]] const std::unordered_map<std::uint64_t, pram::Word>&
  ideal() const {
    return ideal_;
  }

  /// Drop the replica and the counters (restore resets to this blank
  /// state before replaying a snapshot's committed-write image).
  void reset() {
    ideal_.clear();
    reads_checked_ = 0;
    mismatches_ = 0;
  }

 private:
  std::unordered_map<std::uint64_t, pram::Word> ideal_;
  std::uint64_t reads_checked_ = 0;
  std::uint64_t mismatches_ = 0;
};

}  // namespace pramsim::faults
