#include "faults/faultable_memory.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pramsim::faults {

FaultableMemory::FaultableMemory(std::unique_ptr<pram::MemorySystem> inner,
                                 FaultSpec spec)
    : inner_(std::move(inner)),
      model_(spec, inner_ == nullptr ? 1 : inner_->num_modules()) {
  PRAMSIM_ASSERT(inner_ != nullptr);
  inner_injects_ = inner_->set_fault_hooks(&model_);
  for (const auto module : model_.dead_modules()) {
    onsets_.emplace_back(model_.module_onset(module), module.index());
  }
  std::sort(onsets_.begin(), onsets_.end());
}

void FaultableMemory::emit_onsets(std::uint64_t step) {
  if constexpr (obs::kEnabled) {
    if (observer() == nullptr) {
      return;
    }
    while (onset_cursor_ < onsets_.size() &&
           onsets_[onset_cursor_].first <= step) {
      obs_event(obs::EventKind::kFaultOnset, onsets_[onset_cursor_].second,
                0, onsets_[onset_cursor_].first);
      obs_count("fault.onsets");
      ++onset_cursor_;
    }
  } else {
    (void)step;
  }
}

ModuleId FaultableMemory::synthetic_module(VarId var) const {
  const std::uint32_t M = std::max(model_.n_modules(), 1u);
  return ModuleId(static_cast<std::uint32_t>(
      util::SplitMix64(var.index() * 0x9E3779B97F4A7C15ULL).next() % M));
}

pram::MemStepCost FaultableMemory::step(std::span<const VarId> reads,
                                        std::span<pram::Word> read_values,
                                        std::span<const pram::VarWrite> writes) {
  const std::uint64_t step = advance_step_clock();
  emit_onsets(step);
  pram::MemStepCost cost;
  // Reads flagged as known-bad (dead module / under-threshold block)
  // this step: excluded from the silent-wrong count — a flagged loss is
  // an outage, not a lie. Held in flagged_ so serve()-path callers can
  // observe the wrapper's outage view via flagged_reads().
  flagged_.assign(reads.size(), 0);

  if (inner_injects_) {
    cost = inner_->step(reads, read_values, writes);
    const std::span<const std::uint8_t> inner_flags =
        inner_->flagged_reads();
    for (std::size_t i = 0; i < reads.size() && i < inner_flags.size();
         ++i) {
      flagged_[i] = inner_flags[i];
    }
  } else {
    // Wrapper-level degradation: drop writes whose synthetic module is
    // dead, corrupt the words of surviving stores.
    std::vector<pram::VarWrite> degraded;
    degraded.reserve(writes.size());
    for (const auto& write : writes) {
      if (model_.module_dead(synthetic_module(write.var), step)) {
        ++wrapper_stats_.writes_dropped;
        continue;
      }
      pram::VarWrite w = write;
      if (model_.corrupt_write(w.var.index(), 0, step, step, w.value)) {
        ++wrapper_stats_.corrupt_stores;
      }
      degraded.push_back(w);
    }
    cost = inner_->step(reads, read_values, degraded);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      ++wrapper_stats_.reads_served;
      if (model_.module_dead(synthetic_module(reads[i]), step)) {
        read_values[i] = 0;
        flagged_[i] = 1;
        ++wrapper_stats_.uncorrectable;
        ++wrapper_stats_.erasures_skipped;
        ++wrapper_stats_.units_faulty;
        continue;
      }
      pram::Word stuck = 0;
      if (model_.stuck_at(reads[i].index(), 0, step, stuck)) {
        read_values[i] = stuck;
        ++wrapper_stats_.units_faulty;
      }
    }
  }

  // Oracle pass (reads observe pre-step state, so check before the
  // writes commit to the checker). Flagged reads are excluded from the
  // mismatch count — both injection regimes report exactly which reads
  // were served below threshold, so wrong_reads counts ONLY silent lies.
  {
    obs::ScopedPhase timer(obs_timing(), obs::Phase::kOracle);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      if (flagged_[i] != 0) {
        (void)checker_.check_read(reads[i], checker_.expected(reads[i]));
        continue;  // counted as checked-consistent: the loss was flagged
      }
      if (!checker_.check_read(reads[i], read_values[i])) {
        ++wrapper_stats_.wrong_reads;
        obs_event(obs::EventKind::kWrongRead, reads[i].index(), 0,
                  read_values[i], checker_.expected(reads[i]));
        obs_count("oracle.wrong_reads");
      }
    }
  }

  for (const auto& write : writes) {
    checker_.record_write(write.var, write.value);
  }
  return cost;
}

pram::MemStepCost FaultableMemory::serve(const pram::AccessPlan& plan,
                                         pram::ServeContext& ctx) {
  if (!inner_injects_) {
    // Wrapper-level injection must observe every access: the default
    // adapter funnels the plan through this wrapper's step() override.
    return pram::MemorySystem::serve(plan, ctx);
  }
  advance_step_clock();
  emit_onsets(steps_served());
  const pram::MemStepCost cost = inner_->serve(plan, ctx);

  // Mirror the context's outage flags (the inner scheme's view) so
  // step()-level callers of flagged_reads() see them here too.
  const std::span<const std::uint8_t> flags = ctx.flags();
  flagged_.assign(plan.reads.size(), 0);
  for (std::size_t i = 0; i < plan.reads.size() && i < flags.size(); ++i) {
    flagged_[i] = flags[i];
  }

  // Oracle pass, identical to step()'s: flagged losses are outages, not
  // lies; everything else must match the trace-consistency expectation.
  const std::span<pram::Word> read_values = ctx.read_values();
  {
    obs::ScopedPhase timer(obs_timing(), obs::Phase::kOracle);
    for (std::size_t i = 0; i < plan.reads.size(); ++i) {
      if (flagged_[i] != 0) {
        (void)checker_.check_read(plan.reads[i],
                                  checker_.expected(plan.reads[i]));
        continue;
      }
      if (!checker_.check_read(plan.reads[i], read_values[i])) {
        ++wrapper_stats_.wrong_reads;
        obs_event(obs::EventKind::kWrongRead, plan.reads[i].index(), 0,
                  read_values[i], checker_.expected(plan.reads[i]));
        obs_count("oracle.wrong_reads");
      }
    }
  }
  for (const auto& write : plan.writes) {
    checker_.record_write(write.var, write.value);
  }
  return cost;
}

pram::Word FaultableMemory::peek(VarId var) const {
  if (!inner_injects_) {
    if (model_.module_dead(synthetic_module(var), steps_served())) {
      return 0;
    }
    pram::Word stuck = 0;
    if (model_.stuck_at(var.index(), 0, steps_served(), stuck)) {
      return stuck;
    }
  }
  return inner_->peek(var);
}

void FaultableMemory::poke(VarId var, pram::Word value) {
  checker_.record_write(var, value);
  if (!inner_injects_) {
    const std::uint64_t step = steps_served();
    if (model_.module_dead(synthetic_module(var), step)) {
      ++wrapper_stats_.writes_dropped;
      return;
    }
    if (model_.corrupt_write(var.index(), 0, step, step, value)) {
      ++wrapper_stats_.corrupt_stores;
    }
  }
  inner_->poke(var, value);
}

pram::ScrubResult FaultableMemory::scrub(std::uint64_t budget) {
  // Replica-level schemes repair themselves; wrapper-level injection has
  // a single synthetic copy per variable — nothing to rebuild from — and
  // the un-hooked inner scheme's scrub() is a no-op by contract.
  return inner_->scrub(budget);
}

pram::ReliabilityStats FaultableMemory::reliability() const {
  pram::ReliabilityStats merged = wrapper_stats_;
  merged.merge(inner_->reliability());
  return merged;
}

void FaultableMemory::snapshot_body(pram::SnapshotSink& sink) {
  inner_->snapshot(sink);

  std::vector<std::uint64_t> vars;
  vars.reserve(checker_.ideal().size());
  // pramlint: ordered-fold (keys collected then sorted before emission)
  for (const auto& [var, value] : checker_.ideal()) {
    (void)value;
    vars.push_back(var);
  }
  std::sort(vars.begin(), vars.end());
  put_u64(sink, vars.size());
  for (const std::uint64_t var : vars) {
    put_u64(sink, var);
    put_word(sink, checker_.ideal().at(var));
  }
}

bool FaultableMemory::restore_body(pram::SnapshotSource& source) {
  if (!inner_->restore(source)) {
    return false;
  }
  checker_.reset();
  std::uint64_t count = 0;
  if (!get_u64(source, count)) {
    return false;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t var = 0;
    pram::Word value = 0;
    if (!get_u64(source, var) || !get_word(source, value) ||
        var >= inner_->size()) {
      return false;
    }
    checker_.record_write(VarId(static_cast<std::uint32_t>(var)), value);
  }
  onset_cursor_ = 0;
  return true;
}

}  // namespace pramsim::faults
