// The seeded deterministic fault model: which modules die, which
// copies/shares are stuck, and which stores corrupt is fixed by
// (seed, sizes) before the computation starts. Two FaultModels built from
// the same spec answer every query identically — fault sweeps are exactly
// replayable from a printed seed, like everything else in pramsim.
//
// Two time regimes, selected by the spec's onset window:
//
//  * static (Chlebus-Gasieniec-Pelc, onset_min = onset_max = 0): every
//    fault is active from step 0 and unchanging during the run — the
//    classic regime, bit-identical to the pre-dynamic model;
//  * dynamic (onset_max > 0): each faulty unit additionally acquires a
//    seed-derived onset step drawn uniformly from [onset_min, onset_max];
//    the fault is inactive before that step and active from it on.
//    WHICH units fail never depends on the window — only WHEN.
//
// Faults never heal by themselves; recovery is MemorySystem::scrub's job.
#pragma once

#include <cstdint>
#include <vector>

#include "pram/faults.hpp"
#include "util/rng.hpp"

namespace pramsim::faults {

/// Fault intensities. Counts are exact (sampled without replacement);
/// rates are per-unit Bernoulli probabilities decided by seeded hashing,
/// so the SAME units fail regardless of access order.
struct FaultSpec {
  std::uint64_t seed = 1;
  /// Exactly this many modules die (clamped to the module count).
  std::uint32_t dead_modules = 0;
  /// Additionally, each module dies independently with this probability.
  double module_kill_rate = 0.0;
  /// Each (entity, copy) storage cell is stuck-at garbage w.p. this.
  double stuck_rate = 0.0;
  /// Each store commits a silently corrupted word w.p. this.
  double corruption_rate = 0.0;
  /// Dynamic-fault onset window: with onset_max > 0, each faulty unit
  /// activates at a seed-derived step drawn uniformly from
  /// [onset_min, onset_max] (onset_min = onset_max pins a sharp onset).
  /// Both 0 = static regime: every fault active from step 0.
  std::uint64_t onset_min = 0;
  std::uint64_t onset_max = 0;

  [[nodiscard]] bool inert() const {
    return dead_modules == 0 && module_kill_rate == 0.0 &&
           stuck_rate == 0.0 && corruption_rate == 0.0;
  }
  [[nodiscard]] bool dynamic() const { return onset_max > 0; }
};

/// Scale a prototype's rate axes by `rate` (fault sweeps ramp this);
/// counts, seed, and the onset window pass through unchanged.
[[nodiscard]] FaultSpec at_rate(FaultSpec proto, double rate);

/// The deterministic pram::FaultHooks implementation. The dead-module
/// set and its onset steps are materialized at construction;
/// stuck/corruption answers are pure seeded-hash functions of their
/// arguments.
class FaultModel final : public pram::FaultHooks {
 public:
  FaultModel(FaultSpec spec, std::uint32_t n_modules);

  [[nodiscard]] bool module_dead(ModuleId module,
                                 std::uint64_t step) const override;
  [[nodiscard]] bool stuck_at(std::uint64_t entity, std::uint32_t copy,
                              std::uint64_t step,
                              pram::Word& value) const override;
  [[nodiscard]] bool corrupt_write(std::uint64_t entity, std::uint32_t copy,
                                   std::uint64_t stamp, std::uint64_t step,
                                   pram::Word& value) const override;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint32_t n_modules() const {
    return static_cast<std::uint32_t>(dead_.size());
  }
  /// Modules that EVER die (at any step; the eventual kill set).
  [[nodiscard]] std::uint32_t dead_module_count() const { return n_dead_; }
  [[nodiscard]] std::vector<ModuleId> dead_modules() const;
  /// The step at which `module` dies (0 for static faults; meaningful
  /// only for modules in the kill set).
  [[nodiscard]] std::uint64_t module_onset(ModuleId module) const;
  /// Earliest onset among the realized kill set. With a dynamic spec but
  /// an empty kill set (stuck/corruption-only faults, whose per-unit
  /// onsets are lazy hashes over an unbounded domain), returns the onset
  /// window's lower bound — the earliest any fault can activate. 0 in
  /// the static regime.
  [[nodiscard]] std::uint64_t first_onset() const;

 private:
  /// Seeded avalanche over (tag, a, b, c): the one source of per-unit
  /// fault randomness.
  [[nodiscard]] std::uint64_t mix(std::uint64_t tag, std::uint64_t a,
                                  std::uint64_t b, std::uint64_t c) const;
  /// Seed-derived onset step for a faulty unit (0 in the static regime).
  [[nodiscard]] std::uint64_t unit_onset(std::uint64_t tag, std::uint64_t a,
                                         std::uint64_t b) const;

  FaultSpec spec_;
  std::vector<std::uint8_t> dead_;      ///< per-module death flags
  std::vector<std::uint64_t> onset_;    ///< per-module onset steps
  std::uint32_t n_dead_ = 0;
};

}  // namespace pramsim::faults
