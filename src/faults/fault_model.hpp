// The seeded deterministic static-fault model (Chlebus-Gasieniec-Pelc
// style): which modules are dead, which copies/shares are stuck, and
// which stores corrupt is fixed by (seed, sizes) before the computation
// starts and never changes during it. Two FaultModels built from the same
// spec answer every query identically — fault sweeps are exactly
// replayable from a printed seed, like everything else in pramsim.
#pragma once

#include <cstdint>
#include <vector>

#include "pram/faults.hpp"
#include "util/rng.hpp"

namespace pramsim::faults {

/// Fault intensities. Counts are exact (sampled without replacement);
/// rates are per-unit Bernoulli probabilities decided by seeded hashing,
/// so the SAME units fail regardless of access order.
struct FaultSpec {
  std::uint64_t seed = 1;
  /// Exactly this many modules die (clamped to the module count).
  std::uint32_t dead_modules = 0;
  /// Additionally, each module dies independently with this probability.
  double module_kill_rate = 0.0;
  /// Each (entity, copy) storage cell is stuck-at garbage w.p. this.
  double stuck_rate = 0.0;
  /// Each store commits a silently corrupted word w.p. this.
  double corruption_rate = 0.0;

  [[nodiscard]] bool inert() const {
    return dead_modules == 0 && module_kill_rate == 0.0 &&
           stuck_rate == 0.0 && corruption_rate == 0.0;
  }
};

/// Scale a prototype's rate axes by `rate` (fault sweeps ramp this);
/// counts and seed pass through unchanged.
[[nodiscard]] FaultSpec at_rate(FaultSpec proto, double rate);

/// The deterministic pram::FaultHooks implementation. The dead-module
/// set is materialized at construction; stuck/corruption answers are
/// pure seeded-hash functions of their arguments.
class FaultModel final : public pram::FaultHooks {
 public:
  FaultModel(FaultSpec spec, std::uint32_t n_modules);

  [[nodiscard]] bool module_dead(ModuleId module) const override;
  [[nodiscard]] bool stuck_at(std::uint64_t entity, std::uint32_t copy,
                              pram::Word& value) const override;
  [[nodiscard]] bool corrupt_write(std::uint64_t entity, std::uint32_t copy,
                                   std::uint64_t stamp,
                                   pram::Word& value) const override;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint32_t n_modules() const {
    return static_cast<std::uint32_t>(dead_.size());
  }
  [[nodiscard]] std::uint32_t dead_module_count() const { return n_dead_; }
  [[nodiscard]] std::vector<ModuleId> dead_modules() const;

 private:
  /// Seeded avalanche over (tag, a, b, c): the one source of per-unit
  /// fault randomness.
  [[nodiscard]] std::uint64_t mix(std::uint64_t tag, std::uint64_t a,
                                  std::uint64_t b, std::uint64_t c) const;

  FaultSpec spec_;
  std::vector<std::uint8_t> dead_;  ///< per-module death flags
  std::uint32_t n_dead_ = 0;
};

}  // namespace pramsim::faults
