#include "durability/checkpoint.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <string_view>
#include <utility>

#include "durability/crc32.hpp"
#include "pram/snapshot.hpp"
#include "util/assert.hpp"

namespace pramsim::durability {

namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kCheckpointMagic = 0x50434B50u;  // 'PCKP'
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;  // magic,ver,step,len
constexpr std::size_t kTrailerBytes = 4;             // crc32(payload)

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

// resize + memcpy rather than insert-from-pointer-range: GCC 12 at -O3
// flags the latter with a false-positive -Wstringop-overflow when the
// source is a stack scalar (same family as the suppressions in
// CMakeLists.txt, kept out of a header-wide suppression this way).
template <typename T>
void append_field(std::vector<std::uint8_t>& out, T value) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(value));
  std::memcpy(out.data() + offset, &value, sizeof(value));
}

[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return bytes;
  }
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(file);
  return bytes;
}

/// Validate a checkpoint image end to end; on success returns the
/// payload span (borrowing `bytes`) and fills `step`.
[[nodiscard]] bool validate_image(std::span<const std::uint8_t> bytes,
                                  std::uint64_t& step,
                                  std::span<const std::uint8_t>& payload) {
  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    return false;
  }
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t payload_len = 0;
  std::size_t offset = 0;
  std::memcpy(&magic, bytes.data() + offset, 4);
  offset += 4;
  std::memcpy(&version, bytes.data() + offset, 4);
  offset += 4;
  std::memcpy(&step, bytes.data() + offset, 8);
  offset += 8;
  std::memcpy(&payload_len, bytes.data() + offset, 8);
  offset += 8;
  if (magic != kCheckpointMagic || version != kCheckpointVersion) {
    return false;
  }
  if (bytes.size() - offset < payload_len + kTrailerBytes) {
    return false;  // torn mid-payload or mid-trailer
  }
  payload = bytes.subspan(offset, payload_len);
  std::uint32_t crc = 0;
  std::memcpy(&crc, bytes.data() + offset + payload_len, 4);
  return crc32(payload.data(), payload.size()) == crc;
}

/// Parse `ckpt-<step>.bin`; nullopt for any other filename.
[[nodiscard]] std::optional<std::uint64_t> step_of(
    const std::string& filename) {
  constexpr std::string_view kPrefix = "ckpt-";
  constexpr std::string_view kSuffix = ".bin";
  if (filename.size() <= kPrefix.size() + kSuffix.size() ||
      filename.compare(0, kPrefix.size(), kPrefix) != 0 ||
      filename.compare(filename.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
    return std::nullopt;
  }
  const char* first = filename.data() + kPrefix.size();
  const char* last = filename.data() + filename.size() - kSuffix.size();
  std::uint64_t step = 0;
  const auto [ptr, ec] = std::from_chars(first, last, step);
  if (ec != std::errc() || ptr != last) {
    return std::nullopt;
  }
  return step;
}

}  // namespace

Checkpointer::Checkpointer(CheckpointConfig config, obs::Sink* sink)
    : config_(std::move(config)), obs_(sink) {
  PRAMSIM_ASSERT(config_.keep >= 1);
  fs::create_directories(config_.directory);
}

std::vector<std::uint8_t> Checkpointer::file_image(
    pram::MemorySystem& memory, std::uint64_t step) {
  pram::BufferSink sink;
  memory.snapshot(sink);
  const std::vector<std::uint8_t> payload = sink.take();

  std::vector<std::uint8_t> image;
  image.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  append_field(image, kCheckpointMagic);
  append_field(image, kCheckpointVersion);
  append_field(image, step);
  append_field(image, static_cast<std::uint64_t>(payload.size()));
  append_bytes(image, payload.data(), payload.size());
  append_field(image, crc32(payload.data(), payload.size()));
  return image;
}

std::string Checkpointer::path_for(const std::string& directory,
                                   std::uint64_t step) {
  return (fs::path(directory) / ("ckpt-" + std::to_string(step) + ".bin"))
      .string();
}

std::uint64_t Checkpointer::write(pram::MemorySystem& memory,
                                  std::uint64_t step) {
  if (obs_ != nullptr) {
    obs_->journal.append(step, obs::EventKind::kCheckpointBegin, step, 0,
                         written_);
  }
  const std::vector<std::uint8_t> image = file_image(memory, step);
  const std::string path = path_for(config_.directory, step);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  PRAMSIM_ASSERT(file != nullptr);
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), file);
  PRAMSIM_ASSERT(written == image.size());
  PRAMSIM_ASSERT(std::fflush(file) == 0);
  std::fclose(file);

  ++written_;
  last_step_ = step;
  last_bytes_ = image.size();
  if (obs_ != nullptr) {
    obs_->journal.append(step, obs::EventKind::kCheckpointEnd, step, 0,
                         image.size());
    obs_->metrics.add("checkpoint.writes");
    obs_->metrics.add("checkpoint.bytes", image.size());
  }

  // Retention: keep the newest `keep` checkpoints by step number.
  std::vector<std::uint64_t> steps;
  for (const auto& entry : fs::directory_iterator(config_.directory)) {
    if (const auto s = step_of(entry.path().filename().string())) {
      steps.push_back(*s);
    }
  }
  std::sort(steps.begin(), steps.end());
  while (steps.size() > config_.keep) {
    fs::remove(path_for(config_.directory, steps.front()));
    steps.erase(steps.begin());
  }
  return image.size();
}

std::optional<Checkpointer::Found> Checkpointer::latest(
    const std::string& directory) {
  if (!fs::is_directory(directory)) {
    return std::nullopt;
  }
  std::vector<std::uint64_t> steps;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (const auto s = step_of(entry.path().filename().string())) {
      steps.push_back(*s);
    }
  }
  // Newest first; the first file that validates wins (a torn newest
  // checkpoint falls back to its predecessor).
  std::sort(steps.rbegin(), steps.rend());
  for (const std::uint64_t step : steps) {
    const std::string path = path_for(directory, step);
    const std::vector<std::uint8_t> bytes = read_file(path);
    std::uint64_t header_step = 0;
    std::span<const std::uint8_t> payload;
    if (validate_image(bytes, header_step, payload) &&
        header_step == step) {
      return Found{path, step};
    }
  }
  return std::nullopt;
}

bool Checkpointer::load(const std::string& path,
                        pram::MemorySystem& memory) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t step = 0;
  std::span<const std::uint8_t> payload;
  if (!validate_image(bytes, step, payload)) {
    return false;
  }
  pram::BufferSource source(payload);
  return memory.restore(source) && source.exhausted();
}

}  // namespace pramsim::durability
