// durability::recover — restart recovery: load the newest VALID
// checkpoint (a torn newest file falls back to its predecessor), replay
// the WAL tail (committed steps newer than the checkpoint) by poking
// absolute values, then optionally run a scrub pass so replica-level
// schemes re-establish their redundancy invariants before serving
// resumes.
//
// Replay is inherently idempotent: WAL step-commit records carry
// absolute (var, value) pairs, so replaying a record the checkpoint
// already covers — possible when a crash lands between checkpoint write
// and WAL truncation (kAfterCheckpointPreTruncate) — is filtered by the
// step bound, and replaying the whole log twice converges to the same
// state. Recovery never advances the memory's step clock: pokes are
// untimed, and stamp freshness stays monotone because the restored
// clock already upper-bounds every replayed write's origin step.
#pragma once

#include <cstdint>
#include <string>

#include "obs/sink.hpp"
#include "pram/memory_system.hpp"

namespace pramsim::durability {

struct RecoveryOutcome {
  bool checkpoint_loaded = false;
  std::uint64_t checkpoint_step = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t replayed_writes = 0;
  /// Records skipped because the checkpoint already covers their step
  /// (a crash before WAL truncation leaves such a prefix).
  std::uint64_t skipped_records = 0;
  bool torn_wal_tail = false;
  std::uint64_t wal_bytes_replayed = 0;
  /// The committed horizon recovery re-established:
  /// max(checkpoint step, last durable WAL commit step).
  std::uint64_t recovered_step = 0;
  pram::ScrubResult scrub;
};

/// Recover `memory` (freshly constructed, same configuration as the
/// crashed run) from `checkpoint_dir` + `wal_path`. Missing checkpoint
/// and/or WAL degrade gracefully: recovery from nothing is a no-op that
/// reports recovered_step 0. `scrub_budget` > 0 runs one scrub pass
/// after replay; `sink` receives kWalReplay journal events and wal.*
/// counters.
RecoveryOutcome recover(pram::MemorySystem& memory,
                        const std::string& wal_path,
                        const std::string& checkpoint_dir,
                        std::uint64_t scrub_budget = 0,
                        obs::Sink* sink = nullptr);

}  // namespace pramsim::durability
