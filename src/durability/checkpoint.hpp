// durability::Checkpointer — periodic full-state snapshots of a
// pram::MemorySystem, written through the scheme-agnostic
// snapshot()/restore() surface so every SchemeKind (and every wrapper
// stack: faults over cache over scheme) checkpoints unmodified.
//
// Checkpoint file layout (host-endian, machine-local):
//
//   u32 magic 'PCKP', u32 version, u64 step, u64 payload_len,
//   payload (the MemorySystem snapshot frame), u32 crc32(payload)
//
// Files are named `ckpt-<step>.bin` in the configured directory; the
// newest `keep` checkpoints are retained. latest() returns the newest
// file that VALIDATES end to end (header, length, CRC), so a checkpoint
// torn mid-write falls back to its predecessor — the crash matrix's
// kMidCheckpoint case.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/sink.hpp"
#include "pram/memory_system.hpp"

namespace pramsim::durability {

struct CheckpointConfig {
  std::string directory;
  std::uint32_t keep = 2;  ///< retained checkpoint files (>= 1)
};

class Checkpointer {
 public:
  explicit Checkpointer(CheckpointConfig config, obs::Sink* sink = nullptr);

  /// Serialize `memory` as of committed step `step` and write it
  /// durably, then prune to the retention bound. Journals
  /// kCheckpointBegin/kCheckpointEnd and bumps checkpoint.* counters.
  /// Returns the serialized byte count.
  std::uint64_t write(pram::MemorySystem& memory, std::uint64_t step);

  [[nodiscard]] std::uint64_t checkpoints_written() const {
    return written_;
  }
  [[nodiscard]] std::uint64_t last_step() const { return last_step_; }
  [[nodiscard]] std::uint64_t last_bytes() const { return last_bytes_; }

  /// The complete on-disk image (header + payload + CRC) for `memory`
  /// at `step` — the crash matrix writes torn PREFIXES of this image to
  /// simulate a checkpoint interrupted mid-write.
  [[nodiscard]] static std::vector<std::uint8_t> file_image(
      pram::MemorySystem& memory, std::uint64_t step);

  [[nodiscard]] static std::string path_for(const std::string& directory,
                                            std::uint64_t step);

  struct Found {
    std::string path;
    std::uint64_t step = 0;
  };
  /// Newest checkpoint in `directory` that validates end to end; a torn
  /// or corrupt newest file falls back to the next-newest valid one.
  [[nodiscard]] static std::optional<Found> latest(
      const std::string& directory);

  /// Validate `path` and restore its payload into `memory` (freshly
  /// constructed, same configuration). False on any validation or
  /// restore failure; `memory` may be partially written then and must
  /// be discarded.
  [[nodiscard]] static bool load(const std::string& path,
                                 pram::MemorySystem& memory);

 private:
  CheckpointConfig config_;
  obs::Sink* obs_ = nullptr;
  std::uint64_t written_ = 0;
  std::uint64_t last_step_ = 0;
  std::uint64_t last_bytes_ = 0;
};

}  // namespace pramsim::durability
