#include "durability/recovery.hpp"

#include <algorithm>

#include "durability/checkpoint.hpp"
#include "durability/wal.hpp"

namespace pramsim::durability {

RecoveryOutcome recover(pram::MemorySystem& memory,
                        const std::string& wal_path,
                        const std::string& checkpoint_dir,
                        std::uint64_t scrub_budget, obs::Sink* sink) {
  RecoveryOutcome outcome;

  if (const auto found = Checkpointer::latest(checkpoint_dir)) {
    outcome.checkpoint_loaded = Checkpointer::load(found->path, memory);
    if (outcome.checkpoint_loaded) {
      outcome.checkpoint_step = found->step;
      if (sink != nullptr) {
        sink->metrics.add("checkpoint.loads");
      }
    }
  }

  const WalReadResult wal = read_wal(wal_path);
  outcome.torn_wal_tail = wal.torn_tail;
  outcome.wal_bytes_replayed = wal.valid_bytes;
  for (const WalRecord& record : wal.records) {
    // The checkpoint already covers every step <= its own; replaying
    // such records would be harmless (absolute values) but is filtered
    // so skipped_records makes the overlap observable in tests.
    if (record.step <= outcome.checkpoint_step) {
      ++outcome.skipped_records;
      continue;
    }
    if (record.kind == WalRecordKind::kStepCommit) {
      for (const pram::VarWrite& write : record.writes) {
        memory.poke(write.var, write.value);
      }
      outcome.replayed_writes += record.writes.size();
    }
    ++outcome.replayed_records;
    if (sink != nullptr) {
      sink->journal.append(record.step, obs::EventKind::kWalReplay,
                           record.step,
                           static_cast<std::uint32_t>(record.kind),
                           record.writes.size());
      sink->metrics.add("wal.replayed_records");
      sink->metrics.add("wal.replayed_writes", record.writes.size());
    }
  }
  outcome.recovered_step =
      std::max(outcome.checkpoint_step, wal.durable_step);

  // Let replica-level schemes repair what the crash interrupted (e.g. a
  // scrub pass that had relocated half a region's copies when the
  // process died) before serving resumes.
  if (scrub_budget > 0) {
    outcome.scrub = memory.scrub(scrub_budget);
  }
  return outcome;
}

}  // namespace pramsim::durability
