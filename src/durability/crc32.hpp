// CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320) — the frame
// check sealing every WAL record payload and checkpoint payload, so a
// torn write (partial fwrite at the crash) or bit rot is DETECTED at
// recovery instead of replayed as garbage. Table-driven, stdlib-only.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pramsim::durability {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(const void* data,
                                         std::size_t size) {
  const auto& table = detail::crc32_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace pramsim::durability
