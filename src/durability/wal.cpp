#include "durability/wal.hpp"

#include <cstring>

#include "durability/crc32.hpp"
#include "util/assert.hpp"

namespace pramsim::durability {

namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

void put_bytes(std::vector<std::uint8_t>& out, const void* data,
               std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  put_bytes(out, &value, sizeof(value));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  put_bytes(out, &value, sizeof(value));
}

void put_word(std::vector<std::uint8_t>& out, pram::Word value) {
  put_bytes(out, &value, sizeof(value));
}

/// Cursor over a decoded payload; every read is bounds-checked so a
/// CRC-valid but semantically short payload rejects instead of reading
/// past the end.
struct PayloadReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t offset = 0;

  bool read(void* out, std::size_t n) {
    if (size - offset < n) {
      return false;
    }
    std::memcpy(out, data + offset, n);
    offset += n;
    return true;
  }
};

}  // namespace

const char* to_string(WalRecordKind kind) {
  switch (kind) {
    case WalRecordKind::kStepCommit:
      return "step_commit";
    case WalRecordKind::kScrubRelocation:
      return "scrub_relocation";
    case WalRecordKind::kFaultOnset:
      return "fault_onset";
  }
  return "unknown";
}

Wal::Wal(WalConfig config, obs::Sink* sink)
    : config_(std::move(config)), obs_(sink) {
  PRAMSIM_ASSERT(config_.flush_interval >= 1);
  file_ = std::fopen(config_.path.c_str(), "wb");
  PRAMSIM_ASSERT(file_ != nullptr);
}

Wal::~Wal() {
  if (file_ != nullptr) {
    std::fclose(file_);  // buffered tail intentionally lost (crash model)
  }
}

void Wal::frame_record(std::span<const std::uint8_t> payload) {
  const std::uint32_t length =
      static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  last_record_.offset = file_bytes_ + buffer_.size();
  last_record_.length = kFrameHeaderBytes + payload.size();
  put_u32(buffer_, length);
  put_u32(buffer_, crc);
  put_bytes(buffer_, payload.data(), payload.size());
  ++appended_records_;
  if (obs_ != nullptr) {
    obs_->metrics.add("wal.records");
  }
}

void Wal::append_step(std::uint64_t step,
                      std::span<const pram::VarWrite> writes) {
  payload_.clear();
  put_u8(payload_, static_cast<std::uint8_t>(WalRecordKind::kStepCommit));
  put_u64(payload_, step);
  put_u32(payload_, static_cast<std::uint32_t>(writes.size()));
  for (const auto& write : writes) {
    put_u64(payload_, write.var.index());
    put_word(payload_, write.value);
  }
  frame_record(payload_);
  buffered_commit_step_ = step;
}

void Wal::append_relocation(std::uint64_t step, std::uint64_t relocated) {
  payload_.clear();
  put_u8(payload_,
         static_cast<std::uint8_t>(WalRecordKind::kScrubRelocation));
  put_u64(payload_, step);
  put_u64(payload_, relocated);
  frame_record(payload_);
}

void Wal::append_onset(std::uint64_t step, std::uint32_t module) {
  payload_.clear();
  put_u8(payload_, static_cast<std::uint8_t>(WalRecordKind::kFaultOnset));
  put_u64(payload_, step);
  put_u32(payload_, module);
  frame_record(payload_);
}

void Wal::maybe_flush(std::uint64_t step) {
  if (step % config_.flush_interval == 0) {
    flush();
  }
}

void Wal::flush() {
  if (buffer_.empty()) {
    return;
  }
  const std::size_t written =
      std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  PRAMSIM_ASSERT(written == buffer_.size());
  PRAMSIM_ASSERT(std::fflush(file_) == 0);
  file_bytes_ += buffer_.size();
  if (obs_ != nullptr) {
    obs_->metrics.add("wal.flushes");
    obs_->metrics.add("wal.flushed_bytes", buffer_.size());
  }
  buffer_.clear();
  durable_step_ = buffered_commit_step_;
}

void Wal::truncate_through(std::uint64_t through_step) {
  flush();
  std::fclose(file_);
  file_ = nullptr;
  const WalReadResult old = read_wal(config_.path);
  file_ = std::fopen(config_.path.c_str(), "wb");
  PRAMSIM_ASSERT(file_ != nullptr);
  file_bytes_ = 0;
  // Re-frame the surviving tail. last_record_ tracking restarts with the
  // re-framed records; durable_step_ is unchanged (the checkpoint now
  // covers the dropped prefix).
  for (const WalRecord& record : old.records) {
    if (record.step <= through_step) {
      continue;
    }
    payload_.clear();
    put_u8(payload_, static_cast<std::uint8_t>(record.kind));
    put_u64(payload_, record.step);
    switch (record.kind) {
      case WalRecordKind::kStepCommit:
        put_u32(payload_,
                static_cast<std::uint32_t>(record.writes.size()));
        for (const auto& write : record.writes) {
          put_u64(payload_, write.var.index());
          put_word(payload_, write.value);
        }
        break;
      case WalRecordKind::kScrubRelocation:
        put_u64(payload_, record.relocated);
        break;
      case WalRecordKind::kFaultOnset:
        put_u32(payload_, record.module);
        break;
    }
    --appended_records_;  // frame_record re-counts the re-framed record
    frame_record(payload_);
  }
  const std::size_t written =
      std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  PRAMSIM_ASSERT(written == buffer_.size());
  PRAMSIM_ASSERT(std::fflush(file_) == 0);
  file_bytes_ = buffer_.size();
  buffer_.clear();
  if (obs_ != nullptr) {
    obs_->metrics.add("wal.truncations");
  }
}

WalReadResult read_wal(const std::string& path) {
  WalReadResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return result;  // no log yet: empty, untorn
  }
  std::vector<std::uint8_t> bytes;
  {
    std::uint8_t chunk[4096];
    std::size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
      bytes.insert(bytes.end(), chunk, chunk + got);
    }
  }
  std::fclose(file);

  std::size_t offset = 0;
  while (true) {
    if (bytes.size() - offset < kFrameHeaderBytes) {
      result.torn_tail = offset < bytes.size();
      break;
    }
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    std::memcpy(&length, bytes.data() + offset, sizeof(length));
    std::memcpy(&crc, bytes.data() + offset + sizeof(length), sizeof(crc));
    if (bytes.size() - offset - kFrameHeaderBytes < length) {
      result.torn_tail = true;
      break;
    }
    const std::uint8_t* body = bytes.data() + offset + kFrameHeaderBytes;
    if (crc32(body, length) != crc) {
      result.torn_tail = true;
      break;
    }
    PayloadReader reader{body, length};
    WalRecord record;
    std::uint8_t kind = 0;
    if (!reader.read(&kind, sizeof(kind)) ||
        !reader.read(&record.step, sizeof(record.step))) {
      result.torn_tail = true;
      break;
    }
    bool ok = true;
    switch (static_cast<WalRecordKind>(kind)) {
      case WalRecordKind::kStepCommit: {
        record.kind = WalRecordKind::kStepCommit;
        std::uint32_t count = 0;
        ok = reader.read(&count, sizeof(count));
        if (ok) {
          record.writes.reserve(count);
          for (std::uint32_t i = 0; ok && i < count; ++i) {
            std::uint64_t var = 0;
            pram::Word value = 0;
            ok = reader.read(&var, sizeof(var)) &&
                 reader.read(&value, sizeof(value));
            if (ok) {
              record.writes.push_back(
                  {VarId(static_cast<std::uint32_t>(var)), value});
            }
          }
        }
        break;
      }
      case WalRecordKind::kScrubRelocation:
        record.kind = WalRecordKind::kScrubRelocation;
        ok = reader.read(&record.relocated, sizeof(record.relocated));
        break;
      case WalRecordKind::kFaultOnset:
        record.kind = WalRecordKind::kFaultOnset;
        ok = reader.read(&record.module, sizeof(record.module));
        break;
      default:
        ok = false;  // unknown kind: treat as corruption, stop here
        break;
    }
    if (!ok) {
      result.torn_tail = true;
      break;
    }
    offset += kFrameHeaderBytes + length;
    result.valid_bytes = offset;
    if (record.kind == WalRecordKind::kStepCommit) {
      result.durable_step = record.step;
    }
    result.records.push_back(std::move(record));
  }
  return result;
}

}  // namespace pramsim::durability
