// durability::Wal — the write-ahead log: an append-only, CRC-framed
// record stream of committed plan steps (step stamp + the step's
// combined (var, value) writes), scrub relocations, and fault-onset
// acknowledgements.
//
// Group commit: appends encode into an in-memory buffer; flush() makes
// the buffered records DURABLE (fwrite + fflush) in one batch. The
// driver flushes every `wal_flush_interval` steps, so "committed" and
// "durable" are distinct horizons — a crash loses at most the unflushed
// tail, never a flushed record. Destroying a Wal WITHOUT flushing drops
// the buffered tail on the floor: that is exactly the crash the
// kill-point matrix simulates, so the destructor must never flush.
//
// On-disk record frame (host-endian; the WAL is machine-local recovery
// state, not an interchange format):
//
//   [u32 payload length][u32 crc32(payload)][payload]
//   payload = u8 kind, u64 step, kind-specific body:
//     kStepCommit      u32 count, count x (u64 var, i64 value)
//     kScrubRelocation u64 copies/shares relocated by the pass
//     kFaultOnset      u32 module
//
// The reader (read_wal) stops at the first frame that fails the length
// or CRC check — a torn final record truncates cleanly to the last
// complete record, never poisons replay. truncate_through(step) is the
// checkpoint protocol's log-trim: rewrite the file keeping only records
// newer than the checkpoint. See docs/durability.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "obs/sink.hpp"
#include "pram/types.hpp"

namespace pramsim::durability {

enum class WalRecordKind : std::uint8_t {
  kStepCommit = 1,
  kScrubRelocation = 2,
  kFaultOnset = 3,
};

[[nodiscard]] const char* to_string(WalRecordKind kind);

/// One decoded WAL record (reader side).
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kStepCommit;
  std::uint64_t step = 0;
  std::vector<pram::VarWrite> writes;  ///< kStepCommit payload
  std::uint64_t relocated = 0;         ///< kScrubRelocation payload
  std::uint32_t module = 0;            ///< kFaultOnset payload
};

struct WalConfig {
  std::string path;
  /// Group-commit cadence honored by maybe_flush(): durable flush every
  /// N appended commit steps (>= 1; 1 = flush-per-step).
  std::uint32_t flush_interval = 1;
};

class Wal {
 public:
  /// Opens `config.path` for writing, TRUNCATING any previous log (a
  /// fresh run owns its directory; recovery reads the old log before
  /// constructing a new Wal). `sink` is optional wal.* telemetry.
  explicit Wal(WalConfig config, obs::Sink* sink = nullptr);

  /// Closes the file WITHOUT flushing the buffered tail — an unflushed
  /// append is exactly what a crash loses. Callers that mean a clean
  /// shutdown call flush() first.
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  void append_step(std::uint64_t step,
                   std::span<const pram::VarWrite> writes);
  void append_relocation(std::uint64_t step, std::uint64_t relocated);
  void append_onset(std::uint64_t step, std::uint32_t module);

  /// Honor the group-commit cadence after appending commit step `step`:
  /// flush when step % flush_interval == 0.
  void maybe_flush(std::uint64_t step);

  /// Make every buffered record durable (fwrite + fflush).
  void flush();

  /// The checkpoint/truncate protocol: drop every record with
  /// step <= `through_step`, rewriting the file with the surviving
  /// tail. Flushes first; call only after the covering checkpoint is
  /// durable, or a crash between the two loses the dropped records.
  void truncate_through(std::uint64_t through_step);

  /// Last step covered by a DURABLE (flushed) kStepCommit record.
  [[nodiscard]] std::uint64_t durable_step() const { return durable_step_; }
  [[nodiscard]] std::uint64_t appended_records() const {
    return appended_records_;
  }
  [[nodiscard]] std::uint64_t file_bytes() const { return file_bytes_; }
  [[nodiscard]] const std::string& path() const { return config_.path; }

  /// Byte span of the most recently appended record, relative to the
  /// file start. Valid once that record is flushed — the crash matrix
  /// tears the file inside this span to simulate a partial final write.
  struct RecordSpan {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };
  [[nodiscard]] RecordSpan last_record() const { return last_record_; }

 private:
  /// Frame `payload` into the append buffer and account the record.
  void frame_record(std::span<const std::uint8_t> payload);

  WalConfig config_;
  obs::Sink* obs_ = nullptr;
  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> buffer_;    ///< encoded, not yet durable
  std::vector<std::uint8_t> payload_;   ///< per-record encode scratch
  std::uint64_t file_bytes_ = 0;        ///< durable bytes on disk
  std::uint64_t appended_records_ = 0;
  std::uint64_t buffered_commit_step_ = 0;  ///< newest buffered commit
  std::uint64_t durable_step_ = 0;
  RecordSpan last_record_{};
};

/// Decoded log + tail diagnosis (recovery side).
struct WalReadResult {
  std::vector<WalRecord> records;  ///< every complete, CRC-valid record
  /// Bytes remained after the last valid record (torn final write or
  /// corruption) — recovery proceeds from the valid prefix.
  bool torn_tail = false;
  std::uint64_t valid_bytes = 0;
  /// Step of the last valid kStepCommit record (0 = none).
  std::uint64_t durable_step = 0;
};

/// Parse `path`, stopping cleanly at the first incomplete or CRC-invalid
/// frame. A missing file reads as an empty, untorn log.
[[nodiscard]] WalReadResult read_wal(const std::string& path);

}  // namespace pramsim::durability
