// The metrics registry: named counters, gauges, and log2-bucketed
// histograms behind string_view lookups (heterogeneous map search — hot
// paths never allocate a key on a hit).
//
// Determinism contract: counters and histograms are pure sums over the
// run, accumulated into per-shard registries and folded in shard order
// by Registry::merge — bit-identical totals at any worker count, the
// same rule as every telemetry fold in this repo. Gauges are
// last-writer-wins on merge (merge order is fixed, so still
// deterministic). Iteration order is the sorted key order (std::map),
// so every exporter emits a canonical byte stream.
//
// Naming convention (docs/observability.md): lowercase dotted
// `subsystem.noun[.verb]`, e.g. "serve.steps", "serve.reads",
// "scrub.passes", "fault.onsets".
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace pramsim::obs {

inline constexpr std::size_t kHistogramBuckets = 66;

/// Log2-bucketed histogram of unsigned samples: bucket 0 holds value 0,
/// bucket k >= 1 holds values in [2^(k-1), 2^k).
struct Histogram {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = ~0ULL;  ///< ~0 until the first observation
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) {
    if (value == 0) {
      return 0;
    }
    std::size_t bucket = 1;
    while (value >>= 1) {
      ++bucket;
    }
    return bucket;
  }

  /// Lower bound of bucket k (0, then 1, 2, 4, 8, ...).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t bucket) {
    return bucket == 0 ? 0 : 1ULL << (bucket - 1);
  }

  void observe(std::uint64_t value) {
    ++count;
    sum += value;
    if (value < min) {
      min = value;
    }
    if (value > max) {
      max = value;
    }
    ++buckets[bucket_of(value)];
  }

  void merge(const Histogram& other) {
    count += other.count;
    sum += other.sum;
    if (other.min < min) {
      min = other.min;
    }
    if (other.max > max) {
      max = other.max;
    }
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      buckets[i] += other.buckets[i];
    }
  }
};

class Registry {
 public:
  using CounterMap = std::map<std::string, std::uint64_t, std::less<>>;
  using GaugeMap = std::map<std::string, double, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  /// Stable reference to a named counter (created at 0 on first use);
  /// references survive later insertions (std::map node stability).
  [[nodiscard]] std::uint64_t& counter(std::string_view name) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      return it->second;
    }
    return counters_.emplace(std::string(name), 0).first->second;
  }

  void add(std::string_view name, std::uint64_t delta = 1) {
    counter(name) += delta;
  }

  void set_gauge(std::string_view name, double value) {
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
      it->second = value;
      return;
    }
    gauges_.emplace(std::string(name), value);
  }

  void observe(std::string_view name, std::uint64_t value) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      it->second.observe(value);
      return;
    }
    histograms_.emplace(std::string(name), Histogram{}).first->second.observe(
        value);
  }

  [[nodiscard]] const CounterMap& counters() const { return counters_; }
  [[nodiscard]] const GaugeMap& gauges() const { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const {
    return histograms_;
  }

  /// Fold `other` into this registry: counters and histograms sum,
  /// gauges take `other`'s value. Call in a fixed order (shard order).
  void merge(const Registry& other);

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

}  // namespace pramsim::obs
