#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace pramsim::obs {

namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

std::string dbl(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// "a.b.c" -> "a_b_c" for Prometheus metric names.
std::string promify(std::string name) {
  std::replace(name.begin(), name.end(), '.', '_');
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

void append_histogram(std::string& out, const Histogram& h,
                      bool include_timings) {
  out += "{\"count\": " + u64(h.count) + ", \"sum\": " + u64(h.sum) +
         ", \"min\": " + u64(h.count == 0 ? 0 : h.min) +
         ", \"max\": " + u64(h.max);
  if (include_timings) {
    out += ", \"buckets\": [";
    bool first = true;
    for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
      if (h.buckets[k] == 0) {
        continue;
      }
      out += std::string(first ? "" : ", ") + "[" +
             u64(Histogram::bucket_floor(k)) + ", " + u64(h.buckets[k]) +
             "]";
      first = false;
    }
    out += "]";
  }
  out += "}";
}

}  // namespace

std::string to_json(Sink& sink, const SnapshotOptions& options) {
  sink.journal.flush();
  std::string out = "{\"obs_schema_version\": " +
                    std::to_string(kObsSchemaVersion) +
                    ", \"compiled\": " + (kEnabled ? "true" : "false") +
                    ", \"sample_interval\": " +
                    std::to_string(sink.options().sample_interval) +
                    ", \"manifest\": " +
                    (options.manifest_json.empty() ? "null"
                                                   : options.manifest_json);

  out += ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : sink.metrics.counters()) {
    out += std::string(first ? "" : ", ") + "\"" + util::json_escape(name) +
           "\": " + u64(value);
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : sink.metrics.gauges()) {
    out += std::string(first ? "" : ", ") + "\"" + util::json_escape(name) +
           "\": " + dbl(value);
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : sink.metrics.histograms()) {
    out += std::string(first ? "" : ", ") + "\"" + util::json_escape(name) +
           "\": ";
    append_histogram(out, histogram, /*include_timings=*/true);
    first = false;
  }

  out += "}, \"phases\": [";
  first = true;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseStats& s = sink.phases.stats[i];
    if (s.count == 0) {
      continue;
    }
    out += std::string(first ? "" : ", ") + "{\"phase\": \"" +
           to_string(static_cast<Phase>(i)) + "\", \"count\": " +
           u64(s.count);
    if (options.include_timings) {
      out += ", \"total_ns\": " + u64(s.total_ns) +
             ", \"min_ns\": " + u64(s.min_ns) +
             ", \"max_ns\": " + u64(s.max_ns);
    }
    out += "}";
    first = false;
  }

  out += "], \"journal\": {\"capacity\": " + u64(sink.journal.capacity()) +
         ", \"recorded\": " + u64(sink.journal.recorded()) +
         ", \"dropped\": " + u64(sink.journal.dropped()) + ", \"events\": [";
  first = true;
  for (const Event& e : sink.journal.events()) {
    out += std::string(first ? "" : ", ") + "{\"step\": " + u64(e.step) +
           ", \"kind\": \"" + to_string(e.kind) + "\", \"entity\": " +
           u64(e.entity) + ", \"unit\": " + std::to_string(e.unit) +
           ", \"a\": " + u64(e.a) + ", \"b\": " + u64(e.b) + "}";
    first = false;
  }
  out += "]}}";
  return out;
}

std::string to_prometheus(Sink& sink, const std::string& prefix) {
  sink.journal.flush();
  std::string out;
  for (const auto& [name, value] : sink.metrics.counters()) {
    const std::string metric = prefix + "_" + promify(name);
    out += "# TYPE " + metric + " counter\n" + metric + " " + u64(value) +
           "\n";
  }
  for (const auto& [name, value] : sink.metrics.gauges()) {
    const std::string metric = prefix + "_" + promify(name);
    out += "# TYPE " + metric + " gauge\n" + metric + " " + dbl(value) +
           "\n";
  }
  for (const auto& [name, h] : sink.metrics.histograms()) {
    const std::string metric = prefix + "_" + promify(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
      if (h.buckets[k] == 0) {
        continue;
      }
      cumulative += h.buckets[k];
      out += metric + "_bucket{le=\"" +
             u64(k + 1 < kHistogramBuckets
                     ? Histogram::bucket_floor(k + 1) - 1
                     : ~0ULL) +
             "\"} " + u64(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + u64(h.count) + "\n" + metric +
           "_sum " + u64(h.sum) + "\n" + metric + "_count " + u64(h.count) +
           "\n";
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseStats& s = sink.phases.stats[i];
    if (s.count == 0) {
      continue;
    }
    const std::string metric =
        prefix + "_phase_" + promify(to_string(static_cast<Phase>(i)));
    out += metric + "_count " + u64(s.count) + "\n" + metric +
           "_total_ns " + u64(s.total_ns) + "\n";
  }
  out += prefix + "_journal_recorded " + u64(sink.journal.recorded()) +
         "\n" + prefix + "_journal_dropped " + u64(sink.journal.dropped()) +
         "\n";
  return out;
}

std::vector<util::Table> to_tables(Sink& sink, std::size_t journal_tail) {
  sink.journal.flush();
  std::vector<util::Table> tables;

  {
    util::Table t({"metric", "value"});
    t.set_title("obs counters & gauges");
    for (const auto& [name, value] : sink.metrics.counters()) {
      t.add_row({name, static_cast<std::int64_t>(value)});
    }
    for (const auto& [name, value] : sink.metrics.gauges()) {
      t.add_row({name, value});
    }
    tables.push_back(std::move(t));
  }

  if (!sink.phases.empty()) {
    util::Table t({"phase", "count", "total ms", "min us", "max us"});
    t.set_title("phase breakdown (wall-clock; counts deterministic)");
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const PhaseStats& s = sink.phases.stats[i];
      if (s.count == 0) {
        continue;
      }
      t.add_row({to_string(static_cast<Phase>(i)),
                 static_cast<std::int64_t>(s.count),
                 static_cast<double>(s.total_ns) * 1e-6,
                 static_cast<double>(s.min_ns) * 1e-3,
                 static_cast<double>(s.max_ns) * 1e-3});
    }
    tables.push_back(std::move(t));
  }

  {
    util::Table t({"step", "kind", "entity", "unit", "a", "b"});
    t.set_title("journal tail (" + std::to_string(sink.journal.events().size()) +
                " held, " + std::to_string(sink.journal.dropped()) +
                " dropped)");
    const auto events = sink.journal.events();
    const std::size_t start =
        events.size() > journal_tail ? events.size() - journal_tail : 0;
    for (std::size_t i = start; i < events.size(); ++i) {
      const Event& e = events[i];
      t.add_row({static_cast<std::int64_t>(e.step), to_string(e.kind),
                 static_cast<std::int64_t>(e.entity),
                 static_cast<std::int64_t>(e.unit),
                 static_cast<std::int64_t>(e.a),
                 static_cast<std::int64_t>(e.b)});
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

}  // namespace pramsim::obs
