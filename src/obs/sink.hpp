// obs::Sink — the per-run observability surface a MemorySystem (and the
// driver around it) writes into: a metrics Registry, a phase-timing
// table, and the deterministic event Journal, bundled so one
// set_observer(&sink) attaches all three.
//
// Ownership and threading: the sink is caller-owned (the driver keeps
// one per shard and folds them in shard order) and single-writer per
// component — Registry and Journal are written only by the serving
// thread; PhaseSet rows are single-writer per phase (the plan-generator
// thread records only kPlanBuild).
//
// The determinism split, engine-wide: `metrics` (counters/histograms)
// and `journal` are bit-identical at any worker count and across reruns
// of the same seed; `phases` carries wall-clock nanoseconds and only its
// COUNTS join that contract. Exporters honor the split
// (SnapshotOptions::include_timings).
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/journal.hpp"
#include "obs/phase.hpp"
#include "obs/registry.hpp"

namespace pramsim::obs {

struct SinkOptions {
  /// Phase-timer sampling: step s is timed when s % sample_interval == 0
  /// (1 = every step, 0 = never — counters and journal stay on).
  /// Sampling changes phase COUNTS deterministically, never contents of
  /// the metrics/journal sections.
  std::uint32_t sample_interval = 1;
  std::size_t journal_capacity = Journal::kDefaultCapacity;
};

class Sink {
  SinkOptions options_;

 public:
  Sink() = default;
  explicit Sink(const SinkOptions& options)
      : options_(options), journal(options.journal_capacity) {}

  Registry metrics;
  PhaseSet phases;
  Journal journal;

  /// Should phase timers fire for engine step `step`?
  [[nodiscard]] bool sample(std::uint64_t step) const {
    return options_.sample_interval != 0 &&
           step % options_.sample_interval == 0;
  }

  [[nodiscard]] const SinkOptions& options() const { return options_; }

  /// Fold `other` into this sink (deterministic when callers merge in a
  /// fixed order, as the driver does shard by shard).
  void merge(const Sink& other) {
    metrics.merge(other.metrics);
    phases.merge(other.phases);
    journal.merge(other.journal);
  }

  [[nodiscard]] bool empty() const {
    return metrics.empty() && phases.empty() && journal.size() == 0 &&
           journal.dropped() == 0;
  }
};

}  // namespace pramsim::obs
