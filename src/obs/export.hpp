// Exporters for obs::Sink: a schema-versioned JSON snapshot (validated
// by tools/check_obs_schema.py), Prometheus-style exposition text, and
// human-readable util::Table dumps.
//
// The JSON snapshot with include_timings = false contains ONLY
// deterministic sections (counters, gauges, histograms, phase counts,
// journal) and is byte-comparable across worker counts and reruns —
// determinism_test asserts on exactly this form.
#pragma once

#include <string>
#include <vector>

#include "obs/sink.hpp"
#include "util/table.hpp"

namespace pramsim::obs {

/// Version stamp written into every snapshot ("obs_schema_version").
/// Bump whenever the snapshot layout or event vocabulary changes
/// incompatibly (same discipline as bench::kBenchSchemaVersion).
inline constexpr int kObsSchemaVersion = 1;

struct SnapshotOptions {
  /// Include wall-clock nanosecond fields (phase total/min/max ns,
  /// histogram-of-ns entries). Off = the deterministic snapshot.
  bool include_timings = true;
  /// Optional preformatted JSON object describing the run (scheme spec,
  /// seed, workers, ...) embedded as "manifest"; empty emits null.
  std::string manifest_json;
};

/// Flushes the journal, then renders the snapshot (hence non-const).
[[nodiscard]] std::string to_json(Sink& sink,
                                  const SnapshotOptions& options = {});

/// Prometheus exposition format: counters as `<prefix>_<name>` (dots ->
/// underscores), gauges likewise, phases as _count/_total_ns pairs.
[[nodiscard]] std::string to_prometheus(
    Sink& sink, const std::string& prefix = "pramsim");

/// Human dump: a counters/gauges table, a phase table, and the journal
/// tail (most recent events last), for examples and debugging.
[[nodiscard]] std::vector<util::Table> to_tables(Sink& sink,
                                                 std::size_t journal_tail = 16);

}  // namespace pramsim::obs
