// Phase tracing: scoped wall-clock timers around the engine's serving
// phases (plan build, engine schedule, value phase, decode/encode,
// scrub, oracle), recorded into per-phase breakdowns.
//
// Two disciplines keep this observability layer honest:
//
//  * Determinism split: phase TIMINGS are wall-clock and therefore never
//    part of any bit-identity contract — only phase COUNTS are (one
//    record per sampled phase execution, which is a pure function of the
//    run). Exporters can exclude the nanosecond fields so deterministic
//    snapshots stay byte-comparable (obs::SnapshotOptions).
//
//  * Kill switch: configuring with -DPRAMSIM_OBS=OFF defines
//    PRAMSIM_OBS_DISABLED, which folds obs::kEnabled to false; every
//    hook helper and ScopedPhase body is behind `if constexpr
//    (obs::kEnabled)`, so the hook points compile to no-ops — no clock
//    reads, no branches — while the obs API itself stays linkable (tests
//    GTEST_SKIP instead of failing to compile).
//
// Thread-safety: a PhaseStats row is single-writer. The double-buffered
// driver exploits this — the plan-generator thread records only
// kPlanBuild while the serving thread records kServe/kScrub — distinct
// array slots, no synchronization needed.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/stopwatch.hpp"

namespace pramsim::obs {

#if defined(PRAMSIM_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// The engine phases the scoped timers bracket. One enum for the whole
/// repo so exporters and dashboards agree on names.
enum class Phase : std::uint8_t {
  kPlanBuild = 0,   ///< batch -> arena-backed AccessPlan (core::PlanBuilder)
  kServe,           ///< one whole MemorySystem::serve call
  kEngineSchedule,  ///< majority access-engine protocol (global, serial)
  kValuePhase,      ///< value loops: freshest/commit or vote/store
  kDecode,          ///< IDA read phase (share gather + block decode)
  kEncode,          ///< IDA write phase (re-encode + share scatter)
  kScrub,           ///< one background scrub pass
  kOracle,          ///< FaultableMemory trace-consistency check
};

inline constexpr std::size_t kPhaseCount = 8;

[[nodiscard]] const char* to_string(Phase phase);

/// One phase's timing breakdown. `count` is deterministic (a pure
/// function of the run and the sampling interval); the _ns fields are
/// wall-clock.
struct PhaseStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = ~0ULL;  ///< ~0 until the first record
  std::uint64_t max_ns = 0;

  void record(std::uint64_t ns) {
    ++count;
    total_ns += ns;
    if (ns < min_ns) {
      min_ns = ns;
    }
    if (ns > max_ns) {
      max_ns = ns;
    }
  }

  void merge(const PhaseStats& other) {
    count += other.count;
    total_ns += other.total_ns;
    if (other.min_ns < min_ns) {
      min_ns = other.min_ns;
    }
    if (other.max_ns > max_ns) {
      max_ns = other.max_ns;
    }
  }
};

/// The full per-sink phase table, indexed by Phase.
struct PhaseSet {
  std::array<PhaseStats, kPhaseCount> stats{};

  [[nodiscard]] PhaseStats& operator[](Phase phase) {
    return stats[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] const PhaseStats& operator[](Phase phase) const {
    return stats[static_cast<std::size_t>(phase)];
  }

  void record(Phase phase, std::uint64_t ns) { (*this)[phase].record(ns); }

  void merge(const PhaseSet& other) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      stats[i].merge(other.stats[i]);
    }
  }

  [[nodiscard]] bool empty() const {
    for (const auto& s : stats) {
      if (s.count != 0) {
        return false;
      }
    }
    return true;
  }
};

/// RAII phase timer: records elapsed ns into `set` at scope exit; a null
/// set (sink absent, or this step not sampled) makes it completely
/// inert — with PRAMSIM_OBS=OFF the constructor and destructor fold to
/// nothing at compile time.
class ScopedPhase {
 public:
  ScopedPhase(PhaseSet* set, Phase phase) {
    if constexpr (kEnabled) {
      set_ = set;
      phase_ = phase;
      if (set_ != nullptr) {
        start_ = util::Stopwatch::now_ns();
      }
    } else {
      (void)set;
      (void)phase;
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    if constexpr (kEnabled) {
      if (set_ != nullptr) {
        set_->record(phase_, util::Stopwatch::now_ns() - start_);
      }
    }
  }

 private:
  PhaseSet* set_ = nullptr;
  Phase phase_ = Phase::kServe;
  std::uint64_t start_ = 0;
};

}  // namespace pramsim::obs
