#include "obs/phase.hpp"

namespace pramsim::obs {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kPlanBuild: return "plan_build";
    case Phase::kServe: return "serve";
    case Phase::kEngineSchedule: return "engine_schedule";
    case Phase::kValuePhase: return "value_phase";
    case Phase::kDecode: return "decode";
    case Phase::kEncode: return "encode";
    case Phase::kScrub: return "scrub";
    case Phase::kOracle: return "oracle";
  }
  return "unknown";
}

}  // namespace pramsim::obs
