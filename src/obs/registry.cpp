#include "obs/registry.hpp"

namespace pramsim::obs {

void Registry::merge(const Registry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] = value;
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].merge(histogram);
  }
}

}  // namespace pramsim::obs
