#include "obs/journal.hpp"

#include <algorithm>
#include <tuple>

namespace pramsim::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kFaultOnset: return "fault_onset";
    case EventKind::kDegradedVote: return "degraded_vote";
    case EventKind::kDegradedDecode: return "degraded_decode";
    case EventKind::kChecksumReject: return "checksum_reject";
    case EventKind::kUncorrectable: return "uncorrectable";
    case EventKind::kRelocation: return "relocation";
    case EventKind::kScrubRepair: return "scrub_repair";
    case EventKind::kWrongRead: return "wrong_read";
    case EventKind::kRehash: return "rehash";
    case EventKind::kCacheInvalidateDead: return "cache_invalidate_dead";
    case EventKind::kCacheInvalidateScrub: return "cache_invalidate_scrub";
    case EventKind::kCheckpointBegin: return "checkpoint_begin";
    case EventKind::kCheckpointEnd: return "checkpoint_end";
    case EventKind::kWalReplay: return "wal_replay";
  }
  return "unknown";
}

namespace {

/// The canonical within-step order: makes the journal independent of
/// append order (serial read order vs group-parallel chunk-fold order).
bool canonical_less(const Event& x, const Event& y) {
  return std::tie(x.kind, x.entity, x.unit, x.a, x.b) <
         std::tie(y.kind, y.entity, y.unit, y.a, y.b);
}

}  // namespace

Journal::Journal(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void Journal::append(const Event& event) {
  if (!pending_.empty() && event.step != pending_step_) {
    commit_pending();
  }
  pending_step_ = event.step;
  pending_.push_back(event);
  ++recorded_;
}

void Journal::commit_pending() {
  std::sort(pending_.begin(), pending_.end(), canonical_less);
  ring_.insert(ring_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  // Amortized bound: evict in batches once the vector doubles past
  // capacity. Intermediate evictions only drop events the final trim
  // would drop anyway, so the flushed content is exactly the last
  // `capacity_` events of the full stream.
  if (ring_.size() > 2 * capacity_) {
    trim(capacity_);
  }
}

void Journal::trim(std::size_t keep) {
  if (ring_.size() <= keep) {
    return;
  }
  const std::size_t evict = ring_.size() - keep;
  ring_.erase(ring_.begin(),
              ring_.begin() + static_cast<std::ptrdiff_t>(evict));
  dropped_ += evict;
}

void Journal::flush() {
  if (!pending_.empty()) {
    commit_pending();
  }
  trim(capacity_);
}

void Journal::merge(const Journal& other) {
  flush();
  ring_.insert(ring_.end(), other.ring_.begin(), other.ring_.end());
  if (!other.pending_.empty()) {
    std::vector<Event> tail = other.pending_;
    std::sort(tail.begin(), tail.end(), canonical_less);
    ring_.insert(ring_.end(), tail.begin(), tail.end());
  }
  recorded_ += other.recorded_;
  dropped_ += other.dropped_;
  trim(capacity_);
}

void Journal::clear() {
  ring_.clear();
  pending_.clear();
  pending_step_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace pramsim::obs
