// The deterministic event journal: a step-stamped, ring-bounded record
// of every noteworthy reliability event — fault onsets, degraded votes
// with dissent, share-checksum rejections, relocations, scrub repairs,
// oracle-caught lies.
//
// Determinism contract (the same rule as every telemetry fold in this
// repo): journal CONTENTS are bit-identical at any worker count and
// across reruns of the same seed. Two mechanisms deliver that:
//
//  * per-step canonical commit: events append into a pending buffer for
//    the current step and are sorted by (kind, entity, unit, a, b)
//    before committing to the ring, so the serial degraded loop (read
//    order) and the group-parallel fan-out (group order, chunk-folded)
//    produce byte-identical journals;
//  * bounded drop-oldest ring: the journal keeps the LAST `capacity`
//    committed events; `dropped()` counts evictions, which is itself a
//    deterministic function of the run.
//
// The journal is single-writer: every append happens on the serving
// thread (group-parallel chunks buffer their events per chunk and fold
// them in chunk order after the fan-out, like every other tally).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pramsim::obs {

/// Event vocabulary. Field semantics per kind (entity/unit/a/b):
///  kFaultOnset      entity=module, a=onset step (emitted when serving
///                   first crosses the onset; static faults surface at
///                   the first served step with a=0)
///  kDegradedVote    entity=var, unit=erased, a=dissenting, b=survivors
///  kDegradedDecode  entity=block, unit=erased, a=silently faulty shares
///  kChecksumReject  entity=block, unit=share index
///  kUncorrectable   entity=var or block, unit=erased, a=dissenting/faulty
///  kRelocation      entity=var or block, unit=copy/share index,
///                   a=old module, b=replacement module
///  kScrubRepair     entity=var or block, unit=copies/shares relocated
///  kWrongRead       entity=var, a=value served, b=value expected
///  kRehash          entity=rehash ordinal, a=triggering max load
///  kCacheInvalidateDead   entity=var, a=fill step, b=current step (a
///                   cached line's backing module died after fill)
///  kCacheInvalidateScrub  entity=var, a=fill step, b=relocation stamp (a
///                   scrub pass relocated storage after fill)
///  kCheckpointBegin entity=checkpoint step (the step the snapshot
///                   covers), a=checkpoint ordinal
///  kCheckpointEnd   entity=checkpoint step, a=serialized bytes
///  kWalReplay       entity=replayed record's step, unit=record kind
///                   (durability::WalRecordKind), a=writes replayed
enum class EventKind : std::uint8_t {
  kFaultOnset = 0,
  kDegradedVote,
  kDegradedDecode,
  kChecksumReject,
  kUncorrectable,
  kRelocation,
  kScrubRepair,
  kWrongRead,
  kRehash,
  kCacheInvalidateDead,
  kCacheInvalidateScrub,
  kCheckpointBegin,
  kCheckpointEnd,
  kWalReplay,
};

inline constexpr std::size_t kEventKindCount = 14;

[[nodiscard]] const char* to_string(EventKind kind);

struct Event {
  std::uint64_t step = 0;  ///< engine step clock at emission
  EventKind kind{};
  std::uint32_t unit = 0;
  std::uint64_t entity = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  Journal() : Journal(kDefaultCapacity) {}
  explicit Journal(std::size_t capacity);

  void append(std::uint64_t step, EventKind kind, std::uint64_t entity,
              std::uint32_t unit = 0, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    append(Event{step, kind, unit, entity, a, b});
  }
  void append(const Event& event);

  /// Commit the pending step (canonical sort) and trim the ring to
  /// capacity. Idempotent; exporters and merge call it for you.
  void flush();

  /// Concatenate `other`'s events (committed ring, then canonically
  /// sorted pending) after this journal's, re-trimming to capacity.
  /// Deterministic when sources merge in a fixed order — the driver
  /// folds per-shard journals in shard order.
  void merge(const Journal& other);

  void clear();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events ever appended / evicted by the ring bound (both
  /// deterministic; size() == recorded() - dropped() after flush()).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t size() const {
    return ring_.size() + pending_.size();
  }

  /// The committed events, oldest first. Call flush() first (exporters
  /// do); events still pending in the current step are not visible here.
  [[nodiscard]] std::span<const Event> events() const { return ring_; }

 private:
  void commit_pending();
  void trim(std::size_t keep);

  std::size_t capacity_;
  /// Committed events, oldest first. Bounded lazily: eviction batches
  /// only run when the vector doubles past capacity, then flush() trims
  /// exactly to capacity — same final content as a per-event ring,
  /// amortized O(1) per append.
  std::vector<Event> ring_;
  std::vector<Event> pending_;       ///< current step, not yet sorted
  std::uint64_t pending_step_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace pramsim::obs
