#include "network/topology.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "util/math.hpp"

namespace pramsim::net {

MotShape square_mot(std::uint32_t side, bool coalesce) {
  PRAMSIM_ASSERT(util::is_pow2(side));
  // side == 2 with coalesced roots degenerates into a multigraph (the
  // diagonal leaf reaches the shared root through both its trees); the
  // paper's construction starts above that size.
  PRAMSIM_ASSERT_MSG(!coalesce || side >= 4,
                     "coalesced roots require side >= 4");
  return MotShape{side, side, coalesce};
}

MotShape rect_mot(std::uint32_t rows, std::uint32_t cols) {
  PRAMSIM_ASSERT(util::is_pow2(rows) && util::is_pow2(cols));
  return MotShape{rows, cols, false};
}

StructureSummary summarize(const MotShape& shape) {
  PRAMSIM_ASSERT(util::is_pow2(shape.rows) && util::is_pow2(shape.cols));
  const std::uint64_t R = shape.rows;
  const std::uint64_t C = shape.cols;
  StructureSummary s;
  s.leaves = R * C;
  // A complete binary tree over L leaves has L-1 internal nodes and
  // 2(L-1) edges.
  std::uint64_t internal = R * (C - 1) + C * (R - 1);
  if (shape.coalesced_roots) {
    PRAMSIM_ASSERT(R == C);
    // Root of RT(i) merges with root of CT(i): R nodes saved (when the
    // trees have internal nodes at all).
    if (C >= 2 && R >= 2) {
      internal -= R;
    }
  }
  s.switches = internal;
  s.nodes = s.leaves + internal;
  s.links = R * (2 * (C - 1)) + C * (2 * (R - 1));
  // Degrees: leaf = 2 (row parent + column parent; 1 if a tree is trivial);
  // internal non-root = 3; root = 2; coalesced root = 4.
  std::uint32_t leaf_deg = (C >= 2 ? 1u : 0u) + (R >= 2 ? 1u : 0u);
  std::uint32_t internal_deg = (R >= 2 || C >= 2) ? 3u : 0u;
  std::uint32_t root_deg = shape.coalesced_roots && R >= 2 ? 4u : 2u;
  if (R < 2 && C < 2) {
    root_deg = 0;
  }
  s.max_degree = std::max({leaf_deg, internal_deg, root_deg});
  // Worst leaf-to-leaf route via a row tree root and a column tree:
  // up log C + down log C (row tree), then up log R + down log R.
  s.diameter_hops = 2 * static_cast<std::uint64_t>(util::ilog2_ceil(C)) +
                    2 * static_cast<std::uint64_t>(util::ilog2_ceil(R));
  return s;
}

std::vector<std::vector<std::uint32_t>> build_adjacency(
    const MotShape& shape) {
  PRAMSIM_ASSERT(shape.leaves() <= (1ULL << 16));
  // Canonical node key: leaves are shared between their row and column
  // tree; with coalesced roots, CT(t)'s root is RT(t)'s root.
  auto canonical = [&](TreeKind kind, std::uint32_t t,
                       std::uint32_t p) -> std::uint64_t {
    if (kind == TreeKind::kRow && p >= shape.cols) {
      return (2ULL << 60) |
             (static_cast<std::uint64_t>(t) * shape.cols + (p - shape.cols));
    }
    if (kind == TreeKind::kCol && p >= shape.rows) {
      return (2ULL << 60) |
             (static_cast<std::uint64_t>(p - shape.rows) * shape.cols + t);
    }
    if (kind == TreeKind::kCol && shape.coalesced_roots && p == 1) {
      return (0ULL << 60) | (static_cast<std::uint64_t>(t) << 32) | 1ULL;
    }
    return (static_cast<std::uint64_t>(kind) << 60) |
           (static_cast<std::uint64_t>(t) << 32) | p;
  };

  std::unordered_map<std::uint64_t, std::uint32_t> dense;
  std::vector<std::vector<std::uint32_t>> adj;
  auto id_of = [&](TreeKind kind, std::uint32_t t, std::uint32_t p) {
    const auto key = canonical(kind, t, p);
    const auto [it, fresh] =
        dense.try_emplace(key, static_cast<std::uint32_t>(adj.size()));
    if (fresh) {
      adj.emplace_back();
    }
    return it->second;
  };
  auto connect = [&](std::uint32_t a, std::uint32_t b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };

  for (std::uint32_t i = 0; i < shape.rows && shape.cols >= 2; ++i) {
    for (std::uint32_t p = 2; p < 2 * shape.cols; ++p) {
      connect(id_of(TreeKind::kRow, i, p), id_of(TreeKind::kRow, i, p / 2));
    }
  }
  for (std::uint32_t j = 0; j < shape.cols && shape.rows >= 2; ++j) {
    for (std::uint32_t p = 2; p < 2 * shape.rows; ++p) {
      connect(id_of(TreeKind::kCol, j, p), id_of(TreeKind::kCol, j, p / 2));
    }
  }
  return adj;
}

std::string ascii_sketch(const MotShape& shape) {
  std::ostringstream out;
  out << "(" << shape.rows << " x " << shape.cols << ") mesh of trees, "
      << (shape.coalesced_roots ? "coalesced roots" : "distinct roots")
      << "\n";
  if (shape.rows > 8 || shape.cols > 8) {
    out << "(grid too large to sketch)\n";
    return out.str();
  }
  out << "  RT(i) roots on the left, CT(j) roots on top, leaves in grid:\n";
  out << "      ";
  for (std::uint32_t j = 0; j < shape.cols; ++j) {
    out << " CT" << j << " ";
  }
  out << "\n";
  for (std::uint32_t i = 0; i < shape.rows; ++i) {
    out << "  RT" << i << " ";
    for (std::uint32_t j = 0; j < shape.cols; ++j) {
      out << " (" << i << "," << j << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace pramsim::net
