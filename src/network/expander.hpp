// Random regular graphs as expanders — the substrate class behind
// Herley & Bilardi's (1988) deterministic BDN simulation, which the paper
// credits with achieving the Theta(log m/log log m) redundancy bound but
// faults for "the large constants of constructive expander graphs".
//
// A random d-regular graph is, with high probability, a near-Ramanujan
// expander; we build one with the configuration model (rejecting loops
// and multi-edges), then *measure* the properties the HB scheme relies
// on: connectivity, diameter O(log n), and the second eigenvalue of the
// normalized adjacency (estimated by deflated power iteration). The
// HbExpanderEngine in core charges the measured diameter per protocol
// round.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace pramsim::net {

class RegularGraph {
 public:
  /// Random d-regular simple graph on n vertices (n*d even, d < n) via
  /// the configuration model with restarts. Deterministic given seed.
  RegularGraph(std::uint32_t n_vertices, std::uint32_t degree,
               std::uint64_t seed);

  [[nodiscard]] std::uint32_t vertices() const {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] std::uint32_t degree() const { return degree_; }
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(
      std::uint32_t v) const {
    return adjacency_[v];
  }

  [[nodiscard]] bool connected() const;
  /// Exact diameter by BFS from every vertex (fine for n <= ~4096);
  /// returns 0 for a single vertex, asserts connectivity.
  [[nodiscard]] std::uint32_t diameter() const;
  /// BFS eccentricity from one vertex (cheap diameter lower bound).
  [[nodiscard]] std::uint32_t eccentricity(std::uint32_t source) const;

  /// |lambda_2| of the normalized adjacency A/d, estimated by power
  /// iteration orthogonal to the all-ones vector. < 1 for connected
  /// non-bipartite-ish graphs; small (~2*sqrt(d-1)/d) for good expanders.
  [[nodiscard]] double lambda2(std::uint32_t iterations = 200) const;

 private:
  std::uint32_t degree_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

}  // namespace pramsim::net
