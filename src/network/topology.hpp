// Mesh-of-trees topologies (Figs. 4, 7, 8 of the paper).
//
// An (R x C) mesh of trees has R*C leaves in a grid; row tree i is a
// complete binary tree over the C leaves of row i, column tree j over the
// R leaves of column j. Square instances (R == C) optionally coalesce the
// root of row tree i with the root of column tree i, as the paper does
// ("for simplicity, we identify row and column tree roots").
//
// Trees are addressed arithmetically with heap positions (root = 1,
// children of p = 2p, 2p+1; leaves of an L-leaf tree at positions
// L..2L-1), so the topology is never materialized: the cycle-accurate
// router works on edge keys computed on demand, which is what lets the
// benches run 2DMOTs with millions of logical switches. Small instances
// can still be expanded into an explicit adjacency list for structural
// audits (degree bounds, node/edge counts — the Fig. 4/7/8 experiments).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace pramsim::net {

enum class TreeKind : std::uint8_t { kRow = 0, kCol = 1 };
enum class Direction : std::uint8_t { kDown = 0, kUp = 1 };

/// A directed channel of the network, encoded in one 64-bit key:
///  * tree edges: the (parent <-> child) link of heap position `pos`
///    (pos >= 2) in row/column tree `tree`, in direction up or down;
///  * module ports: the service port of memory module `tree`
///    (one packet per cycle enters the module — the unit-bandwidth rule).
/// Each distinct key carries at most one packet per cycle.
struct EdgeKey {
  std::uint64_t raw = 0;
  friend constexpr bool operator==(EdgeKey, EdgeKey) = default;
};

[[nodiscard]] constexpr EdgeKey tree_edge(TreeKind kind, std::uint32_t tree,
                                          std::uint32_t pos, Direction dir) {
  return EdgeKey{(static_cast<std::uint64_t>(kind) << 62) |
                 (static_cast<std::uint64_t>(dir) << 61) |
                 (static_cast<std::uint64_t>(tree) << 32) | pos};
}

[[nodiscard]] constexpr EdgeKey module_port(std::uint32_t module) {
  return EdgeKey{(3ULL << 62) | (static_cast<std::uint64_t>(module) << 32)};
}

/// Shape of a mesh of trees.
struct MotShape {
  std::uint32_t rows = 1;      ///< R: leaves per column / row-tree count
  std::uint32_t cols = 1;      ///< C: leaves per row / column-tree count
  bool coalesced_roots = false;  ///< identify RT(i) and CT(i) roots (R==C)

  [[nodiscard]] std::uint64_t leaves() const {
    return static_cast<std::uint64_t>(rows) * cols;
  }
};

/// Structural audit data for the model figures (F-experiments).
struct StructureSummary {
  std::uint64_t leaves = 0;
  std::uint64_t switches = 0;  ///< internal tree nodes ("mere switches")
  std::uint64_t nodes = 0;     ///< leaves + switches
  std::uint64_t links = 0;     ///< undirected tree edges
  std::uint32_t max_degree = 0;
  std::uint64_t diameter_hops = 0;  ///< leaf-to-leaf worst case via roots
};

/// Closed-form structure counts (valid for power-of-two rows/cols).
[[nodiscard]] StructureSummary summarize(const MotShape& shape);

/// Explicit adjacency expansion for small shapes (testing the closed
/// forms and degree bounds). Nodes get dense indices; returns adjacency
/// lists. Asserts leaves() <= 1<<16.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> build_adjacency(
    const MotShape& shape);

/// ASCII sketch of the shape's leaf grid and tree arrangement (the Fig. 4
/// reproduction for tiny sizes).
[[nodiscard]] std::string ascii_sketch(const MotShape& shape);

/// Validated shape constructors.
[[nodiscard]] MotShape square_mot(std::uint32_t side, bool coalesce = true);
[[nodiscard]] MotShape rect_mot(std::uint32_t rows, std::uint32_t cols);

}  // namespace pramsim::net
