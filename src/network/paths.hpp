// Route construction on mesh-of-trees networks.
//
// Tree routing is deterministic: descending from a root to leaf `l`
// follows l's binary representation; ascending follows parent links. The
// paper's schemes compose three kinds of segments:
//
//  * HP / Theorem 3 (square sqrt(M) x sqrt(M), modules at leaves):
//      P_l -> M_(i,j):  down RT(l) to leaf (l,j), up CT(j) to its root,
//      down CT(j) to leaf (i,j), module port. Reply reverses.
//      Optionally turn around at the lowest common ancestor of rows l and
//      i inside CT(j) instead of the root (an ablation; the paper routes
//      via the root).
//  * LPP / crossbar (modules at column roots): down RT(l) to leaf (l,j),
//      up CT(j) to the root, module port there.
#pragma once

#include <cstdint>
#include <vector>

#include "network/topology.hpp"

namespace pramsim::net {

using Path = std::vector<EdgeKey>;

/// Edges for descending tree (kind, tree) from the root to leaf index
/// `leaf` (0-based), tree over `n_leaves` leaves (power of two).
[[nodiscard]] Path descend(TreeKind kind, std::uint32_t tree,
                           std::uint32_t leaf, std::uint32_t n_leaves);

/// Edges for ascending from leaf `leaf` to the root.
[[nodiscard]] Path ascend(TreeKind kind, std::uint32_t tree,
                          std::uint32_t leaf, std::uint32_t n_leaves);

/// Append `suffix` to `path`.
void append(Path& path, const Path& suffix);

/// Reverse a path, flipping each edge's direction (the reply route).
[[nodiscard]] Path reversed(const Path& path);

/// Full HP request route on a square side x side 2DMOT: processor at
/// RT(proc_row)'s root, target module at leaf (mod_row, mod_col).
/// Includes the module-port edge as the final hop. `module_index` is the
/// dense module id (mod_row * side + mod_col) used for the port key.
[[nodiscard]] Path hp_request_path(std::uint32_t side, std::uint32_t proc_row,
                                   std::uint32_t mod_row,
                                   std::uint32_t mod_col,
                                   bool lca_turnaround = false);

/// LPP / crossbar request route: processor at RT(proc_row)'s root, module
/// at CT(mod_col)'s root. Works for square (LPP, side x side) and
/// rectangular (crossbar, rows x cols) shapes.
[[nodiscard]] Path root_module_request_path(const MotShape& shape,
                                            std::uint32_t proc_row,
                                            std::uint32_t mod_col);

}  // namespace pramsim::net
