// Butterfly networks — the substrate of Ranade's (1987) probabilistic
// P-RAM emulation, cited in the paper's §1 (O(log n) expected time with
// O(1) queues).
//
// An n-input butterfly (n = 2^k) has (k+1) levels of n nodes; node
// (level, row) connects to (level+1, row) and (level+1, row ^ 2^level):
// the straight and cross edges. A packet from input row s to output row
// t follows the unique bit-fixing path, crossing at level i iff bit i of
// s and t differ. Degree 4, diameter k.
//
// For the baseline's cost we place one memory module per output row,
// hash variables to rows, route each request along its bit-fixing path,
// and charge dilation + maximum edge congestion — the standard delay
// bound that pipelined queueing (and Ranade's combining) achieves up to
// constants.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/strong_id.hpp"

namespace pramsim::net {

struct ButterflyShape {
  std::uint32_t rows = 2;    ///< n = 2^levels
  std::uint32_t levels = 1;  ///< k = log2 n

  [[nodiscard]] std::uint64_t nodes() const {
    return static_cast<std::uint64_t>(levels + 1) * rows;
  }
  [[nodiscard]] std::uint64_t edges() const {
    return 2ULL * levels * rows;  // straight + cross per (level, row)
  }
  [[nodiscard]] std::uint32_t max_degree() const { return 4; }
};

[[nodiscard]] ButterflyShape butterfly(std::uint32_t rows);

/// The sequence of rows visited by the bit-fixing path s -> t (length
/// levels + 1 including both endpoints).
[[nodiscard]] std::vector<std::uint32_t> bit_fixing_rows(
    const ButterflyShape& shape, std::uint32_t src_row,
    std::uint32_t dst_row);

/// Route a batch of (src, dst) pairs: returns (dilation, max edge
/// congestion) where congestion counts packets sharing one directed
/// butterfly edge. Time bound charged by the Ranade baseline is
/// dilation + congestion - 1.
struct ButterflyLoad {
  std::uint32_t dilation = 0;
  std::uint32_t max_congestion = 0;
};
[[nodiscard]] ButterflyLoad route_congestion(
    const ButterflyShape& shape,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs);

}  // namespace pramsim::net
