#include "network/router.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace pramsim::net {

RouteReport route_all(std::vector<Packet>& packets, std::uint64_t max_cycles,
                      std::uint64_t start_cycle) {
  RouteReport report;
  std::uint64_t pending = 0;
  for (auto& packet : packets) {
    if (!packet.delivered() && packet.next_edge < packet.path.size()) {
      ++pending;
      packet.waiting_since = std::max(packet.injected_at, start_cycle);
    } else if (!packet.delivered()) {
      packet.delivered_at = start_cycle;  // empty path: delivered at once
      ++report.delivered;
    }
  }

  struct Claim {
    std::size_t packet_idx;
    std::uint32_t queue = 0;
  };
  std::unordered_map<std::uint64_t, Claim> claims;
  std::uint64_t cycle = start_cycle;
  std::uint64_t latency_sum = 0;

  while (pending > 0 && cycle < start_cycle + max_cycles) {
    claims.clear();
    for (std::size_t i = 0; i < packets.size(); ++i) {
      Packet& p = packets[i];
      if (p.delivered() || p.injected_at > cycle) {
        continue;
      }
      const std::uint64_t key = p.path[p.next_edge].raw;
      auto [it, fresh] = claims.try_emplace(key, Claim{i, 1});
      if (!fresh) {
        ++it->second.queue;
        const Packet& cur = packets[it->second.packet_idx];
        // FIFO: the packet blocked longest wins; ties by id.
        if (p.waiting_since < cur.waiting_since ||
            (p.waiting_since == cur.waiting_since && p.id < cur.id)) {
          it->second.packet_idx = i;
        }
      }
    }
    // Each packet claims exactly one edge per cycle, so every claim's
    // winner is a distinct packet and the per-packet updates commute;
    // the only cross-claim folds are a max and a sum.
    // pramlint: ordered-fold (distinct winners; max/sum folds commute)
    for (const auto& [key, claim] : claims) {
      (void)key;
      report.max_edge_queue =
          std::max<std::uint64_t>(report.max_edge_queue, claim.queue);
      Packet& p = packets[claim.packet_idx];
      ++p.next_edge;
      ++report.total_hops;
      p.waiting_since = cycle + 1;
      if (p.next_edge == p.path.size()) {
        p.delivered_at = cycle + 1;
        ++report.delivered;
        --pending;
        const std::uint64_t latency = p.delivered_at - p.injected_at;
        latency_sum += latency;
        report.max_latency = std::max(report.max_latency, latency);
      }
    }
    ++cycle;
  }

  report.cycles = cycle - start_cycle;
  if (report.delivered > 0) {
    report.mean_latency =
        static_cast<double>(latency_sum) / static_cast<double>(report.delivered);
  }
  return report;
}

}  // namespace pramsim::net
