#include "network/paths.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace pramsim::net {

Path descend(TreeKind kind, std::uint32_t tree, std::uint32_t leaf,
             std::uint32_t n_leaves) {
  PRAMSIM_ASSERT(util::is_pow2(n_leaves));
  PRAMSIM_ASSERT(leaf < n_leaves);
  const int depth = util::ilog2_floor(n_leaves);
  Path path;
  path.reserve(static_cast<std::size_t>(depth));
  std::uint32_t pos = 1;
  for (int d = depth - 1; d >= 0; --d) {
    pos = 2 * pos + ((leaf >> d) & 1U);
    path.push_back(tree_edge(kind, tree, pos, Direction::kDown));
  }
  return path;
}

Path ascend(TreeKind kind, std::uint32_t tree, std::uint32_t leaf,
            std::uint32_t n_leaves) {
  PRAMSIM_ASSERT(util::is_pow2(n_leaves));
  PRAMSIM_ASSERT(leaf < n_leaves);
  Path path;
  std::uint32_t pos = n_leaves + leaf;
  while (pos > 1) {
    path.push_back(tree_edge(kind, tree, pos, Direction::kUp));
    pos /= 2;
  }
  return path;
}

void append(Path& path, const Path& suffix) {
  path.insert(path.end(), suffix.begin(), suffix.end());
}

Path reversed(const Path& path) {
  Path out;
  out.reserve(path.size());
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    EdgeKey key = *it;
    const std::uint64_t kind_bits = key.raw >> 62;
    if (kind_bits != 3) {  // module ports are direction-less
      key.raw ^= (1ULL << 61);  // flip direction bit
    }
    out.push_back(key);
  }
  return out;
}

Path hp_request_path(std::uint32_t side, std::uint32_t proc_row,
                     std::uint32_t mod_row, std::uint32_t mod_col,
                     bool lca_turnaround) {
  PRAMSIM_ASSERT(util::is_pow2(side));
  PRAMSIM_ASSERT(proc_row < side && mod_row < side && mod_col < side);
  // Segment 1: down the processor's row tree to leaf (proc_row, mod_col).
  Path path = descend(TreeKind::kRow, proc_row, mod_col, side);
  // Segment 2+3: within CT(mod_col), from leaf row proc_row to leaf row
  // mod_row, either via the root (paper) or via the LCA (ablation).
  if (!lca_turnaround) {
    append(path, ascend(TreeKind::kCol, mod_col, proc_row, side));
    append(path, descend(TreeKind::kCol, mod_col, mod_row, side));
  } else if (proc_row != mod_row) {
    std::uint32_t a = side + proc_row;
    std::uint32_t b = side + mod_row;
    // Ascend from a to the LCA.
    std::vector<std::uint32_t> up_nodes;
    while (a != b) {
      if (a > b) {
        up_nodes.push_back(a);
        a /= 2;
      } else {
        b /= 2;
      }
    }
    for (const auto pos : up_nodes) {
      path.push_back(tree_edge(TreeKind::kCol, mod_col, pos, Direction::kUp));
    }
    // Descend from the LCA (= a) to leaf mod_row: replay the low bits.
    const int total_depth = util::ilog2_floor(side);
    const int lca_depth = util::ilog2_floor(a);
    std::uint32_t pos = a;
    for (int d = total_depth - lca_depth - 1; d >= 0; --d) {
      pos = 2 * pos + ((mod_row >> d) & 1U);
      path.push_back(tree_edge(TreeKind::kCol, mod_col, pos,
                               Direction::kDown));
    }
  }
  // Final hop: the module's unit-bandwidth service port.
  path.push_back(module_port(mod_row * side + mod_col));
  return path;
}

Path root_module_request_path(const MotShape& shape, std::uint32_t proc_row,
                              std::uint32_t mod_col) {
  PRAMSIM_ASSERT(proc_row < shape.rows && mod_col < shape.cols);
  Path path = descend(TreeKind::kRow, proc_row, mod_col, shape.cols);
  append(path, ascend(TreeKind::kCol, mod_col, proc_row, shape.rows));
  path.push_back(module_port(mod_col));
  return path;
}

}  // namespace pramsim::net
