// Cycle-accurate synchronous store-and-forward router.
//
// Model (the BDN/DMBDN timing rules the paper's theorems count):
//  * every directed channel (EdgeKey) carries at most one packet per cycle;
//  * packets traverse their precomputed path one edge per cycle when
//    unblocked; blocked packets queue (FIFO by blocking time, ties by
//    packet id — deterministic);
//  * a packet may carry an `injected_at` cycle before which it is held at
//    its source (used to serialize a processor's own injections).
//
// The engine is sparse: per-cycle work is proportional to in-flight
// packets, never to network size, so multi-million-switch 2DMOTs cost
// nothing beyond their traffic.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "network/topology.hpp"

namespace pramsim::net {

struct Packet {
  std::uint32_t id = 0;  ///< unique; deterministic tie-break
  std::vector<EdgeKey> path;
  std::uint64_t injected_at = 0;

  // Engine-owned state.
  std::uint32_t next_edge = 0;
  std::uint64_t waiting_since = 0;
  std::uint64_t delivered_at = std::numeric_limits<std::uint64_t>::max();

  [[nodiscard]] bool delivered() const {
    return delivered_at != std::numeric_limits<std::uint64_t>::max();
  }
};

struct RouteReport {
  std::uint64_t cycles = 0;         ///< cycles elapsed until completion
  std::uint64_t delivered = 0;      ///< packets that finished their path
  std::uint64_t total_hops = 0;     ///< edges traversed by all packets
  std::uint64_t max_edge_queue = 0; ///< peak packets contending one edge
  double mean_latency = 0.0;        ///< mean delivered_at - injected_at
  std::uint64_t max_latency = 0;
};

/// Route packets until all are delivered or `max_cycles` elapse.
/// Packet state is updated in place (delivered_at, next_edge).
/// `start_cycle` offsets the clock so phased protocols can keep one
/// global time base.
[[nodiscard]] RouteReport route_all(std::vector<Packet>& packets,
                                    std::uint64_t max_cycles = 1'000'000,
                                    std::uint64_t start_cycle = 0);

}  // namespace pramsim::net
