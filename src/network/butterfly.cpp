#include "network/butterfly.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::net {

ButterflyShape butterfly(std::uint32_t rows) {
  PRAMSIM_ASSERT(util::is_pow2(rows) && rows >= 2);
  return ButterflyShape{rows,
                        static_cast<std::uint32_t>(util::ilog2_floor(rows))};
}

std::vector<std::uint32_t> bit_fixing_rows(const ButterflyShape& shape,
                                           std::uint32_t src_row,
                                           std::uint32_t dst_row) {
  PRAMSIM_ASSERT(src_row < shape.rows && dst_row < shape.rows);
  std::vector<std::uint32_t> rows;
  rows.reserve(shape.levels + 1);
  std::uint32_t row = src_row;
  rows.push_back(row);
  for (std::uint32_t level = 0; level < shape.levels; ++level) {
    const std::uint32_t bit = 1U << level;
    if ((row & bit) != (dst_row & bit)) {
      row ^= bit;  // cross edge
    }
    rows.push_back(row);
  }
  PRAMSIM_ASSERT(row == dst_row);
  return rows;
}

ButterflyLoad route_congestion(
    const ButterflyShape& shape,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs) {
  ButterflyLoad load;
  if (pairs.empty()) {
    return load;
  }
  load.dilation = shape.levels;
  // Edge key: level (6 bits) | row-at-level (32) | crossed flag.
  std::unordered_map<std::uint64_t, std::uint32_t> edge_load;
  edge_load.reserve(pairs.size() * shape.levels);
  for (const auto& [src, dst] : pairs) {
    const auto rows = bit_fixing_rows(shape, src, dst);
    for (std::uint32_t level = 0; level < shape.levels; ++level) {
      const bool crossed = rows[level] != rows[level + 1];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(level) << 34) |
          (static_cast<std::uint64_t>(rows[level]) << 1) |
          (crossed ? 1ULL : 0ULL);
      load.max_congestion = std::max(load.max_congestion, ++edge_load[key]);
    }
  }
  return load;
}

}  // namespace pramsim::net
