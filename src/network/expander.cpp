#include "network/expander.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "util/assert.hpp"

namespace pramsim::net {

RegularGraph::RegularGraph(std::uint32_t n_vertices, std::uint32_t degree,
                           std::uint64_t seed)
    : degree_(degree), adjacency_(n_vertices) {
  PRAMSIM_ASSERT(n_vertices >= 2 && degree >= 1 && degree < n_vertices);
  PRAMSIM_ASSERT_MSG(n_vertices % 2 == 0,
                     "matching construction needs even n");
  util::Rng rng(seed);
  // Union of d random perfect matchings: each matching is retried until
  // it adds no duplicate edge, which succeeds with probability ~
  // exp(-d^2/2n) per draw — robust where the naive configuration model's
  // whole-graph restart is not. The result is d-regular and simple; the
  // union of >= 3 matchings is a.a.s. connected and expanding.
  std::set<std::pair<std::uint32_t, std::uint32_t>> used;
  std::vector<std::uint32_t> order(n_vertices);
  for (std::uint32_t v = 0; v < n_vertices; ++v) {
    order[v] = v;
  }
  for (std::uint32_t matching = 0; matching < degree; ++matching) {
    bool placed = false;
    for (int attempt = 0; attempt < 10'000 && !placed; ++attempt) {
      rng.shuffle(order);
      bool fresh = true;
      for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
        const auto a = std::min(order[i], order[i + 1]);
        const auto b = std::max(order[i], order[i + 1]);
        if (used.count({a, b}) != 0) {
          fresh = false;
          break;
        }
      }
      if (!fresh) {
        continue;
      }
      for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
        const auto a = order[i];
        const auto b = order[i + 1];
        used.insert({std::min(a, b), std::max(a, b)});
        adjacency_[a].push_back(b);
        adjacency_[b].push_back(a);
      }
      placed = true;
    }
    PRAMSIM_ASSERT_MSG(placed, "matching construction failed to converge");
  }
}

bool RegularGraph::connected() const {
  const auto n = vertices();
  std::vector<bool> seen(n, false);
  std::queue<std::uint32_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::uint32_t visited = 1;
  while (!frontier.empty()) {
    const auto v = frontier.front();
    frontier.pop();
    for (const auto w : adjacency_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        frontier.push(w);
      }
    }
  }
  return visited == n;
}

std::uint32_t RegularGraph::eccentricity(std::uint32_t source) const {
  const auto n = vertices();
  PRAMSIM_ASSERT(source < n);
  std::vector<std::uint32_t> dist(n, ~0U);
  std::queue<std::uint32_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  std::uint32_t ecc = 0;
  while (!frontier.empty()) {
    const auto v = frontier.front();
    frontier.pop();
    for (const auto w : adjacency_[v]) {
      if (dist[w] == ~0U) {
        dist[w] = dist[v] + 1;
        ecc = std::max(ecc, dist[w]);
        frontier.push(w);
      }
    }
  }
  return ecc;
}

std::uint32_t RegularGraph::diameter() const {
  PRAMSIM_ASSERT_MSG(connected(), "diameter of a disconnected graph");
  std::uint32_t diam = 0;
  for (std::uint32_t v = 0; v < vertices(); ++v) {
    diam = std::max(diam, eccentricity(v));
  }
  return diam;
}

double RegularGraph::lambda2(std::uint32_t iterations) const {
  const auto n = vertices();
  // Power iteration on A/d, deflating the top eigenvector (all-ones).
  util::Rng rng(0xE1A2);
  std::vector<double> x(n);
  for (auto& v : x) {
    v = rng.uniform01() - 0.5;
  }
  auto deflate = [&](std::vector<double>& vec) {
    double mean = 0.0;
    for (const double v : vec) {
      mean += v;
    }
    mean /= n;
    for (double& v : vec) {
      v -= mean;
    }
  };
  auto norm = [&](const std::vector<double>& vec) {
    double s = 0.0;
    for (const double v : vec) {
      s += v * v;
    }
    return std::sqrt(s);
  };
  deflate(x);
  double lambda = 0.0;
  std::vector<double> y(n);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    for (std::uint32_t v = 0; v < n; ++v) {
      double acc = 0.0;
      for (const auto w : adjacency_[v]) {
        acc += x[w];
      }
      y[v] = acc / degree_;
    }
    deflate(y);
    const double len = norm(y);
    if (len < 1e-300) {
      return 0.0;
    }
    lambda = len / std::max(norm(x), 1e-300);
    for (std::uint32_t v = 0; v < n; ++v) {
      x[v] = y[v] / len;
    }
  }
  return lambda;
}

}  // namespace pramsim::net
