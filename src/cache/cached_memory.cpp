#include "cache/cached_memory.hpp"

#include <algorithm>
#include <utility>

#include "memmap/memory_map.hpp"
#include "util/assert.hpp"

namespace pramsim::cache {

namespace {

/// Largest per-variable redundancy the precise died-since-fill check
/// handles on the stack; wider maps fall back to the coarse epoch test
/// (any death since fill invalidates).
constexpr std::uint32_t kMaxMapRedundancy = 16;

}  // namespace

CachedMemory::CachedMemory(std::unique_ptr<pram::MemorySystem> inner,
                           CacheConfig config)
    : inner_(std::move(inner)), config_(config) {
  PRAMSIM_ASSERT_MSG(config_.capacity >= 1,
                     "cache capacity must be >= 1 line");
  // Lines and the index grow on demand (a capacity of millions of lines
  // should not allocate until the working set actually reaches it).
  lines_.reserve(std::min<std::uint64_t>(config_.capacity, 1024));
  index_.reserve(std::min<std::uint64_t>(config_.capacity, 1u << 16));
}

void CachedMemory::begin_step() {
  arena_.reset();
  residual_reads_.clear();
  residual_to_outer_.clear();
  fill_slot_.clear();
  residual_writes_.clear();
  residual_write_index_.clear();
  residual_read_index_.clear();
  step_stats_ = {};
}

void CachedMemory::refresh_fault_epoch(std::uint64_t now) {
  if (hooks_ == nullptr) {
    return;
  }
  const std::uint32_t n_modules = inner_->num_modules();
  std::uint64_t dead = 0;
  for (std::uint32_t m = 0; m < n_modules; ++m) {
    if (hooks_->module_dead(ModuleId(m), now)) {
      ++dead;
    }
  }
  // Hooks are monotone in the step, so a grown dead count pins the most
  // recent onset to this step (the first step that could observe it).
  if (dead > dead_modules_seen_) {
    dead_modules_seen_ = dead;
    last_death_step_ = now;
  }
}

CachedMemory::Staleness CachedMemory::classify_line(Line& line,
                                                    std::uint64_t now) {
  if (line.dirty != 0) {
    // The cache holds the only up-to-date copy of a dirty value (the
    // inner scheme never saw the store); re-serving it from degraded
    // storage would manufacture exactly the silent wrong read the
    // oracle exists to catch. Dirty lines are therefore never stale.
    return Staleness::kFresh;
  }
  if (line.fill_step < reloc_stamp_) {
    return Staleness::kRelocated;
  }
  if (hooks_ == nullptr || line.fill_step >= last_death_step_) {
    return Staleness::kFresh;
  }
  // A module died after this line was filled. When the inner scheme
  // exposes its variable->modules map, check whether any module actually
  // backing THIS variable died in (fill, now]; exonerated lines are
  // re-stamped so the scan is not repeated every step.
  const memmap::MemoryMap* map = inner_->memory_map();
  if (map != nullptr && map->num_vars() == inner_->size() &&
      map->redundancy() >= 1 && map->redundancy() <= kMaxMapRedundancy) {
    ModuleId modules[kMaxMapRedundancy];
    const std::span<ModuleId> backing(modules, map->redundancy());
    map->copies_into(line.var, backing);
    bool died_since_fill = false;
    for (const auto module : backing) {
      if (hooks_->module_dead(module, now) &&
          !hooks_->module_dead(module, line.fill_step)) {
        died_since_fill = true;
        break;
      }
    }
    if (!died_since_fill) {
      line.fill_step = now;
      return Staleness::kFresh;
    }
  }
  return Staleness::kDeadBacking;
}

void CachedMemory::classify_reads(std::span<const VarId> reads,
                                  std::span<pram::Word> out,
                                  std::uint64_t now) {
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const VarId var = reads[i];
    const auto it = index_.find(var.index());
    if (it != index_.end()) {
      Line& line = lines_[it->second];
      const Staleness state = classify_line(line, now);
      if (state == Staleness::kFresh) {
        out[i] = line.value;
        line.ref = 1;
        line.touch_step = now;
        ++step_stats_.hits;
        continue;
      }
      // Stale clean line: invalidate, then re-serve the read as a miss.
      ++step_stats_.invalidations;
      if (state == Staleness::kDeadBacking) {
        obs_event(obs::EventKind::kCacheInvalidateDead, var.index(), 0,
                  line.fill_step, now);
      } else {
        obs_event(obs::EventKind::kCacheInvalidateScrub, var.index(), 0,
                  line.fill_step, reloc_stamp_);
      }
      drop_line(it->second);
    }
    ++step_stats_.misses;
    residual_read_index_.try_emplace(
        var.index(), static_cast<std::uint32_t>(residual_reads_.size()));
    residual_to_outer_.push_back(static_cast<std::uint32_t>(i));
    residual_reads_.push_back(var);
  }
}

void CachedMemory::apply_writes(std::span<const pram::VarWrite> writes,
                                std::uint64_t now) {
  for (const auto& write : writes) {
    const auto it = index_.find(write.var.index());
    if (it != index_.end()) {
      Line& line = lines_[it->second];
      line.value = write.value;
      line.dirty = 1;
      line.ref = 1;
      line.fill_step = now;
      line.touch_step = now;
      continue;
    }
    const std::uint32_t slot = acquire_slot(now);
    if (slot == kNoSlot) {
      // Every line is pinned by this step: write through.
      ++step_stats_.bypasses;
      queue_residual_write(write.var, write.value);
      continue;
    }
    install_line(slot, write.var, write.value, /*dirty=*/1, now);
  }
}

void CachedMemory::reserve_fills(std::uint64_t now) {
  // Fill targets are reserved BEFORE the inner step so that any eviction
  // a fill provokes contributes its write-back to the SAME residual plan
  // (a post-serve eviction would have to defer its write-back a step).
  fill_slot_.assign(residual_reads_.size(), kNoSlot);
  for (std::size_t j = 0; j < residual_reads_.size(); ++j) {
    const VarId var = residual_reads_[j];
    if (index_.find(var.index()) != index_.end()) {
      // The variable gained a line after classification (this step also
      // writes it): the read stays output-only — the line already holds
      // the post-step value, which the pre-step read must not clobber.
      continue;
    }
    const std::uint32_t slot = acquire_slot(now);
    if (slot == kNoSlot) {
      ++step_stats_.bypasses;
      continue;
    }
    install_line(slot, var, 0, /*dirty=*/0, now);
    fill_slot_[j] = slot;
  }
}

void CachedMemory::commit_results(
    std::span<pram::Word> out, std::span<const pram::Word> residual_values,
    std::span<const std::uint8_t> residual_flags, std::size_t n_reads,
    pram::ServeContext* ctx) {
  bool any_flag = false;
  for (std::size_t j = 0; j < residual_reads_.size(); ++j) {
    const std::uint32_t outer = residual_to_outer_[j];
    out[outer] = residual_values[j];
    const bool flagged =
        j < residual_flags.size() && residual_flags[j] != 0;
    if (flagged) {
      if (!any_flag) {
        any_flag = true;
        flagged_.assign(n_reads, 0);
        if (ctx != nullptr) {
          ctx->enable_flags();
        }
      }
      flagged_[outer] = 1;
      if (ctx != nullptr) {
        ctx->flag_read(outer);
      }
      // Never cache a flagged loss: release the reserved line so the
      // next access retries the inner scheme (which may have scrubbed).
      if (fill_slot_[j] != kNoSlot) {
        drop_line(fill_slot_[j]);
      }
      continue;
    }
    if (fill_slot_[j] != kNoSlot) {
      lines_[fill_slot_[j]].value = residual_values[j];
    }
  }
  if (!any_flag) {
    flagged_.clear();
  }
}

void CachedMemory::publish_step_stats() {
  stats_.hits += step_stats_.hits;
  stats_.misses += step_stats_.misses;
  stats_.evictions += step_stats_.evictions;
  stats_.writebacks += step_stats_.writebacks;
  stats_.invalidations += step_stats_.invalidations;
  stats_.bypasses += step_stats_.bypasses;
  if (step_stats_.hits != 0) {
    obs_count("cache.hits", step_stats_.hits);
  }
  if (step_stats_.misses != 0) {
    obs_count("cache.misses", step_stats_.misses);
  }
  if (step_stats_.evictions != 0) {
    obs_count("cache.evictions", step_stats_.evictions);
  }
  if (step_stats_.writebacks != 0) {
    obs_count("cache.writebacks", step_stats_.writebacks);
  }
  if (step_stats_.invalidations != 0) {
    obs_count("cache.invalidations", step_stats_.invalidations);
  }
  if (step_stats_.bypasses != 0) {
    obs_count("cache.bypasses", step_stats_.bypasses);
  }
}

std::uint32_t CachedMemory::acquire_slot(std::uint64_t now) {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  if (lines_.size() < config_.capacity) {
    lines_.emplace_back();
    return static_cast<std::uint32_t>(lines_.size() - 1);
  }
  // Clock sweep (second chance): the first revolution clears reference
  // bits, so a victim is found within two revolutions unless every line
  // is pinned by the current step.
  const std::size_t limit = 2 * lines_.size();
  for (std::size_t scanned = 0; scanned < limit; ++scanned) {
    if (hand_ >= lines_.size()) {
      hand_ = 0;
    }
    const auto slot = static_cast<std::uint32_t>(hand_);
    Line& candidate = lines_[hand_];
    ++hand_;
    if (candidate.touch_step == now) {
      continue;  // hit, written, or reserved this step: pinned
    }
    if (candidate.ref != 0) {
      candidate.ref = 0;
      continue;
    }
    if (candidate.dirty != 0) {
      queue_residual_write(candidate.var, candidate.value);
      ++step_stats_.writebacks;
    }
    index_.erase(candidate.var.index());
    ++step_stats_.evictions;
    return slot;
  }
  return kNoSlot;
}

void CachedMemory::install_line(std::uint32_t slot, VarId var,
                                pram::Word value, std::uint8_t dirty,
                                std::uint64_t now) {
  Line& line = lines_[slot];
  line.var = var;
  line.value = value;
  line.dirty = dirty;
  line.ref = 1;
  line.fill_step = now;
  line.touch_step = now;
  index_[var.index()] = slot;
}

void CachedMemory::drop_line(std::uint32_t slot) {
  Line& line = lines_[slot];
  index_.erase(line.var.index());
  line.dirty = 0;
  line.ref = 0;
  free_.push_back(slot);
}

void CachedMemory::queue_residual_write(VarId var, pram::Word value) {
  // Last-wins dedup: a bypassed write may follow a write-back of the
  // same variable evicted earlier in the step, and the inner step
  // requires distinct write variables.
  const auto [idx, fresh] = residual_write_index_.try_emplace(
      var.index(), static_cast<std::uint32_t>(residual_writes_.size()));
  if (fresh) {
    residual_writes_.push_back({var, value});
  } else {
    residual_writes_[*idx].value = value;
  }
}

pram::AccessPlan CachedMemory::build_residual_plan() {
  pram::AccessPlan plan;
  const std::size_t n_r = residual_reads_.size();
  const std::size_t n_w = residual_writes_.size();

  // Eviction write-backs can never target a missed read's variable (a
  // write-back victim had a live line at classification, so if read it
  // was a hit), but a BYPASSED client write can: the variable missed as
  // a read, then every slot was pinned when its write arrived. Such a
  // variable carries one request with op = kWrite and is_read = true —
  // the plan contract allows each variable exactly once.
  std::size_t n_shared = 0;
  for (const auto& write : residual_writes_) {
    if (residual_read_index_.find(write.var.index()) != nullptr) {
      ++n_shared;
    }
  }
  const std::size_t n_q = n_r + n_w - n_shared;

  const auto reads = arena_.alloc<VarId>(n_r);
  std::copy(residual_reads_.begin(), residual_reads_.end(), reads.begin());
  const auto writes = arena_.alloc<pram::VarWrite>(n_w);
  std::copy(residual_writes_.begin(), residual_writes_.end(),
            writes.begin());
  const auto requests = arena_.alloc<pram::PlanRequest>(n_q);
  const auto read_request = arena_.alloc<std::uint32_t>(n_r);
  const auto write_request = arena_.alloc<std::uint32_t>(n_w);
  const auto request_write = arena_.alloc<std::uint32_t>(n_q);

  for (std::size_t i = 0; i < n_r; ++i) {
    requests[i] = {reads[i], pram::AccessOp::kRead, /*is_read=*/true};
    read_request[i] = static_cast<std::uint32_t>(i);
    request_write[i] = pram::AccessPlan::kNone;
  }
  std::size_t next_q = n_r;
  for (std::size_t i = 0; i < n_w; ++i) {
    const std::uint32_t* read_idx =
        residual_read_index_.find(writes[i].var.index());
    if (read_idx != nullptr) {
      requests[*read_idx].op = pram::AccessOp::kWrite;
      write_request[i] = *read_idx;
      request_write[*read_idx] = static_cast<std::uint32_t>(i);
      continue;
    }
    requests[next_q] = {writes[i].var, pram::AccessOp::kWrite,
                        /*is_read=*/false};
    write_request[i] = static_cast<std::uint32_t>(next_q);
    request_write[next_q] = static_cast<std::uint32_t>(i);
    ++next_q;
  }

  plan.reads = reads;
  plan.writes = writes;
  plan.requests = requests;
  plan.read_request = read_request;
  plan.write_request = write_request;
  plan.request_write = request_write;

  if (inner_->wants_plan_groups()) {
    group_scratch_.clear();
    group_scratch_.reserve(n_q);
    for (std::size_t q = 0; q < n_q; ++q) {
      group_scratch_.emplace_back(inner_->plan_group_of(requests[q].var),
                                  static_cast<std::uint32_t>(q));
    }
    std::sort(group_scratch_.begin(), group_scratch_.end());
    std::size_t n_groups = 0;
    for (std::size_t q = 0; q < n_q; ++q) {
      if (q == 0 ||
          group_scratch_[q].first != group_scratch_[q - 1].first) {
        ++n_groups;
      }
    }
    const auto group_keys = arena_.alloc<std::uint64_t>(n_groups);
    const auto group_offsets = arena_.alloc<std::uint32_t>(n_groups + 1);
    const auto group_requests = arena_.alloc<std::uint32_t>(n_q);
    const auto request_group = arena_.alloc<std::uint32_t>(n_q);
    std::size_t g = 0;
    for (std::size_t q = 0; q < n_q; ++q) {
      if (q == 0 ||
          group_scratch_[q].first != group_scratch_[q - 1].first) {
        group_keys[g] = group_scratch_[q].first;
        group_offsets[g] = static_cast<std::uint32_t>(q);
        ++g;
      }
      group_requests[q] = group_scratch_[q].second;
      request_group[group_scratch_[q].second] =
          static_cast<std::uint32_t>(g - 1);
    }
    group_offsets[n_groups] = static_cast<std::uint32_t>(n_q);
    plan.group_keys = group_keys;
    plan.group_offsets = group_offsets;
    plan.group_requests = group_requests;
    plan.request_group = request_group;
  }
  return plan;
}

pram::MemStepCost CachedMemory::step(std::span<const VarId> reads,
                                     std::span<pram::Word> read_values,
                                     std::span<const pram::VarWrite> writes) {
  const std::uint64_t now = advance_step_clock();
  refresh_fault_epoch(now);
  begin_step();
  classify_reads(reads, read_values, now);
  apply_writes(writes, now);
  reserve_fills(now);
  residual_values_.assign(residual_reads_.size(), 0);
  pram::MemStepCost cost =
      inner_->step(residual_reads_, residual_values_, residual_writes_);
  commit_results(read_values, residual_values_, inner_->flagged_reads(),
                 reads.size(), nullptr);
  publish_step_stats();
  cost.time = std::max<std::uint64_t>(cost.time, 1);
  return cost;
}

pram::MemStepCost CachedMemory::serve(const pram::AccessPlan& plan,
                                      pram::ServeContext& ctx) {
  const std::uint64_t now = advance_step_clock();
  ctx.stamp_step(now);
  refresh_fault_epoch(now);
  begin_step();
  const auto out = ctx.read_values();
  classify_reads(plan.reads, out, now);
  apply_writes(plan.writes, now);
  reserve_fills(now);
  const pram::AccessPlan residual = build_residual_plan();
  residual_values_.assign(residual_reads_.size(), 0);
  residual_ctx_.bind(residual_values_);
  residual_ctx_.set_executor(ctx.executor());
  // The inner scheme is always served (even an empty residual), so its
  // step clock stays aligned with ours — fault onsets and scrub stamps
  // compare against one consistent clock across the layers.
  pram::MemStepCost cost = inner_->serve(residual, residual_ctx_);
  commit_results(out, residual_values_, residual_ctx_.flags(), out.size(),
                 &ctx);
  publish_step_stats();
  cost.time = std::max<std::uint64_t>(cost.time, 1);
  return cost;
}

pram::Word CachedMemory::peek(VarId var) const {
  const auto it = index_.find(var.index());
  if (it != index_.end() && lines_[it->second].dirty != 0) {
    return lines_[it->second].value;
  }
  return inner_->peek(var);
}

void CachedMemory::poke(VarId var, pram::Word value) {
  const auto it = index_.find(var.index());
  if (it != index_.end()) {
    // Keep the line coherent with the inner memory: after a poke both
    // layers agree, so the line is clean again.
    Line& line = lines_[it->second];
    line.value = value;
    line.dirty = 0;
    line.fill_step = steps_served();
  }
  inner_->poke(var, value);
}

bool CachedMemory::set_fault_hooks(const pram::FaultHooks* hooks) {
  const bool inner_accepts = inner_->set_fault_hooks(hooks);
  // Track the fault clock only under replica-level injection: when the
  // inner scheme rejected the hooks, degradation (if any) is applied by
  // an OUTER wrapper, which already observes the cache's outputs — the
  // cached values themselves never go stale.
  hooks_ = inner_accepts ? hooks : nullptr;
  dead_modules_seen_ = 0;
  last_death_step_ = 0;
  return inner_accepts;
}

pram::ScrubResult CachedMemory::scrub(std::uint64_t budget) {
  const pram::ScrubResult result = inner_->scrub(budget);
  if (result.relocated > 0) {
    // Conservative: every clean line filled at or before the current
    // step predates the relocation and is invalidated on its next hit.
    reloc_stamp_ = steps_served() + 1;
  }
  return result;
}

void CachedMemory::snapshot_body(pram::SnapshotSink& sink) {
  // Write back every dirty line BEFORE serializing the inner scheme: a
  // dirty line is the only up-to-date copy of its value, so serializing
  // first would checkpoint stale backing state. Freed slots are never
  // dirty (drop_line clears the bit), so a flat scan suffices. The
  // lines stay resident and become clean, exactly as if evicted and
  // refilled — observable values never change.
  std::uint64_t flushed = 0;
  for (Line& line : lines_) {
    if (line.dirty != 0) {
      inner_->poke(line.var, line.value);
      line.dirty = 0;
      line.fill_step = steps_served();
      ++flushed;
    }
  }
  if (flushed > 0) {
    stats_.writebacks += flushed;
    obs_count("cache.checkpoint_writebacks", flushed);
  }
  inner_->snapshot(sink);
}

bool CachedMemory::restore_body(pram::SnapshotSource& source) {
  if (!inner_->restore(source)) {
    return false;
  }
  // Restart cold: cached values are a performance artifact the inner
  // snapshot already covers (the flush above made them clean), and the
  // fault-clock stamps below reference a step clock that just changed.
  lines_.clear();
  index_.clear();
  free_.clear();
  hand_ = 0;
  dead_modules_seen_ = 0;
  last_death_step_ = 0;
  reloc_stamp_ = 0;
  return true;
}

}  // namespace pramsim::cache
