// CachedMemory: a fixed-capacity hot-set cache in front of any
// pram::MemorySystem.
//
// The redundant organizations (majority copies, IDA dispersal, hashed
// placement) pay their constant-redundancy tax on EVERY access. Under
// skewed traffic (pram::TraceFamily::kZipfian / kWorkingSet) most of a
// step's accesses revisit a small hot set, so a cache in front of the
// engine converts "redundancy cost per access" into "redundancy cost per
// miss". The design follows the classic storage-engine cache/evict split
// (clock second-chance eviction, dirty write-back) adapted to the P-RAM
// step model:
//
//  * one variable per line; lookup via an index map, eviction via a
//    clock hand with one reference bit (second chance);
//  * writes allocate: the line absorbs the store (dirty) and the inner
//    scheme sees it only when the line is written back on eviction;
//  * serve(plan, ctx) is served natively: every plan read probes the
//    cache, and the misses plus the step's write-back/bypass traffic
//    form a RESIDUAL AccessPlan (built into a private arena, grouped by
//    the inner scheme's plan_group_of when it wants groups) that is
//    forwarded to the inner scheme in ONE inner step. Inner results
//    scatter back into the caller's ServeContext span, and inner outage
//    flags fold into the caller's flag surface.
//
// Fault consistency (see docs/fault-model.md): when the inner scheme
// accepts replica-level FaultHooks, the cache tracks the step-stamped
// fault clock. A CLEAN line whose backing may have changed since fill —
// a module died after the line's fill step, or a scrub pass relocated
// storage — is INVALIDATED on its next hit and re-served from the inner
// scheme as a miss, so a cached run degrades exactly like an uncached
// one instead of masking faults with stale hits. DIRTY lines are never
// invalidated: the cache holds the only up-to-date copy of a dirty
// value (the inner scheme never saw the store), so re-serving it from
// degraded storage would manufacture the silent wrong read the
// trace-consistency oracle exists to catch.
//
// Determinism: all cache state lives on the serving thread. The residual
// plan hands the caller's executor through to the inner scheme, so a
// group-parallel inner backend still fans residual groups across
// workers — but hit/miss classification, eviction order, and telemetry
// are serial, keeping results and obs snapshots bit-identical at any
// worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "pram/access_plan.hpp"
#include "pram/memory_system.hpp"
#include "util/arena.hpp"
#include "util/scratch_map.hpp"

namespace pramsim::cache {

struct CacheConfig {
  /// Capacity in lines (one variable per line). Must be >= 1: a
  /// zero-capacity cache is a configuration error — use the bare inner
  /// memory instead.
  std::uint64_t capacity = 1024;
};

/// Lifetime telemetry (also mirrored into obs counters per step).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;
  /// Accesses served through the inner scheme because every line was
  /// pinned by this step (capacity smaller than the step's footprint).
  std::uint64_t bypasses = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class CachedMemory final : public pram::MemorySystem {
 public:
  CachedMemory(std::unique_ptr<pram::MemorySystem> inner, CacheConfig config);

  pram::MemStepCost step(std::span<const VarId> reads,
                         std::span<pram::Word> read_values,
                         std::span<const pram::VarWrite> writes) override;

  /// Native serve: probe per plan read, forward a residual plan of
  /// misses + write-backs to the inner scheme, scatter results and
  /// outage flags back into `ctx`.
  pram::MemStepCost serve(const pram::AccessPlan& plan,
                          pram::ServeContext& ctx) override;

  /// The outer plan needs no group arrays (the cache rebuilds residual
  /// groups itself, after hit filtering); grouping keys pass through for
  /// introspection.
  [[nodiscard]] std::uint64_t plan_group_of(VarId var) const override {
    return inner_->plan_group_of(var);
  }
  [[nodiscard]] bool wants_plan_groups() const override { return false; }
  [[nodiscard]] std::uint32_t capabilities() const override { return 0; }
  /// Backend selection passes through: the inner scheme may serve the
  /// residual plan group-parallel even though the cache front is serial.
  pram::ServeBackend set_serve_backend(
      pram::ServeBackend backend) override {
    return inner_->set_serve_backend(backend);
  }

  [[nodiscard]] std::uint64_t size() const override {
    return inner_->size();
  }
  /// Dirty lines are authoritative (the inner scheme never saw the
  /// store); everything else defers to the inner memory.
  [[nodiscard]] pram::Word peek(VarId var) const override;
  void poke(VarId var, pram::Word value) override;

  // The widened engine surface passes through, so a CachedMemory drops
  // into pram::Machine and the pipeline exactly where the bare inner did.
  [[nodiscard]] double storage_redundancy() const override {
    return inner_->storage_redundancy();
  }
  [[nodiscard]] const memmap::MemoryMap* memory_map() const override {
    return inner_->memory_map();
  }
  [[nodiscard]] std::uint32_t num_modules() const override {
    return inner_->num_modules();
  }
  [[nodiscard]] std::vector<VarId> adversarial_vars(
      std::uint32_t count, std::uint64_t seed) const override {
    return inner_->adversarial_vars(count, seed);
  }
  [[nodiscard]] pram::ReliabilityStats reliability() const override {
    return inner_->reliability();
  }

  /// Hooks forward to the inner scheme; the cache only tracks the fault
  /// clock itself when the inner applies them (replica-level), because
  /// wrapper-level injection happens OUTSIDE this wrapper and cached
  /// values are then degraded by that outer wrapper, not by us.
  bool set_fault_hooks(const pram::FaultHooks* hooks) override;

  /// Repair passes through; any relocation stamps the cache so clean
  /// lines filled before the move are invalidated on their next hit.
  pram::ScrubResult scrub(std::uint64_t budget) override;

  [[nodiscard]] std::span<const std::uint8_t> flagged_reads()
      const override {
    return flagged_;
  }

  /// One sink observes both layers (step stamps order the events).
  void set_observer(obs::Sink* sink) override {
    pram::MemorySystem::set_observer(sink);
    inner_->set_observer(sink);
  }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t capacity() const { return config_.capacity; }
  /// Lines currently held (<= capacity()).
  [[nodiscard]] std::uint64_t occupancy() const { return index_.size(); }
  [[nodiscard]] pram::MemorySystem& inner() { return *inner_; }

 protected:
  /// Snapshot ORDERING contract: dirty lines are the only up-to-date
  /// copy of their values (the inner scheme never saw the store), so
  /// they are written back to the inner scheme FIRST — before the inner
  /// state is serialized — or the checkpoint would capture stale backing
  /// state and recovery would silently lose committed writes. After the
  /// flush the body is simply the inner memory's full nested frame;
  /// restore rebuilds the inner scheme and restarts with a COLD cache
  /// (cache contents are a performance artifact, not committed state).
  void snapshot_body(pram::SnapshotSink& sink) override;
  [[nodiscard]] bool restore_body(pram::SnapshotSource& source) override;

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Line {
    VarId var{};
    pram::Word value = 0;
    std::uint64_t fill_step = 0;   ///< step the current value was installed
    std::uint64_t touch_step = 0;  ///< last step that used the line (pin)
    std::uint8_t dirty = 0;
    std::uint8_t ref = 0;  ///< clock reference bit (second chance)
  };

  enum class Staleness : std::uint8_t { kFresh, kDeadBacking, kRelocated };

  /// Reset per-step scratch (residual lists, arena, step-local tallies).
  void begin_step();
  /// Track the fault clock: bump last_death_step_ when the dead-module
  /// count grew (O(num_modules) scan, only while hooks are installed).
  void refresh_fault_epoch(std::uint64_t now);
  /// Clean-line staleness under the fault clock; may refresh fill_step
  /// when the precise per-variable map check exonerates the line.
  [[nodiscard]] Staleness classify_line(Line& line, std::uint64_t now);
  /// Probe the cache for every plan read: hits fill `out` immediately,
  /// misses (and stale-invalidated lines) queue residual reads.
  void classify_reads(std::span<const VarId> reads,
                      std::span<pram::Word> out, std::uint64_t now);
  /// Apply this step's combined writes to the cache (write-allocate);
  /// evicted dirty lines and bypassed writes queue residual writes.
  void apply_writes(std::span<const pram::VarWrite> writes,
                    std::uint64_t now);
  /// Reserve fill targets for the residual reads BEFORE serving the
  /// inner step, so fill evictions' write-backs join the same residual.
  void reserve_fills(std::uint64_t now);
  /// Scatter inner results into `out`, commit fills (flagged reads
  /// release their reserved line instead of caching a known loss), and
  /// fold inner outage flags into flagged_ / the outer context.
  void commit_results(std::span<pram::Word> out,
                      std::span<const pram::Word> residual_values,
                      std::span<const std::uint8_t> residual_flags,
                      std::size_t n_reads, pram::ServeContext* ctx);
  /// Mirror this step's stat deltas into the obs registry.
  void publish_step_stats();
  /// Assemble the residual AccessPlan (misses + write-back/bypass
  /// writes) into the private arena, grouped by the inner scheme's
  /// plan_group_of keys when it wants groups. Spans are valid until the
  /// next begin_step().
  [[nodiscard]] pram::AccessPlan build_residual_plan();

  /// Free or evictable slot, or kNoSlot when every line is pinned by the
  /// current step. Eviction write-backs queue residual writes.
  [[nodiscard]] std::uint32_t acquire_slot(std::uint64_t now);
  void install_line(std::uint32_t slot, VarId var, pram::Word value,
                    std::uint8_t dirty, std::uint64_t now);
  void drop_line(std::uint32_t slot);
  /// Queue a residual write, last-wins on duplicate variables (a bypass
  /// write may follow a same-step write-back of the same variable).
  void queue_residual_write(VarId var, pram::Word value);

  std::unique_ptr<pram::MemorySystem> inner_;
  CacheConfig config_;

  std::vector<Line> lines_;
  std::unordered_map<std::uint64_t, std::uint32_t> index_;  ///< var -> slot
  std::vector<std::uint32_t> free_;
  std::size_t hand_ = 0;  ///< clock hand over lines_

  // Fault-clock tracking (replica-level hooks only).
  const pram::FaultHooks* hooks_ = nullptr;
  std::uint64_t dead_modules_seen_ = 0;
  std::uint64_t last_death_step_ = 0;
  /// Lines with fill_step < reloc_stamp_ predate a scrub relocation.
  std::uint64_t reloc_stamp_ = 0;

  CacheStats stats_;
  CacheStats step_stats_;
  std::vector<std::uint8_t> flagged_;

  // Residual-step scratch (reused across steps; arena backs the plan).
  util::Arena arena_;
  std::vector<VarId> residual_reads_;
  std::vector<std::uint32_t> residual_to_outer_;
  std::vector<std::uint32_t> fill_slot_;
  std::vector<pram::VarWrite> residual_writes_;
  util::ScratchMap<std::uint32_t> residual_write_index_;
  /// var -> index into residual_reads_, so build_residual_plan can merge
  /// a bypassed write of a missed-read variable into one request.
  util::ScratchMap<std::uint32_t> residual_read_index_;
  std::vector<pram::Word> residual_values_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> group_scratch_;
  pram::ServeContext residual_ctx_;
};

}  // namespace pramsim::cache
