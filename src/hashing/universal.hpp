// Universal hashing (Carter-Wegman) for the Mehlhorn-Vishkin probabilistic
// baseline (the paper's §1/§2 context: MV 1984 showed granularity also
// simplifies the *hash families* needed for probabilistic simulation).
//
// Family: h_{a,b}(x) = ((a*x + b) mod p) mod M with p = 2^61 - 1 (a
// Mersenne prime, so the mod is two shifts and an add). Degree-k
// polynomial variants provide k-wise independence.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace pramsim::hashing {

/// Modular arithmetic over p = 2^61 - 1.
inline constexpr std::uint64_t kMersenne61 = (1ULL << 61) - 1;

/// (a * b) mod (2^61 - 1) without overflow.
[[nodiscard]] std::uint64_t mul_mod_m61(std::uint64_t a, std::uint64_t b);

/// x mod (2^61 - 1), branch-light.
[[nodiscard]] std::uint64_t reduce_m61(std::uint64_t x);

/// A degree-(k-1) polynomial hash: k-wise independent over [0, p).
class PolynomialHash {
 public:
  /// Sample coefficients uniformly; degree >= 1 (affine = 2-wise).
  PolynomialHash(std::uint32_t k_wise, std::uint64_t range, util::Rng& rng);

  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const;
  [[nodiscard]] std::uint64_t range() const { return range_; }
  [[nodiscard]] std::uint32_t independence() const {
    return static_cast<std::uint32_t>(coeffs_.size());
  }

 private:
  std::vector<std::uint64_t> coeffs_;  // degree+1 coefficients, a_deg != 0
  std::uint64_t range_;
};

}  // namespace pramsim::hashing
