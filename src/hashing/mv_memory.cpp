#include "hashing/mv_memory.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"

namespace pramsim::hashing {

MvMemory::MvMemory(std::uint64_t m_vars, MvMemoryConfig config)
    : config_(config),
      rng_(config.seed),
      hash_(config.k_wise, config.n_modules, rng_),
      cells_(m_vars, 0) {
  PRAMSIM_ASSERT(m_vars >= 1 && config_.n_modules >= 1);
}

std::uint32_t MvMemory::module_of(VarId var) const {
  return static_cast<std::uint32_t>(hash_(var.value()));
}

pram::MemStepCost MvMemory::step(std::span<const VarId> reads,
                                 std::span<pram::Word> read_values,
                                 std::span<const pram::VarWrite> writes) {
  PRAMSIM_ASSERT(reads.size() == read_values.size());
  // Distinct variables touched this step, per module.
  std::unordered_map<std::uint32_t, std::uint32_t> load;
  std::unordered_set<std::uint32_t> seen;
  auto touch = [&](VarId var) {
    if (seen.insert(var.value()).second) {
      ++load[module_of(var)];
    }
  };
  for (const auto var : reads) {
    PRAMSIM_ASSERT(var.index() < cells_.size());
    touch(var);
  }
  for (const auto& w : writes) {
    PRAMSIM_ASSERT(w.var.index() < cells_.size());
    touch(w.var);
  }
  std::uint32_t max_load = 0;
  for (const auto& [module, count] : load) {
    (void)module;
    max_load = std::max(max_load, count);
  }
  load_stats_.add(static_cast<double>(max_load));

  for (std::size_t i = 0; i < reads.size(); ++i) {
    read_values[i] = cells_[reads[i].index()];
  }
  for (const auto& w : writes) {
    cells_[w.var.index()] = w.value;
  }

  if (config_.rehash_threshold != 0 && max_load > config_.rehash_threshold) {
    // Draw a fresh hash function. In a real machine this migrates every
    // cell (an O(m/M + log n) expected-time global operation); we charge
    // one extra max_load of time and count the event.
    hash_ = PolynomialHash(config_.k_wise, config_.n_modules, rng_);
    ++rehashes_;
  }

  return pram::MemStepCost{.time = max_load,
                           .work = seen.size(),
                           .live_after_stage1 = 0,
                           .max_queue = max_load};
}

pram::Word MvMemory::peek(VarId var) const {
  PRAMSIM_ASSERT(var.index() < cells_.size());
  return cells_[var.index()];
}

void MvMemory::poke(VarId var, pram::Word value) {
  PRAMSIM_ASSERT(var.index() < cells_.size());
  cells_[var.index()] = value;
}

}  // namespace pramsim::hashing
