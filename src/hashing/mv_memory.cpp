#include "hashing/mv_memory.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace pramsim::hashing {

MvMemory::MvMemory(std::uint64_t m_vars, MvMemoryConfig config)
    : config_(config),
      rng_(config.seed),
      hash_(config.k_wise, config.n_modules, rng_),
      cells_(m_vars, 0) {
  PRAMSIM_ASSERT(m_vars >= 1 && config_.n_modules >= 1);
}

std::uint32_t MvMemory::module_of(VarId var) const {
  return static_cast<std::uint32_t>(hash_(var.value()));
}

pram::MemStepCost MvMemory::step(std::span<const VarId> reads,
                                 std::span<pram::Word> read_values,
                                 std::span<const pram::VarWrite> writes) {
  PRAMSIM_ASSERT(reads.size() == read_values.size());
  advance_step_clock();
  obs_count("hashed.steps");
  obs_count("hashed.reads", reads.size());
  obs_count("hashed.writes", writes.size());
  // Distinct variables touched this step, per module.
  std::unordered_map<std::uint32_t, std::uint32_t> load;
  std::unordered_set<std::uint32_t> seen;
  auto touch = [&](VarId var) {
    if (seen.insert(var.value()).second) {
      ++load[module_of(var)];
    }
  };
  for (const auto var : reads) {
    PRAMSIM_ASSERT(var.index() < cells_.size());
    touch(var);
  }
  for (const auto& w : writes) {
    PRAMSIM_ASSERT(w.var.index() < cells_.size());
    touch(w.var);
  }
  std::uint32_t max_load = 0;
  // pramlint: ordered-fold (max over per-module counts is commutative)
  for (const auto& [module, count] : load) {
    (void)module;
    max_load = std::max(max_load, count);
  }
  load_stats_.add(static_cast<double>(max_load));

  flagged_reads_.clear();
  if (hooks_ != nullptr) {
    flagged_reads_.assign(reads.size(), false);
  }
  for (std::size_t i = 0; i < reads.size(); ++i) {
    bool flagged = false;
    read_values[i] = faulted_read(reads[i], &flagged, reliability_);
    if (hooks_ != nullptr) {
      flagged_reads_[i] = flagged ? 1 : 0;
    }
  }
  for (const auto& w : writes) {
    faulted_write(w.var, w.value, reliability_);
  }

  if (config_.rehash_threshold != 0 && max_load > config_.rehash_threshold) {
    // Draw a fresh hash function. In a real machine this migrates every
    // cell (an O(m/M + log n) expected-time global operation); we charge
    // one extra max_load of time and count the event.
    hash_ = PolynomialHash(config_.k_wise, config_.n_modules, rng_);
    ++rehashes_;
    obs_event(obs::EventKind::kRehash, rehashes_, 0, max_load);
    obs_count("hashed.rehashes");
  }

  return pram::MemStepCost{.time = max_load,
                           .work = seen.size(),
                           .live_after_stage1 = 0,
                           .max_queue = max_load};
}

pram::MemStepCost MvMemory::serve(const pram::AccessPlan& plan,
                                  pram::ServeContext& ctx) {
  const std::span<pram::Word> read_values = ctx.read_values();
  PRAMSIM_ASSERT(plan.reads.size() == read_values.size());
  advance_step_clock();
  ctx.stamp_step(steps_served());
  obs_count("hashed.steps");
  obs_count("hashed.reads", plan.reads.size());
  obs_count("hashed.writes", plan.writes.size());

  if (backend_ == pram::ServeBackend::kGroupParallel && plan.grouped()) {
    return serve_groups_parallel(plan, ctx);
  }

  // The plan's requests are the distinct variables of the step: count
  // them straight into the dense per-module load array (same numbers the
  // legacy unordered_map produced, same max taken over touched modules).
  load_scratch_.resize(config_.n_modules, 0);
  touched_scratch_.clear();
  std::uint32_t max_load = 0;
  for (const auto& request : plan.requests) {
    PRAMSIM_ASSERT(request.var.index() < cells_.size());
    const std::uint32_t module = module_of(request.var);
    if (load_scratch_[module]++ == 0) {
      touched_scratch_.push_back(module);
    }
    max_load = std::max(max_load, load_scratch_[module]);
  }
  for (const auto module : touched_scratch_) {
    load_scratch_[module] = 0;
  }
  load_stats_.add(static_cast<double>(max_load));

  flagged_reads_.clear();
  if (hooks_ != nullptr) {
    flagged_reads_.assign(plan.reads.size(), 0);
  }
  for (std::size_t i = 0; i < plan.reads.size(); ++i) {
    bool flagged = false;
    read_values[i] = faulted_read(plan.reads[i], &flagged, reliability_);
    if (hooks_ != nullptr) {
      flagged_reads_[i] = flagged ? 1 : 0;
    }
  }
  for (const auto& w : plan.writes) {
    faulted_write(w.var, w.value, reliability_);
  }

  if (config_.rehash_threshold != 0 && max_load > config_.rehash_threshold) {
    hash_ = PolynomialHash(config_.k_wise, config_.n_modules, rng_);
    ++rehashes_;
    obs_event(obs::EventKind::kRehash, rehashes_, 0, max_load);
    obs_count("hashed.rehashes");
  }
  adopt_legacy_flags(ctx);

  return pram::MemStepCost{.time = max_load,
                           .work = plan.requests.size(),
                           .live_after_stage1 = 0,
                           .max_queue = max_load};
}

pram::MemStepCost MvMemory::serve_groups_parallel(
    const pram::AccessPlan& plan, pram::ServeContext& ctx) {
  const std::span<pram::Word> read_values = ctx.read_values();
  const std::size_t n_reads = plan.reads.size();
  if (hooks_ != nullptr) {
    ctx.enable_flags();
  }

  // Plan groups ARE the touched modules (plan_group_of = module_of), so
  // a group's load is its size — the dense counting array disappears —
  // and groups touch disjoint cells, so the value loops fan freely: a
  // read+write of one variable is one request inside one group, served
  // read-before-write by that group's worker.
  const pram::GroupRange groups(plan);
  util::Executor* executor = ctx.executor();
  const std::size_t workers =
      executor != nullptr
          ? executor->plan_workers(groups.size(), plan.requests.size())
          : 1;
  const std::size_t chunk = (groups.size() + workers - 1) / workers;
  chunk_scratch_.assign(workers, {});

  auto body = [&](std::size_t g_lo, std::size_t g_hi) {
    ChunkTally& tally = chunk_scratch_[g_lo / chunk];
    for (std::size_t g = g_lo; g < g_hi; ++g) {
      const auto unit = groups[g];
      tally.max_load = std::max(
          tally.max_load, static_cast<std::uint32_t>(unit.requests.size()));
      for (const std::uint32_t j : unit.requests) {
        PRAMSIM_ASSERT(plan.requests[j].var.index() < cells_.size());
        // Requests lead with the reads in plan order, so a request index
        // below n_reads IS its read index.
        if (j < n_reads) {
          bool flagged = false;
          read_values[j] =
              faulted_read(plan.reads[j], &flagged, tally.stats);
          if (flagged) {
            ctx.flag_read(j);
          }
        }
        const std::uint32_t w = plan.request_write[j];
        if (w != pram::AccessPlan::kNone) {
          faulted_write(plan.writes[w].var, plan.writes[w].value,
                        tally.stats);
        }
      }
    }
  };
  if (executor != nullptr && workers > 1) {
    executor->run_with(groups.size(), workers, body);
  } else {
    body(0, groups.size());
  }

  // Deterministic post-merge in chunk order: counters are commutative
  // sums and the load reduction is a max, so any worker count folds to
  // the same totals.
  std::uint32_t max_load = 0;
  for (const auto& tally : chunk_scratch_) {
    reliability_.merge(tally.stats);
    max_load = std::max(max_load, tally.max_load);
  }
  load_stats_.add(static_cast<double>(max_load));
  flagged_reads_.assign(ctx.flags().begin(), ctx.flags().end());

  return pram::MemStepCost{.time = max_load,
                           .work = plan.requests.size(),
                           .live_after_stage1 = 0,
                           .max_queue = max_load};
}

pram::Word MvMemory::faulted_read(VarId var, bool* flagged,
                                  pram::ReliabilityStats& stats) {
  if (hooks_ == nullptr) {
    return cells_[var.index()];
  }
  const std::uint64_t step = steps_served();
  ++stats.reads_served;
  if (hooks_->module_dead(ModuleId(module_of(var)), step)) {
    ++stats.uncorrectable;
    ++stats.erasures_skipped;
    ++stats.units_faulty;
    *flagged = true;
    return 0;
  }
  pram::Word value = cells_[var.index()];
  pram::Word stuck = 0;
  if (hooks_->stuck_at(var.index(), 0, step, stuck)) {
    ++stats.units_faulty;
    value = stuck;  // single copy: nothing to out-vote the stuck cell
  }
  return value;
}

void MvMemory::faulted_write(VarId var, pram::Word value,
                             pram::ReliabilityStats& stats) {
  if (hooks_ != nullptr) {
    const std::uint64_t step = steps_served();
    if (hooks_->module_dead(ModuleId(module_of(var)), step)) {
      ++stats.writes_dropped;
      return;
    }
    if (hooks_->corrupt_write(var.index(), 0, step, step, value)) {
      ++stats.corrupt_stores;
    }
  }
  cells_[var.index()] = value;
}

std::vector<VarId> MvMemory::adversarial_vars(std::uint32_t count,
                                              std::uint64_t seed) const {
  const std::uint64_t m = cells_.size();
  count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(count, m));
  if (count == 0) {
    return {};
  }
  // Scan a window of the address space (expected count * M preimage
  // tries), bucketing by module, until one module collects `count`
  // preimages. The seed only rotates the scan origin: the attack is
  // deterministic given the hash.
  const std::uint64_t scan_cap = std::min<std::uint64_t>(
      m, 1024 + 8ull * count * config_.n_modules);
  const std::uint64_t origin = util::SplitMix64(seed).next() % m;
  std::unordered_map<std::uint32_t, std::vector<VarId>> buckets;
  std::size_t best = 0;
  std::uint32_t best_module = 0;
  for (std::uint64_t i = 0; i < scan_cap; ++i) {
    const VarId var(static_cast<std::uint32_t>((origin + i) % m));
    auto& bucket = buckets[module_of(var)];
    bucket.push_back(var);
    if (bucket.size() >= count) {
      return bucket;
    }
    if (bucket.size() > best) {
      best = bucket.size();
      best_module = module_of(var);
    }
  }
  return buckets[best_module];
}

pram::Word MvMemory::peek(VarId var) const {
  PRAMSIM_ASSERT(var.index() < cells_.size());
  if (hooks_ != nullptr) {
    if (hooks_->module_dead(ModuleId(module_of(var)), steps_served())) {
      return 0;
    }
    pram::Word stuck = 0;
    if (hooks_->stuck_at(var.index(), 0, steps_served(), stuck)) {
      return stuck;
    }
  }
  return cells_[var.index()];
}

void MvMemory::poke(VarId var, pram::Word value) {
  PRAMSIM_ASSERT(var.index() < cells_.size());
  // Out-of-band initialization still lands on faulty hardware: a dead
  // module never learns the value.
  faulted_write(var, value, reliability_);
}

}  // namespace pramsim::hashing
