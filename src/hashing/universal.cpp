#include "hashing/universal.hpp"

#include "util/assert.hpp"

namespace pramsim::hashing {

std::uint64_t reduce_m61(std::uint64_t x) {
  std::uint64_t r = (x & kMersenne61) + (x >> 61);
  if (r >= kMersenne61) {
    r -= kMersenne61;
  }
  return r;
}

std::uint64_t mul_mod_m61(std::uint64_t a, std::uint64_t b) {
  const __uint128_t prod = static_cast<__uint128_t>(a) * b;
  const std::uint64_t lo = static_cast<std::uint64_t>(prod) & kMersenne61;
  const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  return reduce_m61(lo + hi);
}

PolynomialHash::PolynomialHash(std::uint32_t k_wise, std::uint64_t range,
                               util::Rng& rng)
    : coeffs_(k_wise), range_(range) {
  PRAMSIM_ASSERT(k_wise >= 2);
  PRAMSIM_ASSERT(range >= 1);
  for (auto& coeff : coeffs_) {
    coeff = rng.below(kMersenne61);
  }
  // Leading coefficient nonzero so the polynomial has full degree.
  if (coeffs_.back() == 0) {
    coeffs_.back() = 1;
  }
}

std::uint64_t PolynomialHash::operator()(std::uint64_t x) const {
  const std::uint64_t xr = reduce_m61(x);
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = reduce_m61(mul_mod_m61(acc, xr) + coeffs_[i]);
  }
  return acc % range_;
}

}  // namespace pramsim::hashing
