// MvMemory: the Mehlhorn-Vishkin probabilistic baseline — one copy per
// variable, placed by a universal hash over M modules. Per-step time is
// the maximum number of distinct requested variables hashing to one
// module (each module serves one request per round). No worst-case
// guarantee: an adversary who knows the hash can force n rounds, which is
// exactly the contrast with the paper's deterministic scheme.
//
// An optional rehash policy re-draws the hash function (and conceptually
// migrates memory) whenever a step exceeds a load threshold; the count of
// rehashes is reported so benches can show the hidden cost.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hashing/universal.hpp"
#include "pram/memory_system.hpp"
#include "util/stats.hpp"

namespace pramsim::hashing {

struct MvMemoryConfig {
  std::uint32_t n_modules = 64;
  std::uint32_t k_wise = 2;  ///< independence of the hash family
  std::uint64_t seed = 1;
  /// Rehash when a step's max module load exceeds this (0 = never).
  std::uint32_t rehash_threshold = 0;
};

class MvMemory final : public pram::MemorySystem {
 public:
  MvMemory(std::uint64_t m_vars, MvMemoryConfig config);

  pram::MemStepCost step(std::span<const VarId> reads,
                         std::span<pram::Word> read_values,
                         std::span<const pram::VarWrite> writes) override;

  /// Native plan path: the plan's request list is already the distinct
  /// variable union, so the per-step dedup set disappears and module
  /// loads accumulate into a dense per-instance scratch array instead of
  /// a fresh unordered_map. Bit-identical to step() in both values and
  /// cost. Under ServeBackend::kGroupParallel the plan's groups ARE the
  /// touched modules (plan_group_of = module_of), so a group's load is
  /// its size and the value loops fan across ctx.executor()'s workers
  /// with per-chunk telemetry folded in chunk order.
  pram::MemStepCost serve(const pram::AccessPlan& plan,
                          pram::ServeContext& ctx) override;

  /// Group key = the copy's module. ONLY exposed on the group-parallel
  /// backend, which requires the rehash policy off: a redrawable hash
  /// must not leak into plans built ahead of time (set_serve_backend
  /// refuses kGroupParallel when rehash_threshold != 0).
  [[nodiscard]] std::uint64_t plan_group_of(VarId var) const override {
    return module_of(var);
  }
  [[nodiscard]] bool wants_plan_groups() const override {
    return backend_ == pram::ServeBackend::kGroupParallel;
  }
  [[nodiscard]] std::uint32_t capabilities() const override {
    return config_.rehash_threshold == 0
               ? std::uint32_t{pram::kGroupParallel}
               : std::uint32_t{0};
  }
  pram::ServeBackend set_serve_backend(pram::ServeBackend backend) override {
    backend_ = (capabilities() & pram::kGroupParallel) != 0
                   ? backend
                   : pram::ServeBackend::kSerial;
    return backend_;
  }

  [[nodiscard]] std::uint64_t size() const override { return cells_.size(); }
  [[nodiscard]] pram::Word peek(VarId var) const override;
  void poke(VarId var, pram::Word value) override;
  [[nodiscard]] std::uint32_t num_modules() const override {
    return config_.n_modules;
  }
  /// Single-copy storage has nothing to vote with: a dead module loses
  /// its whole address range (uncorrectable), a stuck or corrupted cell
  /// is silently wrong — the unreplicated baseline's measurable
  /// disadvantage under adversity.
  bool set_fault_hooks(const pram::FaultHooks* hooks) override {
    hooks_ = hooks;
    return true;
  }
  [[nodiscard]] pram::ReliabilityStats reliability() const override {
    return reliability_;
  }
  [[nodiscard]] std::span<const std::uint8_t> flagged_reads()
      const override {
    return flagged_reads_;
  }
  /// The known-hash preimage attack: the adversary (who can read the
  /// hash function out of the machine) returns `count` distinct
  /// variables colliding on one module, forcing a serial step. This is
  /// the worst-case traffic the scheme's expected-case analysis excludes.
  [[nodiscard]] std::vector<VarId> adversarial_vars(
      std::uint32_t count, std::uint64_t seed) const override;

  [[nodiscard]] std::uint32_t module_of(VarId var) const;
  [[nodiscard]] std::uint64_t rehashes() const { return rehashes_; }
  [[nodiscard]] const util::RunningStats& load_stats() const {
    return load_stats_;
  }

 private:
  /// Per-chunk telemetry slot for the group-parallel value phase, folded
  /// in chunk order after the fan-out.
  struct ChunkTally {
    pram::ReliabilityStats stats;
    std::uint32_t max_load = 0;
  };

  /// Read the single copy under fault injection (dead module ->
  /// uncorrectable zero with *flagged set, stuck cell -> silently wrong
  /// stuck value). Stats accrue into `stats` (chunk-local under the
  /// group-parallel backend, reliability_ otherwise).
  [[nodiscard]] pram::Word faulted_read(VarId var, bool* flagged,
                                        pram::ReliabilityStats& stats);
  /// Commit a write unless the cell's module is dead; the committed word
  /// may be silently corrupted.
  void faulted_write(VarId var, pram::Word value,
                     pram::ReliabilityStats& stats);
  /// The group-parallel value phase (plan groups = modules).
  pram::MemStepCost serve_groups_parallel(const pram::AccessPlan& plan,
                                          pram::ServeContext& ctx);

  MvMemoryConfig config_;
  util::Rng rng_;
  PolynomialHash hash_;
  std::vector<pram::Word> cells_;
  pram::ServeBackend backend_ = pram::ServeBackend::kSerial;
  /// serve() scratch: per-module distinct-request counts plus the list of
  /// touched modules (for O(touched) reset), reused across steps.
  std::vector<std::uint32_t> load_scratch_;
  std::vector<std::uint32_t> touched_scratch_;
  std::vector<ChunkTally> chunk_scratch_;
  std::uint64_t rehashes_ = 0;
  util::RunningStats load_stats_;  ///< per-step max module load
  const pram::FaultHooks* hooks_ = nullptr;  ///< non-owning; null = healthy
  pram::ReliabilityStats reliability_;
  std::vector<std::uint8_t> flagged_reads_;  ///< last step's outage flags
};

}  // namespace pramsim::hashing
