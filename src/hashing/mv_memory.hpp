// MvMemory: the Mehlhorn-Vishkin probabilistic baseline — one copy per
// variable, placed by a universal hash over M modules. Per-step time is
// the maximum number of distinct requested variables hashing to one
// module (each module serves one request per round). No worst-case
// guarantee: an adversary who knows the hash can force n rounds, which is
// exactly the contrast with the paper's deterministic scheme.
//
// An optional rehash policy re-draws the hash function (and conceptually
// migrates memory) whenever a step exceeds a load threshold; the count of
// rehashes is reported so benches can show the hidden cost.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hashing/universal.hpp"
#include "pram/memory_system.hpp"
#include "util/stats.hpp"

namespace pramsim::hashing {

struct MvMemoryConfig {
  std::uint32_t n_modules = 64;
  std::uint32_t k_wise = 2;  ///< independence of the hash family
  std::uint64_t seed = 1;
  /// Rehash when a step's max module load exceeds this (0 = never).
  std::uint32_t rehash_threshold = 0;
};

class MvMemory final : public pram::MemorySystem {
 public:
  MvMemory(std::uint64_t m_vars, MvMemoryConfig config);

  pram::MemStepCost step(std::span<const VarId> reads,
                         std::span<pram::Word> read_values,
                         std::span<const pram::VarWrite> writes) override;

  [[nodiscard]] std::uint64_t size() const override { return cells_.size(); }
  [[nodiscard]] pram::Word peek(VarId var) const override;
  void poke(VarId var, pram::Word value) override;

  [[nodiscard]] std::uint32_t module_of(VarId var) const;
  [[nodiscard]] std::uint64_t rehashes() const { return rehashes_; }
  [[nodiscard]] const util::RunningStats& load_stats() const {
    return load_stats_;
  }

 private:
  MvMemoryConfig config_;
  util::Rng rng_;
  PolynomialHash hash_;
  std::vector<pram::Word> cells_;
  std::uint64_t rehashes_ = 0;
  util::RunningStats load_stats_;  ///< per-step max module load
};

}  // namespace pramsim::hashing
