#include "majority/copy_store.hpp"

namespace pramsim::majority {

CopyStore::CopyStore(std::uint64_t m_vars, std::uint32_t redundancy)
    : m_vars_(m_vars), r_(redundancy) {
  PRAMSIM_ASSERT(m_vars >= 1);
  PRAMSIM_ASSERT(redundancy >= 1 && redundancy <= 64);
}

Copy CopyStore::freshest(VarId var, std::uint64_t mask) const {
  PRAMSIM_ASSERT(mask != 0);
  Copy best;
  bool found = false;
  for (std::uint32_t i = 0; i < r_; ++i) {
    if ((mask >> i) & 1ULL) {
      const Copy& candidate = at(var, i);
      if (!found || candidate.stamp > best.stamp) {
        best = candidate;
        found = true;
      }
    }
  }
  PRAMSIM_ASSERT(found);
  return best;
}

Copy CopyStore::ground_truth(VarId var) const {
  return freshest(var, r_ >= 64 ? ~0ULL : ((1ULL << r_) - 1));
}

void CopyStore::corrupt(VarId var, std::uint32_t copy,
                        pram::Word bogus_value) {
  PRAMSIM_ASSERT(var.index() < m_vars_ && copy < r_);
  row(var)[copy].value = bogus_value;
}

CopyStore::VoteOutcome CopyStore::vote(VarId var,
                                       std::span<const ModuleId> modules,
                                       std::uint64_t step,
                                       const pram::FaultHooks& hooks) const {
  PRAMSIM_ASSERT(modules.size() == r_);
  VoteOutcome outcome;
  // r <= 64 candidates: count multiplicities quadratically, no allocation.
  Copy ballots[64];
  for (std::uint32_t i = 0; i < r_; ++i) {
    if (hooks.module_dead(modules[i], step)) {
      ++outcome.erased;
      continue;
    }
    Copy ballot = at(var, i);
    pram::Word stuck = 0;
    if (hooks.stuck_at(var.index(), i, step, stuck)) {
      ballot.value = stuck;  // the stamp it claims is whatever was stored
    }
    ballots[outcome.survivors++] = ballot;
  }
  if (outcome.survivors == 0) {
    return outcome;  // winner stays {0, 0}; caller flags uncorrectable
  }
  std::uint32_t best_count = 0;
  for (std::uint32_t i = 0; i < outcome.survivors; ++i) {
    std::uint32_t count = 0;
    for (std::uint32_t j = 0; j < outcome.survivors; ++j) {
      if (ballots[j].value == ballots[i].value &&
          ballots[j].stamp == ballots[i].stamp) {
        ++count;
      }
    }
    const bool wins =
        count > best_count ||
        (count == best_count &&
         (ballots[i].stamp > outcome.winner.stamp ||
          (ballots[i].stamp == outcome.winner.stamp &&
           ballots[i].value < outcome.winner.value)));
    if (wins) {
      best_count = count;
      outcome.winner = ballots[i];
    }
  }
  outcome.dissenting = outcome.survivors - best_count;
  return outcome;
}

std::uint32_t CopyStore::store_all(VarId var,
                                   std::span<const ModuleId> modules,
                                   pram::Word value, std::uint64_t stamp,
                                   std::uint64_t reroll, std::uint64_t step,
                                   const pram::FaultHooks& hooks,
                                   std::uint64_t& corrupt_stores) {
  PRAMSIM_ASSERT(modules.size() == r_);
  std::uint32_t dropped = 0;
  for (std::uint32_t i = 0; i < r_; ++i) {
    if (hooks.module_dead(modules[i], step)) {
      ++dropped;
      continue;
    }
    pram::Word committed = value;
    if (hooks.corrupt_write(var.index(), i, reroll, step, committed)) {
      ++corrupt_stores;
    }
    write(var, i, committed, stamp);
  }
  return dropped;
}

std::uint32_t CopyStore::store_all_prepared(
    VarId var, std::span<const ModuleId> modules, pram::Word value,
    std::uint64_t stamp, std::uint64_t reroll, std::uint64_t step,
    const pram::FaultHooks& hooks, std::uint64_t& corrupt_stores) {
  PRAMSIM_ASSERT(modules.size() == r_);
  std::uint32_t dropped = 0;
  for (std::uint32_t i = 0; i < r_; ++i) {
    if (hooks.module_dead(modules[i], step)) {
      ++dropped;
      continue;
    }
    pram::Word committed = value;
    if (hooks.corrupt_write(var.index(), i, reroll, step, committed)) {
      ++corrupt_stores;
    }
    write_prepared(var, i, committed, stamp);
  }
  return dropped;
}

}  // namespace pramsim::majority
