#include "majority/copy_store.hpp"

#include <bit>
#include <cstring>

namespace pramsim::majority {

CopyStore::CopyStore(std::uint64_t m_vars, std::uint32_t redundancy,
                     std::uint32_t region_words)
    : m_vars_(m_vars),
      r_(redundancy),
      w_(region_words),
      n_regions_((m_vars + region_words - 1) / region_words) {
  PRAMSIM_ASSERT(m_vars >= 1);
  PRAMSIM_ASSERT(redundancy >= 1 && redundancy <= 64);
  PRAMSIM_ASSERT(region_words >= 1);
}

Copy CopyStore::freshest(VarId var, std::uint64_t mask) const {
  PRAMSIM_ASSERT(mask != 0);
  const Copy* col = column(var);
  if (col == nullptr) {
    return Copy{};  // untouched region: every selected copy reads {0, 0}
  }
  Copy best;
  bool found = false;
  for (std::uint32_t i = 0; i < r_; ++i) {
    if ((mask >> i) & 1ULL) {
      const Copy& candidate = col[static_cast<std::size_t>(i) * w_];
      if (!found || candidate.stamp > best.stamp) {
        best = candidate;
        found = true;
      }
    }
  }
  PRAMSIM_ASSERT(found);
  return best;
}

Copy CopyStore::ground_truth(VarId var) const {
  return freshest(var, r_ >= 64 ? ~0ULL : ((1ULL << r_) - 1));
}

void CopyStore::corrupt(VarId var, std::uint32_t copy,
                        pram::Word bogus_value) {
  PRAMSIM_ASSERT(var.index() < m_vars_ && copy < r_);
  row(var)[static_cast<std::size_t>(copy) * w_ + var.index() % w_].value =
      bogus_value;
}

CopyStore::VoteOutcome CopyStore::vote(VarId var,
                                       std::span<const ModuleId> modules,
                                       std::uint64_t step,
                                       const pram::FaultHooks& hooks) const {
  PRAMSIM_ASSERT(modules.size() == r_);
  VoteOutcome outcome;
  const Copy* col = column(var);  // one row lookup for all r ballots
  // r <= 64 candidates: count multiplicities quadratically, no allocation.
  Copy ballots[64];
  for (std::uint32_t i = 0; i < r_; ++i) {
    if (hooks.module_dead(modules[i], step)) {
      ++outcome.erased;
      continue;
    }
    Copy ballot = col != nullptr ? col[static_cast<std::size_t>(i) * w_]
                                 : Copy{};
    pram::Word stuck = 0;
    if (hooks.stuck_at(var.index(), i, step, stuck)) {
      ballot.value = stuck;  // the stamp it claims is whatever was stored
    }
    ballots[outcome.survivors++] = ballot;
  }
  if (outcome.survivors == 0) {
    return outcome;  // winner stays {0, 0}; caller flags uncorrectable
  }
  std::uint32_t best_count = 0;
  for (std::uint32_t i = 0; i < outcome.survivors; ++i) {
    std::uint32_t count = 0;
    for (std::uint32_t j = 0; j < outcome.survivors; ++j) {
      if (ballots[j].value == ballots[i].value &&
          ballots[j].stamp == ballots[i].stamp) {
        ++count;
      }
    }
    const bool wins =
        count > best_count ||
        (count == best_count &&
         (ballots[i].stamp > outcome.winner.stamp ||
          (ballots[i].stamp == outcome.winner.stamp &&
           ballots[i].value < outcome.winner.value)));
    if (wins) {
      best_count = count;
      outcome.winner = ballots[i];
    }
  }
  outcome.dissenting = outcome.survivors - best_count;
  return outcome;
}

std::int32_t CopyStore::vote_region(std::uint64_t region,
                                    std::uint64_t live_mask,
                                    std::uint32_t* dissenting) const {
  PRAMSIM_ASSERT(region < n_regions_);
  live_mask &= r_ >= 64 ? ~0ULL : ((1ULL << r_) - 1);
  if (dissenting != nullptr) {
    *dissenting = 0;
  }
  const auto live = static_cast<std::uint32_t>(std::popcount(live_mask));
  if (live == 0) {
    return kNoRegionMajority;  // no survivors: caller flags uncorrectable
  }
  const auto it = copies_.find(region);
  if (it == copies_.end()) {
    // Untouched region: every live copy reads the initial {0, 0} span —
    // unanimous by definition; the lowest live copy represents it.
    return std::countr_zero(live_mask);
  }
  const Copy* data = it->second.data();
  const std::size_t slice_bytes = sizeof(Copy) * w_;
  const std::uint32_t majority = live / 2 + 1;
  // Only the first live - majority + 1 live copies can lead a strict
  // majority (every later baseline was already compared against them),
  // so the candidate loop is bounded exactly like hailburst's.
  std::uint32_t considered = 0;
  for (std::uint32_t i = 0; i < r_ && considered <= live - majority; ++i) {
    if (((live_mask >> i) & 1ULL) == 0) {
      continue;
    }
    ++considered;
    const Copy* base = data + static_cast<std::size_t>(i) * w_;
    std::uint32_t matches = 1;
    std::uint32_t remaining = live - considered;  // live copies after i
    for (std::uint32_t j = i + 1; j < r_; ++j) {
      if (((live_mask >> j) & 1ULL) == 0) {
        continue;
      }
      if (std::memcmp(base, data + static_cast<std::size_t>(j) * w_,
                      slice_bytes) == 0) {
        ++matches;
        if (dissenting == nullptr && matches >= majority) {
          return static_cast<std::int32_t>(i);  // early exit: majority holds
        }
      }
      --remaining;
      if (matches + remaining < majority) {
        break;  // this baseline can no longer reach a strict majority
      }
    }
    if (matches >= majority) {
      if (dissenting != nullptr) {
        *dissenting = live - matches;
      }
      return static_cast<std::int32_t>(i);
    }
  }
  return kNoRegionMajority;
}

void CopyStore::copy_region(std::uint64_t region, std::uint32_t from,
                            std::uint32_t to) {
  PRAMSIM_ASSERT(region < n_regions_ && from < r_ && to < r_);
  if (from == to) {
    return;
  }
  const auto it = copies_.find(region);
  if (it == copies_.end()) {
    return;  // untouched: all copies already read the initial span
  }
  Copy* data = it->second.data();
  std::memcpy(data + static_cast<std::size_t>(to) * w_,
              data + static_cast<std::size_t>(from) * w_, sizeof(Copy) * w_);
}

std::uint32_t CopyStore::store_all(VarId var,
                                   std::span<const ModuleId> modules,
                                   pram::Word value, std::uint64_t stamp,
                                   std::uint64_t reroll, std::uint64_t step,
                                   const pram::FaultHooks& hooks,
                                   std::uint64_t& corrupt_stores) {
  PRAMSIM_ASSERT(modules.size() == r_);
  std::uint32_t dropped = 0;
  Copy* col = nullptr;  // materialized lazily: a write whose every module
                        // is dead must leave the region untouched
  for (std::uint32_t i = 0; i < r_; ++i) {
    if (hooks.module_dead(modules[i], step)) {
      ++dropped;
      continue;
    }
    pram::Word committed = value;
    if (hooks.corrupt_write(var.index(), i, reroll, step, committed)) {
      ++corrupt_stores;
    }
    if (col == nullptr) {
      col = row(var).data() + var.index() % w_;
    }
    col[static_cast<std::size_t>(i) * w_] = Copy{committed, stamp};
  }
  return dropped;
}

std::uint32_t CopyStore::store_all_prepared(
    VarId var, std::span<const ModuleId> modules, pram::Word value,
    std::uint64_t stamp, std::uint64_t reroll, std::uint64_t step,
    const pram::FaultHooks& hooks, std::uint64_t& corrupt_stores) {
  PRAMSIM_ASSERT(modules.size() == r_);
  std::uint32_t dropped = 0;
  for (std::uint32_t i = 0; i < r_; ++i) {
    if (hooks.module_dead(modules[i], step)) {
      ++dropped;
      continue;
    }
    pram::Word committed = value;
    if (hooks.corrupt_write(var.index(), i, reroll, step, committed)) {
      ++corrupt_stores;
    }
    write_prepared(var, i, committed, stamp);
  }
  return dropped;
}

}  // namespace pramsim::majority
