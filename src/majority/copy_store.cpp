#include "majority/copy_store.hpp"

namespace pramsim::majority {

CopyStore::CopyStore(std::uint64_t m_vars, std::uint32_t redundancy)
    : m_vars_(m_vars), r_(redundancy) {
  PRAMSIM_ASSERT(m_vars >= 1);
  PRAMSIM_ASSERT(redundancy >= 1 && redundancy <= 64);
}

Copy CopyStore::freshest(VarId var, std::uint64_t mask) const {
  PRAMSIM_ASSERT(mask != 0);
  Copy best;
  bool found = false;
  for (std::uint32_t i = 0; i < r_; ++i) {
    if ((mask >> i) & 1ULL) {
      const Copy& candidate = at(var, i);
      if (!found || candidate.stamp > best.stamp) {
        best = candidate;
        found = true;
      }
    }
  }
  PRAMSIM_ASSERT(found);
  return best;
}

Copy CopyStore::ground_truth(VarId var) const {
  return freshest(var, r_ >= 64 ? ~0ULL : ((1ULL << r_) - 1));
}

void CopyStore::corrupt(VarId var, std::uint32_t copy,
                        pram::Word bogus_value) {
  PRAMSIM_ASSERT(var.index() < m_vars_ && copy < r_);
  row(var)[copy].value = bogus_value;
}

}  // namespace pramsim::majority
