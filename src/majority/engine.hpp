// AccessEngine: the cost/scheduling half of a replicated-memory scheme.
//
// Given one P-RAM step's distinct-variable requests, an engine decides
// which >= c copies of each variable get accessed and how much simulated
// time that took on its machine model:
//
//   * DmmpcEngine (here)          - protocol rounds on the DMMPC
//                                   (complete bipartite, Theorem 2);
//   * core::MotEngine             - network cycles on a 2DMOT (Theorem 3,
//                                   the LPP baseline, and the crossbar).
//
// MajorityMemory combines any engine with the timestamped CopyStore to
// form a full pram::MemorySystem.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "majority/scheduler.hpp"
#include "memmap/memory_map.hpp"

namespace pramsim::majority {

/// Per-step protocol telemetry common to all engines.
struct ProtocolStats {
  std::uint64_t phases = 0;
  std::uint64_t stage1_phases = 0;
  std::uint64_t stage2_phases = 0;
  std::uint64_t live_after_stage1 = 0;
  std::uint64_t max_queue = 0;  ///< peak per-module / per-edge contention
  /// Live-variable count after each round/phase (the decay curve whose
  /// geometric shape is the Upfal-Wigderson progress lemma in action).
  std::vector<std::uint64_t> live_per_phase;
};

struct EngineResult {
  std::uint64_t time = 0;  ///< rounds (DMMPC) or network cycles (DMBDN)
  std::uint64_t work = 0;  ///< copy accesses performed
  std::vector<std::uint64_t> accessed_mask;  ///< per request, >= c bits set
  ProtocolStats stats;
};

class AccessEngine {
 public:
  virtual ~AccessEngine() = default;
  AccessEngine() = default;
  AccessEngine(const AccessEngine&) = delete;
  AccessEngine& operator=(const AccessEngine&) = delete;

  /// Requests must hold distinct variables.
  [[nodiscard]] virtual EngineResult run_step(
      std::span<const VarRequest> requests) = 0;

  /// In-place variant for the hot serve path: reuses `out`'s buffers
  /// across steps (same results as run_step). Engines with per-instance
  /// scratch override this; the default copies through run_step().
  virtual void run_step_into(std::span<const VarRequest> requests,
                             EngineResult& out) {
    out = run_step(requests);
  }

  [[nodiscard]] virtual const memmap::MemoryMap& map() const = 0;

  /// Simulating processors driving the protocol (cluster assignment of
  /// requests whose requester is synthesized, e.g. by MajorityMemory).
  [[nodiscard]] virtual std::uint32_t n_processors() const { return 1; }
};

/// Theorem 2 engine: the two-stage cluster protocol under unit module
/// bandwidth, zero-latency interconnect (complete bipartite K_{n,M}).
class DmmpcEngine final : public AccessEngine {
 public:
  DmmpcEngine(std::shared_ptr<const memmap::MemoryMap> map,
              SchedulerConfig config);

  [[nodiscard]] EngineResult run_step(
      std::span<const VarRequest> requests) override;

  /// Allocation-free after warm-up: schedules into per-instance scratch.
  void run_step_into(std::span<const VarRequest> requests,
                     EngineResult& out) override;

  [[nodiscard]] const memmap::MemoryMap& map() const override {
    return *map_;
  }
  [[nodiscard]] std::uint32_t n_processors() const override {
    return config_.n_processors;
  }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  std::shared_ptr<const memmap::MemoryMap> map_;
  SchedulerConfig config_;
  ScheduleResult schedule_scratch_;
  ScheduleScratch scratch_;
};

}  // namespace pramsim::majority
