#include "majority/scheduler.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/assert.hpp"

namespace pramsim::majority {

namespace {

/// One contention round: every request in `active` probes its unaccessed
/// copies; each module serves one probe (lowest (var, copy) wins; ties
/// are resolved identically on every platform since the claim map
/// iterates in insertion order). Returns number of probes served;
/// updates the scratch request state and the live-request count.
std::uint64_t contention_round(std::span<const VarRequest> requests,
                               ScheduleScratch& s,
                               std::span<const std::uint32_t> active,
                               std::uint32_t r, std::uint32_t c,
                               std::uint64_t& live,
                               std::uint64_t& max_module_queue) {
  s.claims.clear();
  for (const auto idx : active) {
    if (s.dead[idx]) {
      continue;
    }
    const std::span<const ModuleId> copies{s.copies.data() +
                                               static_cast<std::size_t>(idx) * r,
                                           r};
    for (std::uint32_t i = 0; i < r; ++i) {
      if ((s.mask[idx] >> i) & 1ULL) {
        continue;  // already accessed
      }
      const std::uint32_t module = copies[i].value();
      auto [claim, fresh] =
          s.claims.try_emplace(module, ScheduleScratch::Claim{idx, i, 1});
      if (!fresh) {
        ++claim->queue;
        const bool better =
            requests[idx].var.value() < requests[claim->request].var.value() ||
            (requests[idx].var.value() ==
                 requests[claim->request].var.value() &&
             i < claim->copy);
        if (better) {
          claim->request = idx;
          claim->copy = i;
        }
      }
    }
  }
  std::uint64_t served = 0;
  for (const auto slot : s.claims.touched()) {
    const ScheduleScratch::Claim& winner = s.claims.value_at(slot);
    max_module_queue = std::max<std::uint64_t>(max_module_queue,
                                               winner.queue);
    const std::uint32_t idx = winner.request;
    if (s.dead[idx]) {
      continue;  // died earlier this same round via another module
    }
    s.mask[idx] |= (1ULL << winner.copy);
    ++s.accessed[idx];
    ++served;
    if (s.accessed[idx] >= c) {
      s.dead[idx] = 1;
      --live;
    }
  }
  return served;
}

}  // namespace

namespace {

// ---------------------------------------------------------------------
// Legacy scheduler: the original throwaway-container implementation,
// kept verbatim as the step()-adapter baseline that bench_throughput
// contrasts with the arena path below. It rebuilds per-request copy
// vectors and a fresh per-round unordered_map of module claims every
// call. Results can differ from schedule_step_into only in deterministic
// tie-break detail (claim iteration order); both always access >= c
// copies per request, which is all the value protocol relies on.
// ---------------------------------------------------------------------

struct LegacyRequestState {
  VarId var;
  std::uint32_t cluster = 0;
  std::uint32_t member = 0;   ///< index within cluster
  std::uint32_t accessed = 0;
  std::uint64_t mask = 0;
  bool dead = false;
  std::vector<ModuleId> copies;
};

/// One contention round over throwaway containers (see contention_round
/// above for the protocol itself).
std::uint64_t legacy_contention_round(std::vector<LegacyRequestState>& states,
                                      std::span<const std::uint32_t> active,
                                      std::uint32_t c,
                                      std::uint64_t& max_module_queue) {
  struct Probe {
    std::uint32_t request_idx;
    std::uint32_t copy_idx;
  };
  // module -> best probe so far (+ queue depth for stats)
  std::unordered_map<std::uint32_t, std::pair<Probe, std::uint32_t>> claims;
  claims.reserve(active.size() * 4);
  for (const auto idx : active) {
    LegacyRequestState& st = states[idx];
    if (st.dead) {
      continue;
    }
    const auto r = static_cast<std::uint32_t>(st.copies.size());
    for (std::uint32_t i = 0; i < r; ++i) {
      if ((st.mask >> i) & 1ULL) {
        continue;  // already accessed
      }
      const std::uint32_t module = st.copies[i].value();
      auto [it, fresh] = claims.try_emplace(module, Probe{idx, i}, 1u);
      if (!fresh) {
        ++it->second.second;
        const Probe& cur = it->second.first;
        const bool better =
            states[idx].var.value() < states[cur.request_idx].var.value() ||
            (states[idx].var.value() == states[cur.request_idx].var.value() &&
             i < cur.copy_idx);
        if (better) {
          it->second.first = Probe{idx, i};
        }
      }
    }
  }
  // Resolve winners in ascending module order: a request that wins two
  // modules in the same round with one access left takes whichever is
  // resolved first, so the resolve order steers the surviving copy mask
  // and with it the next round's claims — i.e. the round telemetry.
  // Canonicalize instead of trusting hash order.
  std::vector<std::uint32_t> module_order;
  module_order.reserve(claims.size());
  // pramlint: ordered-fold (keys collected then sorted before resolving)
  for (const auto& [module, entry] : claims) {
    (void)entry;
    module_order.push_back(module);
  }
  std::sort(module_order.begin(), module_order.end());
  std::uint64_t served = 0;
  for (const auto module : module_order) {
    const auto& entry = claims.at(module);
    max_module_queue = std::max<std::uint64_t>(max_module_queue,
                                               entry.second);
    const Probe& winner = entry.first;
    LegacyRequestState& st = states[winner.request_idx];
    if (st.dead) {
      continue;  // died earlier this same round via another module
    }
    st.mask |= (1ULL << winner.copy_idx);
    ++st.accessed;
    ++served;
    if (st.accessed >= c) {
      st.dead = true;
    }
  }
  return served;
}

}  // namespace

ScheduleResult schedule_step(const memmap::MemoryMap& map,
                             std::span<const VarRequest> requests,
                             const SchedulerConfig& config) {
  const std::uint32_t r = map.redundancy();
  const std::uint32_t c = config.c;
  const std::uint32_t s = std::max<std::uint32_t>(config.cluster_size, 1);
  PRAMSIM_ASSERT(r <= 64);
  PRAMSIM_ASSERT(c >= 1 && c <= r);

  ScheduleResult result;
  result.accessed_mask.assign(requests.size(), 0);
  if (requests.empty()) {
    return result;
  }

#ifndef NDEBUG
  {
    std::unordered_set<std::uint32_t> distinct;
    for (const auto& req : requests) {
      PRAMSIM_ASSERT_MSG(distinct.insert(req.var.value()).second,
                         "requests must be deduplicated");
    }
  }
#endif

  std::vector<LegacyRequestState> states(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    states[i].var = requests[i].var;
    states[i].cluster = requests[i].requester.value() / s;
    states[i].member = requests[i].requester.value() % s;
    states[i].copies = map.copies(requests[i].var);
  }

  std::vector<std::uint32_t> active;
  active.reserve(requests.size());
  auto all_dead = [&] {
    return std::all_of(states.begin(), states.end(),
                       [](const LegacyRequestState& st) { return st.dead; });
  };
  auto live_count = [&] {
    return static_cast<std::uint64_t>(
        std::count_if(states.begin(), states.end(),
                      [](const LegacyRequestState& st) { return !st.dead; }));
  };

  if (config.all_at_once) {
    // Ablation mode: every live request probes every round.
    while (!all_dead()) {
      active.clear();
      for (std::uint32_t i = 0; i < states.size(); ++i) {
        if (!states[i].dead) {
          active.push_back(i);
        }
      }
      result.total_copy_accesses += legacy_contention_round(
          states, active, c, result.max_module_queue);
      ++result.rounds;
      result.live_per_round.push_back(live_count());
    }
    result.stage2_rounds = result.rounds;
  } else {
    // ---- stage 1: interleaved cluster turns --------------------------
    std::unordered_map<std::uint64_t, std::uint32_t> slot;
    for (std::uint32_t i = 0; i < states.size(); ++i) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(states[i].cluster) << 32) |
          states[i].member;
      slot[key] = i;
    }
    const std::uint32_t n_clusters = (config.n_processors + s - 1) / s;
    const std::uint64_t stage1_phases =
        static_cast<std::uint64_t>(config.stage1_turns) * s;
    for (std::uint64_t phase = 0; phase < stage1_phases && !all_dead();
         ++phase) {
      active.clear();
      for (std::uint32_t k = 0; k < n_clusters; ++k) {
        const std::uint32_t member =
            static_cast<std::uint32_t>((phase + k) % s);
        const std::uint64_t key = (static_cast<std::uint64_t>(k) << 32) |
                                  member;
        const auto it = slot.find(key);
        if (it != slot.end() && !states[it->second].dead) {
          active.push_back(it->second);
        }
      }
      if (active.empty()) {
        continue;  // no round consumed: nothing was scheduled this phase
      }
      result.total_copy_accesses += legacy_contention_round(
          states, active, c, result.max_module_queue);
      ++result.rounds;
      ++result.stage1_rounds;
      result.live_per_round.push_back(live_count());
    }
    result.live_after_stage1 = live_count();

    // ---- stage 2: drain leftovers, one variable per cluster ----------
    std::vector<std::uint32_t> pending;
    for (std::uint32_t i = 0; i < states.size(); ++i) {
      if (!states[i].dead) {
        pending.push_back(i);
      }
    }
    std::size_t next_pending = 0;
    std::vector<std::uint32_t> assigned;
    auto refill = [&] {
      assigned.erase(std::remove_if(assigned.begin(), assigned.end(),
                                    [&](std::uint32_t i) {
                                      return states[i].dead;
                                    }),
                     assigned.end());
      while (assigned.size() < n_clusters && next_pending < pending.size()) {
        const auto i = pending[next_pending++];
        if (!states[i].dead) {
          assigned.push_back(i);
        }
      }
    };
    refill();
    while (!assigned.empty()) {
      result.total_copy_accesses += legacy_contention_round(
          states, assigned, c, result.max_module_queue);
      ++result.rounds;
      ++result.stage2_rounds;
      result.live_per_round.push_back(live_count());
      refill();
    }
  }

  for (std::size_t i = 0; i < states.size(); ++i) {
    PRAMSIM_ASSERT(states[i].accessed >= c);
    result.accessed_mask[i] = states[i].mask;
  }
  return result;
}

void schedule_step_into(const memmap::MemoryMap& map,
                        std::span<const VarRequest> requests,
                        const SchedulerConfig& config,
                        ScheduleResult& result, ScheduleScratch& scratch) {
  const std::uint32_t r = map.redundancy();
  const std::uint32_t c = config.c;
  const std::uint32_t s = std::max<std::uint32_t>(config.cluster_size, 1);
  PRAMSIM_ASSERT(r <= 64);
  PRAMSIM_ASSERT(c >= 1 && c <= r);

  // Reset aggregates in place; the vectors keep their capacity.
  result.rounds = result.stage1_rounds = result.stage2_rounds = 0;
  result.total_copy_accesses = 0;
  result.live_after_stage1 = 0;
  result.max_module_queue = 0;
  result.accessed_mask.assign(requests.size(), 0);
  result.live_per_round.clear();
  if (requests.empty()) {
    return;
  }

#ifndef NDEBUG
  {
    std::unordered_set<std::uint32_t> distinct;
    for (const auto& req : requests) {
      PRAMSIM_ASSERT_MSG(distinct.insert(req.var.value()).second,
                         "requests must be deduplicated");
    }
  }
#endif

  const std::uint32_t count = static_cast<std::uint32_t>(requests.size());
  scratch.cluster.resize(count);
  scratch.member.resize(count);
  scratch.accessed.assign(count, 0);
  scratch.mask.assign(count, 0);
  scratch.dead.assign(count, 0);
  scratch.copies.resize(static_cast<std::size_t>(count) * r);
  for (std::uint32_t i = 0; i < count; ++i) {
    scratch.cluster[i] = requests[i].requester.value() / s;
    scratch.member[i] = requests[i].requester.value() % s;
    map.copies_into(requests[i].var,
                    {scratch.copies.data() + static_cast<std::size_t>(i) * r,
                     r});
  }
  std::uint64_t live = count;

  std::vector<std::uint32_t>& active = scratch.active;
  active.clear();

  if (config.all_at_once) {
    // Ablation mode: every live request probes every round.
    while (live > 0) {
      active.clear();
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!scratch.dead[i]) {
          active.push_back(i);
        }
      }
      result.total_copy_accesses += contention_round(
          requests, scratch, active, r, c, live, result.max_module_queue);
      ++result.rounds;
      result.live_per_round.push_back(live);
    }
    result.stage2_rounds = result.rounds;
  } else {
    // ---- stage 1: interleaved cluster turns --------------------------
    // Group requests by (cluster, member).
    scratch.slots.clear();
    scratch.slots.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(scratch.cluster[i]) << 32) |
          scratch.member[i];
      // Multiple requests can share a slot only if the caller assigned
      // duplicate requester ids; last one wins for turn ordering, and the
      // stage-2 drain guarantees completion regardless.
      *scratch.slots.try_emplace(key, i).first = i;
    }
    const std::uint32_t n_clusters = (config.n_processors + s - 1) / s;
    const std::uint64_t stage1_phases =
        static_cast<std::uint64_t>(config.stage1_turns) * s;
    for (std::uint64_t phase = 0; phase < stage1_phases && live > 0;
         ++phase) {
      active.clear();
      for (std::uint32_t k = 0; k < n_clusters; ++k) {
        const std::uint32_t member =
            static_cast<std::uint32_t>((phase + k) % s);
        const std::uint64_t key = (static_cast<std::uint64_t>(k) << 32) |
                                  member;
        const auto* idx = scratch.slots.find(key);
        if (idx != nullptr && !scratch.dead[*idx]) {
          active.push_back(*idx);
        }
      }
      if (active.empty()) {
        continue;  // no round consumed: nothing was scheduled this phase
      }
      result.total_copy_accesses += contention_round(
          requests, scratch, active, r, c, live, result.max_module_queue);
      ++result.rounds;
      ++result.stage1_rounds;
      result.live_per_round.push_back(live);
    }
    result.live_after_stage1 = live;

    // ---- stage 2: drain leftovers, one variable per cluster ----------
    std::vector<std::uint32_t>& pending = scratch.pending;
    pending.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!scratch.dead[i]) {
        pending.push_back(i);
      }
    }
    // One live variable assigned per cluster; clusters refill from the
    // pending queue as their variable dies.
    std::size_t next_pending = 0;
    std::vector<std::uint32_t>& assigned = scratch.assigned;
    assigned.clear();
    auto refill = [&] {
      assigned.erase(std::remove_if(assigned.begin(), assigned.end(),
                                    [&](std::uint32_t i) {
                                      return scratch.dead[i] != 0;
                                    }),
                     assigned.end());
      while (assigned.size() < n_clusters && next_pending < pending.size()) {
        const auto i = pending[next_pending++];
        if (!scratch.dead[i]) {
          assigned.push_back(i);
        }
      }
    };
    refill();
    while (!assigned.empty()) {
      result.total_copy_accesses += contention_round(
          requests, scratch, assigned, r, c, live, result.max_module_queue);
      ++result.rounds;
      ++result.stage2_rounds;
      result.live_per_round.push_back(live);
      refill();
    }
  }

  for (std::uint32_t i = 0; i < count; ++i) {
    PRAMSIM_ASSERT(scratch.accessed[i] >= c);
    result.accessed_mask[i] = scratch.mask[i];
  }
}

}  // namespace pramsim::majority
