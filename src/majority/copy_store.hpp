// Timestamped copy storage for the majority-rule scheme (Upfal-Wigderson
// 1987, reviewed in the paper's §1).
//
// Each variable owns r = 2c-1 copies; each copy carries the value and the
// P-RAM step number of its last update. Reads retrieve >= c copies and
// take the freshest; writes stamp >= c copies. Because any two c-subsets
// of 2c-1 copies intersect, the freshest copy in any read set carries the
// latest committed write.
//
// Region granularity: the store keeps copies of W = region_words
// consecutive variables contiguously (copy-major: copy i of the whole
// region, then copy i+1, ...), so a copy's slice of a region is one flat
// span. W = 1 reproduces the classic per-variable rows byte for byte;
// W > 1 lets vote_region() compare whole copy regions with memcmp (the
// bulk healthy path) while every per-word method below keeps its exact
// word-at-a-time semantics.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "pram/faults.hpp"
#include "pram/types.hpp"
#include "util/assert.hpp"
#include "util/strong_id.hpp"

namespace pramsim::majority {

struct Copy {
  pram::Word value = 0;
  std::uint64_t stamp = 0;  ///< step number of last write (0 = initial)
};

static_assert(sizeof(Copy) == 2 * sizeof(std::uint64_t),
              "Copy must be padding-free so region memcmp compares exactly "
              "the (value, stamp) pairs");

/// Sparse (region, copy-index) -> Copy storage. A region's r copy slices
/// are materialized on its first write; untouched regions read as the
/// initial {0, 0} copy. This keeps full-scale memories (m up to n^2 for
/// n in the thousands) cheap to construct: storage is proportional to the
/// regions a run actually writes, not to m*r.
class CopyStore {
 public:
  CopyStore(std::uint64_t m_vars, std::uint32_t redundancy,
            std::uint32_t region_words = 1);

  [[nodiscard]] std::uint64_t num_vars() const { return m_vars_; }
  [[nodiscard]] std::uint32_t redundancy() const { return r_; }
  [[nodiscard]] std::uint32_t region_words() const { return w_; }
  [[nodiscard]] std::uint64_t num_regions() const { return n_regions_; }
  [[nodiscard]] std::uint64_t region_of(VarId var) const {
    return var.index() / w_;
  }
  /// Regions with at least one written copy (live-set accounting; with
  /// region_words == 1 this is exactly "variables with >= 1 written
  /// copy", the classic meaning).
  [[nodiscard]] std::uint64_t touched_vars() const { return copies_.size(); }
  /// True when `var`'s region has a materialized row (>= 1 copy of some
  /// variable in the region ever written). Untouched variables read as
  /// the initial {0, 0} copy everywhere, so repair passes can restore
  /// their redundancy by relocation alone.
  [[nodiscard]] bool touched(VarId var) const {
    return copies_.find(region_of(var)) != copies_.end();
  }

  [[nodiscard]] const Copy& at(VarId var, std::uint32_t copy) const {
    PRAMSIM_DASSERT(var.index() < m_vars_ && copy < r_);
    const auto it = copies_.find(region_of(var));
    if (it == copies_.end()) {
      static const Copy kInitial{};
      return kInitial;
    }
    return it->second[static_cast<std::size_t>(copy) * w_ +
                      var.index() % w_];
  }

  void write(VarId var, std::uint32_t copy, pram::Word value,
             std::uint64_t stamp) {
    PRAMSIM_DASSERT(var.index() < m_vars_ && copy < r_);
    row(var)[static_cast<std::size_t>(copy) * w_ + var.index() % w_] =
        Copy{value, stamp};
  }

  // ----- group-parallel serve surface -----
  //
  // The sparse map's structure must not mutate while group workers write
  // concurrently, so the parallel value phase is two-phase: the serving
  // thread materializes every written variable's region row up front
  // (ensure_row), then workers update DISTINCT variables' slots in place
  // (write_prepared) — pure lookups, no insertion, no growth. Distinct
  // variables of a SHARED region row touch disjoint Copy slots, so the
  // frozen-structure rule carries over to any region width unchanged.

  /// Materialize `var`'s region row (serving thread only, before fan-out).
  void ensure_row(VarId var) { (void)row(var); }

  /// In-place write for a row ensure_row already materialized. Safe to
  /// call concurrently with other write_prepared/reads on DIFFERENT
  /// variables (and different copies of the same variable).
  void write_prepared(VarId var, std::uint32_t copy, pram::Word value,
                      std::uint64_t stamp) {
    PRAMSIM_DASSERT(var.index() < m_vars_ && copy < r_);
    const auto it = copies_.find(region_of(var));
    PRAMSIM_DASSERT(it != copies_.end());
    it->second[static_cast<std::size_t>(copy) * w_ + var.index() % w_] =
        Copy{value, stamp};
  }

  /// The freshest value among the copies selected by `mask` (bit i =>
  /// copy i participates). Requires a non-empty mask.
  [[nodiscard]] Copy freshest(VarId var, std::uint64_t mask) const;

  /// The globally freshest copy (over all r copies) — the ground truth a
  /// correct majority read must match. Verification only.
  [[nodiscard]] Copy ground_truth(VarId var) const;

  /// Failure injection (tests): overwrite a copy's value *without*
  /// advancing its stamp, emulating a stale/corrupted replica.
  void corrupt(VarId var, std::uint32_t copy, pram::Word bogus_value);

  // ----- copy-level fault surface (degraded-mode protocol) -----

  /// Outcome of a majority vote over a variable's surviving copies.
  struct VoteOutcome {
    Copy winner;                  ///< elected (value, stamp); {0,0} if none
    std::uint32_t survivors = 0;  ///< copies that cast a vote
    std::uint32_t erased = 0;     ///< copies skipped (dead module)
    std::uint32_t dissenting = 0; ///< survivors disagreeing with the winner
  };

  /// Majority vote over all r copies of `var` under fault injection:
  /// copies on modules dead by `step` are erasures; stuck-at copies vote
  /// their stuck value. The winner is the (value, stamp) pair with the
  /// largest multiplicity (ties: fresher stamp, then smaller value — both
  /// deterministic). `modules` is the variable's copy placement (size r).
  /// With write-through stores (store_all) every healthy copy agrees, so
  /// the vote recovers the committed value as long as healthy copies
  /// outnumber every colluding faulty subset — in particular it survives
  /// floor((r-1)/2) arbitrary bad copies with no erasures.
  [[nodiscard]] VoteOutcome vote(VarId var,
                                 std::span<const ModuleId> modules,
                                 std::uint64_t step,
                                 const pram::FaultHooks& hooks) const;

  /// Degraded-mode write-through: store (value, stamp) into every copy of
  /// `var` whose module is alive at `step` (the caller's P-RAM step
  /// clock), letting `hooks` corrupt individual stores. `reroll` is the
  /// corruption re-roll key passed to corrupt_write — protocol writes use
  /// the stamp itself; scrub repair passes use a dedicated counter so a
  /// repair never replays the corruption roll of a same-step write.
  /// Returns the number of copies lost to dead modules; the count of
  /// silently corrupted stores is added to `corrupt_stores`.
  std::uint32_t store_all(VarId var, std::span<const ModuleId> modules,
                          pram::Word value, std::uint64_t stamp,
                          std::uint64_t reroll, std::uint64_t step,
                          const pram::FaultHooks& hooks,
                          std::uint64_t& corrupt_stores);

  /// store_all for the group-parallel degraded path: identical effects,
  /// but writes through write_prepared — the caller must have
  /// ensure_row'd `var` on the serving thread first.
  std::uint32_t store_all_prepared(VarId var,
                                   std::span<const ModuleId> modules,
                                   pram::Word value, std::uint64_t stamp,
                                   std::uint64_t reroll, std::uint64_t step,
                                   const pram::FaultHooks& hooks,
                                   std::uint64_t& corrupt_stores);

  // ----- bulk region surface (the hailburst vote_memory idiom) -----

  /// vote_region found no copy whose whole region a strict majority of
  /// the live copies matches bytewise.
  static constexpr std::int32_t kNoRegionMajority = -1;

  /// Region-wise majority vote: compare whole per-copy regions with
  /// memcmp, skipping copies masked out of `live_mask` (erased replicas),
  /// and return the index of a live copy whose region a strict majority
  /// of the live copies matches bytewise — or kNoRegionMajority when no
  /// bytewise majority exists, in which case callers fall back to the
  /// word-granular vote() per variable to localize the dissent.
  ///
  /// With `dissenting` == nullptr the scan early-exits as soon as some
  /// candidate reaches a strict majority (the fast healthy path);
  /// otherwise all live copies are compared and *dissenting receives the
  /// exact count of live copies whose region differs from the winner's
  /// (0 == the whole region is bytewise unanimous).
  ///
  /// Byte comparison of Copy spans compares exactly the (value, stamp)
  /// pairs (Copy is padding-free by the static_assert above), so a
  /// unanimous region certifies per-word agreement on values AND stamps.
  [[nodiscard]] std::int32_t vote_region(
      std::uint64_t region, std::uint64_t live_mask,
      std::uint32_t* dissenting = nullptr) const;

  /// Copy `copy`'s contiguous slice of `region` (region_words() entries);
  /// empty for untouched regions (every copy reads the initial {0, 0}).
  [[nodiscard]] std::span<const Copy> region_span(std::uint64_t region,
                                                  std::uint32_t copy) const {
    PRAMSIM_DASSERT(region < n_regions_ && copy < r_);
    const auto it = copies_.find(region);
    if (it == copies_.end()) {
      return {};
    }
    return {it->second.data() + static_cast<std::size_t>(copy) * w_, w_};
  }

  /// Bulk repair: memcpy copy `from`'s whole region slice over copy
  /// `to`'s — values AND stamps — after a region-wise vote elected
  /// `from`. No-op on untouched regions (all copies already agree).
  void copy_region(std::uint64_t region, std::uint32_t from,
                   std::uint32_t to);

  // ----- snapshot surface (durability checkpoints) -----

  /// The materialized region rows (region id -> r * region_words copies,
  /// copy-major). Serializers iterate region ids in sorted order so the
  /// snapshot byte stream is canonical regardless of map iteration order.
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::vector<Copy>>&
  rows() const {
    return copies_;
  }

  /// Install one serialized region row — values AND stamps — replacing
  /// any existing row. Restore-only: `copies` must hold exactly
  /// redundancy() * region_words() entries.
  void restore_row(std::uint64_t region, std::span<const Copy> copies) {
    PRAMSIM_ASSERT(region < n_regions_ &&
                   copies.size() ==
                       static_cast<std::size_t>(r_) * w_);
    copies_.insert_or_assign(region,
                             std::vector<Copy>(copies.begin(), copies.end()));
  }

  /// Drop every materialized row (restore resets to this blank state
  /// before installing the snapshot's rows, so a second restore onto the
  /// same instance is exact, not additive).
  void clear_rows() { copies_.clear(); }

 private:
  [[nodiscard]] std::vector<Copy>& row(VarId var) {
    return copies_
        .try_emplace(region_of(var), static_cast<std::size_t>(r_) * w_)
        .first->second;
  }
  /// Pointer to `var`'s Copy for copy 0, or nullptr when the region is
  /// untouched; copy i lives at base[i * region_words()].
  [[nodiscard]] const Copy* column(VarId var) const {
    const auto it = copies_.find(region_of(var));
    if (it == copies_.end()) {
      return nullptr;
    }
    return it->second.data() + var.index() % w_;
  }

  std::uint64_t m_vars_;
  std::uint32_t r_;
  std::uint32_t w_;
  std::uint64_t n_regions_;
  std::unordered_map<std::uint64_t, std::vector<Copy>> copies_;
};

}  // namespace pramsim::majority
