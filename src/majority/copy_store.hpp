// Timestamped copy storage for the majority-rule scheme (Upfal-Wigderson
// 1987, reviewed in the paper's §1).
//
// Each variable owns r = 2c-1 copies; each copy carries the value and the
// P-RAM step number of its last update. Reads retrieve >= c copies and
// take the freshest; writes stamp >= c copies. Because any two c-subsets
// of 2c-1 copies intersect, the freshest copy in any read set carries the
// latest committed write.
#pragma once

#include <cstdint>
#include <vector>

#include "pram/types.hpp"
#include "util/assert.hpp"
#include "util/strong_id.hpp"

namespace pramsim::majority {

struct Copy {
  pram::Word value = 0;
  std::uint64_t stamp = 0;  ///< step number of last write (0 = initial)
};

/// Dense (variable, copy-index) -> Copy storage. Sized m*r; intended for
/// correctness runs and end-to-end program execution (the large-scale
/// benches use the round scheduler alone, which needs no storage).
class CopyStore {
 public:
  CopyStore(std::uint64_t m_vars, std::uint32_t redundancy);

  [[nodiscard]] std::uint64_t num_vars() const { return m_vars_; }
  [[nodiscard]] std::uint32_t redundancy() const { return r_; }

  [[nodiscard]] const Copy& at(VarId var, std::uint32_t copy) const {
    PRAMSIM_DASSERT(var.index() < m_vars_ && copy < r_);
    return copies_[var.index() * r_ + copy];
  }

  void write(VarId var, std::uint32_t copy, pram::Word value,
             std::uint64_t stamp) {
    PRAMSIM_DASSERT(var.index() < m_vars_ && copy < r_);
    copies_[var.index() * r_ + copy] = Copy{value, stamp};
  }

  /// The freshest value among the copies selected by `mask` (bit i =>
  /// copy i participates). Requires a non-empty mask.
  [[nodiscard]] Copy freshest(VarId var, std::uint64_t mask) const;

  /// The globally freshest copy (over all r copies) — the ground truth a
  /// correct majority read must match. Verification only.
  [[nodiscard]] Copy ground_truth(VarId var) const;

  /// Failure injection (tests): overwrite a copy's value *without*
  /// advancing its stamp, emulating a stale/corrupted replica.
  void corrupt(VarId var, std::uint32_t copy, pram::Word bogus_value);

 private:
  std::uint64_t m_vars_;
  std::uint32_t r_;
  std::vector<Copy> copies_;
};

}  // namespace pramsim::majority
