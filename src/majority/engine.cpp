#include "majority/engine.hpp"

#include <utility>

#include "util/assert.hpp"

namespace pramsim::majority {

DmmpcEngine::DmmpcEngine(std::shared_ptr<const memmap::MemoryMap> map,
                         SchedulerConfig config)
    : map_(std::move(map)), config_(config) {
  PRAMSIM_ASSERT(map_ != nullptr);
  PRAMSIM_ASSERT(map_->redundancy() == 2 * config_.c - 1);
}

EngineResult DmmpcEngine::run_step(std::span<const VarRequest> requests) {
  // Legacy allocating path (kept as the plan-vs-adapter baseline);
  // the serve path goes through run_step_into's per-instance scratch.
  const ScheduleResult schedule = schedule_step(*map_, requests, config_);
  EngineResult result;
  result.time = schedule.rounds;
  result.work = schedule.total_copy_accesses;
  result.accessed_mask = schedule.accessed_mask;
  result.stats.phases = schedule.rounds;
  result.stats.stage1_phases = schedule.stage1_rounds;
  result.stats.stage2_phases = schedule.stage2_rounds;
  result.stats.live_after_stage1 = schedule.live_after_stage1;
  result.stats.max_queue = schedule.max_module_queue;
  result.stats.live_per_phase = schedule.live_per_round;
  return result;
}

void DmmpcEngine::run_step_into(std::span<const VarRequest> requests,
                                EngineResult& out) {
  schedule_step_into(*map_, requests, config_, schedule_scratch_, scratch_);
  const ScheduleResult& schedule = schedule_scratch_;
  out.time = schedule.rounds;
  out.work = schedule.total_copy_accesses;
  out.accessed_mask = schedule.accessed_mask;
  out.stats.phases = schedule.rounds;
  out.stats.stage1_phases = schedule.stage1_rounds;
  out.stats.stage2_phases = schedule.stage2_rounds;
  out.stats.live_after_stage1 = schedule.live_after_stage1;
  out.stats.max_queue = schedule.max_module_queue;
  out.stats.live_per_phase = schedule.live_per_round;
}

}  // namespace pramsim::majority
