// MajorityMemory: the complete replicated shared-memory organization —
// memory map + timestamped copies + an access engine — packaged as a
// pram::MemorySystem so a real P-RAM program can execute on top of it.
//
// Instantiations:
//  * DmmpcEngine + Lemma 2 map over M = n^(1+eps)    -> Theorem 2 machine
//  * DmmpcEngine + UW map over M = n                 -> UW'87 MPC baseline
//  * core::MotEngine + Lemma 2 map, modules at 2DMOT
//    leaves                                          -> Theorem 3 machine
//  * core::MotEngine + UW map, modules at roots      -> LPP'90 baseline
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "majority/copy_store.hpp"
#include "majority/engine.hpp"
#include "majority/scheduler.hpp"
#include "memmap/memory_map.hpp"
#include "pram/memory_system.hpp"
#include "util/stats.hpp"

namespace pramsim::majority {

class MajorityMemory final : public pram::MemorySystem {
 public:
  /// Generic form: any access engine over a 2c-1-redundancy map.
  /// `region_words` sets the CopyStore's storage granularity (1 = the
  /// classic word-at-a-time layout, bit-identical to the pre-region
  /// code); widths > 1 store each copy's slice of W consecutive
  /// variables contiguously so scrub can clear whole regions with one
  /// memcmp-majority pass (word-granular fallback on dissent).
  explicit MajorityMemory(std::unique_ptr<AccessEngine> engine,
                          std::uint32_t region_words = 1);

  /// Convenience: DMMPC engine with the given scheduler parameters.
  MajorityMemory(std::shared_ptr<const memmap::MemoryMap> map,
                 SchedulerConfig scheduler, std::uint32_t region_words = 1);

  pram::MemStepCost step(std::span<const VarId> reads,
                         std::span<pram::Word> read_values,
                         std::span<const pram::VarWrite> writes) override;

  /// Native plan path: consumes the plan's precomputed request list and
  /// read/write joins instead of rebuilding the per-step dedup map, and
  /// schedules through the engine's scratch-backed run_step_into.
  /// Value-equivalent to step(); request order (reads first, then
  /// write-only variables) matches step()'s synthesized order exactly.
  /// Under ServeBackend::kGroupParallel the value phase (healthy
  /// freshest/commit, degraded vote/store) fans the plan's module groups
  /// across ctx.executor()'s workers — the engine schedule stays serial
  /// (it is a global protocol) — with per-chunk telemetry folded in
  /// chunk order, so results are bit-identical at any worker count.
  pram::MemStepCost serve(const pram::AccessPlan& plan,
                          pram::ServeContext& ctx) override;

  /// Group-parallel work units are module groups keyed by the variable's
  /// FIRST mapped copy module (the base map's placement; scrub
  /// relocations never move a variable between groups — the key only
  /// partitions work, it never resolves placement). Stable and
  /// thread-safe: a pure function of the immutable map.
  [[nodiscard]] std::uint64_t plan_group_of(VarId var) const override;
  [[nodiscard]] bool wants_plan_groups() const override {
    return backend_ == pram::ServeBackend::kGroupParallel;
  }
  [[nodiscard]] std::uint32_t capabilities() const override {
    return pram::kGroupParallel;
  }
  pram::ServeBackend set_serve_backend(pram::ServeBackend backend) override {
    backend_ = backend;
    return backend_;
  }

  [[nodiscard]] std::uint64_t size() const override {
    return engine_->map().num_vars();
  }
  [[nodiscard]] pram::Word peek(VarId var) const override;
  void poke(VarId var, pram::Word value) override;
  [[nodiscard]] double storage_redundancy() const override {
    return static_cast<double>(engine_->map().redundancy());
  }
  [[nodiscard]] const memmap::MemoryMap* memory_map() const override {
    return &engine_->map();
  }
  [[nodiscard]] std::uint32_t num_modules() const override {
    return engine_->map().num_modules();
  }

  /// Switch to the degraded-mode protocol: writes store through to every
  /// surviving copy and reads majority-vote over all survivors (the
  /// engine still prices the step; the extra copy traffic shows up as
  /// work). With hooks installed, peek() also votes, so verification
  /// observes what a fault-aware reader would. Fault queries are stamped
  /// with the current step, so dynamic onsets land mid-run.
  bool set_fault_hooks(const pram::FaultHooks* hooks) override {
    hooks_ = hooks;
    return true;
  }

  /// Native scrub: walk the address space from a persistent cursor, and
  /// for every variable whose copy set is degraded at the current step
  /// (erased or dissenting copies), RELOCATE the copies sitting on dead
  /// modules to deterministically-chosen healthy ones and re-stamp the
  /// vote winner onto every live copy. One budget unit = one variable
  /// scanned. A pass over a healthy variable writes nothing.
  pram::ScrubResult scrub(std::uint64_t budget) override;
  [[nodiscard]] pram::ReliabilityStats reliability() const override {
    return reliability_;
  }
  [[nodiscard]] std::span<const std::uint8_t> flagged_reads()
      const override {
    return flagged_reads_;
  }

  // ----- introspection for tests / benches -----
  [[nodiscard]] AccessEngine& engine() { return *engine_; }
  [[nodiscard]] const AccessEngine& engine() const { return *engine_; }
  [[nodiscard]] const CopyStore& store() const { return store_; }
  [[nodiscard]] CopyStore& mutable_store() { return store_; }
  [[nodiscard]] const memmap::MemoryMap& map() const {
    return engine_->map();
  }
  /// Distribution of per-step time (rounds/cycles) so far.
  [[nodiscard]] const util::RunningStats& time_stats() const {
    return time_stats_;
  }
  [[nodiscard]] const ProtocolStats& last_stats() const {
    return last_stats_;
  }

 protected:
  /// Native snapshot: the CopyStore's region rows (values AND stamps,
  /// sorted by region id for a canonical stream), the scrub relocation
  /// overlay, and the scrub cursors — bit-exact storage state. The
  /// peek/poke default would collapse per-copy stamps and lose
  /// relocations; this path restores the exact pre-crash storage so
  /// recovery + scrub behave as if the crash never happened.
  void snapshot_body(pram::SnapshotSink& sink) override;
  [[nodiscard]] bool restore_body(pram::SnapshotSource& source) override;

 private:
  /// Degraded-mode protocol shared by step() and serve(): majority-vote
  /// reads over every surviving copy, write-through to every survivor.
  /// Returns the extra copy traffic (fault work).
  std::uint64_t degraded_serve(std::span<const VarId> reads,
                               std::span<pram::Word> read_values,
                               std::span<const pram::VarWrite> writes);
  /// The variable's CURRENT copy placement: the map's assignment with
  /// scrub relocations applied on top. Identical to the map until the
  /// first relocation.
  void copies_into_current(VarId var, std::span<ModuleId> out) const;

  /// Bump the degraded-protocol obs counters (shared by the serial loop
  /// and the group-parallel fold so both backends report identically).
  void obs_degraded_counts(std::uint64_t masked, std::uint64_t uncorrectable,
                           std::uint64_t erased, std::uint64_t dropped) const;

  /// Group-parallel value phase shared by the healthy and degraded
  /// serve paths: fan the plan's groups across ctx.executor()'s workers
  /// (chunk telemetry folded in chunk order afterwards).
  std::uint64_t serve_groups_parallel(const pram::AccessPlan& plan,
                                      pram::ServeContext& ctx,
                                      const EngineResult& result);

  std::unique_ptr<AccessEngine> engine_;
  CopyStore store_;
  std::uint32_t n_processors_;
  util::RunningStats time_stats_;
  ProtocolStats last_stats_;
  pram::ServeBackend backend_ = pram::ServeBackend::kSerial;
  /// serve() scratch: the plan's requests with synthesized requesters,
  /// and the engine result buffers, both reused across steps.
  std::vector<VarRequest> request_scratch_;
  EngineResult engine_scratch_;
  /// Per-chunk telemetry slots for the group-parallel degraded phase
  /// (folded deterministically after the fan-out).
  struct ChunkTally {
    pram::ReliabilityStats stats;
    std::uint64_t fault_work = 0;
    /// Journal events recorded by this chunk's worker; appended to the
    /// sink in chunk order after the fan-out so group-parallel journals
    /// match serial ones (the per-step canonical sort does the rest).
    std::vector<obs::Event> events;
  };
  std::vector<ChunkTally> chunk_scratch_;
  const pram::FaultHooks* hooks_ = nullptr;  ///< non-owning; null = healthy
  pram::ReliabilityStats reliability_;
  std::vector<std::uint8_t> flagged_reads_;  ///< last step's outage flags
  /// Scrub relocation overlay: (var * r + copy) -> replacement module for
  /// copies moved off dead modules. Lookup-only (order never observed).
  std::unordered_map<std::uint64_t, ModuleId> relocated_;
  std::uint64_t scrub_cursor_ = 0;  ///< next variable a scrub pass scans
  /// Corruption re-roll counter for repair stores (distinct from the
  /// step-stamp namespace, so a repair never replays the corruption roll
  /// of a same-step protocol write).
  std::uint64_t scrub_stores_ = 0;
  /// Relocation-probe salt derived from the map's actual placement, so
  /// two instances with different map seeds relocate differently.
  std::uint64_t map_salt_ = 0;
};

}  // namespace pramsim::majority
