#include "majority/majority_memory.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace pramsim::majority {

MajorityMemory::MajorityMemory(std::unique_ptr<AccessEngine> engine,
                               std::uint32_t region_words)
    : engine_(std::move(engine)),
      store_(engine_->map().num_vars(), engine_->map().redundancy(),
             std::max<std::uint32_t>(region_words, 1)),
      n_processors_(std::max<std::uint32_t>(engine_->n_processors(), 1)) {
  PRAMSIM_ASSERT(engine_ != nullptr);
  PRAMSIM_ASSERT_MSG(engine_->map().redundancy() % 2 == 1,
                     "majority rule requires odd r = 2c-1");
  // Fingerprint the map's placement of variable 0 as the relocation-probe
  // salt: a pure function of the map (so replays match) that still varies
  // with the map seed (so instances don't all relocate identically).
  for (const auto module : engine_->map().copies(VarId(0))) {
    map_salt_ = map_salt_ * 0x100000001B3ULL + module.index() + 1;
  }
}

MajorityMemory::MajorityMemory(std::shared_ptr<const memmap::MemoryMap> map,
                               SchedulerConfig scheduler,
                               std::uint32_t region_words)
    : MajorityMemory(std::make_unique<DmmpcEngine>(std::move(map), scheduler),
                     region_words) {}

std::uint64_t MajorityMemory::plan_group_of(VarId var) const {
  // The base map's first copy module (r <= 64 by CopyStore contract, so
  // a stack buffer suffices and the call is allocation-free and
  // thread-safe for the plan generator).
  ModuleId modules[64];
  const std::uint32_t r = engine_->map().redundancy();
  engine_->map().copies_into(var, std::span<ModuleId>(modules, r));
  return modules[0].index();
}

void MajorityMemory::copies_into_current(VarId var,
                                         std::span<ModuleId> out) const {
  engine_->map().copies_into(var, out);
  if (relocated_.empty()) {
    return;
  }
  const std::uint32_t r = engine_->map().redundancy();
  for (std::uint32_t copy = 0; copy < r; ++copy) {
    const auto it = relocated_.find(var.index() * r + copy);
    if (it != relocated_.end()) {
      out[copy] = it->second;
    }
  }
}

std::uint64_t MajorityMemory::degraded_serve(
    std::span<const VarId> reads, std::span<pram::Word> read_values,
    std::span<const pram::VarWrite> writes) {
  // Degraded-mode protocol: majority-vote reads over every surviving
  // copy, write-through to every surviving copy. The engine's schedule
  // still prices the step; the widened copy traffic is extra work.
  const std::uint32_t r = engine_->map().redundancy();
  const std::uint64_t stamp = steps_served();
  std::uint64_t fault_work = 0;
  std::uint64_t masked = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t erased_total = 0;
  std::uint64_t dropped = 0;
  std::vector<ModuleId> modules(r);
  flagged_reads_.assign(reads.size(), 0);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    copies_into_current(reads[i], modules);
    const auto outcome = store_.vote(reads[i], modules, stamp, *hooks_);
    read_values[i] = outcome.winner.value;
    ++reliability_.reads_served;
    reliability_.erasures_skipped += outcome.erased;
    reliability_.units_faulty += outcome.erased + outcome.dissenting;
    fault_work += outcome.survivors;
    erased_total += outcome.erased;
    if (outcome.survivors == 0) {
      ++reliability_.uncorrectable;
      flagged_reads_[i] = 1;
      ++uncorrectable;
      obs_event(obs::EventKind::kUncorrectable, reads[i].index(),
                outcome.erased, outcome.dissenting);
    } else if (outcome.erased + outcome.dissenting > 0) {
      ++reliability_.faults_masked;
      ++masked;
      obs_event(obs::EventKind::kDegradedVote, reads[i].index(),
                outcome.erased, outcome.dissenting, outcome.survivors);
    }
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    copies_into_current(writes[i].var, modules);
    const std::uint32_t d =
        store_.store_all(writes[i].var, modules, writes[i].value, stamp,
                         stamp, stamp, *hooks_,
                         reliability_.corrupt_stores);
    reliability_.writes_dropped += d;
    dropped += d;
    fault_work += r;
  }
  obs_degraded_counts(masked, uncorrectable, erased_total, dropped);
  return fault_work;
}

void MajorityMemory::obs_degraded_counts(std::uint64_t masked,
                                         std::uint64_t uncorrectable,
                                         std::uint64_t erased,
                                         std::uint64_t dropped) const {
  if (masked != 0) {
    obs_count("majority.votes.masked", masked);
  }
  if (uncorrectable != 0) {
    obs_count("majority.votes.uncorrectable", uncorrectable);
  }
  if (erased != 0) {
    obs_count("majority.erasures", erased);
  }
  if (dropped != 0) {
    obs_count("majority.stores.dropped", dropped);
  }
}

pram::MemStepCost MajorityMemory::step(std::span<const VarId> reads,
                                       std::span<pram::Word> read_values,
                                       std::span<const pram::VarWrite> writes) {
  PRAMSIM_ASSERT(reads.size() == read_values.size());
  const std::uint64_t stamp = advance_step_clock();
  obs_count("majority.steps");
  obs_count("majority.reads", reads.size());
  obs_count("majority.writes", writes.size());
  obs::PhaseSet* timing = obs_timing();

  // Union of accessed variables: one protocol request per distinct var.
  // A variable that is both read and written this step is accessed once;
  // the accessed copy set serves the read (pre-step value) and then takes
  // the write. (This is the LEGACY per-step dedup; the plan path in
  // serve() consumes the same union precomputed by core::PlanBuilder.)
  std::vector<VarRequest> requests;
  requests.reserve(reads.size() + writes.size());
  std::vector<std::size_t> read_req(reads.size());
  std::vector<std::size_t> write_req(writes.size());
  std::unordered_map<std::uint32_t, std::size_t> index;
  std::uint32_t next_proc = 0;
  auto request_for = [&](VarId var, pram::AccessOp op) {
    auto [it, fresh] = index.try_emplace(var.value(), requests.size());
    if (fresh) {
      requests.push_back({var, ProcId(next_proc % n_processors_), op});
      ++next_proc;
    } else if (op == pram::AccessOp::kWrite) {
      requests[it->second].op = pram::AccessOp::kWrite;
    }
    return it->second;
  };
  for (std::size_t i = 0; i < reads.size(); ++i) {
    read_req[i] = request_for(reads[i], pram::AccessOp::kRead);
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    write_req[i] = request_for(writes[i].var, pram::AccessOp::kWrite);
  }

  EngineResult result;
  {
    obs::ScopedPhase timer(timing, obs::Phase::kEngineSchedule);
    result = engine_->run_step(requests);
  }
  time_stats_.add(static_cast<double>(result.time));
  last_stats_ = result.stats;

  const std::uint32_t r = engine_->map().redundancy();
  std::uint64_t fault_work = 0;
  flagged_reads_.clear();
  obs::ScopedPhase value_timer(timing, obs::Phase::kValuePhase);
  if (hooks_ == nullptr) {
    // Healthy protocol: reads take the freshest stamp among the >= c
    // accessed copies; writes stamp exactly the accessed copies.
    for (std::size_t i = 0; i < reads.size(); ++i) {
      read_values[i] =
          store_.freshest(reads[i], result.accessed_mask[read_req[i]]).value;
    }
    for (std::size_t i = 0; i < writes.size(); ++i) {
      const std::uint64_t mask = result.accessed_mask[write_req[i]];
      for (std::uint32_t copy = 0; copy < r; ++copy) {
        if ((mask >> copy) & 1ULL) {
          store_.write(writes[i].var, copy, writes[i].value, stamp);
        }
      }
    }
  } else {
    fault_work = degraded_serve(reads, read_values, writes);
  }

  return pram::MemStepCost{.time = result.time,
                           .work = result.work + fault_work,
                           .live_after_stage1 = result.stats.live_after_stage1,
                           .max_queue = result.stats.max_queue};
}

pram::MemStepCost MajorityMemory::serve(const pram::AccessPlan& plan,
                                        pram::ServeContext& ctx) {
  const std::span<pram::Word> read_values = ctx.read_values();
  PRAMSIM_ASSERT(plan.reads.size() == read_values.size());
  const std::uint64_t stamp = advance_step_clock();
  ctx.stamp_step(stamp);
  obs_count("majority.steps");
  obs_count("majority.reads", plan.reads.size());
  obs_count("majority.writes", plan.writes.size());
  obs::PhaseSet* timing = obs_timing();

  // The plan's request list IS the access union in step()'s order (reads
  // first, then write-only variables); requesters are synthesized
  // round-robin exactly as the legacy dedup did.
  request_scratch_.clear();
  request_scratch_.reserve(plan.requests.size());
  for (std::uint32_t j = 0; j < plan.requests.size(); ++j) {
    request_scratch_.push_back(
        {plan.requests[j].var, ProcId(j % n_processors_),
         plan.requests[j].op});
  }

  // The engine schedule is a global protocol over every request; it
  // stays on the serving thread under either backend.
  {
    obs::ScopedPhase timer(timing, obs::Phase::kEngineSchedule);
    engine_->run_step_into(request_scratch_, engine_scratch_);
  }
  const EngineResult& result = engine_scratch_;
  time_stats_.add(static_cast<double>(result.time));
  last_stats_ = result.stats;

  const std::uint32_t r = engine_->map().redundancy();
  std::uint64_t fault_work = 0;
  flagged_reads_.clear();
  obs::ScopedPhase value_timer(timing, obs::Phase::kValuePhase);
  // Fan the value phase only when the executor would actually hand out
  // more than one chunk: at one worker the plain read/write loops below
  // do the same work without the group indirection (identical values and
  // telemetry either way — the backends are bit-equivalent by contract).
  const bool fan =
      backend_ == pram::ServeBackend::kGroupParallel && plan.grouped() &&
      ctx.executor() != nullptr &&
      ctx.executor()->plan_workers(plan.num_groups(),
                                   plan.requests.size()) > 1;
  if (fan) {
    fault_work = serve_groups_parallel(plan, ctx, result);
  } else if (hooks_ == nullptr) {
    for (std::size_t i = 0; i < plan.reads.size(); ++i) {
      read_values[i] =
          store_
              .freshest(plan.reads[i],
                        result.accessed_mask[plan.read_request[i]])
              .value;
    }
    for (std::size_t i = 0; i < plan.writes.size(); ++i) {
      const std::uint64_t mask =
          result.accessed_mask[plan.write_request[i]];
      for (std::uint32_t copy = 0; copy < r; ++copy) {
        if ((mask >> copy) & 1ULL) {
          store_.write(plan.writes[i].var, copy, plan.writes[i].value,
                       stamp);
        }
      }
    }
  } else {
    fault_work = degraded_serve(plan.reads, read_values, plan.writes);
    adopt_legacy_flags(ctx);
  }

  return pram::MemStepCost{.time = result.time,
                           .work = result.work + fault_work,
                           .live_after_stage1 = result.stats.live_after_stage1,
                           .max_queue = result.stats.max_queue};
}

std::uint64_t MajorityMemory::serve_groups_parallel(
    const pram::AccessPlan& plan, pram::ServeContext& ctx,
    const EngineResult& result) {
  const std::span<pram::Word> read_values = ctx.read_values();
  const std::uint32_t r = engine_->map().redundancy();
  const std::uint64_t stamp = steps_served();
  const std::size_t n_reads = plan.reads.size();

  // Two-phase for the sparse store: rows this step will write are
  // materialized up front on the serving thread, so group workers only
  // mutate distinct pre-existing rows (the map's structure is frozen
  // during the fan-out). Under the degraded protocol a write whose every
  // module is dead stores nothing — leave its row unmaterialized so the
  // sparse-store state matches the serial path exactly (scrub treats
  // untouched rows specially).
  if (hooks_ == nullptr) {
    for (const auto& w : plan.writes) {
      store_.ensure_row(w.var);
    }
  } else {
    ctx.enable_flags();
    std::vector<ModuleId> modules(r);
    for (const auto& w : plan.writes) {
      copies_into_current(w.var, modules);
      for (std::uint32_t copy = 0; copy < r; ++copy) {
        if (!hooks_->module_dead(modules[copy], stamp)) {
          store_.ensure_row(w.var);
          break;
        }
      }
    }
  }

  const pram::GroupRange groups(plan);
  util::Executor* executor = ctx.executor();
  const std::size_t workers =
      executor != nullptr
          ? executor->plan_workers(groups.size(), plan.requests.size())
          : 1;
  const std::size_t chunk = (groups.size() + workers - 1) / workers;
  chunk_scratch_.assign(workers, {});
  // Workers buffer journal events per chunk; the fold below appends them
  // in chunk order so the journal matches the serial path (the per-step
  // canonical sort makes intra-step order irrelevant).
  const bool journal_events = obs::kEnabled && observer() != nullptr;

  auto body = [&](std::size_t g_lo, std::size_t g_hi) {
    ChunkTally& tally = chunk_scratch_[g_lo / chunk];
    ModuleId modules[64];
    const std::span<ModuleId> module_span(modules, r);
    for (std::size_t g = g_lo; g < g_hi; ++g) {
      const auto unit = groups[g];
      if (hooks_ == nullptr) {
        for (const std::uint32_t j : unit.requests) {
          // Requests lead with the reads in plan order, so a request
          // index below n_reads IS its read index.
          if (j < n_reads) {
            read_values[j] =
                store_.freshest(plan.reads[j], result.accessed_mask[j])
                    .value;
          }
          const std::uint32_t w = plan.request_write[j];
          if (w != pram::AccessPlan::kNone) {
            const std::uint64_t mask = result.accessed_mask[j];
            for (std::uint32_t copy = 0; copy < r; ++copy) {
              if ((mask >> copy) & 1ULL) {
                store_.write_prepared(plan.writes[w].var, copy,
                                      plan.writes[w].value, stamp);
              }
            }
          }
        }
        continue;
      }
      // Degraded protocol, group-local: the group's reads vote first
      // (pre-step state), then its writes store through. Groups touch
      // disjoint variables, so cross-group interleaving cannot change
      // any value; telemetry lands in this chunk's tally.
      for (const std::uint32_t j : unit.requests) {
        if (j >= n_reads) {
          continue;
        }
        copies_into_current(plan.reads[j], module_span);
        const auto outcome =
            store_.vote(plan.reads[j], module_span, stamp, *hooks_);
        read_values[j] = outcome.winner.value;
        ++tally.stats.reads_served;
        tally.stats.erasures_skipped += outcome.erased;
        tally.stats.units_faulty += outcome.erased + outcome.dissenting;
        tally.fault_work += outcome.survivors;
        if (outcome.survivors == 0) {
          ++tally.stats.uncorrectable;
          ctx.flag_read(j);
          if (journal_events) {
            tally.events.push_back(
                {stamp, obs::EventKind::kUncorrectable, outcome.erased,
                 plan.reads[j].index(), outcome.dissenting, 0});
          }
        } else if (outcome.erased + outcome.dissenting > 0) {
          ++tally.stats.faults_masked;
          if (journal_events) {
            tally.events.push_back(
                {stamp, obs::EventKind::kDegradedVote, outcome.erased,
                 plan.reads[j].index(), outcome.dissenting,
                 outcome.survivors});
          }
        }
      }
      for (const std::uint32_t j : unit.requests) {
        const std::uint32_t w = plan.request_write[j];
        if (w == pram::AccessPlan::kNone) {
          continue;
        }
        copies_into_current(plan.writes[w].var, module_span);
        tally.stats.writes_dropped += store_.store_all_prepared(
            plan.writes[w].var, module_span, plan.writes[w].value, stamp,
            stamp, stamp, *hooks_, tally.stats.corrupt_stores);
        tally.fault_work += r;
      }
    }
  };
  if (executor != nullptr && workers > 1) {
    executor->run_with(groups.size(), workers, body);
  } else {
    body(0, groups.size());
  }

  // Deterministic post-merge: chunk tallies fold in chunk order (every
  // field is a commutative sum, so any worker count folds identically;
  // journal events re-sort canonically at step commit).
  std::uint64_t fault_work = 0;
  std::uint64_t masked = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t erased_total = 0;
  std::uint64_t dropped = 0;
  for (const auto& tally : chunk_scratch_) {
    reliability_.merge(tally.stats);
    fault_work += tally.fault_work;
    masked += tally.stats.faults_masked;
    uncorrectable += tally.stats.uncorrectable;
    erased_total += tally.stats.erasures_skipped;
    dropped += tally.stats.writes_dropped;
    for (const auto& event : tally.events) {
      obs_event(event.kind, event.entity, event.unit, event.a, event.b);
    }
  }
  obs_degraded_counts(masked, uncorrectable, erased_total, dropped);
  if (hooks_ != nullptr) {
    flagged_reads_.assign(ctx.flags().begin(), ctx.flags().end());
  }
  return fault_work;
}

pram::Word MajorityMemory::peek(VarId var) const {
  if (hooks_ != nullptr) {
    // A fault-aware verifier reads the way the degraded protocol does,
    // at the current step of the fault clock.
    std::vector<ModuleId> modules(engine_->map().redundancy());
    copies_into_current(var, modules);
    return store_.vote(var, modules, steps_served(), *hooks_).winner.value;
  }
  return store_.ground_truth(var).value;
}

void MajorityMemory::poke(VarId var, pram::Word value) {
  // Out-of-band initialization: set every copy so the poke is the ground
  // truth regardless of which copies later reads access. Under fault
  // injection, initialization is subject to the same faults as any other
  // store (modules dead at the current step never learn the value).
  if (hooks_ != nullptr) {
    const std::uint64_t stamp = steps_served();
    std::vector<ModuleId> modules(engine_->map().redundancy());
    copies_into_current(var, modules);
    reliability_.writes_dropped +=
        store_.store_all(var, modules, value, stamp, stamp, stamp,
                         *hooks_, reliability_.corrupt_stores);
    return;
  }
  for (std::uint32_t copy = 0; copy < engine_->map().redundancy(); ++copy) {
    store_.write(var, copy, value, steps_served());
  }
}

pram::ScrubResult MajorityMemory::scrub(std::uint64_t budget) {
  pram::ScrubResult result;
  if (hooks_ == nullptr || budget == 0) {
    return result;
  }
  const std::uint64_t stamp = steps_served();
  const std::uint32_t r = engine_->map().redundancy();
  const std::uint64_t m = engine_->map().num_vars();
  std::vector<ModuleId> modules(r);
  // Region fast path state (widths > 1): one memcmp-majority pass per
  // region certifies bytewise unanimity across all r copies; every
  // variable of a unanimous region with no fault hook firing is then
  // skipped without gathering or counting ballots — the word-granular
  // vote below is the fallback for dissenting regions. Valid within one
  // scrub call: repairs only rewrite columns the fallback path visited,
  // never the columns the fast path certified.
  const std::uint64_t all_mask = r >= 64 ? ~0ULL : ((1ULL << r) - 1);
  std::uint64_t cached_region = ~0ULL;
  bool cached_unanimous = false;
  for (std::uint64_t n = 0; n < budget && n < m; ++n) {
    const VarId var(static_cast<std::uint32_t>(scrub_cursor_));
    scrub_cursor_ = (scrub_cursor_ + 1) % m;
    ++result.scanned;
    copies_into_current(var, modules);
    if (store_.region_words() > 1) {
      const std::uint64_t region = store_.region_of(var);
      if (region != cached_region) {
        cached_region = region;
        std::uint32_t dissent = 1;
        cached_unanimous = store_.vote_region(region, all_mask, &dissent) !=
                               CopyStore::kNoRegionMajority &&
                           dissent == 0;
      }
      if (cached_unanimous) {
        bool clean = true;
        for (std::uint32_t copy = 0; copy < r && clean; ++copy) {
          pram::Word stuck = 0;
          clean = !hooks_->module_dead(modules[copy], stamp) &&
                  !hooks_->stuck_at(var.index(), copy, stamp, stuck);
        }
        if (clean) {
          // Same outcome (and work accounting) the word vote would
          // produce for a full-survivor, zero-dissent variable.
          result.work += r;
          continue;
        }
      }
    }
    const auto outcome = store_.vote(var, modules, stamp, *hooks_);
    result.work += outcome.survivors;
    if (outcome.survivors == 0 ||
        (outcome.erased == 0 && outcome.dissenting == 0)) {
      // Fully healthy (nothing to do) or fully lost (nothing to rebuild
      // from — the data is gone until the next write recreates it).
      continue;
    }
    // A re-store only helps when some live, NON-stuck copy disagrees
    // with the winner (stale or corrupted storage): stuck copies read
    // their stuck value no matter what is written, so a pass whose only
    // dissent is stuck-at must not rewrite the variable forever.
    bool store_helps = false;
    if (!store_.touched(var)) {
      // Untouched row: every real copy is the initial {0, 0} == the
      // winner, so relocation alone restores full redundancy and the
      // sparse store stays sparse.
    } else if (outcome.erased > 0) {
      // Copies on dead modules missed write-through while dead: after
      // relocation their stored words are stale and must be re-stamped.
      store_helps = true;
    } else {
      for (std::uint32_t copy = 0; copy < r && !store_helps; ++copy) {
        if (hooks_->module_dead(modules[copy], stamp)) {
          continue;
        }
        pram::Word stuck = 0;
        if (hooks_->stuck_at(var.index(), copy, stamp, stuck)) {
          continue;
        }
        const Copy& held = store_.at(var, copy);
        store_helps = held.value != outcome.winner.value ||
                      held.stamp != outcome.winner.stamp;
      }
    }
    if (outcome.erased == 0 && !store_helps) {
      continue;  // steady state: only unfixable (stuck) dissent remains
    }
    // Re-home the copies sitting on dead modules; copies whose relocated
    // module later died are re-homed again.
    std::uint32_t relocated = 0;
    for (std::uint32_t copy = 0; copy < r; ++copy) {
      if (!hooks_->module_dead(modules[copy], stamp)) {
        continue;
      }
      ModuleId replacement;
      if (pram::pick_healthy_module(*hooks_, stamp,
                                    engine_->map().num_modules(), map_salt_,
                                    var.index(), copy, modules,
                                    replacement)) {
        obs_event(obs::EventKind::kRelocation, var.index(), copy,
                  modules[copy].index(), replacement.index());
        relocated_[var.index() * r + copy] = replacement;
        modules[copy] = replacement;
        ++relocated;
      }
    }
    result.relocated += relocated;
    reliability_.units_relocated += relocated;
    if (!store_.touched(var)) {
      // Relocation-only repair: the initial copies already agree with
      // the winner, so writing them would just densify the store.
      if (relocated > 0) {
        ++result.repaired;
        ++reliability_.units_repaired;
        obs_event(obs::EventKind::kScrubRepair, var.index(), relocated);
      }
      continue;
    }
    // Re-stamp the vote winner onto every live copy at the current step
    // (strictly fresher than any committed write, so the repair wins
    // future freshness ties). The corruption re-roll uses a dedicated
    // counter: a store that corrupted at its protocol stamp rolls fresh
    // here instead of deterministically re-corrupting.
    const std::uint64_t reroll = (1ULL << 63) | scrub_stores_++;
    const std::uint32_t dropped =
        store_.store_all(var, modules, outcome.winner.value, stamp, reroll,
                         stamp, *hooks_, reliability_.corrupt_stores);
    result.work += r - dropped;
    ++result.repaired;
    ++reliability_.units_repaired;
    obs_event(obs::EventKind::kScrubRepair, var.index(), relocated);
  }
  return result;
}

void MajorityMemory::snapshot_body(pram::SnapshotSink& sink) {
  const std::uint32_t r = store_.redundancy();
  const std::uint32_t w = store_.region_words();
  put_u32(sink, r);
  put_u32(sink, w);

  std::vector<std::uint64_t> regions;
  regions.reserve(store_.rows().size());
  // pramlint: ordered-fold (keys collected then sorted before emission)
  for (const auto& [region, row] : store_.rows()) {
    (void)row;
    regions.push_back(region);
  }
  std::sort(regions.begin(), regions.end());
  put_u64(sink, regions.size());
  for (const std::uint64_t region : regions) {
    put_u64(sink, region);
    const auto& row = store_.rows().at(region);
    // Copy is padding-free (static_assert in copy_store.hpp), so the row
    // serializes as one raw span of (value, stamp) pairs.
    sink.write(row.data(), row.size() * sizeof(Copy));
  }

  std::vector<std::uint64_t> keys;
  keys.reserve(relocated_.size());
  // pramlint: ordered-fold (keys collected then sorted before emission)
  for (const auto& [key, module] : relocated_) {
    (void)module;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  put_u64(sink, keys.size());
  for (const std::uint64_t key : keys) {
    put_u64(sink, key);
    put_u32(sink, relocated_.at(key).value());
  }

  put_u64(sink, scrub_cursor_);
  put_u64(sink, scrub_stores_);
}

bool MajorityMemory::restore_body(pram::SnapshotSource& source) {
  std::uint32_t r = 0;
  std::uint32_t w = 0;
  if (!get_u32(source, r) || r != store_.redundancy() ||
      !get_u32(source, w) || w != store_.region_words()) {
    return false;
  }

  store_.clear_rows();
  std::uint64_t n_rows = 0;
  if (!get_u64(source, n_rows)) {
    return false;
  }
  const std::size_t row_len = static_cast<std::size_t>(r) * w;
  std::vector<Copy> row(row_len);
  for (std::uint64_t i = 0; i < n_rows; ++i) {
    std::uint64_t region = 0;
    if (!get_u64(source, region) || region >= store_.num_regions() ||
        !source.read(row.data(), row_len * sizeof(Copy))) {
      return false;
    }
    store_.restore_row(region, row);
  }

  relocated_.clear();
  std::uint64_t n_relocated = 0;
  if (!get_u64(source, n_relocated)) {
    return false;
  }
  for (std::uint64_t i = 0; i < n_relocated; ++i) {
    std::uint64_t key = 0;
    std::uint32_t module = 0;
    if (!get_u64(source, key) || !get_u32(source, module)) {
      return false;
    }
    relocated_.insert_or_assign(key, ModuleId(module));
  }

  return get_u64(source, scrub_cursor_) && get_u64(source, scrub_stores_);
}

}  // namespace pramsim::majority
