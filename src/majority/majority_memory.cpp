#include "majority/majority_memory.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace pramsim::majority {

MajorityMemory::MajorityMemory(std::unique_ptr<AccessEngine> engine)
    : engine_(std::move(engine)),
      store_(engine_->map().num_vars(), engine_->map().redundancy()),
      n_processors_(std::max<std::uint32_t>(engine_->n_processors(), 1)) {
  PRAMSIM_ASSERT(engine_ != nullptr);
  PRAMSIM_ASSERT_MSG(engine_->map().redundancy() % 2 == 1,
                     "majority rule requires odd r = 2c-1");
}

MajorityMemory::MajorityMemory(std::shared_ptr<const memmap::MemoryMap> map,
                               SchedulerConfig scheduler)
    : MajorityMemory(
          std::make_unique<DmmpcEngine>(std::move(map), scheduler)) {}

std::uint64_t MajorityMemory::degraded_serve(
    std::span<const VarId> reads, std::span<pram::Word> read_values,
    std::span<const pram::VarWrite> writes) {
  // Degraded-mode protocol: majority-vote reads over every surviving
  // copy, write-through to every surviving copy. The engine's schedule
  // still prices the step; the widened copy traffic is extra work.
  const std::uint32_t r = engine_->map().redundancy();
  std::uint64_t fault_work = 0;
  std::vector<ModuleId> modules(r);
  flagged_reads_.assign(reads.size(), false);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    engine_->map().copies_into(reads[i], modules);
    const auto outcome = store_.vote(reads[i], modules, *hooks_);
    read_values[i] = outcome.winner.value;
    ++reliability_.reads_served;
    reliability_.erasures_skipped += outcome.erased;
    reliability_.units_faulty += outcome.erased + outcome.dissenting;
    fault_work += outcome.survivors;
    if (outcome.survivors == 0) {
      ++reliability_.uncorrectable;
      flagged_reads_[i] = true;
    } else if (outcome.erased + outcome.dissenting > 0) {
      ++reliability_.faults_masked;
    }
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    engine_->map().copies_into(writes[i].var, modules);
    reliability_.writes_dropped +=
        store_.store_all(writes[i].var, modules, writes[i].value, stamp_,
                         *hooks_, reliability_.corrupt_stores);
    fault_work += r;
  }
  return fault_work;
}

pram::MemStepCost MajorityMemory::step(std::span<const VarId> reads,
                                       std::span<pram::Word> read_values,
                                       std::span<const pram::VarWrite> writes) {
  PRAMSIM_ASSERT(reads.size() == read_values.size());
  ++stamp_;

  // Union of accessed variables: one protocol request per distinct var.
  // A variable that is both read and written this step is accessed once;
  // the accessed copy set serves the read (pre-step value) and then takes
  // the write. (This is the LEGACY per-step dedup; the plan path in
  // serve() consumes the same union precomputed by core::PlanBuilder.)
  std::vector<VarRequest> requests;
  requests.reserve(reads.size() + writes.size());
  std::vector<std::size_t> read_req(reads.size());
  std::vector<std::size_t> write_req(writes.size());
  std::unordered_map<std::uint32_t, std::size_t> index;
  std::uint32_t next_proc = 0;
  auto request_for = [&](VarId var, pram::AccessOp op) {
    auto [it, fresh] = index.try_emplace(var.value(), requests.size());
    if (fresh) {
      requests.push_back({var, ProcId(next_proc % n_processors_), op});
      ++next_proc;
    } else if (op == pram::AccessOp::kWrite) {
      requests[it->second].op = pram::AccessOp::kWrite;
    }
    return it->second;
  };
  for (std::size_t i = 0; i < reads.size(); ++i) {
    read_req[i] = request_for(reads[i], pram::AccessOp::kRead);
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    write_req[i] = request_for(writes[i].var, pram::AccessOp::kWrite);
  }

  const EngineResult result = engine_->run_step(requests);
  time_stats_.add(static_cast<double>(result.time));
  last_stats_ = result.stats;

  const std::uint32_t r = engine_->map().redundancy();
  std::uint64_t fault_work = 0;
  flagged_reads_.clear();
  if (hooks_ == nullptr) {
    // Healthy protocol: reads take the freshest stamp among the >= c
    // accessed copies; writes stamp exactly the accessed copies.
    for (std::size_t i = 0; i < reads.size(); ++i) {
      read_values[i] =
          store_.freshest(reads[i], result.accessed_mask[read_req[i]]).value;
    }
    for (std::size_t i = 0; i < writes.size(); ++i) {
      const std::uint64_t mask = result.accessed_mask[write_req[i]];
      for (std::uint32_t copy = 0; copy < r; ++copy) {
        if ((mask >> copy) & 1ULL) {
          store_.write(writes[i].var, copy, writes[i].value, stamp_);
        }
      }
    }
  } else {
    fault_work = degraded_serve(reads, read_values, writes);
  }

  return pram::MemStepCost{.time = result.time,
                           .work = result.work + fault_work,
                           .live_after_stage1 = result.stats.live_after_stage1,
                           .max_queue = result.stats.max_queue};
}

pram::MemStepCost MajorityMemory::serve(const pram::AccessPlan& plan,
                                        std::span<pram::Word> read_values) {
  PRAMSIM_ASSERT(plan.reads.size() == read_values.size());
  ++stamp_;

  // The plan's request list IS the access union in step()'s order (reads
  // first, then write-only variables); requesters are synthesized
  // round-robin exactly as the legacy dedup did.
  request_scratch_.clear();
  request_scratch_.reserve(plan.requests.size());
  for (std::uint32_t j = 0; j < plan.requests.size(); ++j) {
    request_scratch_.push_back(
        {plan.requests[j].var, ProcId(j % n_processors_),
         plan.requests[j].op});
  }

  engine_->run_step_into(request_scratch_, engine_scratch_);
  const EngineResult& result = engine_scratch_;
  time_stats_.add(static_cast<double>(result.time));
  last_stats_ = result.stats;

  const std::uint32_t r = engine_->map().redundancy();
  std::uint64_t fault_work = 0;
  flagged_reads_.clear();
  if (hooks_ == nullptr) {
    for (std::size_t i = 0; i < plan.reads.size(); ++i) {
      read_values[i] =
          store_
              .freshest(plan.reads[i],
                        result.accessed_mask[plan.read_request[i]])
              .value;
    }
    for (std::size_t i = 0; i < plan.writes.size(); ++i) {
      const std::uint64_t mask =
          result.accessed_mask[plan.write_request[i]];
      for (std::uint32_t copy = 0; copy < r; ++copy) {
        if ((mask >> copy) & 1ULL) {
          store_.write(plan.writes[i].var, copy, plan.writes[i].value,
                       stamp_);
        }
      }
    }
  } else {
    fault_work = degraded_serve(plan.reads, read_values, plan.writes);
  }

  return pram::MemStepCost{.time = result.time,
                           .work = result.work + fault_work,
                           .live_after_stage1 = result.stats.live_after_stage1,
                           .max_queue = result.stats.max_queue};
}

pram::Word MajorityMemory::peek(VarId var) const {
  if (hooks_ != nullptr) {
    // A fault-aware verifier reads the way the degraded protocol does.
    std::vector<ModuleId> modules(engine_->map().redundancy());
    engine_->map().copies_into(var, modules);
    return store_.vote(var, modules, *hooks_).winner.value;
  }
  return store_.ground_truth(var).value;
}

void MajorityMemory::poke(VarId var, pram::Word value) {
  // Out-of-band initialization: set every copy so the poke is the ground
  // truth regardless of which copies later reads access. Under fault
  // injection, initialization is subject to the same static faults as
  // any other store (dead modules never learn the value).
  if (hooks_ != nullptr) {
    std::vector<ModuleId> modules(engine_->map().redundancy());
    engine_->map().copies_into(var, modules);
    reliability_.writes_dropped += store_.store_all(
        var, modules, value, stamp_, *hooks_, reliability_.corrupt_stores);
    return;
  }
  for (std::uint32_t copy = 0; copy < engine_->map().redundancy(); ++copy) {
    store_.write(var, copy, value, stamp_);
  }
}

}  // namespace pramsim::majority
