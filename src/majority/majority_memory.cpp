#include "majority/majority_memory.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace pramsim::majority {

MajorityMemory::MajorityMemory(std::unique_ptr<AccessEngine> engine)
    : engine_(std::move(engine)),
      store_(engine_->map().num_vars(), engine_->map().redundancy()),
      n_processors_(std::max<std::uint32_t>(engine_->n_processors(), 1)) {
  PRAMSIM_ASSERT(engine_ != nullptr);
  PRAMSIM_ASSERT_MSG(engine_->map().redundancy() % 2 == 1,
                     "majority rule requires odd r = 2c-1");
}

MajorityMemory::MajorityMemory(std::shared_ptr<const memmap::MemoryMap> map,
                               SchedulerConfig scheduler)
    : MajorityMemory(
          std::make_unique<DmmpcEngine>(std::move(map), scheduler)) {}

pram::MemStepCost MajorityMemory::step(std::span<const VarId> reads,
                                       std::span<pram::Word> read_values,
                                       std::span<const pram::VarWrite> writes) {
  PRAMSIM_ASSERT(reads.size() == read_values.size());
  ++stamp_;

  // Union of accessed variables: one protocol request per distinct var.
  // A variable that is both read and written this step is accessed once;
  // the accessed copy set serves the read (pre-step value) and then takes
  // the write.
  std::vector<VarRequest> requests;
  requests.reserve(reads.size() + writes.size());
  std::vector<std::size_t> read_req(reads.size());
  std::vector<std::size_t> write_req(writes.size());
  std::unordered_map<std::uint32_t, std::size_t> index;
  std::uint32_t next_proc = 0;
  auto request_for = [&](VarId var, pram::AccessOp op) {
    auto [it, fresh] = index.try_emplace(var.value(), requests.size());
    if (fresh) {
      requests.push_back({var, ProcId(next_proc % n_processors_), op});
      ++next_proc;
    } else if (op == pram::AccessOp::kWrite) {
      requests[it->second].op = pram::AccessOp::kWrite;
    }
    return it->second;
  };
  for (std::size_t i = 0; i < reads.size(); ++i) {
    read_req[i] = request_for(reads[i], pram::AccessOp::kRead);
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    write_req[i] = request_for(writes[i].var, pram::AccessOp::kWrite);
  }

  const EngineResult result = engine_->run_step(requests);
  time_stats_.add(static_cast<double>(result.time));
  last_stats_ = result.stats;

  // Reads first: freshest stamp among the >= c accessed copies.
  for (std::size_t i = 0; i < reads.size(); ++i) {
    read_values[i] =
        store_.freshest(reads[i], result.accessed_mask[read_req[i]]).value;
  }
  // Then writes: stamp the accessed copies with this step's number.
  const std::uint32_t r = engine_->map().redundancy();
  for (std::size_t i = 0; i < writes.size(); ++i) {
    const std::uint64_t mask = result.accessed_mask[write_req[i]];
    for (std::uint32_t copy = 0; copy < r; ++copy) {
      if ((mask >> copy) & 1ULL) {
        store_.write(writes[i].var, copy, writes[i].value, stamp_);
      }
    }
  }

  return pram::MemStepCost{.time = result.time,
                           .work = result.work,
                           .live_after_stage1 = result.stats.live_after_stage1,
                           .max_queue = result.stats.max_queue};
}

pram::Word MajorityMemory::peek(VarId var) const {
  return store_.ground_truth(var).value;
}

void MajorityMemory::poke(VarId var, pram::Word value) {
  // Out-of-band initialization: set every copy so the poke is the ground
  // truth regardless of which copies later reads access.
  for (std::uint32_t copy = 0; copy < engine_->map().redundancy(); ++copy) {
    store_.write(var, copy, value, stamp_);
  }
}

}  // namespace pramsim::majority
