// Round scheduler for the majority protocol on module-contention machines
// (MPC / DMMPC: unit module bandwidth, free interconnect).
//
// This is the access-scheduling core of Upfal-Wigderson as organized by
// Luccio-Pietracaprina-Pucci and adopted in the paper (§1, §3):
//
//   * processors are grouped into clusters of 2c-1;
//   * STAGE 1 interleaves the cluster's (up to) 2c-1 member variables over
//     phases, staggered across clusters: in phase t, cluster k works on
//     member (t + k) mod (2c-1), all cluster processors probing the
//     variable's still-unaccessed copies at once;
//   * a variable is live until c of its copies have been accessed, then
//     dead (it stops contending — the key idea);
//   * STAGE 2 drains the leftover live variables, one per cluster,
//     repeating phases until none remain.
//
// Each phase is one machine round: every module serves at most one copy
// access (deterministic tie-break). The returned round count *is* the
// DMMPC simulation time of the step (Theorem 2's measurable); the 2DMOT
// simulators in src/core reuse this scheduler's phase structure but charge
// network cycles per phase instead.
//
// Per DESIGN.md, phase bookkeeping (which variables are live, stage
// transitions) is computed centrally; the cost model charges only the
// module-bandwidth-limited copy accesses, which is what the theorems
// count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "memmap/memory_map.hpp"
#include "pram/types.hpp"
#include "util/scratch_map.hpp"
#include "util/stats.hpp"
#include "util/strong_id.hpp"

namespace pramsim::majority {

/// One distinct variable's combined access for a step. When the step both
/// reads and writes the variable, the single request carries the write
/// (op = kWrite, requester = the winning writer): the accessed copy set
/// serves the read and then commits the write, so losing the write marker
/// would silently drop the mutation from engine-level simulation.
struct VarRequest {
  VarId var;
  ProcId requester;
  pram::AccessOp op = pram::AccessOp::kRead;
};

struct SchedulerConfig {
  std::uint32_t c = 2;             ///< access threshold (r = 2c-1 expected)
  std::uint32_t cluster_size = 3;  ///< processors per cluster (usually r)
  std::uint32_t n_processors = 1;  ///< n
  /// Stage-1 interleaved turns given to each cluster member before the
  /// stage-2 drain begins (LPP use O(log log n); 2 suffices empirically
  /// and stage 2 mops up stragglers either way).
  std::uint32_t stage1_turns = 2;
  /// Ablation: no clusters — every live variable probes all unaccessed
  /// copies every round (maximal-parallelism upper bound).
  bool all_at_once = false;
};

struct ScheduleResult {
  std::uint64_t rounds = 0;
  std::uint64_t stage1_rounds = 0;
  std::uint64_t stage2_rounds = 0;
  std::uint64_t total_copy_accesses = 0;  ///< work (served probes)
  std::uint64_t live_after_stage1 = 0;
  std::uint64_t max_module_queue = 0;  ///< peak probes at one module/round
  /// Per request: bitmask of which copy indices were accessed (>= c bits
  /// set for every request on return).
  std::vector<std::uint64_t> accessed_mask;
  /// Live-variable count after each round — the decay curve whose
  /// geometric shape is the content of the Upfal-Wigderson progress
  /// argument (driven by the Lemma 2 expansion).
  std::vector<std::uint64_t> live_per_round;
};

/// Reusable per-instance scratch for schedule_step_into: request state
/// SoA, the flattened copy table, and the epoch-cleared per-round module
/// claim map. Owning one of these per engine makes a warmed-up scheduler
/// allocation-free per step (the old path rebuilt an unordered_map of
/// module claims EVERY ROUND).
struct ScheduleScratch {
  struct Claim {
    std::uint32_t request = 0;
    std::uint32_t copy = 0;
    std::uint32_t queue = 0;  ///< probes contending at this module
  };
  // Per-request protocol state (SoA mirrors of the old RequestState).
  std::vector<std::uint32_t> cluster;
  std::vector<std::uint32_t> member;
  std::vector<std::uint32_t> accessed;
  std::vector<std::uint64_t> mask;
  std::vector<std::uint8_t> dead;
  /// All requests' copies, flattened: request i's copies live at
  /// [i*r, (i+1)*r).
  std::vector<ModuleId> copies;
  util::ScratchMap<Claim> claims;          ///< module -> winning probe
  util::ScratchMap<std::uint32_t> slots;   ///< (cluster,member) -> request
  std::vector<std::uint32_t> active;
  std::vector<std::uint32_t> pending;
  std::vector<std::uint32_t> assigned;
};

/// Schedule one P-RAM step's worth of distinct-variable requests.
/// Precondition: requests hold distinct variables (combining already done)
/// and map.redundancy() <= 64.
///
/// This is the LEGACY entry: it rebuilds throwaway containers every call
/// (per-request copy vectors, a fresh module-claim map per round) — the
/// baseline the bench_throughput plan-vs-adapter contrast measures.
[[nodiscard]] ScheduleResult schedule_step(const memmap::MemoryMap& map,
                                           std::span<const VarRequest> requests,
                                           const SchedulerConfig& config);

/// Arena variant for the hot serve path: reuses `result`'s vectors and
/// `scratch` across steps; a warmed-up caller schedules without touching
/// the heap. Same protocol as schedule_step; cost telemetry can differ
/// only in deterministic tie-break detail (the claim map here resolves
/// module winners in insertion order, identically on every platform),
/// and every request still ends with >= c accessed copies.
void schedule_step_into(const memmap::MemoryMap& map,
                        std::span<const VarRequest> requests,
                        const SchedulerConfig& config,
                        ScheduleResult& result, ScheduleScratch& scratch);

}  // namespace pramsim::majority
