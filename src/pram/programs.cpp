#include "pram/programs.hpp"

#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pramsim::pram::programs {

namespace {
// Register conventions shared by all library programs.
constexpr Reg kPid = R15;    // processor id i
constexpr Reg kN = R14;      // processor count n
constexpr Reg kZero = R13;   // constant 0
constexpr Reg kTwo = R11;    // constant 2

void emit_prologue(Program& p) {
  p.pid(kPid).nprocs(kN).loadi(kZero, 0).loadi(kTwo, 2);
}
}  // namespace

ProgramSpec prefix_sum(std::uint32_t n) {
  PRAMSIM_ASSERT(n >= 1);
  Program p("prefix_sum");
  emit_prologue(p);
  // R1 = d (doubling offset)
  p.loadi(R1, 1);
  p.label("loop");
  // tmp[i] = x[i]
  p.sread(R2, kPid);            // R2 = x[i]
  p.add(R3, kPid, kN);          // R3 = n + i
  p.swrite(R3, R2);             // tmp[i] = x[i]
  // flag = (d <= i)
  p.sle(R4, R1, kPid);
  // addr = flag ? n+i-d : 2n+i   (masked processors read private scratch)
  p.add(R5, kPid, kN);
  p.sub(R5, R5, R1);            // n + i - d
  p.add(R6, kPid, kN);
  p.add(R6, R6, kN);            // 2n + i
  p.sub(R7, R5, R6);
  p.mul(R7, R7, R4);
  p.add(R5, R6, R7);            // selected address
  p.sread(R8, R5);              // tmp[i-d] (or scratch)
  p.mul(R8, R8, R4);            // mask contribution
  p.add(R2, R2, R8);
  p.swrite(kPid, R2);           // x[i] += tmp[i-d]
  // d *= 2; loop while d < n
  p.add(R1, R1, R1);
  p.slt(R4, R1, kN);
  p.jnz(R4, "loop");
  p.halt();
  p.finalize();
  return {std::move(p), 3ULL * n, ConflictPolicy::kErew};
}

ProgramSpec reduce_sum(std::uint32_t n) {
  PRAMSIM_ASSERT(n >= 1);
  Program p("reduce_sum");
  emit_prologue(p);
  p.loadi(R1, 1);               // d
  p.label("loop");
  p.add(R2, R1, R1);            // 2d
  p.mod(R3, kPid, R2);          // i mod 2d
  p.seq(R4, R3, kZero);         // (i mod 2d == 0)
  p.add(R5, kPid, R1);          // i + d
  p.slt(R6, R5, kN);            // i + d < n
  p.mul(R4, R4, R6);            // active flag
  // partner addr = active ? i+d : n+i
  p.add(R7, kPid, kN);          // n + i
  p.sub(R8, R5, R7);
  p.mul(R8, R8, R4);
  p.add(R7, R7, R8);
  p.sread(R9, R7);              // x[i+d] or scratch
  p.mul(R9, R9, R4);
  p.sread(R10, kPid);           // x[i]
  p.add(R10, R10, R9);
  p.swrite(kPid, R10);          // x[i] += masked partner
  p.add(R1, R1, R1);
  p.slt(R4, R1, kN);
  p.jnz(R4, "loop");
  p.halt();
  p.finalize();
  return {std::move(p), 2ULL * n, ConflictPolicy::kErew};
}

ProgramSpec list_rank(std::uint32_t n) {
  PRAMSIM_ASSERT(n >= 1);
  const auto rounds = static_cast<Word>(n > 1 ? util::ilog2_ceil(n) : 1);
  Program p("list_rank");
  emit_prologue(p);
  p.loadi(R1, rounds);
  p.label("loop");
  p.sread(R2, kPid);            // R2 = next[i]
  p.add(R4, R2, kN);
  p.sread(R5, R4);              // R5 = rank[next[i]]   (concurrent read)
  p.add(R6, kPid, kN);
  p.sread(R7, R6);              // R7 = rank[i]
  p.add(R7, R7, R5);
  p.swrite(R6, R7);             // rank[i] += rank[next[i]]
  p.sread(R8, R2);              // R8 = next[next[i]]   (concurrent read)
  p.swrite(kPid, R8);           // next[i] = next[next[i]]
  p.addi(R1, R1, -1);
  p.jnz(R1, "loop");
  p.halt();
  p.finalize();
  return {std::move(p), 2ULL * n, ConflictPolicy::kCrew};
}

ProgramSpec odd_even_sort(std::uint32_t n) {
  PRAMSIM_ASSERT(n >= 1);
  Program p("odd_even_sort");
  emit_prologue(p);
  p.loadi(R1, 0);               // round t
  p.label("loop");
  p.add(R2, kPid, R1);
  p.mod(R3, R2, kTwo);
  p.seq(R4, R3, kZero);         // (i + t) even
  p.addi(R5, kPid, 1);          // i + 1
  p.slt(R6, R5, kN);            // i + 1 < n
  p.mul(R4, R4, R6);            // active: handles pair (i, i+1)
  // own addr = active ? i : n+i
  p.add(R7, kPid, kN);          // n + i
  p.sub(R8, kPid, R7);          // -n
  p.mul(R8, R8, R4);
  p.add(R7, R7, R8);
  // partner addr = active ? i+1 : 2n+i
  p.add(R9, kPid, kN);
  p.add(R9, R9, kN);            // 2n + i
  p.sub(R10, R5, R9);
  p.mul(R10, R10, R4);
  p.add(R9, R9, R10);
  p.sread(R2, R7);              // first element (or scratch)
  p.sread(R3, R9);              // second element (or scratch)
  p.min(R10, R2, R3);
  p.max(R2, R2, R3);
  p.swrite(R7, R10);            // first  = min
  p.swrite(R9, R2);             // second = max
  p.addi(R1, R1, 1);
  p.slt(R4, R1, kN);
  p.jnz(R4, "loop");
  p.halt();
  p.finalize();
  return {std::move(p), 3ULL * n, ConflictPolicy::kErew};
}

ProgramSpec matvec(std::uint32_t n_rows) {
  PRAMSIM_ASSERT(n_rows >= 1);
  Program p("matvec");
  emit_prologue(p);
  p.loadi(R1, 0);               // j
  p.loadi(R2, 0);               // accumulator
  p.mul(R3, kPid, kN);          // i * N
  p.mul(R6, kN, kN);            // N^2 (base of x)
  p.label("loop");
  p.add(R4, R3, R1);
  p.sread(R5, R4);              // A[i][j]
  p.add(R7, R6, R1);
  p.sread(R8, R7);              // x[j]  (concurrent read by all rows)
  p.mul(R5, R5, R8);
  p.add(R2, R2, R5);
  p.addi(R1, R1, 1);
  p.slt(R9, R1, kN);
  p.jnz(R9, "loop");
  p.add(R7, R6, kN);
  p.add(R7, R7, kPid);
  p.swrite(R7, R2);             // y[i]
  p.halt();
  p.finalize();
  const std::uint64_t n64 = n_rows;
  return {std::move(p), n64 * n64 + 2 * n64, ConflictPolicy::kCrew};
}

ProgramSpec bitonic_sort(std::uint32_t n) {
  PRAMSIM_ASSERT(n >= 1);
  PRAMSIM_ASSERT_MSG(n == 1 || util::is_pow2(n),
                     "bitonic sort requires a power-of-two input size");
  Program p("bitonic_sort");
  emit_prologue(p);
  if (n == 1) {
    p.halt();
    p.finalize();
    return {std::move(p), 3, ConflictPolicy::kErew};
  }
  // R1 = k (stage size), R2 = j (pass distance).
  p.loadi(R1, 2);
  p.label("stage");
  p.div(R2, R1, kTwo);          // j = k / 2
  p.label("pass");
  // partner = i XOR j; active iff partner > i.
  p.xor_(R3, kPid, R2);
  p.slt(R4, kPid, R3);          // active = (i < partner)
  // ascending iff (i & k) == 0.
  p.and_(R5, kPid, R1);
  p.seq(R5, R5, kZero);         // dir = 1 ascending, 0 descending
  // own addr   = active ? i       : n + i
  p.add(R6, kPid, kN);          // n + i
  p.sub(R7, kPid, R6);          // -n
  p.mul(R7, R7, R4);
  p.add(R6, R6, R7);
  // partner addr = active ? partner : 2n + i
  p.add(R8, kPid, kN);
  p.add(R8, R8, kN);            // 2n + i
  p.sub(R9, R3, R8);
  p.mul(R9, R9, R4);
  p.add(R8, R8, R9);
  p.sread(R9, R6);              // first value (or scratch)
  p.sread(R10, R8);             // second value (or scratch)
  p.min(R3, R9, R10);           // R3 = min (partner reg no longer needed)
  p.max(R9, R9, R10);           // R9 = max
  // lo' = dir ? min : max = max + dir*(min-max); hi' = min+max-lo'.
  p.sub(R10, R3, R9);
  p.mul(R10, R10, R5);
  p.add(R10, R9, R10);          // R10 = lo'
  p.add(R3, R3, R9);
  p.sub(R3, R3, R10);           // R3 = hi'
  p.swrite(R6, R10);
  p.swrite(R8, R3);
  // j /= 2; loop while j >= 1.
  p.div(R2, R2, kTwo);
  p.slt(R4, kZero, R2);
  p.jnz(R4, "pass");
  // k *= 2; loop while k <= n.
  p.add(R1, R1, R1);
  p.sle(R4, R1, kN);
  p.jnz(R4, "stage");
  p.halt();
  p.finalize();
  return {std::move(p), 3ULL * n, ConflictPolicy::kErew};
}

ProgramSpec broadcast(std::uint32_t n) {
  PRAMSIM_ASSERT(n >= 1);
  Program p("broadcast");
  emit_prologue(p);
  p.loadi(R1, 1);               // d
  p.label("loop");
  p.slt(R4, kPid, R1);          // i < d
  p.add(R5, kPid, R1);          // i + d
  p.slt(R6, R5, kN);            // i + d < n
  p.mul(R4, R4, R6);            // active
  // read addr  = active ? i     : n + i
  p.add(R7, kPid, kN);
  p.sub(R8, kPid, R7);
  p.mul(R8, R8, R4);
  p.add(R7, R7, R8);
  // write addr = active ? i + d : n + i
  p.add(R9, kPid, kN);
  p.sub(R10, R5, R9);
  p.mul(R10, R10, R4);
  p.add(R9, R9, R10);
  p.sread(R2, R7);
  p.swrite(R9, R2);
  p.add(R1, R1, R1);
  p.slt(R4, R1, kN);
  p.jnz(R4, "loop");
  p.halt();
  p.finalize();
  return {std::move(p), 2ULL * n, ConflictPolicy::kErew};
}

ProgramSpec broadcast_read() {
  Program p("broadcast_read");
  p.loadi(R1, 0);
  p.sread(R2, R1);   // everyone reads shared[0]
  p.halt();
  p.finalize();
  return {std::move(p), 1, ConflictPolicy::kCrew};
}

ProgramSpec common_write(Word value) {
  Program p("common_write");
  p.loadi(R1, 0);
  p.loadi(R2, value);
  p.swrite(R1, R2);  // everyone writes the same value to shared[0]
  p.halt();
  p.finalize();
  return {std::move(p), 1, ConflictPolicy::kCrcwCommon};
}

ProgramSpec pid_write() {
  Program p("pid_write");
  p.loadi(R1, 0);
  p.pid(R2);
  p.swrite(R1, R2);  // everyone writes its pid to shared[0]
  p.halt();
  p.finalize();
  return {std::move(p), 1, ConflictPolicy::kCrcwArbitrary};
}

ProgramSpec random_exclusive(std::uint32_t n, std::uint32_t rounds,
                             std::uint64_t seed) {
  PRAMSIM_ASSERT(n >= 2);
  constexpr std::uint32_t kBlock = 4;
  util::Rng rng(seed);
  Program p("random_exclusive");
  emit_prologue(p);
  p.muli(R1, kPid, kBlock);  // R1 = own block base
  p.loadi(R10, 0);           // R10 = running accumulator
  for (std::uint32_t round = 0; round < rounds; ++round) {
    const auto off = static_cast<Word>(rng.below(kBlock));
    const auto off2 = static_cast<Word>(rng.below(kBlock));
    const auto imm = static_cast<Word>(1 + rng.below(97));
    switch (rng.below(3)) {
      case 0:
        // Read-modify-write inside the processor's own block.
        p.sread(R3, R1, off);
        if (rng.below(2) == 0) {
          p.addi(R3, R3, imm);
        } else {
          p.loadi(R4, imm);
          p.xor_(R3, R3, R4);
        }
        p.swrite(R1, R3, off2);
        p.add(R10, R10, R3);
        break;
      case 1: {
        // RMW on a shifted permutation of the blocks: processor i works
        // on block (i + shift) mod n — exclusive for every shift.
        const auto shift = static_cast<Word>(1 + rng.below(n - 1));
        p.addi(R5, kPid, shift);
        p.mod(R5, R5, kN);
        p.muli(R5, R5, kBlock);
        p.sread(R6, R5, off);
        p.addi(R6, R6, imm);
        p.swrite(R5, R6, off2);
        break;
      }
      default:
        // Spill the accumulator into the processor's own block.
        p.addi(R10, R10, imm);
        p.swrite(R1, R10, off);
        break;
    }
  }
  p.halt();
  p.finalize();
  return {std::move(p), static_cast<std::uint64_t>(n) * kBlock,
          ConflictPolicy::kErew};
}

}  // namespace pramsim::pram::programs
