#include "pram/instruction.hpp"

#include <array>
#include <sstream>

namespace pramsim::pram {

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kLoadImm: return "loadi";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kMod: return "mod";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kSlt: return "slt";
    case Opcode::kSle: return "sle";
    case Opcode::kSeq: return "seq";
    case Opcode::kSne: return "sne";
    case Opcode::kAddImm: return "addi";
    case Opcode::kMulImm: return "muli";
    case Opcode::kJmp: return "jmp";
    case Opcode::kJz: return "jz";
    case Opcode::kJnz: return "jnz";
    case Opcode::kLoadLocal: return "lload";
    case Opcode::kStoreLocal: return "lstore";
    case Opcode::kReadShared: return "sread";
    case Opcode::kWriteShared: return "swrite";
    case Opcode::kPid: return "pid";
    case Opcode::kNprocs: return "nprocs";
  }
  return "???";
}

std::string disassemble(const Instruction& ins) {
  std::ostringstream out;
  out << to_string(ins.op);
  auto r = [](Reg reg) { return "r" + std::to_string(reg); };
  switch (ins.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
      break;
    case Opcode::kLoadImm:
      out << " " << r(ins.r1) << ", " << ins.imm;
      break;
    case Opcode::kMov:
    case Opcode::kPid:
    case Opcode::kNprocs:
      out << " " << r(ins.r1);
      if (ins.op == Opcode::kMov) {
        out << ", " << r(ins.r2);
      }
      break;
    case Opcode::kAddImm:
    case Opcode::kMulImm:
      out << " " << r(ins.r1) << ", " << r(ins.r2) << ", " << ins.imm;
      break;
    case Opcode::kJmp:
      out << " @" << ins.imm;
      break;
    case Opcode::kJz:
    case Opcode::kJnz:
      out << " " << r(ins.r1) << ", @" << ins.imm;
      break;
    case Opcode::kLoadLocal:
    case Opcode::kReadShared:
      out << " " << r(ins.r1) << ", [" << r(ins.r2) << "+" << ins.imm << "]";
      break;
    case Opcode::kStoreLocal:
    case Opcode::kWriteShared:
      out << " [" << r(ins.r2) << "+" << ins.imm << "], " << r(ins.r1);
      break;
    default:
      out << " " << r(ins.r1) << ", " << r(ins.r2) << ", " << r(ins.r3);
      break;
  }
  return out.str();
}

std::string to_string(ConflictPolicy policy) {
  switch (policy) {
    case ConflictPolicy::kErew: return "EREW";
    case ConflictPolicy::kCrew: return "CREW";
    case ConflictPolicy::kCrcwCommon: return "CRCW-common";
    case ConflictPolicy::kCrcwArbitrary: return "CRCW-arbitrary";
    case ConflictPolicy::kCrcwPriority: return "CRCW-priority";
    case ConflictPolicy::kCrcwMax: return "CRCW-max";
  }
  return "???";
}

}  // namespace pramsim::pram
