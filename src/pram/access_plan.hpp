// AccessPlan: one P-RAM step, combined and pre-grouped for the serve path.
//
// The legacy step() interface hands every memory organization raw
// (reads, writes) lists and leaves the per-step bookkeeping — deduping
// the variable union, pairing reads with their requests, grouping by
// target module/block — to be rebuilt from scratch inside each scheme.
// An AccessPlan is that bookkeeping computed ONCE (by core::PlanBuilder),
// stored SoA in a reusable arena, and shared by every layer that serves
// the step: schemes read precomputed index arrays instead of rebuilding
// unordered_maps.
//
// Lifetime: every span aliases the owning PlanBuilder's arena and is valid
// until that builder's next build(). Plans are immutable once built, so a
// generator thread can build plan N+1 while a worker serves plan N (the
// double-buffered pipeline in core::SimulationPipeline).
#pragma once

#include <cstdint>
#include <span>

#include "pram/types.hpp"

namespace pramsim::pram {

/// One distinct variable's combined access for the step. `op` follows the
/// write-wins convention (kWrite when any processor writes the variable);
/// `is_read` is true when any processor also reads it, so schemes that
/// need the full read/write split (e.g. IDA block staging) don't lose the
/// read under a concurrent write.
struct PlanRequest {
  VarId var;
  AccessOp op = AccessOp::kRead;
  bool is_read = false;
};

/// The combined step. reads/writes carry exactly the arguments the legacy
/// step() entry expects (distinct reads in first-appearance order;
/// CW-resolved distinct writes), so the default serve() adapter is a
/// zero-copy forward. The remaining arrays are the precomputed joins.
struct AccessPlan {
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// Distinct read variables, first-appearance order.
  std::span<const VarId> reads;
  /// Distinct writes with their winning (lowest-writer-id) values.
  std::span<const VarWrite> writes;

  /// The variable union: every read variable (in reads order) followed by
  /// the write-only variables (in writes order) — the request list the
  /// majority protocols serve, precomputed so schemes skip their per-step
  /// dedup tables.
  std::span<const PlanRequest> requests;
  /// read_request[i] = index into requests serving reads[i].
  std::span<const std::uint32_t> read_request;
  /// write_request[i] = index into requests committing writes[i].
  std::span<const std::uint32_t> write_request;
  /// request_write[j] = index into writes for request j, or kNone when
  /// the request is read-only (the inverse join of write_request).
  std::span<const std::uint32_t> request_write;

  // ----- target grouping (populated iff the target memory opted in via
  // MemorySystem::wants_plan_groups) -----
  //
  // Requests bucketed by MemorySystem::plan_group_of (module / block /
  // shard key), CSR layout: group g spans
  //   group_requests[group_offsets[g] .. group_offsets[g+1])
  // with keys ascending in group_keys[g]; within a group, requests keep
  // their plan order.
  std::span<const std::uint64_t> group_keys;
  std::span<const std::uint32_t> group_offsets;
  std::span<const std::uint32_t> group_requests;
  /// request_group[j] = index of the group containing request j (kNone
  /// when grouping was skipped).
  std::span<const std::uint32_t> request_group;

  [[nodiscard]] std::size_t num_groups() const { return group_keys.size(); }
  [[nodiscard]] bool grouped() const { return !group_offsets.empty(); }

  /// Group g's requests (indices into `requests`), in plan order.
  [[nodiscard]] std::span<const std::uint32_t> group(std::size_t g) const {
    return group_requests.subspan(group_offsets[g],
                                  group_offsets[g + 1] - group_offsets[g]);
  }
};

/// The plan's pre-partitioned module groups as schedulable work units:
/// group-parallel backends iterate GroupRange and fan contiguous chunks
/// of it across executor workers. Each unit is one group — requests
/// sharing a plan_group_of key (target module / block) — and units touch
/// disjoint variables by construction, so serving them in any order (or
/// concurrently) commits the same state; only telemetry needs a
/// deterministic post-merge.
class GroupRange {
 public:
  explicit GroupRange(const AccessPlan& plan) : plan_(&plan) {}

  struct Unit {
    std::uint64_t key = 0;  ///< the shared plan_group_of key
    std::span<const std::uint32_t> requests;  ///< indices into plan.requests
  };

  [[nodiscard]] std::size_t size() const { return plan_->num_groups(); }
  [[nodiscard]] Unit operator[](std::size_t g) const {
    return {plan_->group_keys[g], plan_->group(g)};
  }

 private:
  const AccessPlan* plan_;
};

}  // namespace pramsim::pram
