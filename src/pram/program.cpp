#include "pram/program.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace pramsim::pram {

Program& Program::emit(Instruction ins) {
  PRAMSIM_ASSERT_MSG(!finalized_, "cannot emit into a finalized program");
  code_.push_back(ins);
  return *this;
}

Program& Program::emit_jump(Opcode op, Reg r, const std::string& label) {
  fixups_.push_back({code_.size(), label});
  return emit({op, r, 0, 0, 0});
}

Program& Program::nop() { return emit({Opcode::kNop, 0, 0, 0, 0}); }
Program& Program::halt() { return emit({Opcode::kHalt, 0, 0, 0, 0}); }
Program& Program::loadi(Reg r, Word imm) {
  return emit({Opcode::kLoadImm, r, 0, 0, imm});
}
Program& Program::mov(Reg dst, Reg src) {
  return emit({Opcode::kMov, dst, src, 0, 0});
}

#define PRAMSIM_EMIT3(method, opcode)                  \
  Program& Program::method(Reg dst, Reg a, Reg b) {    \
    return emit({Opcode::opcode, dst, a, b, 0});       \
  }
PRAMSIM_EMIT3(add, kAdd)
PRAMSIM_EMIT3(sub, kSub)
PRAMSIM_EMIT3(mul, kMul)
PRAMSIM_EMIT3(div, kDiv)
PRAMSIM_EMIT3(mod, kMod)
PRAMSIM_EMIT3(min, kMin)
PRAMSIM_EMIT3(max, kMax)
PRAMSIM_EMIT3(and_, kAnd)
PRAMSIM_EMIT3(or_, kOr)
PRAMSIM_EMIT3(xor_, kXor)
PRAMSIM_EMIT3(shl, kShl)
PRAMSIM_EMIT3(shr, kShr)
PRAMSIM_EMIT3(slt, kSlt)
PRAMSIM_EMIT3(sle, kSle)
PRAMSIM_EMIT3(seq, kSeq)
PRAMSIM_EMIT3(sne, kSne)
#undef PRAMSIM_EMIT3

Program& Program::addi(Reg dst, Reg a, Word imm) {
  return emit({Opcode::kAddImm, dst, a, 0, imm});
}
Program& Program::muli(Reg dst, Reg a, Word imm) {
  return emit({Opcode::kMulImm, dst, a, 0, imm});
}
Program& Program::jmp(const std::string& label) {
  return emit_jump(Opcode::kJmp, 0, label);
}
Program& Program::jz(Reg r, const std::string& label) {
  return emit_jump(Opcode::kJz, r, label);
}
Program& Program::jnz(Reg r, const std::string& label) {
  return emit_jump(Opcode::kJnz, r, label);
}
Program& Program::lload(Reg dst, Reg addr, Word offset) {
  return emit({Opcode::kLoadLocal, dst, addr, 0, offset});
}
Program& Program::lstore(Reg addr, Reg src, Word offset) {
  return emit({Opcode::kStoreLocal, src, addr, 0, offset});
}
Program& Program::sread(Reg dst, Reg addr, Word offset) {
  return emit({Opcode::kReadShared, dst, addr, 0, offset});
}
Program& Program::swrite(Reg addr, Reg src, Word offset) {
  return emit({Opcode::kWriteShared, src, addr, 0, offset});
}
Program& Program::pid(Reg dst) { return emit({Opcode::kPid, dst, 0, 0, 0}); }
Program& Program::nprocs(Reg dst) {
  return emit({Opcode::kNprocs, dst, 0, 0, 0});
}

Program& Program::label(const std::string& name) {
  PRAMSIM_ASSERT_MSG(!finalized_, "cannot label a finalized program");
  if (!labels_.emplace(name, code_.size()).second) {
    throw std::runtime_error("duplicate label: " + name);
  }
  return *this;
}

void Program::finalize() {
  if (finalized_) {
    return;
  }
  for (const auto& fixup : fixups_) {
    const auto it = labels_.find(fixup.label);
    if (it == labels_.end()) {
      throw std::runtime_error("undefined label: " + fixup.label);
    }
    code_[fixup.pc].imm = static_cast<Word>(it->second);
  }
  fixups_.clear();
  finalized_ = true;
}

const Instruction& Program::at(std::size_t pc) const {
  PRAMSIM_ASSERT(pc < code_.size());
  return code_[pc];
}

std::string Program::listing() const {
  std::ostringstream out;
  out << "; program: " << name_ << " (" << code_.size() << " instructions)\n";
  // Two labels can share a pc; insertion order into `rev` decides which
  // one the listing prints, so iterate labels in sorted (pc, name) order
  // to keep the listing byte-stable across platforms.
  std::vector<std::pair<std::size_t, std::string>> ordered;
  ordered.reserve(labels_.size());
  // pramlint: ordered-fold (entries collected then sorted before use)
  for (const auto& [name, pc] : labels_) {
    ordered.emplace_back(pc, name);
  }
  std::sort(ordered.begin(), ordered.end());
  std::unordered_map<std::size_t, std::string> rev;
  for (const auto& [pc, name] : ordered) {
    rev[pc] = name;
  }
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    if (const auto it = rev.find(pc); it != rev.end()) {
      out << it->second << ":\n";
    }
    out << "  " << pc << ": " << disassemble(code_[pc]) << "\n";
  }
  return out.str();
}

}  // namespace pramsim::pram
