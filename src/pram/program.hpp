// Program container and assembler-style builder.
//
// Programs are built by chaining emit methods; forward jump targets use
// string labels resolved by finalize(). All processors execute the same
// program (SPMD), branching on their processor id via pid().
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pram/instruction.hpp"

namespace pramsim::pram {

class Program {
 public:
  Program() = default;
  explicit Program(std::string name) : name_(std::move(name)) {}

  // ----- emitters (each appends one instruction and returns *this) -----
  Program& nop();
  Program& halt();
  Program& loadi(Reg r, Word imm);
  Program& mov(Reg dst, Reg src);
  Program& add(Reg dst, Reg a, Reg b);
  Program& sub(Reg dst, Reg a, Reg b);
  Program& mul(Reg dst, Reg a, Reg b);
  Program& div(Reg dst, Reg a, Reg b);
  Program& mod(Reg dst, Reg a, Reg b);
  Program& min(Reg dst, Reg a, Reg b);
  Program& max(Reg dst, Reg a, Reg b);
  Program& and_(Reg dst, Reg a, Reg b);
  Program& or_(Reg dst, Reg a, Reg b);
  Program& xor_(Reg dst, Reg a, Reg b);
  Program& shl(Reg dst, Reg a, Reg b);
  Program& shr(Reg dst, Reg a, Reg b);
  Program& slt(Reg dst, Reg a, Reg b);
  Program& sle(Reg dst, Reg a, Reg b);
  Program& seq(Reg dst, Reg a, Reg b);
  Program& sne(Reg dst, Reg a, Reg b);
  Program& addi(Reg dst, Reg a, Word imm);
  Program& muli(Reg dst, Reg a, Word imm);
  Program& jmp(const std::string& label);
  Program& jz(Reg r, const std::string& label);
  Program& jnz(Reg r, const std::string& label);
  Program& lload(Reg dst, Reg addr, Word offset = 0);
  Program& lstore(Reg addr, Reg src, Word offset = 0);
  /// Shared-memory read: dst := shared[addr_reg + offset].
  Program& sread(Reg dst, Reg addr, Word offset = 0);
  /// Shared-memory write: shared[addr_reg + offset] := src.
  Program& swrite(Reg addr, Reg src, Word offset = 0);
  Program& pid(Reg dst);
  Program& nprocs(Reg dst);

  /// Bind `name` to the next emitted instruction's address.
  Program& label(const std::string& name);

  /// Resolve all jump labels. Throws std::runtime_error on an undefined
  /// label. Must be called before execution; idempotent.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  [[nodiscard]] std::size_t size() const { return code_.size(); }
  [[nodiscard]] const Instruction& at(std::size_t pc) const;
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Full disassembly listing (for docs/examples).
  [[nodiscard]] std::string listing() const;

 private:
  Program& emit(Instruction ins);
  Program& emit_jump(Opcode op, Reg r, const std::string& label);

  std::string name_ = "unnamed";
  std::vector<Instruction> code_;
  std::unordered_map<std::string, std::size_t> labels_;
  struct Fixup {
    std::size_t pc;
    std::string label;
  };
  std::vector<Fixup> fixups_;
  bool finalized_ = false;
};

}  // namespace pramsim::pram
