// The ideal n-processor P-RAM (Fig. 1 of the paper), with pluggable shared
// memory.
//
// Every step, each running processor executes one instruction in lock-step.
// Shared accesses are collected, checked against the configured conflict
// policy (EREW/CREW/CRCW), combined (concurrent reads deduplicated,
// concurrent writes resolved), and served by the attached MemorySystem —
// either the ideal FlatMemory or one of the simulation schemes, which is
// exactly how the paper's "simulating machine" plugs underneath the P-RAM
// program.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pram/memory_system.hpp"
#include "pram/program.hpp"
#include "pram/types.hpp"
#include "util/bitset.hpp"

namespace pramsim::pram {

struct MachineConfig {
  std::uint32_t n_processors = 1;
  std::uint64_t m_shared_cells = 1;
  ConflictPolicy policy = ConflictPolicy::kErew;
  std::uint32_t private_cells = 4096;  ///< private memory per processor
};

enum class StepStatus : std::uint8_t {
  kOk,                 ///< step executed
  kAllHalted,          ///< nothing ran; machine already finished
  kConflictViolation,  ///< access pattern violated the conflict policy
  kFault,              ///< runtime fault (div by zero, OOB, bad pc, ...)
};

/// Diagnostic for a conflict-policy violation.
struct ConflictInfo {
  VarId var;
  ProcId proc_a;
  ProcId proc_b;
  bool involves_write = false;
  [[nodiscard]] std::string to_string() const;
};

/// Diagnostic for a processor fault.
struct FaultInfo {
  ProcId proc;
  std::uint64_t pc = 0;
  std::string what;
};

struct StepOutcome {
  StepStatus status = StepStatus::kOk;
  std::optional<ConflictInfo> conflict;
  std::optional<FaultInfo> fault;
  MemStepCost mem_cost;  ///< simulating-machine cost of this step's accesses
};

struct RunOutcome {
  StepStatus final_status = StepStatus::kOk;
  std::uint64_t steps = 0;            ///< P-RAM steps executed
  std::uint64_t mem_time = 0;         ///< total simulating-machine time
  std::uint64_t shared_accesses = 0;  ///< total shared reads+writes issued
  std::optional<ConflictInfo> conflict;
  std::optional<FaultInfo> fault;
  [[nodiscard]] bool completed() const {
    return final_status == StepStatus::kAllHalted;
  }
};

class Machine {
 public:
  /// Takes ownership of the memory system; program must be finalized (or
  /// finalizable: finalize() is invoked here).
  Machine(MachineConfig config, Program program,
          std::unique_ptr<MemorySystem> memory);

  /// Convenience: ideal P-RAM with flat unit-time memory.
  Machine(MachineConfig config, Program program);

  /// Execute one synchronous P-RAM step.
  StepOutcome step();

  /// Run until all processors halt, a violation/fault occurs, or
  /// `max_steps` is exceeded (reported as kFault).
  RunOutcome run(std::uint64_t max_steps = 1'000'000);

  // ----- state inspection / setup -----
  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] bool all_halted() const;
  [[nodiscard]] std::uint64_t steps_executed() const { return steps_; }

  [[nodiscard]] Word reg(ProcId proc, Reg r) const;
  void set_reg(ProcId proc, Reg r, Word value);
  [[nodiscard]] Word private_mem(ProcId proc, std::uint64_t addr) const;

  [[nodiscard]] Word shared(VarId var) const { return memory_->peek(var); }
  void poke_shared(VarId var, Word value) { memory_->poke(var, value); }
  [[nodiscard]] MemorySystem& memory() { return *memory_; }

  /// Accesses issued by the most recent step (after CR/CW combining the
  /// raw per-processor batch is in `last_raw_batch`).
  [[nodiscard]] const AccessBatch& last_raw_batch() const { return raw_batch_; }

 private:
  struct PendingRead {
    ProcId proc;
    Reg dst;
    std::size_t read_slot;  ///< index into combined read vector
  };

  StepOutcome fail_conflict(ConflictInfo info);
  StepOutcome fail_fault(ProcId proc, std::uint64_t pc, std::string what);

  MachineConfig config_;
  Program program_;
  std::unique_ptr<MemorySystem> memory_;

  std::vector<Word> regs_;      // n * kNumRegisters
  std::vector<Word> private_;   // n * private_cells
  std::vector<std::uint64_t> pc_;
  util::DynamicBitset halted_;
  bool dead_ = false;  // violation or fault occurred; machine is stuck
  std::uint64_t steps_ = 0;
  std::uint64_t shared_accesses_ = 0;

  // per-step scratch (members to avoid reallocation)
  AccessBatch raw_batch_;
  std::vector<PendingRead> pending_reads_;
  std::vector<VarId> combined_reads_;
  std::vector<Word> read_values_;
  std::vector<VarWrite> combined_writes_;
};

}  // namespace pramsim::pram
