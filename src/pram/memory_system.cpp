#include "pram/memory_system.hpp"

#include "util/assert.hpp"

namespace pramsim::pram {

namespace {
// Snapshot frame constants ("PSNP"): shared by every MemorySystem; the
// checkpoint FILE frame (magic, length, CRC) lives in src/durability.
constexpr std::uint32_t kSnapshotMagic = 0x50534E50u;
constexpr std::uint32_t kSnapshotVersion = 1;
}  // namespace

void MemorySystem::snapshot(SnapshotSink& sink) {
  put_u32(sink, kSnapshotMagic);
  put_u32(sink, kSnapshotVersion);
  put_u64(sink, steps_served());
  put_u64(sink, size());
  snapshot_body(sink);
}

bool MemorySystem::restore(SnapshotSource& source) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t clock = 0;
  std::uint64_t m = 0;
  if (!get_u32(source, magic) || magic != kSnapshotMagic ||
      !get_u32(source, version) || version != kSnapshotVersion ||
      !get_u64(source, clock) || !get_u64(source, m) || m != size()) {
    return false;
  }
  // Clock first: restore_body pokes stamp at the restored step clock, so
  // replayed values are never "older" than pre-crash commits they equal.
  step_clock_ = clock;
  return restore_body(source);
}

void MemorySystem::snapshot_body(SnapshotSink& sink) {
  const std::uint64_t m = size();
  std::uint64_t nonzero = 0;
  for (std::uint64_t v = 0; v < m; ++v) {
    if (peek(VarId(static_cast<std::uint32_t>(v))) != 0) {
      ++nonzero;
    }
  }
  put_u64(sink, nonzero);
  for (std::uint64_t v = 0; v < m; ++v) {
    const Word value = peek(VarId(static_cast<std::uint32_t>(v)));
    if (value != 0) {
      put_u64(sink, v);
      put_word(sink, value);
    }
  }
}

bool MemorySystem::restore_body(SnapshotSource& source) {
  std::uint64_t count = 0;
  if (!get_u64(source, count)) {
    return false;
  }
  const std::uint64_t m = size();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t var = 0;
    Word value = 0;
    if (!get_u64(source, var) || !get_word(source, value) || var >= m) {
      return false;
    }
    poke(VarId(static_cast<std::uint32_t>(var)), value);
  }
  return true;
}

const char* to_string(ServeBackend backend) {
  switch (backend) {
    case ServeBackend::kSerial: return "serial";
    case ServeBackend::kGroupParallel: return "group-parallel";
  }
  return "???";
}

FlatMemory::FlatMemory(std::uint64_t m_cells) : cells_(m_cells, 0) {}

MemStepCost FlatMemory::step(std::span<const VarId> reads,
                             std::span<Word> read_values,
                             std::span<const VarWrite> writes) {
  PRAMSIM_ASSERT(reads.size() == read_values.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    PRAMSIM_ASSERT(reads[i].index() < cells_.size());
    read_values[i] = cells_[reads[i].index()];
  }
  for (const auto& w : writes) {
    PRAMSIM_ASSERT(w.var.index() < cells_.size());
    cells_[w.var.index()] = w.value;
  }
  return MemStepCost{.time = 1,
                     .work = reads.size() + writes.size()};
}

Word FlatMemory::peek(VarId var) const {
  PRAMSIM_ASSERT(var.index() < cells_.size());
  return cells_[var.index()];
}

void FlatMemory::poke(VarId var, Word value) {
  PRAMSIM_ASSERT(var.index() < cells_.size());
  cells_[var.index()] = value;
}

}  // namespace pramsim::pram
