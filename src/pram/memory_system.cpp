#include "pram/memory_system.hpp"

#include "util/assert.hpp"

namespace pramsim::pram {

const char* to_string(ServeBackend backend) {
  switch (backend) {
    case ServeBackend::kSerial: return "serial";
    case ServeBackend::kGroupParallel: return "group-parallel";
  }
  return "???";
}

FlatMemory::FlatMemory(std::uint64_t m_cells) : cells_(m_cells, 0) {}

MemStepCost FlatMemory::step(std::span<const VarId> reads,
                             std::span<Word> read_values,
                             std::span<const VarWrite> writes) {
  PRAMSIM_ASSERT(reads.size() == read_values.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    PRAMSIM_ASSERT(reads[i].index() < cells_.size());
    read_values[i] = cells_[reads[i].index()];
  }
  for (const auto& w : writes) {
    PRAMSIM_ASSERT(w.var.index() < cells_.size());
    cells_[w.var.index()] = w.value;
  }
  return MemStepCost{.time = 1,
                     .work = reads.size() + writes.size()};
}

Word FlatMemory::peek(VarId var) const {
  PRAMSIM_ASSERT(var.index() < cells_.size());
  return cells_[var.index()];
}

void FlatMemory::poke(VarId var, Word value) {
  PRAMSIM_ASSERT(var.index() < cells_.size());
  cells_[var.index()] = value;
}

}  // namespace pramsim::pram
