// Core vocabulary types for the P-RAM model (Fortune & Wyllie 1978),
// shared by the ideal machine, the trace generators and every simulation
// scheme in src/core.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/strong_id.hpp"

namespace pramsim::pram {

/// Machine word. The paper's machines are word-RAMs; 64-bit signed keeps
/// address arithmetic and data in one type, as in the classic RAM model.
using Word = std::int64_t;

/// Read/write access direction.
enum class AccessOp : std::uint8_t { kRead, kWrite };

/// P-RAM conflict-handling variants (paper §1). The "arbitrary" and
/// "priority" CW rules are both resolved deterministically by lowest
/// processor id so that simulations are replayable; "max" takes the largest
/// written value (a common CW convention).
enum class ConflictPolicy : std::uint8_t {
  kErew,          ///< exclusive read, exclusive write
  kCrew,          ///< concurrent read, exclusive write
  kCrcwCommon,    ///< concurrent writes must agree on the value
  kCrcwArbitrary, ///< one write wins (deterministic: lowest proc id)
  kCrcwPriority,  ///< lowest-numbered processor wins
  kCrcwMax,       ///< largest value wins
};

[[nodiscard]] std::string to_string(ConflictPolicy policy);

/// One shared-memory access request issued by one processor in one step.
struct Access {
  ProcId proc;
  AccessOp op = AccessOp::kRead;
  VarId var;
  Word value = 0;  ///< written value (kWrite only)
};

/// A full P-RAM step's worth of accesses: at most one per processor.
using AccessBatch = std::vector<Access>;

/// A deduplicated write: the value that actually commits to a variable
/// after concurrent-write resolution.
struct VarWrite {
  VarId var;
  Word value = 0;
};

}  // namespace pramsim::pram
