// Fault vocabulary shared by every storage organization.
//
// The base regime follows Chlebus-Gasieniec-Pelc ("Deterministic
// Computations on a PRAM with Static Processor and Memory Faults"): faults
// are fixed before the computation starts, and come in three flavors at
// the storage layer:
//
//   * dead modules   - a memory module fails entirely; every copy/share/
//                      cell it holds becomes an erasure (known-bad);
//   * stuck-at cells - a single copy/share always reads a fixed garbage
//                      value regardless of writes (detectable only by
//                      disagreement with its peers);
//   * silent write corruption - a store operation commits a corrupted
//                      word (decided per write, undetectable locally).
//
// On top of the static regime sits the DYNAMIC extension: every fault
// carries a deterministic, seed-derived ONSET STEP, and each query takes
// the asking scheme's current P-RAM step. A fault is inactive before its
// onset and active from the onset on (faults never heal by themselves —
// recovery is the job of MemorySystem::scrub, which re-replicates /
// re-disperses lost data onto healthy modules). With every onset at 0 the
// hooks answer exactly as the classic static model did, so static sweeps
// are unchanged bit-for-bit.
//
// Schemes consult a FaultHooks implementation at the COPY/SHARE level, so
// majority voting really sees divergent replicas and IDA reconstruction
// really runs with missing shares — the wrapper never just lies about the
// final value. faults::FaultModel is the seeded deterministic
// implementation; tests craft their own hooks for exact-threshold cases.
#pragma once

#include <cstdint>
#include <span>

#include "pram/types.hpp"
#include "util/rng.hpp"

namespace pramsim::pram {

/// Copy/share-level fault surface a storage scheme consults while
/// serving accesses. `entity` is the scheme's storage unit index: the
/// variable id for replicated copies and flat cells, the block id for
/// IDA shares. `copy` is the copy/share index within the entity. `step`
/// is the asking scheme's current P-RAM step number (its monotonic step
/// counter; 0 = before any step was served), which gates dynamic-onset
/// faults. Implementations must be deterministic pure functions of their
/// inputs, and MONOTONE in `step`: once a fault is active at step s it is
/// active at every step >= s (failures accumulate; repair happens in the
/// storage layer, never inside the hooks).
class FaultHooks {
 public:
  virtual ~FaultHooks() = default;
  FaultHooks() = default;
  FaultHooks(const FaultHooks&) = delete;
  FaultHooks& operator=(const FaultHooks&) = delete;

  /// Module failed entirely by `step`: its contents are erasures
  /// (known-bad) from the module's onset step onward.
  [[nodiscard]] virtual bool module_dead(ModuleId module,
                                         std::uint64_t step) const = 0;

  /// Stuck-at fault active by `step`: reads of this copy/share observe
  /// `value` (set on return true), regardless of what was written.
  [[nodiscard]] virtual bool stuck_at(std::uint64_t entity,
                                      std::uint32_t copy,
                                      std::uint64_t step,
                                      Word& value) const = 0;

  /// Silent corruption of a word being stored. `stamp` is the per-store
  /// re-roll key (each re-write re-rolls the Bernoulli trial); `step` is
  /// the P-RAM step clock gating the fault's onset — the two coincide for
  /// schemes whose store counter is the step counter, but IDA re-rolls
  /// per encode while onsets stay in step units. On return true, `value`
  /// has been replaced by the corrupted word actually committed.
  [[nodiscard]] virtual bool corrupt_write(std::uint64_t entity,
                                           std::uint32_t copy,
                                           std::uint64_t stamp,
                                           std::uint64_t step,
                                           Word& value) const = 0;
};

/// Deterministic relocation target for scrub repair: probe a seeded-hash
/// sequence over the module space until a module is found that is alive
/// at `step` under `hooks` and not already in `taken` (a storage unit
/// must keep its copies/shares on distinct modules). The sequence is a
/// pure function of (salt, entity, unit) — independent of scan order and
/// prior passes — and bounded so a machine with (nearly) every module
/// dead terminates. Returns false when no healthy module was found.
[[nodiscard]] inline bool pick_healthy_module(
    const FaultHooks& hooks, std::uint64_t step, std::uint32_t n_modules,
    std::uint64_t salt, std::uint64_t entity, std::uint32_t unit,
    std::span<const ModuleId> taken, ModuleId& out) {
  util::SplitMix64 probe(salt ^ entity * 0x9E3779B97F4A7C15ULL ^
                         (unit + 1) * 0xBF58476D1CE4E5B9ULL);
  const std::uint64_t attempts = 4ULL * n_modules + 16;
  for (std::uint64_t attempt = 0; attempt < attempts; ++attempt) {
    const ModuleId candidate(
        static_cast<std::uint32_t>(probe.next() % n_modules));
    if (hooks.module_dead(candidate, step)) {
      continue;
    }
    bool clash = false;
    for (const auto module : taken) {
      if (module == candidate) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      out = candidate;
      return true;
    }
  }
  return false;
}

/// Reliability telemetry accumulated by a scheme operating under
/// FaultHooks (all zero when no hooks are installed). The "wrong_reads"
/// field is owned by the trace-consistency checker (faults::TraceChecker
/// via faults::FaultableMemory): a scheme cannot know its vote was wrong.
/// The scrub counters are owned by MemorySystem::scrub implementations.
struct ReliabilityStats {
  std::uint64_t reads_served = 0;   ///< variable reads answered
  std::uint64_t faults_masked = 0;  ///< reads answered despite >=1 bad unit
  std::uint64_t units_faulty = 0;   ///< dead/stuck/corrupt copies|shares met
  std::uint64_t erasures_skipped = 0;  ///< known-dead units excluded
  std::uint64_t shares_short = 0;   ///< IDA: missing shares below full set
  std::uint64_t uncorrectable = 0;  ///< reads below reconstruction threshold
  std::uint64_t wrong_reads = 0;    ///< oracle mismatches (silent failures)
  std::uint64_t writes_dropped = 0; ///< write targets lost to dead modules
  std::uint64_t corrupt_stores = 0; ///< stores that committed a bad word
  std::uint64_t units_repaired = 0; ///< copies/shares restored by scrubbing
  std::uint64_t units_relocated = 0;  ///< copies/shares moved off dead modules

  void merge(const ReliabilityStats& other) {
    reads_served += other.reads_served;
    faults_masked += other.faults_masked;
    units_faulty += other.units_faulty;
    erasures_skipped += other.erasures_skipped;
    shares_short += other.shares_short;
    uncorrectable += other.uncorrectable;
    wrong_reads += other.wrong_reads;
    writes_dropped += other.writes_dropped;
    corrupt_stores += other.corrupt_stores;
    units_repaired += other.units_repaired;
    units_relocated += other.units_relocated;
  }
};

}  // namespace pramsim::pram
