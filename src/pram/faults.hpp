// Static-fault vocabulary shared by every storage organization.
//
// The fault model follows Chlebus-Gasieniec-Pelc ("Deterministic
// Computations on a PRAM with Static Processor and Memory Faults"): faults
// are STATIC — fixed before the computation starts and unchanging during
// it — and come in three flavors at the storage layer:
//
//   * dead modules   - a memory module fails entirely; every copy/share/
//                      cell it holds becomes an erasure (known-bad);
//   * stuck-at cells - a single copy/share always reads a fixed garbage
//                      value regardless of writes (detectable only by
//                      disagreement with its peers);
//   * silent write corruption - a store operation commits a corrupted
//                      word (decided per write, undetectable locally).
//
// Schemes consult a FaultHooks implementation at the COPY/SHARE level, so
// majority voting really sees divergent replicas and IDA reconstruction
// really runs with missing shares — the wrapper never just lies about the
// final value. faults::FaultModel is the seeded deterministic
// implementation; tests craft their own hooks for exact-threshold cases.
#pragma once

#include <cstdint>

#include "pram/types.hpp"

namespace pramsim::pram {

/// Copy/share-level fault surface a storage scheme consults while
/// serving accesses. `entity` is the scheme's storage unit index: the
/// variable id for replicated copies and flat cells, the block id for
/// IDA shares. `copy` is the copy/share index within the entity.
/// Implementations must be deterministic pure functions of their inputs
/// (static faults: same question, same answer, forever).
class FaultHooks {
 public:
  virtual ~FaultHooks() = default;
  FaultHooks() = default;
  FaultHooks(const FaultHooks&) = delete;
  FaultHooks& operator=(const FaultHooks&) = delete;

  /// Module failed entirely: its contents are erasures (known-bad).
  [[nodiscard]] virtual bool module_dead(ModuleId module) const = 0;

  /// Stuck-at fault: reads of this copy/share always observe `value`
  /// (set on return true), regardless of what was written.
  [[nodiscard]] virtual bool stuck_at(std::uint64_t entity,
                                      std::uint32_t copy,
                                      Word& value) const = 0;

  /// Silent corruption of a word being stored at step `stamp`: on return
  /// true, `value` has been replaced by the corrupted word actually
  /// committed. Decided per (entity, copy, stamp) so re-writes re-roll.
  [[nodiscard]] virtual bool corrupt_write(std::uint64_t entity,
                                           std::uint32_t copy,
                                           std::uint64_t stamp,
                                           Word& value) const = 0;
};

/// Reliability telemetry accumulated by a scheme operating under
/// FaultHooks (all zero when no hooks are installed). The "wrong_reads"
/// field is owned by the trace-consistency checker (faults::TraceChecker
/// via faults::FaultableMemory): a scheme cannot know its vote was wrong.
struct ReliabilityStats {
  std::uint64_t reads_served = 0;   ///< variable reads answered
  std::uint64_t faults_masked = 0;  ///< reads answered despite >=1 bad unit
  std::uint64_t units_faulty = 0;   ///< dead/stuck/corrupt copies|shares met
  std::uint64_t erasures_skipped = 0;  ///< known-dead units excluded
  std::uint64_t shares_short = 0;   ///< IDA: missing shares below full set
  std::uint64_t uncorrectable = 0;  ///< reads below reconstruction threshold
  std::uint64_t wrong_reads = 0;    ///< oracle mismatches (silent failures)
  std::uint64_t writes_dropped = 0; ///< write targets lost to dead modules
  std::uint64_t corrupt_stores = 0; ///< stores that committed a bad word

  void merge(const ReliabilityStats& other) {
    reads_served += other.reads_served;
    faults_masked += other.faults_masked;
    units_faulty += other.units_faulty;
    erasures_skipped += other.erasures_skipped;
    shares_short += other.shares_short;
    uncorrectable += other.uncorrectable;
    wrong_reads += other.wrong_reads;
    writes_dropped += other.writes_dropped;
    corrupt_stores += other.corrupt_stores;
  }
};

}  // namespace pramsim::pram
