// Synthetic access-trace generators.
//
// The paper's guarantees are per-step and worst-case over all request
// patterns ("an arbitrary P-RAM step"). The scheme benches therefore
// measure over several stress families and report the max/mean:
//
//  * kPermutation  - each processor accesses a distinct uniform variable
//  * kUniform      - i.i.d. uniform variables (concurrent accesses occur)
//  * kHotspot      - a fraction of processors hammer a small hot set
//  * kStride       - proc i accesses (offset + i*stride) mod m
//  * kBitReversal  - proc i accesses bit-reverse(i) (classic FFT pattern)
//  * kBroadcast    - every processor reads variable 0
//  * kZipfian      - i.i.d. Zipf(s) ranks over [0, m) (skewed head traffic)
//  * kWorkingSet   - a hot window that relocates every working_set_period
//                    steps (temporal locality with phase changes)
//
// The Zipf sampler is a bounded-Pareto inverse-CDF transform: one
// uniform draw, no rejection loop, no std::discrete_distribution — so a
// batch consumes a fixed number of RNG draws and stays deterministic
// under the repo's seed-stability rules.
//
// Map-adversarial batches (built from a concrete memory map to maximize
// module congestion) live in memmap/expansion.hpp since they need the map.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pram/types.hpp"
#include "util/rng.hpp"

namespace pramsim::pram {

enum class TraceFamily : std::uint8_t {
  kPermutation,
  kUniform,
  kHotspot,
  kStride,
  kBitReversal,
  kBroadcast,
  kZipfian,
  kWorkingSet,
};

/// Number of TraceFamily enumerators. The registry round-trip test walks
/// [0, kTraceFamilyCount) and asserts every enumerator has a to_string
/// name and appears in all_trace_families() — bump this when adding one.
inline constexpr std::size_t kTraceFamilyCount = 8;

[[nodiscard]] std::string to_string(TraceFamily family);

/// All families, in a stable order (for sweeps).
[[nodiscard]] const std::vector<TraceFamily>& all_trace_families();

/// Families guaranteed to produce distinct variables per batch (EREW-safe).
[[nodiscard]] const std::vector<TraceFamily>& exclusive_trace_families();

struct TraceParams {
  /// Probability that an access is a write (vs read).
  double write_fraction = 0.5;
  /// kHotspot: probability an access goes to the hot set.
  double hotspot_fraction = 0.5;
  /// kHotspot: size of the hot set (variables 0..hotset_size-1).
  std::uint64_t hotset_size = 1;
  /// kStride: stride between consecutive processors' variables.
  std::uint64_t stride = 1;
  /// kStride: starting offset.
  std::uint64_t offset = 0;
  /// kZipfian: skew exponent s (> 0). Small values approach uniform;
  /// s around 1 concentrates most traffic on a small head of [0, m).
  double zipf_exponent = 1.1;
  /// kWorkingSet: size of the hot window (clamped to [1, m]).
  std::uint64_t working_set_size = 64;
  /// kWorkingSet: steps between window relocations (clamped to >= 1).
  std::uint64_t working_set_period = 16;
  /// kWorkingSet: probability an access lands in the current window.
  double working_set_fraction = 0.9;
  /// kWorkingSet: the step index, used to select the current window.
  /// make_trace sets this per step; single make_batch callers may leave 0.
  std::uint64_t working_set_phase = 0;
};

/// One P-RAM step's worth of accesses (one per processor).
/// Requires m >= n for the distinct-variable families
/// (kPermutation/kBitReversal additionally require m >= next_pow2(n) for
/// bit reversal to stay in range).
[[nodiscard]] AccessBatch make_batch(TraceFamily family, std::uint32_t n,
                                     std::uint64_t m, util::Rng& rng,
                                     const TraceParams& params = {});

/// A multi-step trace.
[[nodiscard]] std::vector<AccessBatch> make_trace(
    TraceFamily family, std::uint32_t n, std::uint64_t m, std::size_t steps,
    util::Rng& rng, const TraceParams& params = {});

}  // namespace pramsim::pram
