// Snapshot byte-stream abstractions for the durability layer.
//
// MemorySystem::snapshot/restore serialize an engine's committed state
// through these two minimal interfaces so the durability subsystem
// (src/durability: checkpoint files, recovery) and tests (in-memory
// round trips) share one serialization path. Streams are raw
// host-endian bytes: snapshots are consumed by the same build that
// produced them (a checkpoint is machine-local recovery state, not an
// interchange format), and the checkpoint file frame carries a CRC so a
// torn or corrupted snapshot is detected before restore ever runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "pram/types.hpp"

namespace pramsim::pram {

/// Byte-stream target a snapshot serializes into (a memory buffer, a
/// checkpoint file writer, ...). write() must accept every byte handed
/// to it; durability failures surface at the file layer, not here.
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  virtual void write(const void* data, std::size_t size) = 0;
};

/// Byte-stream source a snapshot restores from. read() fills exactly
/// `size` bytes and returns false on a short read (truncated snapshot),
/// which aborts the restore.
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;
  [[nodiscard]] virtual bool read(void* data, std::size_t size) = 0;
};

/// In-memory sink: accumulates the snapshot bytes (checkpoint writers
/// serialize here first so the file frame can prepend the payload
/// length and append the CRC).
class BufferSink final : public SnapshotSink {
 public:
  void write(const void* data, std::size_t size) override {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), bytes, bytes + size);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// In-memory source over a borrowed byte span (must outlive the source).
class BufferSource final : public SnapshotSource {
 public:
  explicit BufferSource(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  [[nodiscard]] bool read(void* data, std::size_t size) override {
    if (size > bytes_.size() - offset_) {
      return false;
    }
    std::memcpy(data, bytes_.data() + offset_, size);
    offset_ += size;
    return true;
  }

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] bool exhausted() const { return offset_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

// ----- fixed-width field helpers (host-endian, memcpy-safe) ---------------

inline void put_u32(SnapshotSink& sink, std::uint32_t v) {
  sink.write(&v, sizeof(v));
}
inline void put_u64(SnapshotSink& sink, std::uint64_t v) {
  sink.write(&v, sizeof(v));
}
inline void put_word(SnapshotSink& sink, Word v) { sink.write(&v, sizeof(v)); }

[[nodiscard]] inline bool get_u32(SnapshotSource& source, std::uint32_t& v) {
  return source.read(&v, sizeof(v));
}
[[nodiscard]] inline bool get_u64(SnapshotSource& source, std::uint64_t& v) {
  return source.read(&v, sizeof(v));
}
[[nodiscard]] inline bool get_word(SnapshotSource& source, Word& v) {
  return source.read(&v, sizeof(v));
}

}  // namespace pramsim::pram
