#include "pram/machine.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"

namespace pramsim::pram {

std::string ConflictInfo::to_string() const {
  return "conflict on var " + std::to_string(var.value()) + " between P" +
         std::to_string(proc_a.value()) + " and P" +
         std::to_string(proc_b.value()) +
         (involves_write ? " (write)" : " (read)");
}

Machine::Machine(MachineConfig config, Program program,
                 std::unique_ptr<MemorySystem> memory)
    : config_(config),
      program_(std::move(program)),
      memory_(std::move(memory)),
      regs_(static_cast<std::size_t>(config.n_processors) * kNumRegisters, 0),
      private_(static_cast<std::size_t>(config.n_processors) *
                   config.private_cells,
               0),
      pc_(config.n_processors, 0),
      halted_(config.n_processors) {
  PRAMSIM_ASSERT(config_.n_processors >= 1);
  PRAMSIM_ASSERT(memory_ != nullptr);
  PRAMSIM_ASSERT_MSG(memory_->size() >= config_.m_shared_cells,
                     "memory system smaller than configured shared memory");
  program_.finalize();
}

Machine::Machine(MachineConfig config, Program program)
    : Machine(config, std::move(program),
              std::make_unique<FlatMemory>(config.m_shared_cells)) {}

bool Machine::all_halted() const {
  return halted_.count() == config_.n_processors;
}

Word Machine::reg(ProcId proc, Reg r) const {
  PRAMSIM_ASSERT(proc.value() < config_.n_processors && r < kNumRegisters);
  return regs_[proc.index() * kNumRegisters + r];
}

void Machine::set_reg(ProcId proc, Reg r, Word value) {
  PRAMSIM_ASSERT(proc.value() < config_.n_processors && r < kNumRegisters);
  regs_[proc.index() * kNumRegisters + r] = value;
}

Word Machine::private_mem(ProcId proc, std::uint64_t addr) const {
  PRAMSIM_ASSERT(proc.value() < config_.n_processors &&
                 addr < config_.private_cells);
  return private_[proc.index() * config_.private_cells + addr];
}

StepOutcome Machine::fail_conflict(ConflictInfo info) {
  dead_ = true;
  StepOutcome outcome;
  outcome.status = StepStatus::kConflictViolation;
  outcome.conflict = std::move(info);
  return outcome;
}

StepOutcome Machine::fail_fault(ProcId proc, std::uint64_t pc,
                                std::string what) {
  dead_ = true;
  StepOutcome outcome;
  outcome.status = StepStatus::kFault;
  outcome.fault = FaultInfo{proc, pc, std::move(what)};
  return outcome;
}

StepOutcome Machine::step() {
  if (dead_) {
    return fail_fault(ProcId(0), 0, "machine is dead (prior violation/fault)");
  }
  if (all_halted()) {
    StepOutcome outcome;
    outcome.status = StepStatus::kAllHalted;
    return outcome;
  }

  raw_batch_.clear();
  pending_reads_.clear();
  combined_reads_.clear();
  combined_writes_.clear();

  struct DeferredWrite {
    ProcId proc;
    VarId var;
    Word value;
  };
  std::vector<DeferredWrite> writes;

  // ---- phase 1: fetch/decode/execute-local, collect shared accesses ----
  for (std::uint32_t p = 0; p < config_.n_processors; ++p) {
    if (halted_.test(p)) {
      continue;
    }
    const ProcId proc(p);
    const std::uint64_t pc = pc_[p];
    if (pc >= program_.size()) {
      return fail_fault(proc, pc, "pc out of program bounds");
    }
    const Instruction& ins = program_.at(pc);
    Word* r = &regs_[static_cast<std::size_t>(p) * kNumRegisters];
    Word* priv = &private_[static_cast<std::size_t>(p) * config_.private_cells];
    std::uint64_t next_pc = pc + 1;

    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        halted_.set(p);
        next_pc = pc;
        break;
      case Opcode::kLoadImm:
        r[ins.r1] = ins.imm;
        break;
      case Opcode::kMov:
        r[ins.r1] = r[ins.r2];
        break;
      case Opcode::kAdd:
        r[ins.r1] = r[ins.r2] + r[ins.r3];
        break;
      case Opcode::kSub:
        r[ins.r1] = r[ins.r2] - r[ins.r3];
        break;
      case Opcode::kMul:
        r[ins.r1] = r[ins.r2] * r[ins.r3];
        break;
      case Opcode::kDiv:
        if (r[ins.r3] == 0) {
          return fail_fault(proc, pc, "division by zero");
        }
        r[ins.r1] = r[ins.r2] / r[ins.r3];
        break;
      case Opcode::kMod:
        if (r[ins.r3] == 0) {
          return fail_fault(proc, pc, "modulo by zero");
        }
        r[ins.r1] = r[ins.r2] % r[ins.r3];
        break;
      case Opcode::kMin:
        r[ins.r1] = std::min(r[ins.r2], r[ins.r3]);
        break;
      case Opcode::kMax:
        r[ins.r1] = std::max(r[ins.r2], r[ins.r3]);
        break;
      case Opcode::kAnd:
        r[ins.r1] = r[ins.r2] & r[ins.r3];
        break;
      case Opcode::kOr:
        r[ins.r1] = r[ins.r2] | r[ins.r3];
        break;
      case Opcode::kXor:
        r[ins.r1] = r[ins.r2] ^ r[ins.r3];
        break;
      case Opcode::kShl:
      case Opcode::kShr: {
        const Word amount = r[ins.r3];
        if (amount < 0 || amount > 63) {
          return fail_fault(proc, pc, "shift amount out of range");
        }
        if (ins.op == Opcode::kShl) {
          r[ins.r1] = static_cast<Word>(static_cast<std::uint64_t>(r[ins.r2])
                                        << amount);
        } else {
          r[ins.r1] = r[ins.r2] >> amount;  // arithmetic shift
        }
        break;
      }
      case Opcode::kSlt:
        r[ins.r1] = r[ins.r2] < r[ins.r3] ? 1 : 0;
        break;
      case Opcode::kSle:
        r[ins.r1] = r[ins.r2] <= r[ins.r3] ? 1 : 0;
        break;
      case Opcode::kSeq:
        r[ins.r1] = r[ins.r2] == r[ins.r3] ? 1 : 0;
        break;
      case Opcode::kSne:
        r[ins.r1] = r[ins.r2] != r[ins.r3] ? 1 : 0;
        break;
      case Opcode::kAddImm:
        r[ins.r1] = r[ins.r2] + ins.imm;
        break;
      case Opcode::kMulImm:
        r[ins.r1] = r[ins.r2] * ins.imm;
        break;
      case Opcode::kJmp:
        next_pc = static_cast<std::uint64_t>(ins.imm);
        break;
      case Opcode::kJz:
        if (r[ins.r1] == 0) {
          next_pc = static_cast<std::uint64_t>(ins.imm);
        }
        break;
      case Opcode::kJnz:
        if (r[ins.r1] != 0) {
          next_pc = static_cast<std::uint64_t>(ins.imm);
        }
        break;
      case Opcode::kLoadLocal:
      case Opcode::kStoreLocal: {
        const Word addr = r[ins.r2] + ins.imm;
        if (addr < 0 || static_cast<std::uint64_t>(addr) >=
                            config_.private_cells) {
          return fail_fault(proc, pc, "private memory address out of range");
        }
        if (ins.op == Opcode::kLoadLocal) {
          r[ins.r1] = priv[addr];
        } else {
          priv[addr] = r[ins.r1];
        }
        break;
      }
      case Opcode::kReadShared:
      case Opcode::kWriteShared: {
        const Word addr = r[ins.r2] + ins.imm;
        if (addr < 0 ||
            static_cast<std::uint64_t>(addr) >= config_.m_shared_cells) {
          return fail_fault(proc, pc, "shared memory address out of range");
        }
        const VarId var(static_cast<std::uint32_t>(addr));
        if (ins.op == Opcode::kReadShared) {
          raw_batch_.push_back({proc, AccessOp::kRead, var, 0});
          pending_reads_.push_back({proc, ins.r1, 0});  // slot set below
        } else {
          raw_batch_.push_back({proc, AccessOp::kWrite, var, r[ins.r1]});
          writes.push_back({proc, var, r[ins.r1]});
        }
        break;
      }
      case Opcode::kPid:
        r[ins.r1] = static_cast<Word>(p);
        break;
      case Opcode::kNprocs:
        r[ins.r1] = static_cast<Word>(config_.n_processors);
        break;
    }
    pc_[p] = next_pc;
  }

  // ---- phase 2: conflict detection & combining -----------------------
  // Count readers/writers per accessed variable.
  struct ReadInfo {
    int count = 0;
    ProcId first{};
    ProcId second{};
  };
  std::unordered_map<std::uint32_t, ReadInfo> readers;
  std::unordered_map<std::uint32_t, std::vector<DeferredWrite>> writers;
  for (const auto& acc : raw_batch_) {
    if (acc.op == AccessOp::kRead) {
      auto& info = readers[acc.var.value()];
      if (info.count == 0) {
        info.first = acc.proc;
      } else if (info.count == 1) {
        info.second = acc.proc;
      }
      ++info.count;
    }
  }
  for (const auto& w : writes) {
    writers[w.var.value()].push_back(w);
  }

  const ConflictPolicy policy = config_.policy;
  // Conflict scans abort on the first violating variable, so the scan
  // order picks WHICH conflict a failing program reports — canonicalize
  // it (lowest variable wins) instead of trusting hash order.
  std::vector<std::uint32_t> conflict_order;
  conflict_order.reserve(readers.size());
  // pramlint: ordered-fold (keys collected then sorted before the scan)
  for (const auto& [var, rinfo] : readers) {
    (void)rinfo;
    conflict_order.push_back(var);
  }
  std::sort(conflict_order.begin(), conflict_order.end());
  for (const auto var : conflict_order) {
    const ReadInfo& rinfo = readers.at(var);
    const bool multiple_readers = rinfo.count > 1;
    const auto wit = writers.find(var);
    const bool written = wit != writers.end();
    if (policy == ConflictPolicy::kErew && (multiple_readers || written)) {
      const ProcId other =
          written ? wit->second.front().proc : rinfo.second;
      return fail_conflict({VarId(var), rinfo.first, other, written});
    }
    if (policy == ConflictPolicy::kCrew && written) {
      // read+write of the same cell in one step violates exclusive write
      return fail_conflict(
          {VarId(var), rinfo.first, wit->second.front().proc, true});
    }
  }
  conflict_order.clear();
  // pramlint: ordered-fold (keys collected then sorted before the scan)
  for (const auto& [var, ws] : writers) {
    (void)ws;
    conflict_order.push_back(var);
  }
  std::sort(conflict_order.begin(), conflict_order.end());
  for (const auto var : conflict_order) {
    auto& ws = writers.at(var);
    if (ws.size() > 1) {
      if (policy == ConflictPolicy::kErew || policy == ConflictPolicy::kCrew) {
        return fail_conflict({VarId(var), ws[0].proc, ws[1].proc, true});
      }
      if (policy == ConflictPolicy::kCrcwCommon) {
        for (const auto& w : ws) {
          if (w.value != ws.front().value) {
            return fail_conflict({VarId(var), ws.front().proc, w.proc, true});
          }
        }
      }
    }
  }

  // Combine reads: one slot per distinct variable.
  std::unordered_map<std::uint32_t, std::size_t> read_slot;
  std::size_t raw_read_idx = 0;
  for (const auto& acc : raw_batch_) {
    if (acc.op != AccessOp::kRead) {
      continue;
    }
    auto [it, fresh] = read_slot.try_emplace(acc.var.value(),
                                             combined_reads_.size());
    if (fresh) {
      combined_reads_.push_back(acc.var);
    }
    pending_reads_[raw_read_idx].read_slot = it->second;
    ++raw_read_idx;
  }

  // Resolve concurrent writes to one committed value per variable. Each
  // variable's winner is computed from its own deferred list alone and
  // combined_writes_ is sorted by var below, so this fold is order-free.
  // pramlint: ordered-fold (per-var winners independent; output sorted)
  for (auto& [var, ws] : writers) {
    DeferredWrite winner = ws.front();
    for (const auto& w : ws) {
      switch (policy) {
        case ConflictPolicy::kCrcwMax:
          if (w.value > winner.value) {
            winner = w;
          }
          break;
        default:
          // common (all equal), arbitrary, priority, and the exclusive
          // policies: lowest processor id commits.
          if (w.proc < winner.proc) {
            winner = w;
          }
          break;
      }
    }
    combined_writes_.push_back({VarId(var), winner.value});
  }
  // Deterministic ordering for the memory system.
  std::sort(combined_writes_.begin(), combined_writes_.end(),
            [](const VarWrite& a, const VarWrite& b) { return a.var < b.var; });

  // ---- phase 3: serve via the memory system ---------------------------
  StepOutcome outcome;
  read_values_.assign(combined_reads_.size(), 0);
  if (!combined_reads_.empty() || !combined_writes_.empty()) {
    outcome.mem_cost =
        memory_->step(combined_reads_, read_values_, combined_writes_);
    shared_accesses_ += raw_batch_.size();
  }
  for (const auto& pr : pending_reads_) {
    regs_[pr.proc.index() * kNumRegisters + pr.dst] =
        read_values_[pr.read_slot];
  }

  ++steps_;
  outcome.status = StepStatus::kOk;
  return outcome;
}

RunOutcome Machine::run(std::uint64_t max_steps) {
  RunOutcome out;
  while (out.steps < max_steps) {
    const StepOutcome step_outcome = step();
    if (step_outcome.status == StepStatus::kAllHalted) {
      out.final_status = StepStatus::kAllHalted;
      out.shared_accesses = shared_accesses_;
      return out;
    }
    if (step_outcome.status != StepStatus::kOk) {
      out.final_status = step_outcome.status;
      out.conflict = step_outcome.conflict;
      out.fault = step_outcome.fault;
      out.shared_accesses = shared_accesses_;
      return out;
    }
    ++out.steps;
    out.mem_time += step_outcome.mem_cost.time;
  }
  out.final_status = StepStatus::kFault;
  out.fault = FaultInfo{ProcId(0), 0, "max_steps exceeded"};
  out.shared_accesses = shared_accesses_;
  return out;
}

}  // namespace pramsim::pram
