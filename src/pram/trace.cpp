#include "pram/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::pram {

std::string to_string(TraceFamily family) {
  switch (family) {
    case TraceFamily::kPermutation: return "permutation";
    case TraceFamily::kUniform: return "uniform";
    case TraceFamily::kHotspot: return "hotspot";
    case TraceFamily::kStride: return "stride";
    case TraceFamily::kBitReversal: return "bit-reversal";
    case TraceFamily::kBroadcast: return "broadcast";
    case TraceFamily::kZipfian: return "zipfian";
    case TraceFamily::kWorkingSet: return "working-set";
  }
  return "???";
}

const std::vector<TraceFamily>& all_trace_families() {
  static const std::vector<TraceFamily> families = {
      TraceFamily::kPermutation, TraceFamily::kUniform,
      TraceFamily::kHotspot,     TraceFamily::kStride,
      TraceFamily::kBitReversal, TraceFamily::kBroadcast,
      TraceFamily::kZipfian,     TraceFamily::kWorkingSet,
  };
  return families;
}

const std::vector<TraceFamily>& exclusive_trace_families() {
  static const std::vector<TraceFamily> families = {
      TraceFamily::kPermutation,
      TraceFamily::kStride,
      TraceFamily::kBitReversal,
  };
  return families;
}

namespace {

std::uint64_t bit_reverse(std::uint64_t x, int bits) {
  std::uint64_t out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | ((x >> i) & 1ULL);
  }
  return out;
}

// SplitMix64 finalizer: maps a working-set window index to a pseudo-random
// but deterministic base address, so consecutive windows land far apart.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Bounded-Pareto inverse-CDF Zipf-like sampler over ranks [1, m]: one
// uniform draw, no rejection. For s != 1 the continuous CDF is
// F(x) = (1 - x^(1-s)) / (1 - m^(1-s)); inverting and flooring gives a
// rank whose mass decays like rank^-s. s == 1 degenerates to
// rank = m^u (log-uniform). Hot ranks map to low addresses, matching
// kHotspot's convention.
struct ZipfSampler {
  double s;
  double m_real;
  double tail;  // m^(1-s) (s != 1) or ln(m) (s == 1)

  ZipfSampler(double exponent, std::uint64_t m)
      : s(exponent), m_real(static_cast<double>(m)) {
    tail = (s == 1.0) ? std::log(m_real) : std::pow(m_real, 1.0 - s);
  }

  std::uint64_t operator()(util::Rng& rng) const {
    const double u = rng.uniform01();
    double x;
    if (s == 1.0) {
      x = std::exp(u * tail);
    } else {
      x = std::pow(1.0 - u * (1.0 - tail), 1.0 / (1.0 - s));
    }
    auto rank = static_cast<std::uint64_t>(x);
    rank = std::clamp<std::uint64_t>(rank, 1, static_cast<std::uint64_t>(m_real));
    return rank - 1;
  }
};

}  // namespace

AccessBatch make_batch(TraceFamily family, std::uint32_t n, std::uint64_t m,
                       util::Rng& rng, const TraceParams& params) {
  PRAMSIM_ASSERT(n >= 1 && m >= 1);
  AccessBatch batch;
  batch.reserve(n);

  auto op_for = [&](std::uint32_t /*proc*/) {
    return rng.bernoulli(params.write_fraction) ? AccessOp::kWrite
                                                : AccessOp::kRead;
  };
  auto push = [&](std::uint32_t proc, std::uint64_t var, AccessOp op) {
    PRAMSIM_ASSERT(var < m);
    batch.push_back({ProcId(proc), op, VarId(static_cast<std::uint32_t>(var)),
                     static_cast<Word>(rng.below(1'000'000))});
  };

  switch (family) {
    case TraceFamily::kPermutation: {
      PRAMSIM_ASSERT(m >= n);
      const auto vars = rng.sample_without_replacement(m, n);
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, vars[p], op_for(p));
      }
      break;
    }
    case TraceFamily::kUniform: {
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, rng.below(m), op_for(p));
      }
      break;
    }
    case TraceFamily::kHotspot: {
      const std::uint64_t hot = std::max<std::uint64_t>(
          1, std::min<std::uint64_t>(params.hotset_size, m));
      for (std::uint32_t p = 0; p < n; ++p) {
        const std::uint64_t var = rng.bernoulli(params.hotspot_fraction)
                                      ? rng.below(hot)
                                      : rng.below(m);
        push(p, var, op_for(p));
      }
      break;
    }
    case TraceFamily::kStride: {
      const std::uint64_t stride = std::max<std::uint64_t>(1, params.stride);
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, (params.offset + p * stride) % m, op_for(p));
      }
      break;
    }
    case TraceFamily::kBitReversal: {
      const int bits = n > 1 ? util::ilog2_ceil(n) : 1;
      PRAMSIM_ASSERT_MSG(m >= (1ULL << bits),
                         "bit-reversal trace needs m >= next_pow2(n)");
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, bit_reverse(p, bits), op_for(p));
      }
      break;
    }
    case TraceFamily::kBroadcast: {
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, 0, AccessOp::kRead);
      }
      break;
    }
    case TraceFamily::kZipfian: {
      const ZipfSampler zipf(params.zipf_exponent, m);
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, zipf(rng), op_for(p));
      }
      break;
    }
    case TraceFamily::kWorkingSet: {
      const std::uint64_t size = std::max<std::uint64_t>(
          1, std::min<std::uint64_t>(params.working_set_size, m));
      const std::uint64_t period =
          std::max<std::uint64_t>(1, params.working_set_period);
      const std::uint64_t window = params.working_set_phase / period;
      const std::uint64_t base = mix64(window) % (m - size + 1);
      for (std::uint32_t p = 0; p < n; ++p) {
        const std::uint64_t var = rng.bernoulli(params.working_set_fraction)
                                      ? base + rng.below(size)
                                      : rng.below(m);
        push(p, var, op_for(p));
      }
      break;
    }
  }
  return batch;
}

std::vector<AccessBatch> make_trace(TraceFamily family, std::uint32_t n,
                                    std::uint64_t m, std::size_t steps,
                                    util::Rng& rng,
                                    const TraceParams& params) {
  std::vector<AccessBatch> trace;
  trace.reserve(steps);
  TraceParams p = params;
  for (std::size_t s = 0; s < steps; ++s) {
    // Vary the stride family's offset per step so consecutive steps hit
    // different variables (like a scanning stencil), and advance the
    // working-set family's phase so the hot window rotates every
    // working_set_period steps.
    if (family == TraceFamily::kStride) {
      p.offset = (params.offset + s * n) % m;
    } else if (family == TraceFamily::kWorkingSet) {
      p.working_set_phase = params.working_set_phase + s;
    }
    trace.push_back(make_batch(family, n, m, rng, p));
  }
  return trace;
}

}  // namespace pramsim::pram
