#include "pram/trace.hpp"

#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::pram {

std::string to_string(TraceFamily family) {
  switch (family) {
    case TraceFamily::kPermutation: return "permutation";
    case TraceFamily::kUniform: return "uniform";
    case TraceFamily::kHotspot: return "hotspot";
    case TraceFamily::kStride: return "stride";
    case TraceFamily::kBitReversal: return "bit-reversal";
    case TraceFamily::kBroadcast: return "broadcast";
  }
  return "???";
}

const std::vector<TraceFamily>& all_trace_families() {
  static const std::vector<TraceFamily> families = {
      TraceFamily::kPermutation, TraceFamily::kUniform,
      TraceFamily::kHotspot,     TraceFamily::kStride,
      TraceFamily::kBitReversal, TraceFamily::kBroadcast,
  };
  return families;
}

const std::vector<TraceFamily>& exclusive_trace_families() {
  static const std::vector<TraceFamily> families = {
      TraceFamily::kPermutation,
      TraceFamily::kStride,
      TraceFamily::kBitReversal,
  };
  return families;
}

namespace {

std::uint64_t bit_reverse(std::uint64_t x, int bits) {
  std::uint64_t out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | ((x >> i) & 1ULL);
  }
  return out;
}

}  // namespace

AccessBatch make_batch(TraceFamily family, std::uint32_t n, std::uint64_t m,
                       util::Rng& rng, const TraceParams& params) {
  PRAMSIM_ASSERT(n >= 1 && m >= 1);
  AccessBatch batch;
  batch.reserve(n);

  auto op_for = [&](std::uint32_t /*proc*/) {
    return rng.bernoulli(params.write_fraction) ? AccessOp::kWrite
                                                : AccessOp::kRead;
  };
  auto push = [&](std::uint32_t proc, std::uint64_t var, AccessOp op) {
    PRAMSIM_ASSERT(var < m);
    batch.push_back({ProcId(proc), op, VarId(static_cast<std::uint32_t>(var)),
                     static_cast<Word>(rng.below(1'000'000))});
  };

  switch (family) {
    case TraceFamily::kPermutation: {
      PRAMSIM_ASSERT(m >= n);
      const auto vars = rng.sample_without_replacement(m, n);
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, vars[p], op_for(p));
      }
      break;
    }
    case TraceFamily::kUniform: {
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, rng.below(m), op_for(p));
      }
      break;
    }
    case TraceFamily::kHotspot: {
      const std::uint64_t hot = std::max<std::uint64_t>(
          1, std::min<std::uint64_t>(params.hotset_size, m));
      for (std::uint32_t p = 0; p < n; ++p) {
        const std::uint64_t var = rng.bernoulli(params.hotspot_fraction)
                                      ? rng.below(hot)
                                      : rng.below(m);
        push(p, var, op_for(p));
      }
      break;
    }
    case TraceFamily::kStride: {
      const std::uint64_t stride = std::max<std::uint64_t>(1, params.stride);
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, (params.offset + p * stride) % m, op_for(p));
      }
      break;
    }
    case TraceFamily::kBitReversal: {
      const int bits = n > 1 ? util::ilog2_ceil(n) : 1;
      PRAMSIM_ASSERT_MSG(m >= (1ULL << bits),
                         "bit-reversal trace needs m >= next_pow2(n)");
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, bit_reverse(p, bits), op_for(p));
      }
      break;
    }
    case TraceFamily::kBroadcast: {
      for (std::uint32_t p = 0; p < n; ++p) {
        push(p, 0, AccessOp::kRead);
      }
      break;
    }
  }
  return batch;
}

std::vector<AccessBatch> make_trace(TraceFamily family, std::uint32_t n,
                                    std::uint64_t m, std::size_t steps,
                                    util::Rng& rng,
                                    const TraceParams& params) {
  std::vector<AccessBatch> trace;
  trace.reserve(steps);
  TraceParams p = params;
  for (std::size_t s = 0; s < steps; ++s) {
    // Vary the stride family's offset per step so consecutive steps hit
    // different variables (like a scanning stencil).
    if (family == TraceFamily::kStride) {
      p.offset = (params.offset + s * n) % m;
    }
    trace.push_back(make_batch(family, n, m, rng, p));
  }
  return trace;
}

}  // namespace pramsim::pram
