// The pluggable shared-memory abstraction.
//
// The ideal P-RAM reads/writes a flat array in unit time. Every simulation
// scheme in this repository (DMMPC majority, 2DMOT, IDA, hashing) is a
// MemorySystem implementation whose step() reports how long the simulating
// machine took, in that machine's native time unit (protocol rounds for
// complete-interconnect models, network cycles for bounded-degree ones).
// Plugging a scheme into pram::Machine yields the end-to-end simulated
// P-RAM the paper describes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/sink.hpp"
#include "pram/access_plan.hpp"
#include "pram/faults.hpp"
#include "pram/serve_context.hpp"
#include "pram/snapshot.hpp"
#include "pram/types.hpp"

namespace pramsim::memmap {
class MemoryMap;  // forward declaration: optional introspection hook only
}

namespace pramsim::pram {

/// Cost of serving one P-RAM step's accesses on the simulating machine,
/// plus scheme-agnostic telemetry (fields a scheme cannot measure stay 0).
struct MemStepCost {
  /// Elapsed time in the simulating machine's unit (rounds or cycles).
  std::uint64_t time = 0;
  /// Total copy/share accesses performed (work; relevant for IDA).
  std::uint64_t work = 0;
  /// Live variables left after stage 1 of a two-stage majority protocol.
  std::uint64_t live_after_stage1 = 0;
  /// Peak per-module (or per-edge) contention this step.
  std::uint64_t max_queue = 0;
};

/// Outcome of one background scrub pass (MemorySystem::scrub): how much
/// of the budget was spent and what it bought.
struct ScrubResult {
  std::uint64_t scanned = 0;    ///< storage entities examined
  std::uint64_t repaired = 0;   ///< entities re-replicated / re-dispersed
  std::uint64_t relocated = 0;  ///< copies/shares moved off dead modules
  std::uint64_t work = 0;       ///< copy/share accesses the pass performed

  void merge(const ScrubResult& other) {
    scanned += other.scanned;
    repaired += other.repaired;
    relocated += other.relocated;
    work += other.work;
  }
};

/// Capability bits a scheme advertises on the serve surface
/// (MemorySystem::capabilities).
enum ServeCapability : std::uint32_t {
  /// serve(plan, ctx) can fan the plan's module groups across
  /// ctx.executor()'s workers (groups are independent work units).
  kGroupParallel = 1u << 0,
};

/// Which serve backend a scheme instance runs
/// (MemorySystem::set_serve_backend; swept by core::SchemeSpec::backend).
enum class ServeBackend : std::uint8_t {
  kSerial,         ///< one thread serves the whole plan (the default)
  kGroupParallel,  ///< plan groups fan across the context's executor
};

[[nodiscard]] const char* to_string(ServeBackend backend);

/// Interface all shared-memory organizations implement.
///
/// Semantics contract (matching the P-RAM step semantics): all reads
/// observe the state prior to this step's writes; reads/writes within a
/// call are one P-RAM step. `reads` and `writes` each contain distinct
/// variables (concurrent accesses are combined by the machine first).
class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  MemorySystem() = default;
  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Serve one P-RAM step. read_values[i] receives the value of reads[i].
  virtual MemStepCost step(std::span<const VarId> reads,
                           std::span<Word> read_values,
                           std::span<const VarWrite> writes) = 0;

  // ----- the plan-based serve entry (three-part contract) ---------------
  //
  // serve(plan, ctx) is the hot batched entry: the driver combines/groups
  // each step ONCE into an arena-backed AccessPlan (core::PlanBuilder)
  // and hands the per-step I/O surface — output span, step clock, outage
  // flags, executor — in one caller-owned ServeContext. The contract
  // backends must honor:
  //
  //  * The DEFAULT serve() adapts to step() by forwarding plan.reads /
  //    plan.writes verbatim (and mirroring the legacy flagged_reads()
  //    surface into the context afterwards), so implementing step() alone
  //    keeps a scheme fully functional. Wrappers (e.g.
  //    faults::FaultableMemory) that must observe every access intercept
  //    step() and inherit this default, which funnels plans through their
  //    step() override.
  //  * A native serve() override must be value-equivalent to step() for
  //    the same combined step: same read_values, same committed state,
  //    same outage flags. Cost/telemetry may differ only by deterministic
  //    scheduling detail.
  //  * serve() may keep per-instance scratch; it is called from one
  //    thread at a time like step(). A scheme advertising kGroupParallel
  //    (capabilities()) and switched to ServeBackend::kGroupParallel may
  //    additionally fan the plan's groups across ctx.executor()'s
  //    workers — but group results must merge DETERMINISTICALLY: output
  //    slots disjoint by construction, telemetry accumulated per chunk
  //    and folded in group order, never atomics racing on shared
  //    counters. Group-parallel serve must be bit-identical to serial
  //    serve at ANY worker count.
  //  * Every serve stamps the engine step clock (advance_step_clock) and
  //    publishes the stamp via ctx.stamp_step, so fault hooks and probes
  //    share one clock instead of per-scheme counters.

  /// Serve one pre-combined step. ctx.read_values()[i] receives the
  /// value of plan.reads[i].
  virtual MemStepCost serve(const AccessPlan& plan, ServeContext& ctx) {
    const MemStepCost cost = step(plan.reads, ctx.read_values(),
                                  plan.writes);
    ctx.stamp_step(steps_served());
    adopt_legacy_flags(ctx);
    return cost;
  }

  /// Stable per-variable grouping key for plan building (target module /
  /// block / shard). Must be immutable for the memory's lifetime and safe
  /// to call concurrently with serve()/step() — the plan generator thread
  /// runs ahead of the serving thread. Schemes whose placement can change
  /// mid-run (e.g. rehashing baselines) must NOT expose it.
  [[nodiscard]] virtual std::uint64_t plan_group_of(VarId var) const {
    return var.index();
  }

  /// True when plan_group_of defines a grouping worth materializing; the
  /// builder skips the group arrays (and their sort) otherwise.
  [[nodiscard]] virtual bool wants_plan_groups() const { return false; }

  /// Serve-surface capability bits (ServeCapability). A scheme that can
  /// fan plan groups across executor workers advertises kGroupParallel;
  /// the factory only switches backends capabilities allow.
  [[nodiscard]] virtual std::uint32_t capabilities() const { return 0; }

  /// Select the serve backend. Returns the backend actually in effect:
  /// schemes without the matching capability (or whose configuration
  /// forbids it — e.g. a rehashing baseline whose placement moves) stay
  /// on kSerial. Like set_fault_hooks: switch before serving traffic,
  /// never between steps — plans built for one backend may lack the
  /// group arrays the other consumes.
  virtual ServeBackend set_serve_backend(ServeBackend backend) {
    (void)backend;
    return ServeBackend::kSerial;
  }

  /// Steps served so far — the engine-wide step clock. Every serving
  /// entry advances it exactly once per P-RAM step (schemes call
  /// advance_step_clock at the top of step()/serve()); fault hooks,
  /// scrub passes, and peek/poke verification all read this one clock
  /// instead of per-scheme stamp counters.
  [[nodiscard]] std::uint64_t steps_served() const { return step_clock_; }

  /// Number of addressable shared variables (m).
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// Debug/verification access: current committed value of a variable.
  [[nodiscard]] virtual Word peek(VarId var) const = 0;

  /// Verification hook: initialize a variable (not a timed operation).
  virtual void poke(VarId var, Word value) = 0;

  // ----- scheme-agnostic introspection (the unified engine surface) -----

  /// Storage blow-up over the ideal flat memory: r for replicated
  /// schemes, d/b for IDA dispersal, 1 for single-copy organizations.
  [[nodiscard]] virtual double storage_redundancy() const { return 1.0; }

  /// The variable->modules map driving this scheme, when one exists
  /// (lets drivers build map-adversarial batches); nullptr otherwise.
  [[nodiscard]] virtual const memmap::MemoryMap* memory_map() const {
    return nullptr;
  }

  /// Number of memory modules the organization spreads storage over
  /// (M); 1 for monolithic memories. Sizes the fault model's kill set.
  [[nodiscard]] virtual std::uint32_t num_modules() const { return 1; }

  /// Install copy/share-level fault injection. Returns true when the
  /// scheme applies the hooks itself at its replica/share granularity
  /// (divergent copies, missing shares); false when it cannot, in which
  /// case a wrapper (faults::FaultableMemory) degrades it externally.
  /// Passing nullptr clears a previous installation. Install before
  /// serving traffic, never between steps: faults whose onset should be
  /// mid-run carry a dynamic onset step inside the hooks (pram::FaultHooks
  /// queries are step-stamped), the installation itself stays static.
  virtual bool set_fault_hooks(const FaultHooks* hooks) {
    (void)hooks;
    return false;
  }

  /// Background repair pass: spend up to `budget` units of scrub work
  /// (one unit ~ one storage entity examined) re-replicating copies /
  /// re-dispersing shares that faults have degraded, relocating storage
  /// off dead modules where the organization supports it. Called by the
  /// driver BETWEEN steps (never concurrently with serve()/step()); a
  /// pass must be a state no-op whenever nothing is degraded, so scrub
  /// under fault rate 0 leaves every subsequent read bit-identical.
  /// Default: nothing to rebuild (single-copy and wrapper organizations).
  virtual ScrubResult scrub(std::uint64_t budget) {
    (void)budget;
    return {};
  }

  /// Reliability telemetry accumulated while serving under fault hooks
  /// (all-zero when none are installed or the scheme ignores them).
  [[nodiscard]] virtual ReliabilityStats reliability() const { return {}; }

  /// LEGACY per-read outage surface: flags for the most recent step
  /// served under fault hooks; flags[i] != 0 means reads[i] fell below
  /// the scheme's reconstruction threshold and its value is a FLAGGED
  /// loss, not a candidate lie (the trace-consistency oracle must not
  /// count it as a silent wrong read). Empty when the last step flagged
  /// nothing. ServeContext::flags() is the primary transport on the
  /// serve path; this accessor remains for step()-level callers and must
  /// stay populated by BOTH entries.
  [[nodiscard]] virtual std::span<const std::uint8_t> flagged_reads()
      const {
    return {};
  }

  /// Scheme-chosen worst-case traffic: up to `count` distinct variables
  /// crafted against the scheme's own placement knowledge (e.g. the
  /// hashed baseline's known-hash preimage attack). Empty when the
  /// scheme has no better adversary than the map-based generator.
  [[nodiscard]] virtual std::vector<VarId> adversarial_vars(
      std::uint32_t count, std::uint64_t seed) const {
    (void)count;
    (void)seed;
    return {};
  }

  // ----- durability surface: snapshot / restore -------------------------
  //
  // snapshot() serializes the engine's committed state as one byte
  // stream: a fixed frame (magic, format version, step clock, m) followed
  // by the virtual snapshot_body payload. restore() validates the frame,
  // restores the step clock, then replays the body. The contract:
  //
  //  * restore() targets a FRESHLY CONSTRUCTED instance of the SAME
  //    configuration (scheme spec, seeds): derived state — memory maps,
  //    share placements, engine schedules — is rebuilt by the
  //    constructor, the snapshot carries only the mutable committed
  //    state on top of it.
  //  * The default bodies round-trip the sparse committed image via
  //    peek/poke (every variable whose value differs from the initial
  //    0), so all ten SchemeKinds — and any wrapper whose peek/poke is
  //    faithful — snapshot unmodified. Organizations with native
  //    storage (majority copy rows, IDA share rows) override the body
  //    pair to preserve stamps/placement overlays bit for bit; wrappers
  //    (cache, faults) nest their inner memory's full frame.
  //  * snapshot() is deliberately NON-const: a wrapper may have to flush
  //    internal buffers into its inner scheme first (cache dirty lines —
  //    the write-back MUST precede serialization or the checkpoint
  //    captures stale backing state). Observable values never change.
  //  * restore() returns false on any frame/body mismatch (wrong magic,
  //    wrong m, truncated stream); the target's state is then
  //    unspecified and the caller must discard it.
  //
  // Both calls run BETWEEN steps, on the serving thread, like scrub().

  void snapshot(SnapshotSink& sink);
  [[nodiscard]] bool restore(SnapshotSource& source);

  /// Attach (or detach, with nullptr) an observability sink. The sink is
  /// caller-owned and must outlive the attachment; schemes write
  /// counters, phase timings, and journal events into it while serving.
  /// Attach before serving traffic, like set_fault_hooks. Wrappers
  /// forward the attachment to their inner memory so both layers report
  /// into one sink. A no-op (hooks compile away) when obs::kEnabled is
  /// false.
  virtual void set_observer(obs::Sink* sink) { obs_ = sink; }

  /// The currently attached sink (nullptr when none).
  [[nodiscard]] obs::Sink* observer() const { return obs_; }

 protected:
  /// Serialize the mutable committed state (the part the constructor
  /// cannot rebuild). Default: the sparse peek image — a count followed
  /// by (var, value) pairs for every variable peeking non-zero.
  virtual void snapshot_body(SnapshotSink& sink);

  /// Replay a snapshot_body stream onto a freshly constructed instance.
  /// Default: poke each recorded pair. Returns false on a malformed or
  /// truncated stream.
  [[nodiscard]] virtual bool restore_body(SnapshotSource& source);

  /// Advance the engine step clock by one P-RAM step and return the new
  /// stamp. Called exactly once per served step, by whichever entry
  /// serves it (never by adapters that delegate to another entry).
  std::uint64_t advance_step_clock() { return ++step_clock_; }

  /// Mirror the legacy flagged_reads() surface into the context (used by
  /// the default serve() adapter after funneling through step()).
  void adopt_legacy_flags(ServeContext& ctx) const {
    const auto flags = flagged_reads();
    if (flags.empty()) {
      return;
    }
    ctx.enable_flags();
    const std::size_t n = std::min(flags.size(),
                                   ctx.read_values().size());
    for (std::size_t i = 0; i < n; ++i) {
      if (flags[i] != 0) {
        ctx.flag_read(i);
      }
    }
  }

  // ----- observability hook helpers (no-ops unless a sink is attached,
  // and compiled away entirely under PRAMSIM_OBS=OFF) -------------------

  /// Record a journal event stamped with the current step clock.
  void obs_event(obs::EventKind kind, std::uint64_t entity,
                 std::uint32_t unit = 0, std::uint64_t a = 0,
                 std::uint64_t b = 0) const {
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        obs_->journal.append(steps_served(), kind, entity, unit, a, b);
      }
    }
  }

  /// Bump a named counter.
  void obs_count(std::string_view name, std::uint64_t delta = 1) const {
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr) {
        obs_->metrics.add(name, delta);
      }
    }
  }

  /// Phase-timer target for the current step: the attached sink's phase
  /// table when this step is sampled, nullptr otherwise (ScopedPhase on a
  /// nullptr set performs zero clock reads).
  [[nodiscard]] obs::PhaseSet* obs_timing() const {
    if constexpr (obs::kEnabled) {
      if (obs_ != nullptr && obs_->sample(steps_served())) {
        return &obs_->phases;
      }
    }
    return nullptr;
  }

  /// Attached sink; pointer (not owned) so const serve paths can write
  /// telemetry through it.
  obs::Sink* obs_ = nullptr;

 private:
  std::uint64_t step_clock_ = 0;  ///< P-RAM steps served (fault clock)
};

/// The ideal P-RAM's own memory: a flat array with unit access time.
/// Serves as the reference implementation for end-to-end equivalence tests.
class FlatMemory final : public MemorySystem {
 public:
  explicit FlatMemory(std::uint64_t m_cells);

  MemStepCost step(std::span<const VarId> reads, std::span<Word> read_values,
                   std::span<const VarWrite> writes) override;

  [[nodiscard]] std::uint64_t size() const override { return cells_.size(); }
  [[nodiscard]] Word peek(VarId var) const override;
  void poke(VarId var, Word value) override;

 private:
  std::vector<Word> cells_;
};

}  // namespace pramsim::pram
