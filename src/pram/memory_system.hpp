// The pluggable shared-memory abstraction.
//
// The ideal P-RAM reads/writes a flat array in unit time. Every simulation
// scheme in this repository (DMMPC majority, 2DMOT, IDA, hashing) is a
// MemorySystem implementation whose step() reports how long the simulating
// machine took, in that machine's native time unit (protocol rounds for
// complete-interconnect models, network cycles for bounded-degree ones).
// Plugging a scheme into pram::Machine yields the end-to-end simulated
// P-RAM the paper describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pram/access_plan.hpp"
#include "pram/faults.hpp"
#include "pram/types.hpp"

namespace pramsim::memmap {
class MemoryMap;  // forward declaration: optional introspection hook only
}

namespace pramsim::pram {

/// Cost of serving one P-RAM step's accesses on the simulating machine,
/// plus scheme-agnostic telemetry (fields a scheme cannot measure stay 0).
struct MemStepCost {
  /// Elapsed time in the simulating machine's unit (rounds or cycles).
  std::uint64_t time = 0;
  /// Total copy/share accesses performed (work; relevant for IDA).
  std::uint64_t work = 0;
  /// Live variables left after stage 1 of a two-stage majority protocol.
  std::uint64_t live_after_stage1 = 0;
  /// Peak per-module (or per-edge) contention this step.
  std::uint64_t max_queue = 0;
};

/// Outcome of one background scrub pass (MemorySystem::scrub): how much
/// of the budget was spent and what it bought.
struct ScrubResult {
  std::uint64_t scanned = 0;    ///< storage entities examined
  std::uint64_t repaired = 0;   ///< entities re-replicated / re-dispersed
  std::uint64_t relocated = 0;  ///< copies/shares moved off dead modules
  std::uint64_t work = 0;       ///< copy/share accesses the pass performed

  void merge(const ScrubResult& other) {
    scanned += other.scanned;
    repaired += other.repaired;
    relocated += other.relocated;
    work += other.work;
  }
};

/// Interface all shared-memory organizations implement.
///
/// Semantics contract (matching the P-RAM step semantics): all reads
/// observe the state prior to this step's writes; reads/writes within a
/// call are one P-RAM step. `reads` and `writes` each contain distinct
/// variables (concurrent accesses are combined by the machine first).
class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  MemorySystem() = default;
  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Serve one P-RAM step. read_values[i] receives the value of reads[i].
  virtual MemStepCost step(std::span<const VarId> reads,
                           std::span<Word> read_values,
                           std::span<const VarWrite> writes) = 0;

  // ----- the plan-based serve entry (two-entry contract) ---------------
  //
  // serve() is the hot batched entry: the driver combines/groups each
  // step ONCE into an arena-backed AccessPlan (core::PlanBuilder) and
  // every backend may consume the precomputed joins instead of rebuilding
  // them. The contract future backends must honor:
  //
  //  * The DEFAULT serve() adapts to step() by forwarding plan.reads /
  //    plan.writes verbatim, so implementing step() alone keeps a scheme
  //    fully functional (all ten SchemeKinds worked unmodified when this
  //    entry landed). Wrappers (e.g. faults::FaultableMemory) that must
  //    observe every access intercept step() and inherit the default
  //    serve(), which funnels plans through their step() override.
  //  * A native serve() override must be value-equivalent to step() for
  //    the same combined step: same read_values, same committed state.
  //    Cost/telemetry may differ only by deterministic scheduling detail.
  //  * serve() may keep per-instance scratch; it is called from one
  //    thread at a time like step().

  /// Serve one pre-combined step. read_values[i] receives plan.reads[i].
  virtual MemStepCost serve(const AccessPlan& plan,
                            std::span<Word> read_values) {
    return step(plan.reads, read_values, plan.writes);
  }

  /// Stable per-variable grouping key for plan building (target module /
  /// block / shard). Must be immutable for the memory's lifetime and safe
  /// to call concurrently with serve()/step() — the plan generator thread
  /// runs ahead of the serving thread. Schemes whose placement can change
  /// mid-run (e.g. rehashing baselines) must NOT expose it.
  [[nodiscard]] virtual std::uint64_t plan_group_of(VarId var) const {
    return var.index();
  }

  /// True when plan_group_of defines a grouping worth materializing; the
  /// builder skips the group arrays (and their sort) otherwise.
  [[nodiscard]] virtual bool wants_plan_groups() const { return false; }

  /// Number of addressable shared variables (m).
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// Debug/verification access: current committed value of a variable.
  [[nodiscard]] virtual Word peek(VarId var) const = 0;

  /// Verification hook: initialize a variable (not a timed operation).
  virtual void poke(VarId var, Word value) = 0;

  // ----- scheme-agnostic introspection (the unified engine surface) -----

  /// Storage blow-up over the ideal flat memory: r for replicated
  /// schemes, d/b for IDA dispersal, 1 for single-copy organizations.
  [[nodiscard]] virtual double storage_redundancy() const { return 1.0; }

  /// The variable->modules map driving this scheme, when one exists
  /// (lets drivers build map-adversarial batches); nullptr otherwise.
  [[nodiscard]] virtual const memmap::MemoryMap* memory_map() const {
    return nullptr;
  }

  /// Number of memory modules the organization spreads storage over
  /// (M); 1 for monolithic memories. Sizes the fault model's kill set.
  [[nodiscard]] virtual std::uint32_t num_modules() const { return 1; }

  /// Install copy/share-level fault injection. Returns true when the
  /// scheme applies the hooks itself at its replica/share granularity
  /// (divergent copies, missing shares); false when it cannot, in which
  /// case a wrapper (faults::FaultableMemory) degrades it externally.
  /// Passing nullptr clears a previous installation. Install before
  /// serving traffic, never between steps: faults whose onset should be
  /// mid-run carry a dynamic onset step inside the hooks (pram::FaultHooks
  /// queries are step-stamped), the installation itself stays static.
  virtual bool set_fault_hooks(const FaultHooks* hooks) {
    (void)hooks;
    return false;
  }

  /// Background repair pass: spend up to `budget` units of scrub work
  /// (one unit ~ one storage entity examined) re-replicating copies /
  /// re-dispersing shares that faults have degraded, relocating storage
  /// off dead modules where the organization supports it. Called by the
  /// driver BETWEEN steps (never concurrently with serve()/step()); a
  /// pass must be a state no-op whenever nothing is degraded, so scrub
  /// under fault rate 0 leaves every subsequent read bit-identical.
  /// Default: nothing to rebuild (single-copy and wrapper organizations).
  virtual ScrubResult scrub(std::uint64_t budget) {
    (void)budget;
    return {};
  }

  /// Reliability telemetry accumulated while serving under fault hooks
  /// (all-zero when none are installed or the scheme ignores them).
  [[nodiscard]] virtual ReliabilityStats reliability() const { return {}; }

  /// Per-read outage flags for the most recent step() served under
  /// fault hooks: flags[i] true means reads[i] fell below the scheme's
  /// reconstruction threshold and its value is a FLAGGED loss, not a
  /// candidate lie (the trace-consistency oracle must not count it as a
  /// silent wrong read). Empty when the last step flagged nothing.
  [[nodiscard]] virtual const std::vector<bool>& flagged_reads() const {
    static const std::vector<bool> kNone;
    return kNone;
  }

  /// Scheme-chosen worst-case traffic: up to `count` distinct variables
  /// crafted against the scheme's own placement knowledge (e.g. the
  /// hashed baseline's known-hash preimage attack). Empty when the
  /// scheme has no better adversary than the map-based generator.
  [[nodiscard]] virtual std::vector<VarId> adversarial_vars(
      std::uint32_t count, std::uint64_t seed) const {
    (void)count;
    (void)seed;
    return {};
  }
};

/// The ideal P-RAM's own memory: a flat array with unit access time.
/// Serves as the reference implementation for end-to-end equivalence tests.
class FlatMemory final : public MemorySystem {
 public:
  explicit FlatMemory(std::uint64_t m_cells);

  MemStepCost step(std::span<const VarId> reads, std::span<Word> read_values,
                   std::span<const VarWrite> writes) override;

  [[nodiscard]] std::uint64_t size() const override { return cells_.size(); }
  [[nodiscard]] Word peek(VarId var) const override;
  void poke(VarId var, Word value) override;

 private:
  std::vector<Word> cells_;
};

}  // namespace pramsim::pram
