// ServeContext: everything one serve() call needs beyond the plan itself.
//
// The original serve entry took only the read-value output span, so every
// additional per-step channel grew its own side surface: per-scheme
// steps_/stamp_ counters for the fault clock, the flagged_reads() accessor
// for outage flags, and no way at all to hand a scheme worker threads.
// A ServeContext is that whole per-step surface in one object the caller
// owns and the scheme fills:
//
//   * read_values()  - the output span (read_values[i] <- plan.reads[i]);
//   * step()         - the step number the scheme stamped this serve with
//                      (the engine-wide clock in MemorySystem advances it);
//   * outage flags   - per-read "this value is a FLAGGED loss, not a
//                      candidate lie" bits, replacing flagged_reads() as
//                      the primary transport (the accessor remains as a
//                      read-only legacy view);
//   * executor()     - a util::Executor for schemes whose capabilities()
//                      include kGroupParallel: the plan's module groups
//                      are independent work units, and the executor fans
//                      them across parked worker threads.
//
// Ownership: the CALLER (driver, bench, test) owns the context and the
// executor it points at; both outlive the serve() call. A context is
// reused across steps via bind(), which re-arms the output span and
// clears the per-step state (flags, step stamp). Schemes must treat the
// context as per-step scratch: nothing in it survives bind().
//
// Thread-safety inside group-parallel serve: flag_read() writes one
// std::uint8_t per read index — indices are disjoint across groups, so
// concurrent flagging from group workers is race-free (this is why the
// flags are bytes, not std::vector<bool> bits). enable_flags() must be
// called BEFORE fanning out (it sizes the array).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pram/types.hpp"

namespace pramsim::util {
class Executor;  // forward declaration: see util/parallel.hpp
}

namespace pramsim::pram {

class ServeContext {
 public:
  ServeContext() = default;
  explicit ServeContext(std::span<Word> read_values,
                        util::Executor* executor = nullptr)
      : read_values_(read_values), executor_(executor) {}

  ServeContext(const ServeContext&) = delete;
  ServeContext& operator=(const ServeContext&) = delete;

  /// Re-arm for the next step: new output span, per-step state cleared.
  void bind(std::span<Word> read_values) {
    read_values_ = read_values;
    flags_.clear();
    step_ = 0;
  }

  /// Attach (or detach, with nullptr) the worker-thread handle. Schemes
  /// without kGroupParallel — and group-parallel schemes given no
  /// executor — serve every group on the calling thread.
  void set_executor(util::Executor* executor) { executor_ = executor; }
  [[nodiscard]] util::Executor* executor() const { return executor_; }

  /// Output span: read_values()[i] receives the value of plan.reads[i].
  [[nodiscard]] std::span<Word> read_values() const { return read_values_; }

  // ----- step clock (stamped by the serving scheme) -----

  /// The engine step number this serve was stamped with (0 until the
  /// scheme calls stamp_step). Wrappers and probes read the clock here
  /// instead of growing per-scheme counters.
  [[nodiscard]] std::uint64_t step() const { return step_; }
  void stamp_step(std::uint64_t step) { step_ = step; }

  // ----- per-read outage flags (absorbs flagged_reads()) -----

  /// Materialize the flag array (one byte per read, all clear). Schemes
  /// serving under fault hooks call this up front — before any group
  /// fan-out — exactly where they used to assign flagged_reads_.
  void enable_flags() { flags_.assign(read_values_.size(), 0); }

  /// Mark plan.reads[i] as a flagged loss (below the scheme's
  /// reconstruction threshold). Requires enable_flags() this step.
  /// Safe to call concurrently for distinct i.
  void flag_read(std::size_t i) { flags_[i] = 1; }

  /// Per-read outage flags; empty when the scheme flagged nothing (or
  /// served without fault hooks). flags()[i] != 0 means plan.reads[i] is
  /// a KNOWN loss the trace-consistency oracle must not score as a lie.
  [[nodiscard]] std::span<const std::uint8_t> flags() const {
    return flags_;
  }

 private:
  std::span<Word> read_values_;
  std::vector<std::uint8_t> flags_;
  std::uint64_t step_ = 0;
  util::Executor* executor_ = nullptr;
};

}  // namespace pramsim::pram
