// The P-RAM processor instruction set.
//
// Each processor is a word-RAM with 16 general-purpose registers, a private
// memory, and shared-memory access instructions. One instruction executes
// per P-RAM step on every running processor (synchronous lock-step), as in
// Fortune & Wyllie's formalization.
#pragma once

#include <cstdint>
#include <string>

#include "pram/types.hpp"

namespace pramsim::pram {

/// Register index 0..15.
using Reg = std::uint8_t;
inline constexpr Reg kNumRegisters = 16;

// Conventional register names used by the program library.
inline constexpr Reg R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6,
                     R7 = 7, R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12,
                     R13 = 13, R14 = 14, R15 = 15;

enum class Opcode : std::uint8_t {
  kNop,
  kHalt,
  kLoadImm,      ///< r1 := imm
  kMov,          ///< r1 := r2
  kAdd,          ///< r1 := r2 + r3
  kSub,          ///< r1 := r2 - r3
  kMul,          ///< r1 := r2 * r3
  kDiv,          ///< r1 := r2 / r3 (traps on zero divisor)
  kMod,          ///< r1 := r2 mod r3 (traps on zero divisor)
  kMin,          ///< r1 := min(r2, r3)
  kMax,          ///< r1 := max(r2, r3)
  kAnd,          ///< r1 := r2 & r3
  kOr,           ///< r1 := r2 | r3
  kXor,          ///< r1 := r2 ^ r3
  kShl,          ///< r1 := r2 << r3 (r3 in [0,63], else traps)
  kShr,          ///< r1 := r2 >> r3 (arithmetic; r3 in [0,63])
  kSlt,          ///< r1 := (r2 < r3)
  kSle,          ///< r1 := (r2 <= r3)
  kSeq,          ///< r1 := (r2 == r3)
  kSne,          ///< r1 := (r2 != r3)
  kAddImm,       ///< r1 := r2 + imm
  kMulImm,       ///< r1 := r2 * imm
  kJmp,          ///< pc := imm
  kJz,           ///< if r1 == 0 then pc := imm
  kJnz,          ///< if r1 != 0 then pc := imm
  kLoadLocal,    ///< r1 := private[r2 + imm]
  kStoreLocal,   ///< private[r2 + imm] := r1
  kReadShared,   ///< r1 := shared[r2 + imm]   (a shared-memory READ access)
  kWriteShared,  ///< shared[r2 + imm] := r1   (a shared-memory WRITE access)
  kPid,          ///< r1 := processor id
  kNprocs,       ///< r1 := number of processors
};

[[nodiscard]] std::string to_string(Opcode op);

/// True for the two opcodes that touch shared memory.
[[nodiscard]] constexpr bool is_shared_access(Opcode op) {
  return op == Opcode::kReadShared || op == Opcode::kWriteShared;
}

struct Instruction {
  Opcode op = Opcode::kNop;
  Reg r1 = 0;
  Reg r2 = 0;
  Reg r3 = 0;
  Word imm = 0;
};

/// Human-readable disassembly of one instruction.
[[nodiscard]] std::string disassemble(const Instruction& ins);

}  // namespace pramsim::pram
