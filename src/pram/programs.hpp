// Canonical P-RAM programs.
//
// These are the classic algorithms the P-RAM literature (and the paper's
// introduction) motivates: prefix sums, balanced-tree reduction, pointer
// jumping / list ranking, odd-even transposition sorting, matrix-vector
// product (the 2DMOT's original workload, Nath et al. 1983).
//
// All programs are SPMD and *predicated*: every processor executes the
// identical instruction sequence (branch decisions depend only on values
// that are equal across processors), so the machine stays in lock-step and
// the per-step access patterns satisfy the stated conflict policy by
// construction. Inactive processors access per-processor scratch cells to
// preserve exclusivity under EREW.
#pragma once

#include <cstdint>

#include "pram/program.hpp"
#include "pram/types.hpp"

namespace pramsim::pram::programs {

/// A program together with its shared-memory footprint and the weakest
/// conflict policy under which it runs violation-free.
struct ProgramSpec {
  Program program;
  std::uint64_t m_required = 0;      ///< minimum shared cells
  ConflictPolicy min_policy = ConflictPolicy::kErew;
};

/// Inclusive prefix sum of shared[0..n) in place (Hillis–Steele with
/// double buffering). EREW. Layout: x = [0,n), tmp = [n,2n),
/// scratch = [2n,3n). ceil(log2 n) rounds.
[[nodiscard]] ProgramSpec prefix_sum(std::uint32_t n);

/// Sum-reduction of shared[0..n) into shared[0] (balanced binary fan-in).
/// EREW. Layout: x = [0,n), scratch = [n,2n). ceil(log2 n) rounds.
[[nodiscard]] ProgramSpec reduce_sum(std::uint32_t n);

/// List ranking by pointer jumping. CREW.
/// Layout: next = [0,n), rank = [n,2n). Input: next[i] = successor,
/// tail points to itself; rank[i] = 1 for non-tail, 0 for tail.
/// Output: rank[i] = distance from i to the tail. ceil(log2 n) rounds.
[[nodiscard]] ProgramSpec list_rank(std::uint32_t n);

/// Odd–even transposition sort of shared[0..n) ascending. EREW.
/// Layout: a = [0,n), scratch1 = [n,2n), scratch2 = [2n,3n). n rounds.
[[nodiscard]] ProgramSpec odd_even_sort(std::uint32_t n);

/// Dense matrix-vector product y = A*x with one processor per row. CREW
/// (every processor reads x[j] simultaneously).
/// Layout: A row-major = [0,N^2), x = [N^2,N^2+N), y = [N^2+N,N^2+2N).
[[nodiscard]] ProgramSpec matvec(std::uint32_t n_rows);

/// Full bitonic sort of shared[0..n) ascending, n a power of two. EREW.
/// Layout: a = [0,n), scratch1 = [n,2n), scratch2 = [2n,3n).
/// (log2 n)(log2 n + 1)/2 compare-exchange rounds.
[[nodiscard]] ProgramSpec bitonic_sort(std::uint32_t n);

/// Broadcast shared[0] into shared[0..n) by recursive doubling. EREW.
/// Layout: x = [0,n), scratch = [n,2n). ceil(log2 n) rounds.
[[nodiscard]] ProgramSpec broadcast(std::uint32_t n);

/// Randomized straight-line EREW program for equivalence fuzzing: `rounds`
/// rounds of seeded-random shared read-modify-write traffic. Every round
/// each processor touches either its own 4-cell block or a shifted
/// permutation of the blocks, so accesses stay exclusive by construction
/// while the address/value mix varies with the seed. Layout: block i =
/// [4i, 4i+4). Deterministic given (n, rounds, seed).
[[nodiscard]] ProgramSpec random_exclusive(std::uint32_t n,
                                           std::uint32_t rounds,
                                           std::uint64_t seed);

// ---- tiny conflict-semantics probes used by tests -----------------------

/// Every processor reads shared[0]. Violates EREW, legal under CREW.
[[nodiscard]] ProgramSpec broadcast_read();

/// Every processor writes `value` to shared[0]. Legal under CRCW-common.
[[nodiscard]] ProgramSpec common_write(Word value);

/// Every processor writes its pid to shared[0]. Under CRCW-max the cell
/// ends as n-1; under CRCW-priority/arbitrary as 0; violates CRCW-common.
[[nodiscard]] ProgramSpec pid_write();

}  // namespace pramsim::pram::programs
