#include "ida/dispersal.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"

namespace pramsim::ida {

Disperser::Disperser(IdaParams params) : params_(params) {
  PRAMSIM_ASSERT(params_.b >= 1);
  PRAMSIM_ASSERT(params_.d >= params_.b);
  // Evaluation points are the d distinct nonzero elements alpha^0..alpha^(d-1);
  // they repeat after 255.
  PRAMSIM_ASSERT_MSG(params_.d <= 255, "GF(256) supports at most 255 shares");
  // Generator matrix for the bulk codec: share i is the polynomial
  // evaluated at alpha^i, i.e. the dot product of the block with row i.
  gen_.resize(static_cast<std::size_t>(params_.d) * params_.b);
  for (std::uint32_t i = 0; i < params_.d; ++i) {
    for (std::uint32_t j = 0; j < params_.b; ++j) {
      gen_[static_cast<std::size_t>(i) * params_.b + j] =
          GF256::alpha_pow(i * j);
    }
  }
}

std::vector<GF256::Elem> Disperser::encode_bytes(
    std::span<const GF256::Elem> block) const {
  PRAMSIM_ASSERT(block.size() == params_.b);
  std::vector<GF256::Elem> shares(params_.d);
  for (std::uint32_t i = 0; i < params_.d; ++i) {
    // Horner evaluation of P(x) = block[0] + block[1] x + ... at alpha^i.
    const GF256::Elem x = GF256::alpha_pow(i);
    GF256::Elem acc = 0;
    for (std::uint32_t j = params_.b; j-- > 0;) {
      acc = GF256::add(GF256::mul(acc, x), block[j]);
    }
    shares[i] = acc;
  }
  return shares;
}

std::vector<GF256::Elem> Disperser::recover_bytes(
    std::span<const std::uint32_t> indices,
    std::span<const GF256::Elem> values) const {
  PRAMSIM_ASSERT(indices.size() == params_.b);
  PRAMSIM_ASSERT(values.size() == params_.b);
  const std::uint32_t b = params_.b;

  // Evaluation points.
  std::vector<GF256::Elem> xs(b);
  for (std::uint32_t j = 0; j < b; ++j) {
    PRAMSIM_ASSERT(indices[j] < params_.d);
    xs[j] = GF256::alpha_pow(indices[j]);
  }
#ifndef NDEBUG
  for (std::uint32_t a = 0; a < b; ++a) {
    for (std::uint32_t c = a + 1; c < b; ++c) {
      PRAMSIM_ASSERT_MSG(xs[a] != xs[c], "share indices must be distinct");
    }
  }
#endif

  // Lagrange interpolation, returning the coefficient vector.
  // master(x) = prod_j (x - xs[j]), computed as coefficients.
  std::vector<GF256::Elem> master(b + 1, 0);
  master[0] = 1;
  for (std::uint32_t j = 0; j < b; ++j) {
    // multiply master by (x + xs[j])  (== x - xs[j] in char 2)
    for (std::uint32_t k = j + 1; k-- > 0;) {
      const GF256::Elem shifted = master[k];          // coefficient of x^k
      master[k + 1] = GF256::add(master[k + 1], 0);   // keep
      master[k + 1] = GF256::add(master[k + 1], shifted);
      master[k] = GF256::mul(master[k], xs[j]);
    }
  }

  std::vector<GF256::Elem> coeffs(b, 0);
  std::vector<GF256::Elem> numer(b, 0);
  for (std::uint32_t j = 0; j < b; ++j) {
    // numer(x) = master(x) / (x - xs[j]) via synthetic division.
    GF256::Elem carry = master[b];
    for (std::uint32_t k = b; k-- > 0;) {
      numer[k] = carry;
      carry = GF256::add(master[k], GF256::mul(carry, xs[j]));
    }
    // denom = prod_{i != j} (xs[j] - xs[i]) = numer(xs[j]).
    GF256::Elem denom = 0;
    for (std::uint32_t k = b; k-- > 0;) {
      denom = GF256::add(GF256::mul(denom, xs[j]), numer[k]);
    }
    const GF256::Elem scale = GF256::div(values[j], denom);
    for (std::uint32_t k = 0; k < b; ++k) {
      coeffs[k] = GF256::add(coeffs[k], GF256::mul(numer[k], scale));
    }
  }
  return coeffs;
}

std::vector<pram::Word> Disperser::encode_words(
    std::span<const pram::Word> block) const {
  PRAMSIM_ASSERT(block.size() == params_.b);
  std::vector<pram::Word> shares(params_.d, 0);
  std::vector<GF256::Elem> lane(params_.b);
  for (std::uint32_t byte = 0; byte < 8; ++byte) {
    for (std::uint32_t j = 0; j < params_.b; ++j) {
      lane[j] = static_cast<GF256::Elem>(
          (static_cast<std::uint64_t>(block[j]) >> (8 * byte)) & 0xFF);
    }
    const auto encoded = encode_bytes(lane);
    for (std::uint32_t i = 0; i < params_.d; ++i) {
      shares[i] |= static_cast<pram::Word>(static_cast<std::uint64_t>(
                       encoded[i])
                   << (8 * byte));
    }
  }
  return shares;
}

void Disperser::recovery_matrix_into(std::span<const std::uint32_t> indices,
                                     std::vector<GF256::Elem>& out) const {
  const std::uint32_t b = params_.b;
  PRAMSIM_ASSERT(indices.size() == b);
  // Same construction as recover_bytes, with the value-independent
  // factors folded into one matrix: entry (k, j) = numer_j[k] / denom_j,
  // so coeffs = M * values reproduces the interpolation exactly (field
  // arithmetic is exact; only the per-value work moved out of the loop).
  std::vector<GF256::Elem> xs(b);
  for (std::uint32_t j = 0; j < b; ++j) {
    PRAMSIM_ASSERT(indices[j] < params_.d);
    xs[j] = GF256::alpha_pow(indices[j]);
  }
  std::vector<GF256::Elem> master(b + 1, 0);
  master[0] = 1;
  for (std::uint32_t j = 0; j < b; ++j) {
    for (std::uint32_t k = j + 1; k-- > 0;) {
      const GF256::Elem shifted = master[k];
      master[k + 1] = GF256::add(master[k + 1], shifted);
      master[k] = GF256::mul(master[k], xs[j]);
    }
  }
  out.assign(static_cast<std::size_t>(b) * b, 0);
  std::vector<GF256::Elem> numer(b, 0);
  for (std::uint32_t j = 0; j < b; ++j) {
    GF256::Elem carry = master[b];
    for (std::uint32_t k = b; k-- > 0;) {
      numer[k] = carry;
      carry = GF256::add(master[k], GF256::mul(carry, xs[j]));
    }
    GF256::Elem denom = 0;
    for (std::uint32_t k = b; k-- > 0;) {
      denom = GF256::add(GF256::mul(denom, xs[j]), numer[k]);
    }
    for (std::uint32_t k = 0; k < b; ++k) {
      out[static_cast<std::size_t>(k) * b + j] = GF256::div(numer[k], denom);
    }
  }
}

void Disperser::encode_regions(const pram::Word* blocks, std::uint32_t count,
                               pram::Word* shares, std::size_t stride) const {
  PRAMSIM_ASSERT(count >= 1 && stride >= count);
  const std::uint32_t b = params_.b;
  const std::size_t span_bytes =
      static_cast<std::size_t>(count) * sizeof(pram::Word);
  // Transpose the block-major input into b contiguous word spans so each
  // linear-combination step streams one span (byte lanes of a word are
  // independent GF(256) streams, so spans need no lane structure).
  span_scratch_.resize(static_cast<std::size_t>(b) * count);
  for (std::uint32_t t = 0; t < count; ++t) {
    for (std::uint32_t j = 0; j < b; ++j) {
      span_scratch_[static_cast<std::size_t>(j) * count + t] =
          blocks[static_cast<std::size_t>(t) * b + j];
    }
  }
  const auto* in_bytes =
      reinterpret_cast<const std::uint8_t*>(span_scratch_.data());
  for (std::uint32_t i = 0; i < params_.d; ++i) {
    pram::Word* out = shares + static_cast<std::size_t>(i) * stride;
    std::memset(out, 0, span_bytes);
    auto* out_bytes = reinterpret_cast<std::uint8_t*>(out);
    for (std::uint32_t j = 0; j < b; ++j) {
      GF256::mul_span_accum(out_bytes, in_bytes + j * span_bytes, span_bytes,
                            gen_[static_cast<std::size_t>(i) * b + j]);
    }
  }
}

void Disperser::decode_regions(std::span<const std::uint32_t> indices,
                               const pram::Word* shares, std::size_t stride,
                               std::uint32_t count,
                               pram::Word* blocks_out) const {
  PRAMSIM_ASSERT(count >= 1 && stride >= count);
  const std::uint32_t b = params_.b;
  PRAMSIM_ASSERT(indices.size() == b);
  bool healthy = true;
  for (std::uint32_t j = 0; j < b && healthy; ++j) {
    healthy = indices[j] == j;
  }
  const std::vector<GF256::Elem>* matrix;
  if (healthy) {
    if (healthy_matrix_.empty()) {
      recovery_matrix_into(indices, healthy_matrix_);
    }
    matrix = &healthy_matrix_;
  } else {
    recovery_matrix_into(indices, matrix_scratch_);
    matrix = &matrix_scratch_;
  }
  const std::size_t span_bytes =
      static_cast<std::size_t>(count) * sizeof(pram::Word);
  span_scratch_.resize(static_cast<std::size_t>(b) * count);
  auto* out_bytes = reinterpret_cast<std::uint8_t*>(span_scratch_.data());
  for (std::uint32_t k = 0; k < b; ++k) {
    std::uint8_t* out_k = out_bytes + k * span_bytes;
    std::memset(out_k, 0, span_bytes);
    for (std::uint32_t j = 0; j < b; ++j) {
      GF256::mul_span_accum(
          out_k,
          reinterpret_cast<const std::uint8_t*>(
              shares + static_cast<std::size_t>(j) * stride),
          span_bytes, (*matrix)[static_cast<std::size_t>(k) * b + j]);
    }
  }
  // Transpose the word-major scratch back into block-major output.
  for (std::uint32_t t = 0; t < count; ++t) {
    for (std::uint32_t k = 0; k < b; ++k) {
      blocks_out[static_cast<std::size_t>(t) * b + k] =
          span_scratch_[static_cast<std::size_t>(k) * count + t];
    }
  }
}

std::vector<pram::Word> Disperser::recover_words(
    std::span<const std::uint32_t> indices,
    std::span<const pram::Word> shares) const {
  PRAMSIM_ASSERT(indices.size() == params_.b && shares.size() == params_.b);
  std::vector<pram::Word> block(params_.b, 0);
  std::vector<GF256::Elem> lane(params_.b);
  for (std::uint32_t byte = 0; byte < 8; ++byte) {
    for (std::uint32_t j = 0; j < params_.b; ++j) {
      lane[j] = static_cast<GF256::Elem>(
          (static_cast<std::uint64_t>(shares[j]) >> (8 * byte)) & 0xFF);
    }
    const auto decoded = recover_bytes(indices, lane);
    for (std::uint32_t j = 0; j < params_.b; ++j) {
      block[j] |= static_cast<pram::Word>(static_cast<std::uint64_t>(
                      decoded[j])
                  << (8 * byte));
    }
  }
  return block;
}

}  // namespace pramsim::ida
