#include "ida/dispersal.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pramsim::ida {

Disperser::Disperser(IdaParams params) : params_(params) {
  PRAMSIM_ASSERT(params_.b >= 1);
  PRAMSIM_ASSERT(params_.d >= params_.b);
  // Evaluation points are the d distinct nonzero elements alpha^0..alpha^(d-1);
  // they repeat after 255.
  PRAMSIM_ASSERT_MSG(params_.d <= 255, "GF(256) supports at most 255 shares");
}

std::vector<GF256::Elem> Disperser::encode_bytes(
    std::span<const GF256::Elem> block) const {
  PRAMSIM_ASSERT(block.size() == params_.b);
  std::vector<GF256::Elem> shares(params_.d);
  for (std::uint32_t i = 0; i < params_.d; ++i) {
    // Horner evaluation of P(x) = block[0] + block[1] x + ... at alpha^i.
    const GF256::Elem x = GF256::alpha_pow(i);
    GF256::Elem acc = 0;
    for (std::uint32_t j = params_.b; j-- > 0;) {
      acc = GF256::add(GF256::mul(acc, x), block[j]);
    }
    shares[i] = acc;
  }
  return shares;
}

std::vector<GF256::Elem> Disperser::recover_bytes(
    std::span<const std::uint32_t> indices,
    std::span<const GF256::Elem> values) const {
  PRAMSIM_ASSERT(indices.size() == params_.b);
  PRAMSIM_ASSERT(values.size() == params_.b);
  const std::uint32_t b = params_.b;

  // Evaluation points.
  std::vector<GF256::Elem> xs(b);
  for (std::uint32_t j = 0; j < b; ++j) {
    PRAMSIM_ASSERT(indices[j] < params_.d);
    xs[j] = GF256::alpha_pow(indices[j]);
  }
#ifndef NDEBUG
  for (std::uint32_t a = 0; a < b; ++a) {
    for (std::uint32_t c = a + 1; c < b; ++c) {
      PRAMSIM_ASSERT_MSG(xs[a] != xs[c], "share indices must be distinct");
    }
  }
#endif

  // Lagrange interpolation, returning the coefficient vector.
  // master(x) = prod_j (x - xs[j]), computed as coefficients.
  std::vector<GF256::Elem> master(b + 1, 0);
  master[0] = 1;
  for (std::uint32_t j = 0; j < b; ++j) {
    // multiply master by (x + xs[j])  (== x - xs[j] in char 2)
    for (std::uint32_t k = j + 1; k-- > 0;) {
      const GF256::Elem shifted = master[k];          // coefficient of x^k
      master[k + 1] = GF256::add(master[k + 1], 0);   // keep
      master[k + 1] = GF256::add(master[k + 1], shifted);
      master[k] = GF256::mul(master[k], xs[j]);
    }
  }

  std::vector<GF256::Elem> coeffs(b, 0);
  std::vector<GF256::Elem> numer(b, 0);
  for (std::uint32_t j = 0; j < b; ++j) {
    // numer(x) = master(x) / (x - xs[j]) via synthetic division.
    GF256::Elem carry = master[b];
    for (std::uint32_t k = b; k-- > 0;) {
      numer[k] = carry;
      carry = GF256::add(master[k], GF256::mul(carry, xs[j]));
    }
    // denom = prod_{i != j} (xs[j] - xs[i]) = numer(xs[j]).
    GF256::Elem denom = 0;
    for (std::uint32_t k = b; k-- > 0;) {
      denom = GF256::add(GF256::mul(denom, xs[j]), numer[k]);
    }
    const GF256::Elem scale = GF256::div(values[j], denom);
    for (std::uint32_t k = 0; k < b; ++k) {
      coeffs[k] = GF256::add(coeffs[k], GF256::mul(numer[k], scale));
    }
  }
  return coeffs;
}

std::vector<pram::Word> Disperser::encode_words(
    std::span<const pram::Word> block) const {
  PRAMSIM_ASSERT(block.size() == params_.b);
  std::vector<pram::Word> shares(params_.d, 0);
  std::vector<GF256::Elem> lane(params_.b);
  for (std::uint32_t byte = 0; byte < 8; ++byte) {
    for (std::uint32_t j = 0; j < params_.b; ++j) {
      lane[j] = static_cast<GF256::Elem>(
          (static_cast<std::uint64_t>(block[j]) >> (8 * byte)) & 0xFF);
    }
    const auto encoded = encode_bytes(lane);
    for (std::uint32_t i = 0; i < params_.d; ++i) {
      shares[i] |= static_cast<pram::Word>(static_cast<std::uint64_t>(
                       encoded[i])
                   << (8 * byte));
    }
  }
  return shares;
}

std::vector<pram::Word> Disperser::recover_words(
    std::span<const std::uint32_t> indices,
    std::span<const pram::Word> shares) const {
  PRAMSIM_ASSERT(indices.size() == params_.b && shares.size() == params_.b);
  std::vector<pram::Word> block(params_.b, 0);
  std::vector<GF256::Elem> lane(params_.b);
  for (std::uint32_t byte = 0; byte < 8; ++byte) {
    for (std::uint32_t j = 0; j < params_.b; ++j) {
      lane[j] = static_cast<GF256::Elem>(
          (static_cast<std::uint64_t>(shares[j]) >> (8 * byte)) & 0xFF);
    }
    const auto decoded = recover_bytes(indices, lane);
    for (std::uint32_t j = 0; j < params_.b; ++j) {
      block[j] |= static_cast<pram::Word>(static_cast<std::uint64_t>(
                      decoded[j])
                  << (8 * byte));
    }
  }
  return block;
}

}  // namespace pramsim::ida
