// Rabin information dispersal (the Schuster 1987 memory scheme's coding
// substrate, as described in the paper's §1):
//
//   a block of b field elements is recoded into d >= b elements such that
//   ANY b of the d recoded elements recover the block exactly.
//
// Encoding evaluates the degree-(b-1) polynomial whose coefficients are
// the block at d distinct nonzero points alpha^0..alpha^(d-1); recovery is
// Lagrange interpolation from any b (point, value) pairs. Storage grows by
// the constant factor d/b while tolerating d-b erasures.
//
// P-RAM words are dispersed lane-wise: each of the 8 bytes of a 64-bit
// word is an independent GF(256) stream, so a "share" is itself a word.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ida/gf256.hpp"
#include "pram/types.hpp"

namespace pramsim::ida {

struct IdaParams {
  std::uint32_t b = 4;  ///< block length (elements needed to recover)
  std::uint32_t d = 8;  ///< shares produced (d - b erasures tolerated)
};

class Disperser {
 public:
  explicit Disperser(IdaParams params);

  [[nodiscard]] std::uint32_t b() const { return params_.b; }
  [[nodiscard]] std::uint32_t d() const { return params_.d; }
  /// Storage expansion factor d/b (the paper's "constant factor").
  [[nodiscard]] double storage_factor() const {
    return static_cast<double>(params_.d) / params_.b;
  }

  // ---- byte-level primitives ----

  /// Encode b bytes into d shares.
  [[nodiscard]] std::vector<GF256::Elem> encode_bytes(
      std::span<const GF256::Elem> block) const;

  /// Recover the b block bytes from any b (share_index, value) pairs.
  /// Indices must be distinct and < d.
  [[nodiscard]] std::vector<GF256::Elem> recover_bytes(
      std::span<const std::uint32_t> indices,
      std::span<const GF256::Elem> values) const;

  // ---- word-level (lane-wise) API used by the memory scheme ----

  /// Encode b words into d share-words (8 independent byte lanes).
  [[nodiscard]] std::vector<pram::Word> encode_words(
      std::span<const pram::Word> block) const;

  /// Recover b words from any b (share_index, share_word) pairs.
  [[nodiscard]] std::vector<pram::Word> recover_words(
      std::span<const std::uint32_t> indices,
      std::span<const pram::Word> shares) const;

  // ---- bulk region codec (spans of consecutive blocks) ----
  //
  // The per-word API above re-derives the evaluation geometry on every
  // call (and allocates its results); the region codec instead applies a
  // precomputed GF(256) matrix to whole spans with the table-sliced
  // multiply of GF256::mul_span_accum, so the cost of the setup is
  // amortized over `count` consecutive blocks. Bit-identical to calling
  // encode_words / recover_words once per block: both sides are exact
  // field arithmetic evaluating the same polynomials.
  //
  // Layouts: `blocks` is block-major (word j of the t-th block at
  // blocks[t*b + j], matching IdaMemory's decoded-store layout);
  // share spans are strided (the span for position s starts at
  // shares[s * stride], its t-th word belonging to the t-th block) so
  // the codec reads/writes IdaMemory's share-major region rows in place.

  /// Bulk encode: recode `count` consecutive blocks into the d share
  /// spans at shares[i * stride .. i * stride + count).
  void encode_regions(const pram::Word* blocks, std::uint32_t count,
                      pram::Word* shares, std::size_t stride) const;

  /// Bulk decode from b share spans: position j's span (at
  /// shares[j * stride]) holds the words of share index indices[j].
  /// Indices must be distinct and < d.
  void decode_regions(std::span<const std::uint32_t> indices,
                      const pram::Word* shares, std::size_t stride,
                      std::uint32_t count, pram::Word* blocks_out) const;

 private:
  /// The b x b recovery matrix M for a survivor index set: block word k
  /// is sum_j M[k*b + j] * share_value[j] (the Lagrange interpolation of
  /// recover_bytes with the value-independent factors folded together).
  void recovery_matrix_into(std::span<const std::uint32_t> indices,
                            std::vector<GF256::Elem>& out) const;

  IdaParams params_;
  /// Generator matrix: share i draws coefficient gen_[i*b + j] from block
  /// word j (polynomial evaluation at alpha^i, written as a dot product).
  std::vector<GF256::Elem> gen_;
  /// Cached recovery matrix for the healthy survivor set {0..b-1} (the
  /// only set the healthy serve path ever uses), built on first use.
  mutable std::vector<GF256::Elem> healthy_matrix_;
  // Scratch reused across bulk calls (transpose buffers and the matrix
  // for arbitrary survivor sets); mutable because the codec is logically
  // const and IdaMemory decodes from const paths (peek).
  mutable std::vector<GF256::Elem> matrix_scratch_;
  mutable std::vector<pram::Word> span_scratch_;
};

}  // namespace pramsim::ida
