// Rabin information dispersal (the Schuster 1987 memory scheme's coding
// substrate, as described in the paper's §1):
//
//   a block of b field elements is recoded into d >= b elements such that
//   ANY b of the d recoded elements recover the block exactly.
//
// Encoding evaluates the degree-(b-1) polynomial whose coefficients are
// the block at d distinct nonzero points alpha^0..alpha^(d-1); recovery is
// Lagrange interpolation from any b (point, value) pairs. Storage grows by
// the constant factor d/b while tolerating d-b erasures.
//
// P-RAM words are dispersed lane-wise: each of the 8 bytes of a 64-bit
// word is an independent GF(256) stream, so a "share" is itself a word.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ida/gf256.hpp"
#include "pram/types.hpp"

namespace pramsim::ida {

struct IdaParams {
  std::uint32_t b = 4;  ///< block length (elements needed to recover)
  std::uint32_t d = 8;  ///< shares produced (d - b erasures tolerated)
};

class Disperser {
 public:
  explicit Disperser(IdaParams params);

  [[nodiscard]] std::uint32_t b() const { return params_.b; }
  [[nodiscard]] std::uint32_t d() const { return params_.d; }
  /// Storage expansion factor d/b (the paper's "constant factor").
  [[nodiscard]] double storage_factor() const {
    return static_cast<double>(params_.d) / params_.b;
  }

  // ---- byte-level primitives ----

  /// Encode b bytes into d shares.
  [[nodiscard]] std::vector<GF256::Elem> encode_bytes(
      std::span<const GF256::Elem> block) const;

  /// Recover the b block bytes from any b (share_index, value) pairs.
  /// Indices must be distinct and < d.
  [[nodiscard]] std::vector<GF256::Elem> recover_bytes(
      std::span<const std::uint32_t> indices,
      std::span<const GF256::Elem> values) const;

  // ---- word-level (lane-wise) API used by the memory scheme ----

  /// Encode b words into d share-words (8 independent byte lanes).
  [[nodiscard]] std::vector<pram::Word> encode_words(
      std::span<const pram::Word> block) const;

  /// Recover b words from any b (share_index, share_word) pairs.
  [[nodiscard]] std::vector<pram::Word> recover_words(
      std::span<const std::uint32_t> indices,
      std::span<const pram::Word> shares) const;

 private:
  IdaParams params_;
};

}  // namespace pramsim::ida
