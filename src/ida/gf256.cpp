#include "ida/gf256.hpp"

namespace pramsim::ida {

namespace {

struct Tables {
  std::array<GF256::Elem, 255> exp{};
  std::array<std::uint8_t, 256> log{};

  constexpr Tables() {
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < 255; ++i) {
      exp[i] = static_cast<GF256::Elem>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) {
        x ^= 0x11D;
      }
    }
    log[0] = 0;  // unused sentinel
  }
};

constexpr Tables kTables{};

}  // namespace

const std::array<GF256::Elem, 255>& GF256::exp_table() { return kTables.exp; }
const std::array<std::uint8_t, 256>& GF256::log_table() {
  return kTables.log;
}

}  // namespace pramsim::ida
