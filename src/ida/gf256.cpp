#include "ida/gf256.hpp"

namespace pramsim::ida {

namespace {

struct Tables {
  std::array<GF256::Elem, 255> exp{};
  std::array<std::uint8_t, 256> log{};

  constexpr Tables() {
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < 255; ++i) {
      exp[i] = static_cast<GF256::Elem>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) {
        x ^= 0x11D;
      }
    }
    log[0] = 0;  // unused sentinel
  }
};

constexpr Tables kTables{};

}  // namespace

const std::array<GF256::Elem, 255>& GF256::exp_table() { return kTables.exp; }
const std::array<std::uint8_t, 256>& GF256::log_table() {
  return kTables.log;
}

const GF256::Elem* GF256::mul_row(Elem c) {
  // 64 KiB product table, built once from the exp/log tables. Row-major
  // by the constant, so one span-multiply touches one contiguous row.
  static const std::array<Elem, 256 * 256> kMul = [] {
    std::array<Elem, 256 * 256> table{};
    for (std::uint32_t a = 1; a < 256; ++a) {
      for (std::uint32_t b = 1; b < 256; ++b) {
        const std::uint32_t idx =
            (static_cast<std::uint32_t>(kTables.log[a]) + kTables.log[b]) %
            255u;
        table[a * 256 + b] = kTables.exp[idx];
      }
    }
    return table;
  }();
  return kMul.data() + static_cast<std::size_t>(c) * 256;
}

}  // namespace pramsim::ida
