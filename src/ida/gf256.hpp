// GF(2^8) arithmetic for Rabin's information dispersal (Rabin 1989,
// referenced by the paper as Schuster's alternative route to constant
// storage redundancy).
//
// Field: GF(256) with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D); alpha = 2 is a generator. exp/log
// tables are generated at compile time, so multiplication and division
// are two table lookups — the hot operations of dispersal coding.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.hpp"

namespace pramsim::ida {

class GF256 {
 public:
  using Elem = std::uint8_t;

  [[nodiscard]] static constexpr Elem add(Elem a, Elem b) {
    return a ^ b;  // characteristic 2: addition == subtraction == xor
  }
  [[nodiscard]] static constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

  [[nodiscard]] static Elem mul(Elem a, Elem b) {
    if (a == 0 || b == 0) {
      return 0;
    }
    const std::uint32_t idx =
        (static_cast<std::uint32_t>(log_table()[a]) + log_table()[b]) % 255u;
    return exp_table()[idx];
  }

  [[nodiscard]] static Elem inv(Elem a) {
    PRAMSIM_ASSERT_MSG(a != 0, "zero has no inverse in GF(256)");
    const std::uint32_t idx =
        (255u - static_cast<std::uint32_t>(log_table()[a])) % 255u;
    return exp_table()[idx];
  }

  [[nodiscard]] static Elem div(Elem a, Elem b) {
    PRAMSIM_ASSERT_MSG(b != 0, "division by zero in GF(256)");
    if (a == 0) {
      return 0;
    }
    const std::uint32_t idx =
        (static_cast<std::uint32_t>(log_table()[a]) + 255u -
         log_table()[b]) %
        255u;
    return exp_table()[idx];
  }

  [[nodiscard]] static Elem pow(Elem a, std::uint32_t e) {
    if (e == 0) {
      return 1;
    }
    if (a == 0) {
      return 0;
    }
    return exp_table()[(static_cast<std::uint32_t>(log_table()[a]) * e) % 255];
  }

  /// alpha^i for i in [0, 255); alpha = 2 generates the multiplicative
  /// group, so alpha^0..alpha^254 enumerate all nonzero elements.
  [[nodiscard]] static Elem alpha_pow(std::uint32_t i) {
    return exp_table()[i % 255];
  }

  // ----- table-sliced span arithmetic (bulk encode/decode) -----
  //
  // A linear-combination step over a span multiplies every byte by ONE
  // field constant c. Slicing the 256x256 product table by c turns the
  // inner loop into a single table load per byte — no log/exp lookups,
  // no mod-255 — and the c == 0 / c == 1 rows degenerate to a skip and a
  // plain (auto-vectorizable) xor.

  /// Row c of the full multiplication table: mul_row(c)[x] == c * x.
  [[nodiscard]] static const Elem* mul_row(Elem c);

  /// dst[i] ^= c * src[i] for i in [0, n): the accumulating step of a
  /// GF(256) matrix-vector product over byte spans. dst and src must not
  /// overlap unless they are equal ranges.
  static void mul_span_accum(Elem* dst, const Elem* src, std::size_t n,
                             Elem c) {
    if (c == 0) {
      return;
    }
    if (c == 1) {
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] ^= src[i];
      }
      return;
    }
    const Elem* row = mul_row(c);
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] ^= row[src[i]];
    }
  }

 private:
  static constexpr std::uint32_t kPoly = 0x11D;

  [[nodiscard]] static const std::array<Elem, 255>& exp_table();
  [[nodiscard]] static const std::array<std::uint8_t, 256>& log_table();
};

}  // namespace pramsim::ida
