#include "ida/ida_memory.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::ida {

IdaMemory::IdaMemory(std::uint64_t m_vars, IdaMemoryConfig config)
    : m_vars_(m_vars),
      config_(config),
      disperser_({config.b, config.d}),
      n_blocks_(util::ceil_div(m_vars, config.b)),
      shares_(n_blocks_ * config.d, 0),
      placement_(n_blocks_, config.n_modules, config.d, config.seed) {
  PRAMSIM_ASSERT(config_.n_modules >= config_.d);
  // Encode the all-zero initial state so decode is always well-defined.
  const std::vector<pram::Word> zero_block(config_.b, 0);
  const auto encoded = disperser_.encode_words(zero_block);
  for (std::uint64_t blk = 0; blk < n_blocks_; ++blk) {
    std::copy(encoded.begin(), encoded.end(),
              shares_.begin() + static_cast<std::ptrdiff_t>(blk * config_.d));
  }
}

std::vector<pram::Word> IdaMemory::decode_block(std::uint64_t block) const {
  std::vector<std::uint32_t> indices(config_.b);
  std::iota(indices.begin(), indices.end(), 0);
  std::vector<pram::Word> vals(config_.b);
  for (std::uint32_t j = 0; j < config_.b; ++j) {
    vals[j] = shares_[block * config_.d + j];
  }
  return disperser_.recover_words(indices, vals);
}

void IdaMemory::encode_block(std::uint64_t block,
                             std::span<const pram::Word> values) {
  const auto encoded = disperser_.encode_words(values);
  std::copy(encoded.begin(), encoded.end(),
            shares_.begin() + static_cast<std::ptrdiff_t>(block * config_.d));
}

pram::MemStepCost IdaMemory::step(std::span<const VarId> reads,
                                  std::span<pram::Word> read_values,
                                  std::span<const pram::VarWrite> writes) {
  PRAMSIM_ASSERT(reads.size() == read_values.size());
  pram::MemStepCost cost;
  const std::uint64_t share_accesses_before = share_accesses_;

  // ---- gather per-block work --------------------------------------
  std::unordered_set<std::uint64_t> read_blocks;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> writes_by_block;
  for (const auto var : reads) {
    read_blocks.insert(block_of(var));
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    writes_by_block[block_of(writes[i].var)].push_back(i);
  }

  // Module round accounting: modules serve one share per round, so a
  // phase's duration is its maximum per-module share count.
  std::vector<std::uint32_t> module_load(config_.n_modules, 0);
  std::vector<ModuleId> copy_buf(config_.d);
  auto charge_read_block = [&](std::uint64_t blk) {
    placement_.copies_into(VarId(static_cast<std::uint32_t>(blk)), copy_buf);
    // Pick the b least-loaded modules among the d holding shares — the
    // d-b slack is what lets the scheme dodge congestion.
    std::vector<std::uint32_t> order(config_.d);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b2) {
                       return module_load[copy_buf[a].index()] <
                              module_load[copy_buf[b2].index()];
                     });
    for (std::uint32_t j = 0; j < config_.b; ++j) {
      ++module_load[copy_buf[order[j]].index()];
    }
    share_accesses_ += config_.b;
    vars_processed_ += config_.b;
  };
  auto charge_write_block = [&](std::uint64_t blk) {
    placement_.copies_into(VarId(static_cast<std::uint32_t>(blk)), copy_buf);
    for (std::uint32_t j = 0; j < config_.d; ++j) {
      ++module_load[copy_buf[j].index()];
    }
    share_accesses_ += config_.d;
    vars_processed_ += config_.b;
  };

  // ---- phase 1: reads (pre-step state) -----------------------------
  for (const auto blk : read_blocks) {
    charge_read_block(blk);
  }
  std::unordered_map<std::uint64_t, std::vector<pram::Word>> decoded;
  for (const auto blk : read_blocks) {
    decoded.emplace(blk, decode_block(blk));
  }
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto blk = block_of(reads[i]);
    read_values[i] = decoded.at(blk)[reads[i].index() % config_.b];
    ++vars_accessed_;
  }
  const std::uint32_t read_rounds =
      module_load.empty() ? 0
                          : *std::max_element(module_load.begin(),
                                              module_load.end());

  // ---- phase 2: writes (read-modify-write per block) ---------------
  std::fill(module_load.begin(), module_load.end(), 0);
  for (const auto& [blk, idxs] : writes_by_block) {
    // The block must be fetched (b shares) unless this step already read
    // it, then re-encoded and fully rewritten (d shares).
    if (read_blocks.find(blk) == read_blocks.end()) {
      charge_read_block(blk);
      decoded.emplace(blk, decode_block(blk));
    }
    charge_write_block(blk);
    auto block_vals = decoded.at(blk);
    for (const auto i : idxs) {
      block_vals[writes[i].var.index() % config_.b] = writes[i].value;
      ++vars_accessed_;
    }
    encode_block(blk, block_vals);
  }
  const std::uint32_t write_rounds =
      module_load.empty() ? 0
                          : *std::max_element(module_load.begin(),
                                              module_load.end());

  cost.time = read_rounds + write_rounds;
  cost.work = share_accesses_ - share_accesses_before;
  cost.max_queue = std::max(read_rounds, write_rounds);
  return cost;
}

pram::Word IdaMemory::peek(VarId var) const {
  PRAMSIM_ASSERT(var.index() < m_vars_);
  return decode_block(block_of(var))[var.index() % config_.b];
}

void IdaMemory::poke(VarId var, pram::Word value) {
  PRAMSIM_ASSERT(var.index() < m_vars_);
  const auto blk = block_of(var);
  auto vals = decode_block(blk);
  vals[var.index() % config_.b] = value;
  encode_block(blk, vals);
}

double IdaMemory::work_amplification() const {
  return vars_accessed_ > 0 ? static_cast<double>(vars_processed_) /
                                  static_cast<double>(vars_accessed_)
                            : 0.0;
}

}  // namespace pramsim::ida
