#include "ida/ida_memory.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pramsim::ida {

IdaMemory::IdaMemory(std::uint64_t m_vars, IdaMemoryConfig config)
    : m_vars_(m_vars),
      config_(config),
      disperser_({config.b, config.d}),
      n_blocks_(util::ceil_div(m_vars, config.b)),
      placement_(n_blocks_, config.n_modules, config.d, config.seed) {
  PRAMSIM_ASSERT(config_.n_modules >= config_.d);
  config_.region_blocks = std::max<std::uint32_t>(config_.region_blocks, 1);
  n_regions_ = util::ceil_div(n_blocks_, config_.region_blocks);
  // Region-row geometry (see the header): d share spans of R words, the
  // matching checksum spans when check_shares, then the written-block
  // flag bits.
  const std::size_t R = config_.region_blocks;
  flag_base_ = static_cast<std::size_t>(config_.d) * R *
               (config_.check_shares ? 2 : 1);
  row_words_ = flag_base_ + (R + 63) / 64;
  // One encoding of the all-zero block serves every untouched block, so
  // construction is O(d) regardless of m (sparse storage).
  const std::vector<pram::Word> zero_block(config_.b, 0);
  zero_shares_ = disperser_.encode_words(zero_block);
  identity_indices_.resize(config_.b);
  for (std::uint32_t j = 0; j < config_.b; ++j) {
    identity_indices_[j] = j;
  }
  encode_scratch_.resize(config_.d);
}

pram::Word IdaMemory::share_checksum(std::uint64_t block, std::uint32_t j,
                                     pram::Word value) {
  util::SplitMix64 mix(value ^ block * 0x9E3779B97F4A7C15ULL ^
                       (j + 1) * 0xBF58476D1CE4E5B9ULL);
  return mix.next();
}

std::vector<pram::Word>& IdaMemory::region_row(std::uint64_t block) {
  const auto [it, fresh] = shares_.try_emplace(region_of_block(block));
  if (fresh) {
    auto& row = it->second;
    row.assign(row_words_, 0);
    // Every block slot starts as the shared zero encoding; checksums and
    // written-block flags stay 0 (checksum_at falls back to the salted
    // zero checksum for blocks whose flag is still clear).
    const std::size_t R = config_.region_blocks;
    for (std::uint32_t s = 0; s < config_.d; ++s) {
      std::fill_n(row.begin() + static_cast<std::ptrdiff_t>(s * R), R,
                  zero_shares_[s]);
    }
  }
  return it->second;
}

bool IdaMemory::block_written(std::uint64_t block) const {
  const auto it = shares_.find(region_of_block(block));
  if (it == shares_.end()) {
    return false;
  }
  const std::uint64_t t = block % config_.region_blocks;
  const auto bits =
      static_cast<std::uint64_t>(it->second[flag_base_ + t / 64]);
  return ((bits >> (t % 64)) & 1ULL) != 0;
}

pram::Word IdaMemory::checksum_at(std::uint64_t block,
                                  std::uint32_t j) const {
  if (!block_written(block)) {
    // Unwritten block: the stored checksum is, by definition, the one
    // the zero encoding's writer would have computed.
    return share_checksum(block, j, zero_shares_[j]);
  }
  const auto& row = shares_.at(region_of_block(block));
  const std::size_t R = config_.region_blocks;
  return row[static_cast<std::size_t>(config_.d) * R +
             static_cast<std::size_t>(j) * R + block % R];
}

pram::Word IdaMemory::share_at(std::uint64_t block, std::uint32_t j) const {
  const auto it = shares_.find(region_of_block(block));
  if (it == shares_.end()) {
    return zero_shares_[j];
  }
  const std::size_t R = config_.region_blocks;
  return it->second[static_cast<std::size_t>(j) * R + block % R];
}

void IdaMemory::placement_into_current(std::uint64_t block,
                                       std::span<ModuleId> out) const {
  placement_.copies_into(VarId(static_cast<std::uint32_t>(block)), out);
  if (relocated_.empty()) {
    return;
  }
  for (std::uint32_t j = 0; j < config_.d; ++j) {
    const auto it = relocated_.find(block * config_.d + j);
    if (it != relocated_.end()) {
      out[j] = it->second;
    }
  }
}

std::vector<pram::Word> IdaMemory::recover_block(std::uint64_t block,
                                                 std::uint32_t* erased,
                                                 std::uint32_t* faulty,
                                                 bool* ok) const {
  if (hooks_ == nullptr) {
    std::vector<pram::Word> out(config_.b);
    decode_blocks_healthy(block, 1, out.data());
    return out;
  }
  std::vector<std::uint32_t> indices;
  std::vector<pram::Word> vals;
  indices.reserve(config_.b);
  vals.reserve(config_.b);
  std::vector<ModuleId> modules(config_.d);
  placement_into_current(block, modules);
  for (std::uint32_t j = 0; j < config_.d; ++j) {
    if (hooks_->module_dead(modules[j], steps_served())) {
      ++*erased;
      continue;
    }
    if (indices.size() == config_.b) {
      continue;  // already have enough survivors; keep counting erasures
    }
    pram::Word value = share_at(block, j);
    pram::Word stuck = 0;
    const bool is_stuck = hooks_->stuck_at(block, j, steps_served(), stuck);
    if (is_stuck) {
      value = stuck;
    }
    if (config_.check_shares &&
        share_checksum(block, j, value) != checksum_at(block, j)) {
      // DETECTED bad share (stuck cell or corrupted store): its value no
      // longer matches the checksum its writer stored, so it is excluded
      // from the interpolation like an erasure — the checksum turns
      // silent poison into a known-bad share.
      ++*erased;
      obs_event(obs::EventKind::kChecksumReject, block, j);
      obs_count("ida.checksum.rejects");
      continue;
    }
    if (is_stuck) {
      // Undetected stuck share: it joins the interpolation and silently
      // poisons the whole block (bare IDA corrects erasures, not errors).
      ++*faulty;
    }
    indices.push_back(j);
    vals.push_back(value);
  }
  if (indices.size() < config_.b) {
    *ok = false;
    return std::vector<pram::Word>(config_.b, 0);
  }
  // Same interpolation recover_words performs, routed through the bulk
  // codec (count 1, stride 1): the recovery matrix folds the
  // value-independent Lagrange factors, so the words are bit-identical
  // by exact GF(256) arithmetic.
  std::vector<pram::Word> out(config_.b);
  disperser_.decode_regions(indices, vals.data(), 1, 1, out.data());
  return out;
}

void IdaMemory::decode_blocks_healthy(std::uint64_t first_block,
                                      std::uint32_t count,
                                      pram::Word* out) const {
  PRAMSIM_ASSERT(count >= 1);
  PRAMSIM_ASSERT(region_of_block(first_block) ==
                 region_of_block(first_block + count - 1));
  const auto it = shares_.find(region_of_block(first_block));
  if (it == shares_.end()) {
    // Untouched region: the zero block decodes to zeros, exactly.
    std::fill_n(out, static_cast<std::size_t>(count) * config_.b, 0);
    return;
  }
  disperser_.decode_regions(identity_indices_,
                            it->second.data() + first_block %
                                                    config_.region_blocks,
                            config_.region_blocks, count, out);
}

std::vector<pram::Word> IdaMemory::decode_block(std::uint64_t block) {
  std::uint32_t erased = 0;
  std::uint32_t faulty = 0;
  bool ok = true;
  auto vals = recover_block(block, &erased, &faulty, &ok);
  if (hooks_ != nullptr) {
    // Share-unit counters accrue per decode; the READ-unit counters
    // (faults_masked, uncorrectable) are attributed per variable read
    // in step(), so cross-scheme reliability ratios compare like units.
    reliability_.erasures_skipped += erased;
    reliability_.units_faulty += erased + faulty;
    if (!ok) {
      reliability_.shares_short +=
          config_.b - (config_.d - std::min(erased, config_.d));
      failed_blocks_.insert(block);
      obs_event(obs::EventKind::kUncorrectable, block, erased, faulty);
      obs_count("ida.blocks.lost");
    } else if (erased + faulty > 0) {
      degraded_blocks_.insert(block);
      obs_event(obs::EventKind::kDegradedDecode, block, erased, faulty);
      obs_count("ida.blocks.degraded");
    }
  }
  return vals;
}

void IdaMemory::encode_block(std::uint64_t block,
                             std::span<const pram::Word> values) {
  // One block is a bulk encode of count 1 (stride 1 packs the d share
  // words densely into the scratch) — same Horner products the classic
  // per-word encode_words computed, via the generator-matrix rows.
  disperser_.encode_regions(values.data(), 1, encode_scratch_.data(), 1);
  auto& row = region_row(block);
  const std::size_t R = config_.region_blocks;
  const std::uint64_t t = block % R;
  row[flag_base_ + t / 64] = static_cast<pram::Word>(
      static_cast<std::uint64_t>(row[flag_base_ + t / 64]) |
      (1ULL << (t % 64)));
  const std::size_t check_base = static_cast<std::size_t>(config_.d) * R;
  if (hooks_ == nullptr) {
    for (std::uint32_t j = 0; j < config_.d; ++j) {
      row[static_cast<std::size_t>(j) * R + t] = encode_scratch_[j];
      if (config_.check_shares) {
        row[check_base + static_cast<std::size_t>(j) * R + t] =
            share_checksum(block, j, encode_scratch_[j]);
      }
    }
    return;
  }
  ++store_ops_;
  std::vector<ModuleId> modules(config_.d);
  placement_into_current(block, modules);
  for (std::uint32_t j = 0; j < config_.d; ++j) {
    if (hooks_->module_dead(modules[j], steps_served())) {
      ++reliability_.writes_dropped;
      continue;
    }
    pram::Word word = encode_scratch_[j];
    if (hooks_->corrupt_write(block, j, store_ops_, steps_served(), word)) {
      ++reliability_.corrupt_stores;
    }
    row[static_cast<std::size_t>(j) * R + t] = word;
    if (config_.check_shares) {
      // The checksum is computed by the WRITER from the true encoded
      // word (and modeled as stored intact), so a corrupted data word
      // leaves a mismatched pair the next decode detects.
      row[check_base + static_cast<std::size_t>(j) * R + t] =
          share_checksum(block, j, encode_scratch_[j]);
    }
  }
}

pram::MemStepCost IdaMemory::step(std::span<const VarId> reads,
                                  std::span<pram::Word> read_values,
                                  std::span<const pram::VarWrite> writes) {
  PRAMSIM_ASSERT(reads.size() == read_values.size());
  advance_step_clock();
  obs_count("ida.steps");
  obs_count("ida.reads", reads.size());
  obs_count("ida.writes", writes.size());
  obs::PhaseSet* timing = obs_timing();
  pram::MemStepCost cost;
  const std::uint64_t share_accesses_before = share_accesses_;
  failed_blocks_.clear();
  degraded_blocks_.clear();
  flagged_reads_.clear();

  // ---- gather per-block work --------------------------------------
  std::unordered_set<std::uint64_t> read_blocks;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> writes_by_block;
  for (const auto var : reads) {
    read_blocks.insert(block_of(var));
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    writes_by_block[block_of(writes[i].var)].push_back(i);
  }
  // Canonical block order for both phases: the least-loaded-share
  // selection in charge_read_block consults module_load as it
  // accumulates, so the fold order reaches the round telemetry —
  // iterate blocks sorted, never in hash order.
  // pramlint: ordered-fold (keys collected then sorted before any fold)
  std::vector<std::uint64_t> read_block_order(read_blocks.begin(),
                                              read_blocks.end());
  std::sort(read_block_order.begin(), read_block_order.end());
  std::vector<std::uint64_t> write_block_order;
  write_block_order.reserve(writes_by_block.size());
  // pramlint: ordered-fold (keys collected then sorted before any fold)
  for (const auto& [blk, idxs] : writes_by_block) {
    (void)idxs;
    write_block_order.push_back(blk);
  }
  std::sort(write_block_order.begin(), write_block_order.end());

  // Module round accounting: modules serve one share per round, so a
  // phase's duration is its maximum per-module share count.
  std::vector<std::uint32_t> module_load(config_.n_modules, 0);
  std::vector<ModuleId> copy_buf(config_.d);
  auto charge_read_block = [&](std::uint64_t blk) {
    placement_into_current(blk, copy_buf);
    // Pick the b least-loaded modules among the d holding shares — the
    // d-b slack is what lets the scheme dodge congestion.
    std::vector<std::uint32_t> order(config_.d);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b2) {
                       return module_load[copy_buf[a].index()] <
                              module_load[copy_buf[b2].index()];
                     });
    for (std::uint32_t j = 0; j < config_.b; ++j) {
      ++module_load[copy_buf[order[j]].index()];
    }
    share_accesses_ += config_.b;
    vars_processed_ += config_.b;
  };
  auto charge_write_block = [&](std::uint64_t blk) {
    placement_into_current(blk, copy_buf);
    for (std::uint32_t j = 0; j < config_.d; ++j) {
      ++module_load[copy_buf[j].index()];
    }
    share_accesses_ += config_.d;
    vars_processed_ += config_.b;
  };

  // ---- phase 1: reads (pre-step state) -----------------------------
  for (const auto blk : read_block_order) {
    charge_read_block(blk);
  }
  std::unordered_map<std::uint64_t, std::vector<pram::Word>> decoded;
  {
    obs::ScopedPhase timer(timing, obs::Phase::kDecode);
    for (const auto blk : read_block_order) {
      decoded.emplace(blk, decode_block(blk));
    }
  }
  if (hooks_ != nullptr) {
    flagged_reads_.assign(reads.size(), 0);
  }
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto blk = block_of(reads[i]);
    read_values[i] = decoded.at(blk)[reads[i].index() % config_.b];
    ++vars_accessed_;
    if (hooks_ != nullptr) {
      ++reliability_.reads_served;
      // Every read of an under-threshold block is a FLAGGED loss;
      // reads of a degraded-but-reconstructed block are masked faults.
      if (failed_blocks_.count(blk) != 0) {
        flagged_reads_[i] = 1;
        ++reliability_.uncorrectable;
      } else if (degraded_blocks_.count(blk) != 0) {
        ++reliability_.faults_masked;
      }
    }
  }
  const std::uint32_t read_rounds =
      module_load.empty() ? 0
                          : *std::max_element(module_load.begin(),
                                              module_load.end());

  // ---- phase 2: writes (read-modify-write per block) ---------------
  std::fill(module_load.begin(), module_load.end(), 0);
  obs::ScopedPhase encode_timer(timing, obs::Phase::kEncode);
  for (const auto blk : write_block_order) {
    const auto& idxs = writes_by_block.at(blk);
    // The block must be fetched (b shares) unless this step already read
    // it, then re-encoded and fully rewritten (d shares).
    if (read_blocks.find(blk) == read_blocks.end()) {
      charge_read_block(blk);
      decoded.emplace(blk, decode_block(blk));
    }
    charge_write_block(blk);
    auto block_vals = decoded.at(blk);
    for (const auto i : idxs) {
      block_vals[writes[i].var.index() % config_.b] = writes[i].value;
      ++vars_accessed_;
    }
    encode_block(blk, block_vals);
  }
  const std::uint32_t write_rounds =
      module_load.empty() ? 0
                          : *std::max_element(module_load.begin(),
                                              module_load.end());

  cost.time = read_rounds + write_rounds;
  cost.work = share_accesses_ - share_accesses_before;
  cost.max_queue = std::max(read_rounds, write_rounds);
  return cost;
}

pram::MemStepCost IdaMemory::serve(const pram::AccessPlan& plan,
                                   pram::ServeContext& ctx) {
  if (!plan.grouped()) {
    // Defensive: a plan built for another target has no block groups.
    return pram::MemorySystem::serve(plan, ctx);
  }
  const std::span<pram::Word> read_values = ctx.read_values();
  PRAMSIM_ASSERT(plan.reads.size() == read_values.size());
  advance_step_clock();
  ctx.stamp_step(steps_served());
  obs_count("ida.steps");
  obs_count("ida.reads", plan.reads.size());
  obs_count("ida.writes", plan.writes.size());
  obs::PhaseSet* timing = obs_timing();
  pram::MemStepCost cost;
  const std::uint64_t share_accesses_before = share_accesses_;
  failed_blocks_.clear();
  degraded_blocks_.clear();
  flagged_reads_.clear();

  // The plan's groups are this scheme's blocks, ascending; one decode
  // (and at most one re-encode) per group replaces the old per-step
  // read_blocks set / writes_by_block map entirely.
  const std::size_t n_groups = plan.num_groups();
  group_has_read_.assign(n_groups, 0);
  group_status_.assign(n_groups, 0);
  for (std::size_t g = 0; g < n_groups; ++g) {
    for (std::uint32_t i = plan.group_offsets[g];
         i < plan.group_offsets[g + 1]; ++i) {
      if (plan.requests[plan.group_requests[i]].is_read) {
        group_has_read_[g] = 1;
        break;
      }
    }
  }

  // Module round accounting: modules serve one share per round, so a
  // phase's duration is its maximum per-module share count. The load
  // array is per-instance and reset via the touched list; the phase max
  // is tracked incrementally.
  module_load_.resize(config_.n_modules, 0);
  copy_scratch_.resize(config_.d);
  order_.resize(config_.d);
  std::uint32_t phase_max = 0;
  auto reset_loads = [&] {
    for (const auto module : touched_modules_) {
      module_load_[module] = 0;
    }
    touched_modules_.clear();
    phase_max = 0;
  };
  auto bump = [&](std::uint32_t module) {
    if (module_load_[module]++ == 0) {
      touched_modules_.push_back(module);
    }
    phase_max = std::max(phase_max, module_load_[module]);
  };
  auto charge_read_block = [&](std::uint64_t blk) {
    placement_into_current(blk, copy_scratch_);
    // Pick the b least-loaded modules among the d holding shares — the
    // d-b slack is what lets the scheme dodge congestion. Sorting by
    // (load, share index) reproduces the stable least-loaded order.
    for (std::uint32_t j = 0; j < config_.d; ++j) {
      order_[j] = j;
    }
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t a, std::uint32_t b2) {
                const std::uint32_t la =
                    module_load_[copy_scratch_[a].index()];
                const std::uint32_t lb =
                    module_load_[copy_scratch_[b2].index()];
                return la != lb ? la < lb : a < b2;
              });
    for (std::uint32_t j = 0; j < config_.b; ++j) {
      bump(static_cast<std::uint32_t>(copy_scratch_[order_[j]].index()));
    }
    share_accesses_ += config_.b;
    vars_processed_ += config_.b;
  };
  auto charge_write_block = [&](std::uint64_t blk) {
    placement_into_current(blk, copy_scratch_);
    for (std::uint32_t j = 0; j < config_.d; ++j) {
      bump(static_cast<std::uint32_t>(copy_scratch_[j].index()));
    }
    share_accesses_ += config_.d;
    vars_processed_ += config_.b;
  };

  decoded_store_.resize(n_groups * config_.b);
  auto decode_group = [&](std::size_t g) {
    const std::uint64_t blk = plan.group_keys[g];
    if (hooks_ == nullptr) {
      decode_blocks_healthy(blk, 1, decoded_store_.data() + g * config_.b);
      return;
    }
    const auto vals = decode_block(blk);
    std::copy(vals.begin(), vals.end(),
              decoded_store_.begin() + static_cast<std::ptrdiff_t>(
                                           g * config_.b));
    if (hooks_ != nullptr) {
      if (failed_blocks_.count(blk) != 0) {
        group_status_[g] = 2;
      } else if (degraded_blocks_.count(blk) != 0) {
        group_status_[g] = 1;
      }
    }
  };

  // ---- phase 1: reads (pre-step state) -----------------------------
  reset_loads();
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (group_has_read_[g]) {
      charge_read_block(plan.group_keys[g]);
    }
  }
  {
    obs::ScopedPhase timer(timing, obs::Phase::kDecode);
    if (hooks_ == nullptr) {
      // Healthy fast path: group keys ascend, and consecutive groups land
      // block-major in decoded_store_, so each maximal run of consecutive
      // read blocks inside one storage region recodes through ONE bulk
      // decode_regions call over the stored share spans.
      std::size_t g = 0;
      while (g < n_groups) {
        if (!group_has_read_[g]) {
          ++g;
          continue;
        }
        const std::uint64_t blk0 = plan.group_keys[g];
        std::uint32_t len = 1;
        while (g + len < n_groups && group_has_read_[g + len] &&
               plan.group_keys[g + len] == blk0 + len &&
               region_of_block(blk0 + len) == region_of_block(blk0)) {
          ++len;
        }
        decode_blocks_healthy(blk0, len,
                              decoded_store_.data() + g * config_.b);
        g += len;
      }
    } else {
      for (std::size_t g = 0; g < n_groups; ++g) {
        if (group_has_read_[g]) {
          decode_group(g);
        }
      }
    }
  }
  if (hooks_ != nullptr) {
    flagged_reads_.assign(plan.reads.size(), 0);
  }
  for (std::size_t i = 0; i < plan.reads.size(); ++i) {
    const std::uint32_t g = plan.request_group[plan.read_request[i]];
    read_values[i] =
        decoded_store_[g * config_.b + plan.reads[i].index() % config_.b];
    ++vars_accessed_;
    if (hooks_ != nullptr) {
      ++reliability_.reads_served;
      // Every read of an under-threshold block is a FLAGGED loss;
      // reads of a degraded-but-reconstructed block are masked faults.
      if (group_status_[g] == 2) {
        flagged_reads_[i] = 1;
        ++reliability_.uncorrectable;
      } else if (group_status_[g] == 1) {
        ++reliability_.faults_masked;
      }
    }
  }
  const std::uint32_t read_rounds = phase_max;

  // ---- phase 2: writes (read-modify-write per block) ---------------
  reset_loads();
  obs::ScopedPhase encode_timer(timing, obs::Phase::kEncode);
  for (std::size_t g = 0; g < n_groups; ++g) {
    bool has_write = false;
    for (std::uint32_t j = plan.group_offsets[g];
         j < plan.group_offsets[g + 1]; ++j) {
      if (plan.request_write[plan.group_requests[j]] !=
          pram::AccessPlan::kNone) {
        has_write = true;
        break;
      }
    }
    if (!has_write) {
      continue;
    }
    // The block must be fetched (b shares) unless this step already read
    // it, then re-encoded and fully rewritten (d shares).
    const std::uint64_t blk = plan.group_keys[g];
    if (!group_has_read_[g]) {
      charge_read_block(blk);
      decode_group(g);
    }
    charge_write_block(blk);
    const std::span<pram::Word> block_vals{
        decoded_store_.data() + g * config_.b, config_.b};
    for (std::uint32_t j = plan.group_offsets[g];
         j < plan.group_offsets[g + 1]; ++j) {
      const std::uint32_t w = plan.request_write[plan.group_requests[j]];
      if (w == pram::AccessPlan::kNone) {
        continue;
      }
      block_vals[plan.writes[w].var.index() % config_.b] =
          plan.writes[w].value;
      ++vars_accessed_;
    }
    encode_block(blk, block_vals);
  }
  const std::uint32_t write_rounds = phase_max;

  cost.time = read_rounds + write_rounds;
  cost.work = share_accesses_ - share_accesses_before;
  cost.max_queue = std::max(read_rounds, write_rounds);
  adopt_legacy_flags(ctx);
  return cost;
}

pram::Word IdaMemory::peek(VarId var) const {
  PRAMSIM_ASSERT(var.index() < m_vars_);
  std::uint32_t erased = 0;
  std::uint32_t faulty = 0;
  bool ok = true;
  return recover_block(block_of(var), &erased, &faulty,
                       &ok)[var.index() % config_.b];
}

void IdaMemory::poke(VarId var, pram::Word value) {
  PRAMSIM_ASSERT(var.index() < m_vars_);
  const auto blk = block_of(var);
  auto vals = decode_block(blk);
  vals[var.index() % config_.b] = value;
  encode_block(blk, vals);
}

pram::ScrubResult IdaMemory::scrub(std::uint64_t budget) {
  pram::ScrubResult result;
  if (hooks_ == nullptr || budget == 0) {
    return result;
  }
  std::vector<ModuleId> modules(config_.d);
  for (std::uint64_t n = 0; n < budget && n < n_blocks_; ++n) {
    const std::uint64_t block = scrub_cursor_;
    scrub_cursor_ = (scrub_cursor_ + 1) % n_blocks_;
    ++result.scanned;
    placement_into_current(block, modules);
    std::uint32_t dead_shares = 0;
    for (std::uint32_t j = 0; j < config_.d; ++j) {
      dead_shares += hooks_->module_dead(modules[j], steps_served()) ? 1 : 0;
    }
    if (dead_shares == 0) {
      continue;  // full share set alive: nothing to re-disperse
    }
    auto relocate_dead = [&]() {
      std::uint32_t relocated = 0;
      for (std::uint32_t j = 0; j < config_.d; ++j) {
        if (!hooks_->module_dead(modules[j], steps_served())) {
          continue;
        }
        ModuleId replacement;
        if (pram::pick_healthy_module(*hooks_, steps_served(),
                                      config_.n_modules,
                                      config_.seed, block, j, modules,
                                      replacement)) {
          obs_event(obs::EventKind::kRelocation, block, j,
                    modules[j].index(), replacement.index());
          relocated_[block * config_.d + j] = replacement;
          modules[j] = replacement;
          ++relocated;
        }
      }
      result.relocated += relocated;
      reliability_.units_relocated += relocated;
      return relocated;
    };
    if (!block_written(block)) {
      // Unwritten block: every share at index j still reads the shared
      // zero encoding zero_shares_[j] (whether or not a neighbor write
      // materialized its region row), which relocation preserves — so
      // re-homing the dead shares restores full redundancy without
      // writing any share words.
      const std::uint32_t relocated = relocate_dead();
      if (relocated > 0) {
        ++result.repaired;
        ++reliability_.units_repaired;
        obs_event(obs::EventKind::kScrubRepair, block, relocated);
      }
      continue;
    }
    std::uint32_t erased = 0;
    std::uint32_t faulty = 0;
    bool ok = true;
    // Reconstruct OUTSIDE the read path: recover_block counts nothing
    // into the read telemetry, so scrubbing never inflates masked rates.
    const auto vals = recover_block(block, &erased, &faulty, &ok);
    result.work += config_.b;
    if (!ok) {
      continue;  // below threshold: the block is lost, not repairable
    }
    const std::uint32_t relocated = relocate_dead();
    // Re-disperse the reconstructed block onto the repaired placement
    // (a stuck share that silently joined the interpolation re-disperses
    // its poison — IDA scrubbing repairs erasures, not errors). Shares
    // that sat on dead modules hold stale words, so the rewrite is
    // needed even when every share was re-homed.
    encode_block(block, vals);
    result.work += config_.d;
    ++result.repaired;
    ++reliability_.units_repaired;
    obs_event(obs::EventKind::kScrubRepair, block, relocated);
  }
  return result;
}

void IdaMemory::snapshot_body(pram::SnapshotSink& sink) {
  put_u32(sink, config_.b);
  put_u32(sink, config_.d);
  put_u32(sink, config_.region_blocks);
  put_u32(sink, config_.check_shares ? 1u : 0u);
  put_u64(sink, row_words_);

  std::vector<std::uint64_t> regions;
  regions.reserve(shares_.size());
  // pramlint: ordered-fold (keys collected then sorted before emission)
  for (const auto& [region, row] : shares_) {
    (void)row;
    regions.push_back(region);
  }
  std::sort(regions.begin(), regions.end());
  put_u64(sink, regions.size());
  for (const std::uint64_t region : regions) {
    put_u64(sink, region);
    const auto& row = shares_.at(region);
    sink.write(row.data(), row.size() * sizeof(pram::Word));
  }

  std::vector<std::uint64_t> keys;
  keys.reserve(relocated_.size());
  // pramlint: ordered-fold (keys collected then sorted before emission)
  for (const auto& [key, module] : relocated_) {
    (void)module;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  put_u64(sink, keys.size());
  for (const std::uint64_t key : keys) {
    put_u64(sink, key);
    put_u32(sink, relocated_.at(key).value());
  }

  put_u64(sink, store_ops_);
  put_u64(sink, scrub_cursor_);
}

bool IdaMemory::restore_body(pram::SnapshotSource& source) {
  std::uint32_t b = 0;
  std::uint32_t d = 0;
  std::uint32_t region_blocks = 0;
  std::uint32_t check_shares = 0;
  std::uint64_t row_words = 0;
  if (!get_u32(source, b) || b != config_.b || !get_u32(source, d) ||
      d != config_.d || !get_u32(source, region_blocks) ||
      region_blocks != config_.region_blocks ||
      !get_u32(source, check_shares) ||
      (check_shares != 0) != config_.check_shares ||
      !get_u64(source, row_words) || row_words != row_words_) {
    return false;
  }

  shares_.clear();
  std::uint64_t n_rows = 0;
  if (!get_u64(source, n_rows)) {
    return false;
  }
  for (std::uint64_t i = 0; i < n_rows; ++i) {
    std::uint64_t region = 0;
    if (!get_u64(source, region) || region >= n_regions_) {
      return false;
    }
    std::vector<pram::Word> row(row_words_);
    if (!source.read(row.data(), row_words_ * sizeof(pram::Word))) {
      return false;
    }
    shares_.insert_or_assign(region, std::move(row));
  }

  relocated_.clear();
  std::uint64_t n_relocated = 0;
  if (!get_u64(source, n_relocated)) {
    return false;
  }
  for (std::uint64_t i = 0; i < n_relocated; ++i) {
    std::uint64_t key = 0;
    std::uint32_t module = 0;
    if (!get_u64(source, key) || !get_u32(source, module)) {
      return false;
    }
    relocated_.insert_or_assign(key, ModuleId(module));
  }

  return get_u64(source, store_ops_) && get_u64(source, scrub_cursor_);
}

double IdaMemory::work_amplification() const {
  return vars_accessed_ > 0 ? static_cast<double>(vars_processed_) /
                                  static_cast<double>(vars_accessed_)
                            : 0.0;
}

}  // namespace pramsim::ida
