// IdaMemory: the Schuster (1987) shared-memory organization the paper
// contrasts with its own (§1): the m variables are grouped into m/b
// blocks; each block is recoded into d = Theta(b) shares stored on d
// distinct modules. Storage grows by the constant factor d/b — like the
// paper's scheme, constant redundancy — but every access must decode a
// whole block, so Theta(b) = Theta(log n) variables are *processed* per
// variable accessed. The bench contrasts exactly this trade.
//
// Cost model: modules serve one share per round. Reads fetch the b shares
// of the block whose modules are least loaded this step (the slack d - b
// is the scheme's congestion-dodging trick); writes are read-modify-write
// and must update all d shares. Reads of a step are served first (they
// see pre-step state), then writes commit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ida/dispersal.hpp"
#include "memmap/memory_map.hpp"
#include "pram/memory_system.hpp"
#include "util/stats.hpp"

namespace pramsim::ida {

struct IdaMemoryConfig {
  std::uint32_t b = 4;          ///< block size (variables per block)
  std::uint32_t d = 8;          ///< shares per block
  std::uint32_t n_modules = 64; ///< modules shares are spread over (>= d)
  std::uint64_t seed = 1;       ///< share-placement seed
};

class IdaMemory final : public pram::MemorySystem {
 public:
  IdaMemory(std::uint64_t m_vars, IdaMemoryConfig config);

  pram::MemStepCost step(std::span<const VarId> reads,
                         std::span<pram::Word> read_values,
                         std::span<const pram::VarWrite> writes) override;

  [[nodiscard]] std::uint64_t size() const override { return m_vars_; }
  [[nodiscard]] pram::Word peek(VarId var) const override;
  void poke(VarId var, pram::Word value) override;
  [[nodiscard]] double storage_redundancy() const override {
    return disperser_.storage_factor();
  }

  // ----- scheme accounting -----
  [[nodiscard]] double storage_factor() const {
    return disperser_.storage_factor();
  }
  [[nodiscard]] std::uint32_t block_size() const { return config_.b; }
  [[nodiscard]] std::uint64_t num_blocks() const { return n_blocks_; }
  /// Variables processed (decoded) per variable accessed so far.
  [[nodiscard]] double work_amplification() const;
  [[nodiscard]] std::uint64_t share_accesses() const {
    return share_accesses_;
  }

 private:
  [[nodiscard]] std::uint64_t block_of(VarId var) const {
    return var.index() / config_.b;
  }
  /// Decode a block from its stored shares (verification path).
  [[nodiscard]] std::vector<pram::Word> decode_block(std::uint64_t block) const;
  void encode_block(std::uint64_t block, std::span<const pram::Word> values);

  std::uint64_t m_vars_;
  IdaMemoryConfig config_;
  Disperser disperser_;
  std::uint64_t n_blocks_;
  /// Share storage: block-major, d share-words per block.
  std::vector<pram::Word> shares_;
  /// Placement of each block's d shares over the modules.
  memmap::HashedMap placement_;
  std::uint64_t share_accesses_ = 0;
  std::uint64_t vars_accessed_ = 0;
  std::uint64_t vars_processed_ = 0;
};

}  // namespace pramsim::ida
