// IdaMemory: the Schuster (1987) shared-memory organization the paper
// contrasts with its own (§1): the m variables are grouped into m/b
// blocks; each block is recoded into d = Theta(b) shares stored on d
// distinct modules. Storage grows by the constant factor d/b — like the
// paper's scheme, constant redundancy — but every access must decode a
// whole block, so Theta(b) = Theta(log n) variables are *processed* per
// variable accessed. The bench contrasts exactly this trade.
//
// Cost model: modules serve one share per round. Reads fetch the b shares
// of the block whose modules are least loaded this step (the slack d - b
// is the scheme's congestion-dodging trick); writes are read-modify-write
// and must update all d shares. Reads of a step are served first (they
// see pre-step state), then writes commit.
//
// Share storage is sparse (same trick as the sparse majority::CopyStore):
// a block's d shares are materialized on its first write; untouched
// blocks decode from one precomputed all-zero encoding, so full-scale
// memories (m = n^k) are cheap to build.
//
// Under pram::FaultHooks the scheme runs degraded: shares on dead modules
// are erasures, reconstruction interpolates from ANY b surviving share
// indices (the erasure-code guarantee, exercised for real), and a block
// with fewer than b survivors is uncorrectable. Silently corrupted or
// stuck shares poison the Lagrange interpolation — IDA is an erasure
// code, not an error-correcting one, which is exactly the reliability
// contrast with majority voting.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ida/dispersal.hpp"
#include "memmap/memory_map.hpp"
#include "pram/memory_system.hpp"
#include "util/stats.hpp"

namespace pramsim::ida {

struct IdaMemoryConfig {
  std::uint32_t b = 4;          ///< block size (variables per block)
  std::uint32_t d = 8;          ///< shares per block
  std::uint32_t n_modules = 64; ///< modules shares are spread over (>= d)
  std::uint64_t seed = 1;       ///< share-placement seed
  /// Store a per-share checksum word alongside every share and verify it
  /// on decode: a share whose value no longer matches its checksum
  /// (stuck cell, silently corrupted store) is DETECTED and excluded
  /// from the interpolation like an erasure — silent block poisoning
  /// becomes a masked fault (enough survivors) or a flagged outage (too
  /// few), never a lie. Costs one extra word per share (storage factor
  /// 2d/b instead of d/b); bench_faults quantifies the trade.
  bool check_shares = false;
  /// Storage region granularity in BLOCKS: each region row stores the
  /// shares of this many consecutive blocks contiguously per share index
  /// (share-major), so the healthy serve path recodes whole runs of
  /// blocks with one bulk Disperser::decode_regions/encode_regions call
  /// over the stored spans. 1 (the default) reproduces the classic
  /// one-row-per-block layout bit for bit. Fault and checksum
  /// granularity stay per share WORD at any width.
  std::uint32_t region_blocks = 1;
};

class IdaMemory final : public pram::MemorySystem {
 public:
  IdaMemory(std::uint64_t m_vars, IdaMemoryConfig config);

  pram::MemStepCost step(std::span<const VarId> reads,
                         std::span<pram::Word> read_values,
                         std::span<const pram::VarWrite> writes) override;

  /// Native plan path: the plan's groups ARE this scheme's blocks
  /// (plan_group_of = block index), so the per-step block sets/maps
  /// disappear — phase 1 walks read groups, phase 2 write groups, both
  /// in ascending block order, decoding into a per-instance flat buffer.
  /// Value-equivalent to step(); cost is identical up to the (now
  /// deterministic, ascending-block) least-loaded module selection order.
  /// Serial under every backend: the least-loaded share pick makes
  /// groups interdependent, so this scheme does not advertise
  /// kGroupParallel.
  pram::MemStepCost serve(const pram::AccessPlan& plan,
                          pram::ServeContext& ctx) override;

  /// Plans group by block: requests in one group share one decode.
  [[nodiscard]] std::uint64_t plan_group_of(VarId var) const override {
    return block_of(var);
  }
  [[nodiscard]] bool wants_plan_groups() const override { return true; }

  [[nodiscard]] std::uint64_t size() const override { return m_vars_; }
  [[nodiscard]] pram::Word peek(VarId var) const override;
  void poke(VarId var, pram::Word value) override;
  [[nodiscard]] double storage_redundancy() const override {
    return disperser_.storage_factor() * (config_.check_shares ? 2.0 : 1.0);
  }
  [[nodiscard]] std::uint32_t num_modules() const override {
    return config_.n_modules;
  }
  bool set_fault_hooks(const pram::FaultHooks* hooks) override {
    hooks_ = hooks;
    return true;
  }

  /// Native scrub: walk the block space from a persistent cursor; every
  /// block with shares on dead modules that is still reconstructible
  /// (>= b survivors) is decoded, its lost shares RELOCATED to
  /// deterministically-chosen healthy modules, and the block re-dispersed
  /// onto the repaired placement. One budget unit = one block scanned.
  /// Blocks below threshold stay lost (nothing to re-disperse from); a
  /// pass over a healthy block writes nothing.
  pram::ScrubResult scrub(std::uint64_t budget) override;
  [[nodiscard]] pram::ReliabilityStats reliability() const override {
    return reliability_;
  }
  [[nodiscard]] std::span<const std::uint8_t> flagged_reads()
      const override {
    return flagged_reads_;
  }

  // ----- scheme accounting -----
  [[nodiscard]] double storage_factor() const {
    return disperser_.storage_factor();
  }
  [[nodiscard]] std::uint32_t block_size() const { return config_.b; }
  [[nodiscard]] std::uint64_t num_blocks() const { return n_blocks_; }
  [[nodiscard]] std::uint32_t region_blocks() const {
    return config_.region_blocks;
  }
  /// Regions with at least one written share (sparse-storage accounting;
  /// with region_blocks == 1 this is exactly "blocks with >= 1 written
  /// share", the classic meaning).
  [[nodiscard]] std::uint64_t touched_blocks() const {
    return shares_.size();
  }
  /// Variables processed (decoded) per variable accessed so far.
  [[nodiscard]] double work_amplification() const;
  [[nodiscard]] std::uint64_t share_accesses() const {
    return share_accesses_;
  }

 protected:
  /// Native snapshot: the packed share region rows (shares, checksums,
  /// written-block flag bits) in sorted region order, the scrub
  /// relocation overlay, the encode counter (corruption re-roll
  /// namespace), and the scrub cursor. The peek/poke default would
  /// re-encode every block and lose relocations; this path restores the
  /// exact stored share words.
  void snapshot_body(pram::SnapshotSink& sink) override;
  [[nodiscard]] bool restore_body(pram::SnapshotSource& source) override;

 private:
  [[nodiscard]] std::uint64_t block_of(VarId var) const {
    return var.index() / config_.b;
  }
  // ----- region-row geometry -----
  //
  // A region row packs R = region_blocks consecutive blocks share-major:
  //   share s of the region's t-th block        at row[s*R + t]
  //   its checksum word (check_shares only)     at row[d*R + s*R + t]
  //   written-block flag bits (one per block)   at row[flag_base_ + t/64]
  // so share s's words for a run of blocks are one contiguous span the
  // bulk codec reads/writes in place (stride R between shares). R = 1
  // collapses to the classic one-row-per-block layout: d shares, then d
  // checksums, byte-for-byte as before (plus the one trailing flag word
  // that used to be implied by the row's existence).
  [[nodiscard]] std::uint64_t region_of_block(std::uint64_t block) const {
    return block / config_.region_blocks;
  }
  /// The row of `block`'s region, materialized on first use: every block
  /// slot starts as the shared zero encoding, checksums 0, flags clear.
  std::vector<pram::Word>& region_row(std::uint64_t block);
  /// True when encode_block has ever run for `block` (the classic
  /// "row exists" signal, kept per block inside the region row).
  [[nodiscard]] bool block_written(std::uint64_t block) const;
  /// Share j of `block` as stored (all-zero encoding if untouched).
  [[nodiscard]] pram::Word share_at(std::uint64_t block,
                                    std::uint32_t j) const;
  /// Stored checksum word of share j; unwritten blocks fall back to the
  /// checksum the zero encoding's writer would have stored.
  [[nodiscard]] pram::Word checksum_at(std::uint64_t block,
                                       std::uint32_t j) const;
  /// The checksum a share word SHOULD carry: a seeded hash of
  /// (block, share index, value), computed by the writer from the true
  /// encoded word — so a stuck cell or a store-time corruption leaves a
  /// mismatched pair behind.
  [[nodiscard]] static pram::Word share_checksum(std::uint64_t block,
                                                 std::uint32_t j,
                                                 pram::Word value);
  /// Decode a block and account erasures/threshold misses into
  /// reliability_ when running under fault hooks.
  [[nodiscard]] std::vector<pram::Word> decode_block(std::uint64_t block);
  /// The recovery rule itself (shared by decode_block and peek): healthy
  /// path reads shares 0..b-1; under fault hooks it interpolates from
  /// the first b SURVIVING share indices. Reports dead shares in
  /// `erased`, stuck shares that silently joined the interpolation in
  /// `faulty`, and clears `ok` (returning the zero block) when fewer
  /// than b shares survive.
  [[nodiscard]] std::vector<pram::Word> recover_block(std::uint64_t block,
                                                      std::uint32_t* erased,
                                                      std::uint32_t* faulty,
                                                      bool* ok) const;
  /// Healthy bulk decode of `count` consecutive blocks (all within one
  /// region) straight from the stored share spans into block-major
  /// `out`; untouched regions decode to zeros (the zero block's exact
  /// recovery). No telemetry: callers use it only when hooks_ == nullptr.
  void decode_blocks_healthy(std::uint64_t first_block, std::uint32_t count,
                             pram::Word* out) const;
  void encode_block(std::uint64_t block, std::span<const pram::Word> values);
  /// The block's CURRENT share placement: the hashed placement with
  /// scrub relocations applied on top.
  void placement_into_current(std::uint64_t block,
                              std::span<ModuleId> out) const;

  std::uint64_t m_vars_;
  IdaMemoryConfig config_;
  Disperser disperser_;
  std::uint64_t n_blocks_;
  std::uint64_t n_regions_;
  std::size_t flag_base_ = 0;  ///< row offset of the written-block bits
  std::size_t row_words_ = 0;  ///< full region-row length
  /// Sparse share storage: region -> its packed share rows (layout
  /// above), materialized on first write anywhere in the region.
  /// Untouched blocks read as zero_shares_.
  std::unordered_map<std::uint64_t, std::vector<pram::Word>> shares_;
  std::vector<pram::Word> zero_shares_;  ///< encoding of the zero block
  std::vector<std::uint32_t> identity_indices_;  ///< {0..b-1} (healthy set)
  std::vector<pram::Word> encode_scratch_;       ///< d share words
  /// Placement of each block's d shares over the modules.
  memmap::HashedMap placement_;
  std::uint64_t share_accesses_ = 0;
  std::uint64_t vars_accessed_ = 0;
  std::uint64_t vars_processed_ = 0;
  std::uint64_t store_ops_ = 0;  ///< encode counter (corruption stamp)
  /// Scrub relocation overlay: (block * d + share) -> replacement module
  /// for shares moved off dead modules. Lookup-only.
  std::unordered_map<std::uint64_t, ModuleId> relocated_;
  std::uint64_t scrub_cursor_ = 0;  ///< next block a scrub pass scans
  const pram::FaultHooks* hooks_ = nullptr;  ///< non-owning; null = healthy
  pram::ReliabilityStats reliability_;
  /// Blocks whose last decode fell below threshold (reset per step).
  std::unordered_set<std::uint64_t> failed_blocks_;
  /// Blocks reconstructed around >= 1 bad share (reset per step).
  std::unordered_set<std::uint64_t> degraded_blocks_;
  std::vector<std::uint8_t> flagged_reads_;  ///< last step's outage flags

  // ----- serve() scratch (reused across steps; meaningless between) -----
  std::vector<std::uint32_t> module_load_;     ///< dense, reset via touched
  std::vector<std::uint32_t> touched_modules_;
  std::vector<std::uint32_t> order_;           ///< least-loaded share pick
  std::vector<ModuleId> copy_scratch_;
  std::vector<pram::Word> decoded_store_;      ///< group g at [g*b,(g+1)*b)
  std::vector<std::uint8_t> group_has_read_;
  std::vector<std::uint8_t> group_status_;     ///< 0 ok, 1 degraded, 2 failed
};

}  // namespace pramsim::ida
