#include "sortnet/batcher.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace pramsim::sortnet {

std::size_t ComparatorNetwork::size() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    total += layer.size();
  }
  return total;
}

void ComparatorNetwork::add(std::uint32_t lo, std::uint32_t hi) {
  PRAMSIM_ASSERT(!layers_.empty());
  PRAMSIM_ASSERT(lo < hi && hi < n_lines_);
#ifndef NDEBUG
  for (const auto& comp : layers_.back()) {
    PRAMSIM_ASSERT_MSG(comp.lo != lo && comp.lo != hi && comp.hi != lo &&
                           comp.hi != hi,
                       "comparators within a layer must be line-disjoint");
  }
#endif
  layers_.back().push_back({lo, hi});
}

ComparatorNetwork batcher_sort(std::uint32_t n_lines) {
  PRAMSIM_ASSERT(util::is_pow2(n_lines));
  ComparatorNetwork net(n_lines);
  if (n_lines < 2) {
    return net;
  }
  // Iterative Batcher odd-even mergesort (Knuth 5.3.4, Algorithm M):
  // every (p, k) pair forms one parallel layer of disjoint ascending
  // comparators.
  const std::uint32_t n = n_lines;
  for (std::uint32_t p = 1; p < n; p <<= 1) {
    for (std::uint32_t k = p; k >= 1; k >>= 1) {
      net.new_layer();
      for (std::uint32_t j = k % p; j + k < n; j += 2 * k) {
        for (std::uint32_t i = 0; i < k && i + j + k < n; ++i) {
          const std::uint32_t a = i + j;
          const std::uint32_t b = i + j + k;
          if (a / (2 * p) == b / (2 * p)) {
            net.add(a, b);
          }
        }
      }
      if (k == 1) {
        break;  // k >>= 1 on k == 1 would wrap for unsigned
      }
    }
  }
  return net;
}

}  // namespace pramsim::sortnet
