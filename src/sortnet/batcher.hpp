// Batcher odd-even mergesort comparator networks.
//
// Alt, Hagerup, Mehlhorn & Preparata (1987) — reviewed in the paper's
// §1 — obtained the first deterministic BDN P-RAM simulation by routing
// each majority-protocol phase through a sorting network: requests are
// sorted by destination module, delivered, and replies sorted back,
// giving O(log n log m) time overall. This module provides the concrete
// network (all comparators ascending, so it is a true sorting network by
// the 0-1 principle) with exact depth and size accounting; core's
// AltBdnEngine charges each protocol round its depth.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace pramsim::sortnet {

/// One comparator: orders (lo, hi) ascending; lo < hi always.
struct Comparator {
  std::uint32_t lo;
  std::uint32_t hi;
};

/// A layered comparator network: comparators within a layer touch
/// disjoint lines and execute in parallel (depth = layer count).
class ComparatorNetwork {
 public:
  explicit ComparatorNetwork(std::uint32_t n_lines) : n_lines_(n_lines) {}

  [[nodiscard]] std::uint32_t lines() const { return n_lines_; }
  [[nodiscard]] std::size_t depth() const { return layers_.size(); }
  [[nodiscard]] std::size_t size() const;  ///< total comparators

  /// Begin a new parallel layer.
  void new_layer() { layers_.emplace_back(); }

  /// Append a comparator to the current layer; asserts line-disjointness
  /// within the layer and lo < hi < lines().
  void add(std::uint32_t lo, std::uint32_t hi);

  [[nodiscard]] const std::vector<std::vector<Comparator>>& layers() const {
    return layers_;
  }

  /// Run the network over `values` in place (ascending).
  template <typename T>
  void apply(std::span<T> values) const {
    PRAMSIM_ASSERT(values.size() == n_lines_);
    for (const auto& layer : layers_) {
      for (const auto& comp : layer) {
        if (values[comp.hi] < values[comp.lo]) {
          using std::swap;
          swap(values[comp.lo], values[comp.hi]);
        }
      }
    }
  }

 private:
  std::uint32_t n_lines_;
  std::vector<std::vector<Comparator>> layers_;
};

/// Batcher's odd-even mergesort network over n lines (n a power of two).
/// Depth is exactly log2(n) * (log2(n) + 1) / 2; all comparators point
/// ascending, so by the 0-1 principle the network sorts every input.
[[nodiscard]] ComparatorNetwork batcher_sort(std::uint32_t n_lines);

}  // namespace pramsim::sortnet
