#include "memmap/memory_map.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pramsim::memmap {

MemoryMap::MemoryMap(std::uint64_t m_vars, std::uint32_t n_modules,
                     std::uint32_t redundancy)
    : m_vars_(m_vars), n_modules_(n_modules), redundancy_(redundancy) {
  PRAMSIM_ASSERT(m_vars >= 1);
  PRAMSIM_ASSERT(n_modules >= 1);
  PRAMSIM_ASSERT(redundancy >= 1);
  PRAMSIM_ASSERT_MSG(redundancy <= n_modules,
                     "cannot place r distinct copies in fewer than r modules");
}

std::vector<ModuleId> MemoryMap::copies(VarId var) const {
  std::vector<ModuleId> out(redundancy());
  copies_into(var, out);
  return out;
}

namespace {

/// Sample `r` distinct modules out of `M` into `out` using rejection; for
/// the r << M regime this is O(r) expected.
void sample_distinct_modules(util::Rng& rng, std::uint32_t n_modules,
                             std::span<ModuleId> out) {
  const std::size_t r = out.size();
  for (std::size_t i = 0; i < r; ++i) {
    while (true) {
      const auto candidate =
          static_cast<std::uint32_t>(rng.below(n_modules));
      bool fresh = true;
      for (std::size_t j = 0; j < i; ++j) {
        if (out[j].value() == candidate) {
          fresh = false;
          break;
        }
      }
      if (fresh) {
        out[i] = ModuleId(candidate);
        break;
      }
    }
  }
}

}  // namespace

TableMap::TableMap(std::uint64_t m_vars, std::uint32_t n_modules,
                   std::uint32_t redundancy, std::uint64_t seed)
    : MemoryMap(m_vars, n_modules, redundancy),
      table_(m_vars * redundancy),
      load_(n_modules, 0) {
  util::Rng rng(seed);
  std::vector<ModuleId> buf(redundancy);
  for (std::uint64_t v = 0; v < m_vars; ++v) {
    sample_distinct_modules(rng, n_modules, buf);
    for (std::uint32_t i = 0; i < redundancy; ++i) {
      table_[v * redundancy + i] = buf[i].value();
      ++load_[buf[i].value()];
    }
  }
}

void TableMap::copies_into(VarId var, std::span<ModuleId> out) const {
  PRAMSIM_ASSERT(var.index() < num_vars());
  PRAMSIM_ASSERT(out.size() == redundancy());
  const std::uint64_t base = var.index() * redundancy();
  for (std::uint32_t i = 0; i < redundancy(); ++i) {
    out[i] = ModuleId(table_[base + i]);
  }
}

std::uint32_t TableMap::module_load(ModuleId module) const {
  PRAMSIM_ASSERT(module.index() < load_.size());
  return load_[module.index()];
}

std::uint32_t TableMap::max_module_load() const {
  return *std::max_element(load_.begin(), load_.end());
}

double TableMap::load_imbalance() const {
  const double ideal = static_cast<double>(num_vars()) * redundancy() /
                       static_cast<double>(num_modules());
  return ideal > 0.0 ? static_cast<double>(max_module_load()) / ideal : 0.0;
}

HashedMap::HashedMap(std::uint64_t m_vars, std::uint32_t n_modules,
                     std::uint32_t redundancy, std::uint64_t seed)
    : MemoryMap(m_vars, n_modules, redundancy), seed_(seed) {}

void HashedMap::copies_into(VarId var, std::span<ModuleId> out) const {
  PRAMSIM_ASSERT(var.index() < num_vars());
  PRAMSIM_ASSERT(out.size() == redundancy());
  // Per-variable deterministic stream: a processor can recompute any
  // variable's copy set locally in O(r) time, which is exactly the paper's
  // "simple computations within a processor" desideratum.
  util::SplitMix64 mixer(seed_ ^ (0x9E3779B97F4A7C15ULL * (var.value() + 1)));
  util::Rng rng(mixer.next());
  sample_distinct_modules(rng, num_modules(), out);
}

std::unique_ptr<MemoryMap> make_single_copy_map(std::uint64_t m_vars,
                                                std::uint32_t n_modules,
                                                std::uint64_t seed) {
  return std::make_unique<HashedMap>(m_vars, n_modules, 1, seed);
}

}  // namespace pramsim::memmap
