#include "memmap/expansion.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pramsim::memmap {

double ExpansionResult::ratio_vs_bound(double b) const {
  PRAMSIM_ASSERT(b > 0.0 && q > 0 && redundancy > 0);
  const double bound =
      static_cast<double>(redundancy) * static_cast<double>(q) / b;
  return static_cast<double>(min_distinct) / bound;
}

namespace {

/// Count distinct modules among the selected copies.
std::uint64_t count_distinct(const std::vector<std::vector<ModuleId>>& copies,
                             const std::vector<std::vector<std::uint8_t>>& keep) {
  std::unordered_set<std::uint32_t> modules;
  for (std::size_t v = 0; v < copies.size(); ++v) {
    for (std::size_t i = 0; i < copies[v].size(); ++i) {
      if (keep[v][i] != 0) {
        modules.insert(copies[v][i].value());
      }
    }
  }
  return modules.size();
}

/// Greedy concentrator: iteratively keep, for each variable, the c copies
/// residing in the modules most shared with other kept copies.
std::uint64_t greedy_adversarial_coverage(
    const std::vector<std::vector<ModuleId>>& copies, std::uint32_t c,
    std::uint32_t refine_rounds) {
  const std::size_t q = copies.size();
  std::vector<std::vector<std::uint8_t>> keep(q);
  for (std::size_t v = 0; v < q; ++v) {
    keep[v].assign(copies[v].size(), 1);
  }
  std::uint64_t best = count_distinct(copies, keep);
  for (std::uint32_t round = 0; round < refine_rounds; ++round) {
    // Popularity of each module among currently kept copies.
    std::unordered_map<std::uint32_t, std::uint32_t> popularity;
    for (std::size_t v = 0; v < q; ++v) {
      for (std::size_t i = 0; i < copies[v].size(); ++i) {
        if (keep[v][i] != 0) {
          ++popularity[copies[v][i].value()];
        }
      }
    }
    // Keep the c most-popular copies per variable (ties: lower module id,
    // for determinism).
    for (std::size_t v = 0; v < q; ++v) {
      const auto r = copies[v].size();
      std::vector<std::size_t> order(r);
      for (std::size_t i = 0; i < r; ++i) {
        order[i] = i;
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b2) {
        const auto pa = popularity[copies[v][a].value()];
        const auto pb = popularity[copies[v][b2].value()];
        if (pa != pb) {
          return pa > pb;
        }
        return copies[v][a].value() < copies[v][b2].value();
      });
      keep[v].assign(r, 0);
      for (std::uint32_t i = 0; i < c && i < r; ++i) {
        keep[v][order[i]] = 1;
      }
    }
    best = std::min(best, count_distinct(copies, keep));
  }
  return best;
}

std::uint64_t random_coverage(const std::vector<std::vector<ModuleId>>& copies,
                              std::uint32_t c, util::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> keep(copies.size());
  for (std::size_t v = 0; v < copies.size(); ++v) {
    const auto r = copies[v].size();
    keep[v].assign(r, 0);
    const auto chosen = rng.sample_without_replacement(r, std::min<std::uint64_t>(c, r));
    for (const auto i : chosen) {
      keep[v][i] = 1;
    }
  }
  return count_distinct(copies, keep);
}

}  // namespace

ExpansionResult measure_expansion(const MemoryMap& map, std::uint32_t c,
                                  std::uint64_t q, std::uint32_t trials,
                                  std::uint64_t seed,
                                  std::uint32_t refine_rounds) {
  PRAMSIM_ASSERT(q >= 1 && q <= map.num_vars());
  PRAMSIM_ASSERT(c >= 1 && c <= map.redundancy());
  util::Rng rng(seed);
  ExpansionResult result;
  result.q = q;
  result.trials = trials;
  result.redundancy = map.redundancy();
  result.min_distinct = ~0ULL;
  result.min_distinct_random = ~0ULL;
  double sum = 0.0;
  std::vector<std::vector<ModuleId>> copies(q);
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto vars = rng.sample_without_replacement(map.num_vars(), q);
    for (std::size_t v = 0; v < q; ++v) {
      copies[v] = map.copies(VarId(static_cast<std::uint32_t>(vars[v])));
    }
    const auto adversarial =
        greedy_adversarial_coverage(copies, c, refine_rounds);
    const auto random = random_coverage(copies, c, rng);
    result.min_distinct = std::min(result.min_distinct, adversarial);
    result.min_distinct_random = std::min(result.min_distinct_random, random);
    sum += static_cast<double>(adversarial);
  }
  result.mean_distinct = trials > 0 ? sum / trials : 0.0;
  return result;
}

std::uint64_t greedy_min_coverage(const MemoryMap& map, std::uint32_t c,
                                  const std::vector<VarId>& vars,
                                  std::uint32_t refine_rounds) {
  PRAMSIM_ASSERT(!vars.empty());
  std::vector<std::vector<ModuleId>> copies;
  copies.reserve(vars.size());
  for (const auto v : vars) {
    copies.push_back(map.copies(v));
  }
  return greedy_adversarial_coverage(copies, c, refine_rounds);
}

std::uint64_t exact_min_coverage(const MemoryMap& map, std::uint32_t c,
                                 const std::vector<VarId>& vars) {
  PRAMSIM_ASSERT(!vars.empty());
  PRAMSIM_ASSERT_MSG(vars.size() <= 6, "exact minimizer is exponential");
  const std::uint32_t r = map.redundancy();
  PRAMSIM_ASSERT(c <= r);

  std::vector<std::vector<ModuleId>> copies;
  copies.reserve(vars.size());
  for (const auto v : vars) {
    copies.push_back(map.copies(v));
  }

  // Enumerate all c-subsets of r as bitmasks once.
  std::vector<std::uint32_t> subsets;
  for (std::uint32_t mask = 0; mask < (1U << r); ++mask) {
    if (static_cast<std::uint32_t>(__builtin_popcount(mask)) == c) {
      subsets.push_back(mask);
    }
  }

  std::uint64_t best = ~0ULL;
  std::vector<std::size_t> choice(vars.size(), 0);
  while (true) {
    std::unordered_set<std::uint32_t> modules;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      const std::uint32_t mask = subsets[choice[v]];
      for (std::uint32_t i = 0; i < r; ++i) {
        if ((mask >> i) & 1U) {
          modules.insert(copies[v][i].value());
        }
      }
    }
    best = std::min<std::uint64_t>(best, modules.size());
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < vars.size()) {
      if (++choice[pos] < subsets.size()) {
        break;
      }
      choice[pos] = 0;
      ++pos;
    }
    if (pos == vars.size()) {
      break;
    }
  }
  return best;
}

std::vector<VarId> adversarial_batch(const MemoryMap& map, std::uint32_t count,
                                     std::uint64_t seed) {
  PRAMSIM_ASSERT(count >= 1 && count <= map.num_vars());
  util::Rng rng(seed);
  // Sample a pool of candidate variables several times larger than the
  // batch, find the modules most loaded within the pool, and prefer
  // variables with the most copies in those hot modules.
  const std::uint64_t pool_size =
      std::min<std::uint64_t>(map.num_vars(), 8ULL * count);
  const auto pool = rng.sample_without_replacement(map.num_vars(), pool_size);

  std::unordered_map<std::uint32_t, std::uint32_t> module_load;
  std::vector<std::vector<ModuleId>> pool_copies(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool_copies[i] = map.copies(VarId(static_cast<std::uint32_t>(pool[i])));
    for (const auto mod : pool_copies[i]) {
      ++module_load[mod.value()];
    }
  }

  // Score each candidate by the total load of the modules its copies
  // occupy (higher = more collision-prone batch member).
  std::vector<std::size_t> order(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    order[i] = i;
  }
  std::vector<std::uint64_t> score(pool.size(), 0);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (const auto mod : pool_copies[i]) {
      score[i] += module_load[mod.value()];
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (score[a] != score[b]) {
                       return score[a] > score[b];
                     }
                     return pool[a] < pool[b];
                   });

  std::vector<VarId> batch;
  batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    batch.emplace_back(static_cast<std::uint32_t>(pool[order[i]]));
  }
  return batch;
}

}  // namespace pramsim::memmap
