// Memory maps: the assignment of variable copies to memory modules.
//
// The paper's Lemma 2 shows a map with 2c-1 copies per variable over
// M = n^(1+eps) modules exists such that live copies always expand into
// many distinct modules. The proof is probabilistic and non-constructive;
// following the substitution policy in DESIGN.md we instantiate the map by
// seeded uniform-random placement (the distribution the proof integrates
// over) and verify the expansion property empirically (expansion.hpp).
//
// Two implementations:
//  * TableMap  - explicit lookup table, the object the paper actually
//                posits (it costs O(m r log M) bits, which the paper's
//                conclusion highlights as the price of non-constructivity).
//  * HashedMap - copies computed on demand from a per-variable PRNG stream;
//                O(1) storage. This realizes the paper's open-problem wish
//                ("a memory map that could be constructed by simple
//                computations within a processor") with pseudo-randomness
//                standing in for an explicit construction, and lets the
//                benches scale to m = n^2 for large n without m-sized
//                tables.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/strong_id.hpp"

namespace pramsim::memmap {

/// Abstract map from variable to the modules holding its copies.
class MemoryMap {
 public:
  MemoryMap(std::uint64_t m_vars, std::uint32_t n_modules,
            std::uint32_t redundancy);
  virtual ~MemoryMap() = default;

  MemoryMap(const MemoryMap&) = delete;
  MemoryMap& operator=(const MemoryMap&) = delete;

  /// Number of shared variables (m).
  [[nodiscard]] std::uint64_t num_vars() const { return m_vars_; }
  /// Number of memory modules (M).
  [[nodiscard]] std::uint32_t num_modules() const { return n_modules_; }
  /// Copies per variable (r = 2c-1 in the replicated schemes).
  [[nodiscard]] std::uint32_t redundancy() const { return redundancy_; }

  /// Write the modules of `var`'s copies into `out` (size == redundancy()).
  /// Modules are distinct within one variable.
  virtual void copies_into(VarId var, std::span<ModuleId> out) const = 0;

  /// Convenience allocating variant.
  [[nodiscard]] std::vector<ModuleId> copies(VarId var) const;

 private:
  std::uint64_t m_vars_;
  std::uint32_t n_modules_;
  std::uint32_t redundancy_;
};

/// Explicit-table map: r distinct uniform modules per variable, chosen at
/// construction. Supports exact module-load statistics.
class TableMap final : public MemoryMap {
 public:
  /// Uniform random placement; each variable's r modules are distinct.
  /// Requires redundancy <= n_modules.
  TableMap(std::uint64_t m_vars, std::uint32_t n_modules,
           std::uint32_t redundancy, std::uint64_t seed);

  void copies_into(VarId var, std::span<ModuleId> out) const override;

  /// Copies stored in `module` (for granularity/VLSI accounting).
  [[nodiscard]] std::uint32_t module_load(ModuleId module) const;
  [[nodiscard]] std::uint32_t max_module_load() const;
  /// Perfectly balanced load would be ceil(m*r/M).
  [[nodiscard]] double load_imbalance() const;

 private:
  std::vector<std::uint32_t> table_;  // m * r module ids
  std::vector<std::uint32_t> load_;   // copies per module
};

/// Computed map: copies derived on demand from hash(seed, var); no table.
class HashedMap final : public MemoryMap {
 public:
  HashedMap(std::uint64_t m_vars, std::uint32_t n_modules,
            std::uint32_t redundancy, std::uint64_t seed);

  void copies_into(VarId var, std::span<ModuleId> out) const override;

 private:
  std::uint64_t seed_;
};

/// Degenerate r = 1 hashed placement (used by the probabilistic
/// Mehlhorn-Vishkin baseline and the M = m extreme case).
[[nodiscard]] std::unique_ptr<MemoryMap> make_single_copy_map(
    std::uint64_t m_vars, std::uint32_t n_modules, std::uint64_t seed);

}  // namespace pramsim::memmap
