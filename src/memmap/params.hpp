// Parameter calculus for the paper's bounds.
//
//  * Lemma 2 threshold:  c > max( (b*k - eps) / (eps*(b-2)), (b-1)/(b-2) )
//    gives a constant-redundancy map for M = n^(1+eps), m = n^k, b > 2.
//  * Lemma 1 (Upfal-Wigderson): c = Theta(log m / log b) for M = n modules
//    (the MPC baseline's logarithmic redundancy).
//  * Theorem 1: the redundancy lower bound, solved numerically from the
//    proof's counting inequality rather than quoted asymptotically.
//  * The bad-map union bound from the Lemma 2 proof, evaluated in log
//    space, quantifying that seeded-random maps are almost surely good.
#pragma once

#include <cstdint>

namespace pramsim::memmap {

/// Smallest integer c satisfying the Lemma 2 constraint for expansion
/// parameter b > 2, memory exponent k >= 1 (m = n^k) and granularity
/// exponent eps > 0 (M = n^(1+eps)). The returned c is a *constant*:
/// it does not depend on n — the paper's headline.
[[nodiscard]] std::uint32_t lemma2_min_c(double b, double k, double eps);

/// Redundancy r = 2c - 1 for the Lemma 2 scheme.
[[nodiscard]] std::uint32_t lemma2_redundancy(double b, double k, double eps);

/// Upfal-Wigderson Lemma 1 parameter for the MPC baseline:
/// c = max(2, ceil(log_b m)) so r = 2c-1 = Theta(log m / log b).
[[nodiscard]] std::uint32_t uw_c(std::uint64_t m_vars, double b);
[[nodiscard]] std::uint32_t uw_redundancy(std::uint64_t m_vars, double b);

/// Theorem 1, solved exactly: the smallest average copy count p for which
/// the proof's counting inequality
///     (m/2) * C(M-2p, Q-2p)  <=  (n-1) * C(M, Q),   Q = n/h - 1
/// admits a solution; any scheme simulating a step in time h must have
/// redundancy r >= p. Evaluated in log space (the binomials overflow
/// doubles for interesting sizes). Returns 0 if even p = 0 satisfies it
/// (no useful bound), and asserts h >= 1, n/h >= 2.
[[nodiscard]] std::uint32_t theorem1_min_p(double n, double M, double m,
                                           double h);

/// The paper's closed-form shape for the same bound:
/// (k-1) log n / (eps log n + log h)  [base-2 logs].
[[nodiscard]] double theorem1_closed_form(double n, double k, double eps,
                                          double h);

/// log2 of the Lemma 2 proof's union bound on the fraction of bad maps:
/// sum over q = 1 .. n/(2c-1) of
///   C(m,q) * C(2c-1,c)^q * C(M,s) * (s/M)^(c*q),  s = ceil((2c-1)q/b).
/// A strongly negative return value means almost every random map has the
/// expansion property; >= 0 means the bound is vacuous at these parameters.
[[nodiscard]] double bad_map_log2_union_bound(double n, double m, double M,
                                              std::uint32_t c, double b);

/// Bundle of derived scheme parameters for a given machine size.
struct DerivedParams {
  std::uint32_t n = 0;        ///< processors
  double k = 2.0;             ///< m = n^k
  double eps = 1.0;           ///< M = n^(1+eps)
  double b = 4.0;             ///< Lemma 2 expansion parameter
  std::uint64_t m = 0;        ///< shared variables
  std::uint32_t n_modules = 0;  ///< M
  std::uint32_t c = 0;        ///< Lemma 2 access threshold
  std::uint32_t r = 0;        ///< redundancy 2c-1
  std::uint32_t cluster = 0;  ///< protocol cluster size (= r)
  double granularity = 0.0;   ///< g = r*m/M cells per module
};

/// Compute m, M, c, r for (n, k, eps, b). Clamps M into [r, m] so tiny
/// configurations stay well-formed.
[[nodiscard]] DerivedParams derive_params(std::uint32_t n, double k,
                                          double eps, double b);

}  // namespace pramsim::memmap
