// Empirical verification of the Lemma 2 expansion property.
//
// Lemma 2 guarantees (for a good map): for ANY set of q <= n/(2c-1) live
// variables and ANY adversarial choice of which copies remain live, the
// live copies occupy at least (2c-1)q/b distinct modules. Deciding whether
// a concrete map satisfies this for all q-sets is a hard combinatorial
// minimization, so per DESIGN.md we *measure*:
//
//  * random q-sets of live variables, adversarial copy selection via an
//    iterated greedy concentrator (pick the c copies per variable that fall
//    in the currently most popular modules) — an upper bound on the true
//    minimum coverage, i.e. a pessimistic check;
//  * an exact exponential-time minimizer for tiny instances (tests);
//  * a map-aware adversarial batch generator used by the scheme benches to
//    stress module contention beyond what random traffic produces.
#pragma once

#include <cstdint>
#include <vector>

#include "memmap/memory_map.hpp"
#include "util/strong_id.hpp"

namespace pramsim::memmap {

struct ExpansionResult {
  std::uint64_t q = 0;          ///< live-set size tested
  std::uint32_t trials = 0;     ///< number of sampled live sets
  std::uint32_t redundancy = 0;     ///< r = copies per variable
  std::uint64_t min_distinct = 0;   ///< worst adversarial module coverage
  double mean_distinct = 0.0;       ///< mean adversarial coverage
  std::uint64_t min_distinct_random = 0;  ///< worst coverage, random choice

  /// Lemma 2's requirement is min_distinct >= r*q/b. Returns the measured
  /// margin min_distinct / (r*q/b); >= 1 means the property held on every
  /// sampled live set.
  [[nodiscard]] double ratio_vs_bound(double b) const;
};

/// Measure adversarial live-copy module coverage over `trials` random
/// live sets of size q. `c` is the access threshold (each variable keeps
/// its c adversarially-chosen copies "live"). Deterministic given seed.
[[nodiscard]] ExpansionResult measure_expansion(const MemoryMap& map,
                                                std::uint32_t c,
                                                std::uint64_t q,
                                                std::uint32_t trials,
                                                std::uint64_t seed,
                                                std::uint32_t refine_rounds = 3);

/// Exact minimum module coverage over all per-variable c-subsets of the
/// given live variables. Exponential in vars.size(): intended for tests
/// with q <= 5 and small redundancy.
[[nodiscard]] std::uint64_t exact_min_coverage(const MemoryMap& map,
                                               std::uint32_t c,
                                               const std::vector<VarId>& vars);

/// The iterated-greedy adversarial coverage for one specific live set —
/// the estimator measure_expansion() samples with. Always an upper bound
/// on exact_min_coverage(map, c, vars).
[[nodiscard]] std::uint64_t greedy_min_coverage(const MemoryMap& map,
                                                std::uint32_t c,
                                                const std::vector<VarId>& vars,
                                                std::uint32_t refine_rounds = 3);

/// A batch of `count` distinct variables chosen (from a sampled pool) to
/// concentrate copies in few modules — the scheme benches' worst-case-ish
/// traffic family. Deterministic given seed.
[[nodiscard]] std::vector<VarId> adversarial_batch(const MemoryMap& map,
                                                   std::uint32_t count,
                                                   std::uint64_t seed);

}  // namespace pramsim::memmap
