#include "memmap/params.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::memmap {

std::uint32_t lemma2_min_c(double b, double k, double eps) {
  PRAMSIM_ASSERT(b > 2.0);
  PRAMSIM_ASSERT(k >= 1.0);
  PRAMSIM_ASSERT(eps > 0.0);
  const double bound1 = (b * k - eps) / (eps * (b - 2.0));
  const double bound2 = (b - 1.0) / (b - 2.0);
  const double bound = std::max(bound1, bound2);
  // Strict inequality: smallest integer strictly greater than the bound.
  const double floor_b = std::floor(bound);
  const auto c = static_cast<std::uint32_t>(
      bound == floor_b ? floor_b + 1.0 : std::ceil(bound));
  return std::max<std::uint32_t>(c, 2);
}

std::uint32_t lemma2_redundancy(double b, double k, double eps) {
  return 2 * lemma2_min_c(b, k, eps) - 1;
}

std::uint32_t uw_c(std::uint64_t m_vars, double b) {
  PRAMSIM_ASSERT(b > 1.0);
  PRAMSIM_ASSERT(m_vars >= 1);
  const double c = std::log2(static_cast<double>(m_vars)) / std::log2(b);
  return std::max<std::uint32_t>(2, static_cast<std::uint32_t>(std::ceil(c)));
}

std::uint32_t uw_redundancy(std::uint64_t m_vars, double b) {
  return 2 * uw_c(m_vars, b) - 1;
}

std::uint32_t theorem1_min_p(double n, double M, double m, double h) {
  PRAMSIM_ASSERT(h >= 1.0);
  PRAMSIM_ASSERT(n / h >= 2.0);
  PRAMSIM_ASSERT(M >= 2.0 && m >= n);
  const double Q = n / h - 1.0;  // size of the module sets in S
  const double rhs = std::log2(n - 1.0) + util::log2_binomial(M, Q);
  for (std::uint32_t p = 0; p <= static_cast<std::uint32_t>(Q / 2.0) + 1;
       ++p) {
    const double pd = p;
    const double lhs = std::log2(m / 2.0) +
                       util::log2_binomial(M - 2.0 * pd, Q - 2.0 * pd);
    if (lhs <= rhs) {
      return p;
    }
  }
  // Unreachable for well-formed inputs: at 2p > Q the binomial is zero.
  return static_cast<std::uint32_t>(Q / 2.0) + 1;
}

double theorem1_closed_form(double n, double k, double eps, double h) {
  PRAMSIM_ASSERT(n >= 2.0 && k >= 1.0 && h >= 1.0);
  const double logn = std::log2(n);
  const double denom = eps * logn + std::log2(h);
  PRAMSIM_ASSERT(denom > 0.0);
  return (k - 1.0) * logn / denom;
}

double bad_map_log2_union_bound(double n, double m, double M, std::uint32_t c,
                                double b) {
  PRAMSIM_ASSERT(b > 2.0 && c >= 2);
  const double r = 2.0 * c - 1.0;
  const auto q_max = static_cast<std::uint64_t>(n / r);
  constexpr double kLog2e = 1.4426950408889634;
  double ln_total = -std::numeric_limits<double>::infinity();
  for (std::uint64_t q = 1; q <= q_max; ++q) {
    const double qd = static_cast<double>(q);
    const double s = std::ceil(r * qd / b);
    if (s >= M) {
      // The expansion requirement would exceed the module count; such q
      // cannot produce a bad event under the union-bound model.
      continue;
    }
    const double ln_term =
        (util::log2_binomial(m, qd) + qd * util::log2_binomial(r, c) +
         util::log2_binomial(M, s) + c * qd * std::log2(s / M)) /
        kLog2e;
    ln_total = util::ln_add_exp(ln_total, ln_term);
  }
  return ln_total * kLog2e;
}

DerivedParams derive_params(std::uint32_t n, double k, double eps, double b) {
  PRAMSIM_ASSERT(n >= 2);
  DerivedParams p;
  p.n = n;
  p.k = k;
  p.eps = eps;
  p.b = b;
  const double nd = n;
  p.m = static_cast<std::uint64_t>(std::llround(std::pow(nd, k)));
  p.c = lemma2_min_c(b, k, eps);
  p.r = 2 * p.c - 1;
  p.cluster = p.r;
  const double m_modules = std::pow(nd, 1.0 + eps);
  const auto max_modules =
      static_cast<double>(std::numeric_limits<std::uint32_t>::max());
  double modules = std::min(m_modules, max_modules);
  modules = std::min(modules, static_cast<double>(p.m));  // M <= m
  modules = std::max(modules, static_cast<double>(p.r));  // M >= r
  p.n_modules = static_cast<std::uint32_t>(std::llround(modules));
  p.granularity = static_cast<double>(p.r) * static_cast<double>(p.m) /
                  static_cast<double>(p.n_modules);
  return p;
}

}  // namespace pramsim::memmap
