#include "models/vlsi.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace pramsim::models {

double mot_layout_area(std::uint64_t side, double leaf_area,
                       const VlsiParams& params) {
  PRAMSIM_ASSERT(side >= 1);
  PRAMSIM_ASSERT(leaf_area >= 0.0);
  const double logn =
      side >= 2 ? std::log2(static_cast<double>(side)) : 1.0;
  // Each leaf column/row carries Theta(log N) wire tracks for the tree
  // levels above it plus the leaf cell itself.
  const double pitch = std::sqrt(leaf_area) + params.wire_pitch * logn;
  const double extent = static_cast<double>(side) * pitch;
  return extent * extent;
}

double module_area(double g_words, std::uint64_t n_modules,
                   const VlsiParams& params) {
  PRAMSIM_ASSERT(g_words >= 0.0 && n_modules >= 1);
  const double cells = g_words * params.bits_per_word * params.cell_area;
  // Address decoding: select one of M modules and one of g cells.
  const double decoder =
      params.switch_area *
      (std::log2(static_cast<double>(n_modules) + 1.0) +
       std::log2(g_words + 2.0));
  return cells + decoder;
}

double simulator_memory_area(std::uint64_t m_vars, std::uint32_t redundancy,
                             std::uint64_t n_modules,
                             const VlsiParams& params) {
  PRAMSIM_ASSERT(m_vars >= 1 && redundancy >= 1 && n_modules >= 1);
  const double g = static_cast<double>(m_vars) * redundancy /
                   static_cast<double>(n_modules);
  const double modules =
      static_cast<double>(n_modules) * module_area(g, n_modules, params);
  // The 2DMOT switching fabric above the modules: side = sqrt(M), leaf
  // area = one module.
  const std::uint64_t side = util::isqrt(n_modules);
  const double fabric =
      mot_layout_area(side == 0 ? 1 : side, module_area(g, n_modules, params),
                      params) -
      modules;  // fabric = layout minus the leaves themselves
  return modules + (fabric > 0.0 ? fabric : 0.0);
}

double pram_memory_area(std::uint64_t m_vars, const VlsiParams& params) {
  return static_cast<double>(m_vars) * params.bits_per_word *
         params.cell_area;
}

double memory_area_overhead(std::uint64_t m_vars, std::uint32_t redundancy,
                            std::uint64_t n_modules,
                            const VlsiParams& params) {
  return simulator_memory_area(m_vars, redundancy, n_modules, params) /
         pram_memory_area(m_vars, params);
}

double perimeter_bandwidth(std::uint64_t n_modules) {
  return 4.0 * static_cast<double>(util::isqrt(n_modules));
}

}  // namespace pramsim::models
