// Descriptors for the five machine models the paper draws (Figs. 1-3, 5,
// 6): the P-RAM itself, the MPC, the BDN, and the paper's DMMPC and
// DMBDN. Each descriptor reports the structural quantities the figures
// depict — processors, memory modules, module size, interconnect edges,
// maximum fan-in/out — and whether the model is *realizable* with bounded
// fan-in hardware, which is the axis the paper's argument moves along.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pramsim::models {

enum class MachineModel : std::uint8_t {
  kPram,    ///< Fig. 1: shared memory, O(1) access — the ideal
  kMpc,     ///< Fig. 2: n processors+modules, complete graph K_n
  kBdn,     ///< Fig. 3: n processors+modules, bounded-degree network
  kDmmpc,   ///< Fig. 5: n processors, M modules, complete bipartite K_{n,M}
  kDmbdn,   ///< Fig. 6: n processors, M modules, bounded-degree + switches
};

[[nodiscard]] const char* to_string(MachineModel model);

struct ModelSummary {
  MachineModel model{};
  std::uint64_t processors = 0;
  std::uint64_t memory_modules = 0;
  double module_cells = 0.0;        ///< g: cells per module
  std::uint64_t interconnect_edges = 0;
  std::uint64_t switches = 0;       ///< extra non-computing nodes
  std::uint64_t max_fanin = 0;      ///< worst node degree implied
  bool bounded_degree = false;      ///< realizable with O(1) fan-in?
  std::string note;
};

/// Structural summary of each model at (n, m) — for the DMMPC/DMBDN, M
/// memory modules (the granularity knob); `degree` is the BDN/DMBDN
/// node-degree budget.
[[nodiscard]] ModelSummary describe(MachineModel model, std::uint64_t n,
                                    std::uint64_t m, std::uint64_t M = 0,
                                    std::uint32_t degree = 4);

/// All five models in figure order.
[[nodiscard]] std::vector<ModelSummary> describe_all(std::uint64_t n,
                                                     std::uint64_t m,
                                                     std::uint64_t M);

}  // namespace pramsim::models
