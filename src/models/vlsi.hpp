// VLSI area accounting in the Thompson grid model, for the paper's layout
// claims (§1 and §3):
//
//  * an (N x N)-2DMOT occupies area Theta(N^2 (log^2 N + A_leaf))
//    (Leighton 1984 proved this layout optimal);
//  * each memory module of g words costs ~ g * w bits of cell area plus
//    Theta(log M + log g) of addressing/decoder overhead — the "m - n
//    similar nodes concealed in the address decoding circuitry" the paper
//    points out the MPC/BDN models hide;
//  * hence with granule g = Omega(log^2 n) the whole simulator memory
//    (modules + 2DMOT wiring) occupies Theta(m) area — the same order as
//    the P-RAM's own memory — which is the paper's feasibility argument.
//
// Areas are reported in grid units (1 unit = 1 wire pitch = 1 bit cell);
// constants are explicit parameters so the benches can show the claims'
// *shape* without pretending to know 1989 process constants.
#pragma once

#include <cstdint>

namespace pramsim::models {

struct VlsiParams {
  double bits_per_word = 64.0;   ///< word width stored per memory cell
  double cell_area = 1.0;        ///< area of one bit cell (grid units)
  double switch_area = 4.0;      ///< area of one tree switch node
  double wire_pitch = 1.0;       ///< width of one routed wire track
};

/// Area of an (N x N)-2DMOT layout with leaf cells of area `leaf_area`:
/// side = N * (sqrt(leaf_area) + wire_pitch * log2 N), area = side^2.
/// This realizes the Theta(N^2(log^2 N + A_leaf)) bound constructively.
[[nodiscard]] double mot_layout_area(std::uint64_t side, double leaf_area,
                                     const VlsiParams& params = {});

/// Area of one memory module holding g words: cells + decoder.
[[nodiscard]] double module_area(double g_words, std::uint64_t n_modules,
                                 const VlsiParams& params = {});

/// Total memory area of the simulating machine: M modules of g = r*m/M
/// words each (the replicated store), laid out at the 2DMOT's leaves.
[[nodiscard]] double simulator_memory_area(std::uint64_t m_vars,
                                           std::uint32_t redundancy,
                                           std::uint64_t n_modules,
                                           const VlsiParams& params = {});

/// Area of the P-RAM's own idealized memory: m words of cells (the
/// baseline the paper compares against).
[[nodiscard]] double pram_memory_area(std::uint64_t m_vars,
                                      const VlsiParams& params = {});

/// Ratio simulator/pram memory area — the paper's claim is Theta(1) once
/// g = Omega(log^2 n).
[[nodiscard]] double memory_area_overhead(std::uint64_t m_vars,
                                          std::uint32_t redundancy,
                                          std::uint64_t n_modules,
                                          const VlsiParams& params = {});

/// Perimeter bandwidth of a sqrt(M) x sqrt(M) 2DMOT chip: Theta(sqrt(M))
/// wires cross the boundary — "the 2DMOT simply makes better use of the
/// available perimeter" (vs bandwidth 1 per MPC module).
[[nodiscard]] double perimeter_bandwidth(std::uint64_t n_modules);

}  // namespace pramsim::models
