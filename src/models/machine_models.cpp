#include "models/machine_models.hpp"

#include "util/assert.hpp"

namespace pramsim::models {

const char* to_string(MachineModel model) {
  switch (model) {
    case MachineModel::kPram: return "P-RAM";
    case MachineModel::kMpc: return "MPC";
    case MachineModel::kBdn: return "BDN";
    case MachineModel::kDmmpc: return "DMMPC";
    case MachineModel::kDmbdn: return "DMBDN";
  }
  return "???";
}

ModelSummary describe(MachineModel model, std::uint64_t n, std::uint64_t m,
                      std::uint64_t M, std::uint32_t degree) {
  PRAMSIM_ASSERT(n >= 1 && m >= 1);
  ModelSummary s;
  s.model = model;
  s.processors = n;
  switch (model) {
    case MachineModel::kPram:
      s.memory_modules = 1;  // one idealized shared memory
      s.module_cells = static_cast<double>(m);
      s.interconnect_edges = n;  // every processor wired to the memory
      s.max_fanin = n;           // the memory port has fan-in n
      s.bounded_degree = false;
      s.note = "ideal; O(1) shared access is not realizable";
      break;
    case MachineModel::kMpc:
      s.memory_modules = n;
      s.module_cells = static_cast<double>(m) / static_cast<double>(n);
      s.interconnect_edges = n * (n - 1) / 2;  // complete graph K_n
      s.max_fanin = n - 1;
      s.bounded_degree = false;
      s.note = "complete graph needs unbounded fan-in/out";
      break;
    case MachineModel::kBdn:
      s.memory_modules = n;
      s.module_cells = static_cast<double>(m) / static_cast<double>(n);
      s.interconnect_edges = static_cast<std::uint64_t>(degree) * n / 2;
      s.max_fanin = degree;
      s.bounded_degree = true;
      s.note = "realizable; granularity fixed at m/n";
      break;
    case MachineModel::kDmmpc:
      PRAMSIM_ASSERT(M >= 1);
      s.memory_modules = M;
      s.module_cells = static_cast<double>(m) / static_cast<double>(M);
      s.interconnect_edges = n * M;  // complete bipartite K_{n,M}
      s.max_fanin = M > n ? M : n;
      s.bounded_degree = false;
      s.note = "granularity freed; bipartite graph still unbounded";
      break;
    case MachineModel::kDmbdn:
      PRAMSIM_ASSERT(M >= 1);
      s.memory_modules = M;
      s.module_cells = static_cast<double>(m) / static_cast<double>(M);
      // The 2DMOT realization: O(M) switches, each of degree <= 4, and
      // links proportional to switches.
      s.switches = 2 * M;
      s.interconnect_edges = 4 * M;
      s.max_fanin = degree;
      s.bounded_degree = true;
      s.note = "realizable with O(M) switches (2DMOT, Fig. 8)";
      break;
  }
  return s;
}

std::vector<ModelSummary> describe_all(std::uint64_t n, std::uint64_t m,
                                       std::uint64_t M) {
  return {
      describe(MachineModel::kPram, n, m),
      describe(MachineModel::kMpc, n, m),
      describe(MachineModel::kBdn, n, m),
      describe(MachineModel::kDmmpc, n, m, M),
      describe(MachineModel::kDmbdn, n, m, M),
  };
}

}  // namespace pramsim::models
