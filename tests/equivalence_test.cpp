// The acceptance gate for the unified engine layer: EVERY SchemeKind —
// including the IDA and hashed organizations that used to be dead-end
// subsystems — must (a) execute randomized P-RAM programs through
// pram::Machine with bit-exact final shared memory vs the ideal
// FlatMemory, and (b) serve the scheme-agnostic SimulationPipeline's
// stress traffic. No scheme-specific branches anywhere: one factory call,
// one driver.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cache/cached_memory.hpp"
#include "core/driver.hpp"
#include "core/plan_builder.hpp"
#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "faults/faultable_memory.hpp"
#include "obs/sink.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "pram/serve_context.hpp"
#include "pram/snapshot.hpp"
#include "pram/trace.hpp"
#include "util/rng.hpp"

namespace pramsim {
namespace {

// Every suite runs the full SchemeKind grid at BOTH storage
// granularities: region_words 1 (the classic word-at-a-time layout the
// pre-region code used) and 8 (region rows, bulk vote/recode paths).
// Regions are a pure storage/throughput knob, so the whole file's
// bit-exactness gates apply unchanged at every width.
using KindAndWidth = std::tuple<core::SchemeKind, std::uint32_t>;

class AllKindsTest : public ::testing::TestWithParam<KindAndWidth> {
 protected:
  [[nodiscard]] static core::SchemeKind kind() {
    return std::get<0>(GetParam());
  }
  [[nodiscard]] static std::uint32_t width() {
    return std::get<1>(GetParam());
  }
};

std::string kind_name(const ::testing::TestParamInfo<KindAndWidth>& info) {
  std::string name = core::to_string(std::get<0>(info.param));
  for (auto& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) {
      ch = '_';
    }
  }
  return name + "_w" + std::to_string(std::get<1>(info.param));
}

TEST_P(AllKindsTest, RandomizedProgramsMatchFlatMemoryBitExact) {
  const std::uint32_t n = 16;
  for (const std::uint64_t program_seed : {11ULL, 23ULL, 47ULL}) {
    auto ideal_spec = pram::programs::random_exclusive(n, 12, program_seed);
    auto sim_spec = pram::programs::random_exclusive(n, 12, program_seed);

    pram::MachineConfig cfg;
    cfg.n_processors = n;
    cfg.m_shared_cells = ideal_spec.m_required;
    cfg.policy = pram::ConflictPolicy::kErew;

    pram::Machine ideal(cfg, std::move(ideal_spec.program));
    pram::Machine simulated(
        cfg, std::move(sim_spec.program),
        core::make_memory({.kind = kind(),
                           .n = n,
                           .seed = 5,
                           .min_vars = ideal_spec.m_required,
                           .region_words = width()}));

    util::Rng init(program_seed * 977 + 1);
    for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
      const auto v = static_cast<pram::Word>(init.below(1000));
      ideal.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
      simulated.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
    }
    const auto a = ideal.run();
    const auto b = simulated.run();
    ASSERT_TRUE(a.completed());
    ASSERT_TRUE(b.completed())
        << core::to_string(kind()) << " seed " << program_seed;
    EXPECT_EQ(a.steps, b.steps);
    for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
      ASSERT_EQ(ideal.shared(VarId(static_cast<std::uint32_t>(i))),
                simulated.shared(VarId(static_cast<std::uint32_t>(i))))
          << core::to_string(kind()) << " seed " << program_seed
          << " cell " << i;
    }
  }
}

TEST_P(AllKindsTest, LibraryProgramMatchesFlatMemory) {
  const std::uint32_t n = 16;
  auto ideal_spec = pram::programs::prefix_sum(n);
  auto sim_spec = pram::programs::prefix_sum(n);
  pram::MachineConfig cfg;
  cfg.n_processors = n;
  cfg.m_shared_cells = ideal_spec.m_required;
  cfg.policy = pram::ConflictPolicy::kErew;
  pram::Machine ideal(cfg, std::move(ideal_spec.program));
  pram::Machine simulated(
      cfg, std::move(sim_spec.program),
      core::make_memory({.kind = kind(),
                         .n = n,
                         .seed = 9,
                         .min_vars = ideal_spec.m_required,
                         .region_words = width()}));
  util::Rng init(4242);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto v = static_cast<pram::Word>(init.below(100));
    ideal.poke_shared(VarId(i), v);
    simulated.poke_shared(VarId(i), v);
  }
  ASSERT_TRUE(ideal.run().completed());
  ASSERT_TRUE(simulated.run(2'000'000).completed())
      << core::to_string(kind());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(ideal.shared(VarId(i)), simulated.shared(VarId(i)))
        << core::to_string(kind()) << " cell " << i;
  }
}

TEST_P(AllKindsTest, RunsTheUnifiedStressPipeline) {
  core::SimulationPipeline pipeline(
      {.kind = kind(), .n = 16, .seed = 3, .region_words = width()});
  const auto result =
      pipeline.run_stress({.steps_per_family = 2, .seed = 7, .trials = 2});
  // 2 trials x (3 exclusive families x 2 steps [+ 2 adversarial when the
  // scheme has a memory map OR crafts its own worst-case batches, like
  // the hashed baseline's known-hash preimage attack]).
  const auto& memory = *pipeline.scheme().memory;
  const bool has_adversary = memory.memory_map() != nullptr ||
                             !memory.adversarial_vars(16, 7).empty();
  EXPECT_EQ(result.steps, has_adversary ? 16u : 12u)
      << core::to_string(kind());
  EXPECT_GT(result.time.mean(), 0.0) << core::to_string(kind());
  EXPECT_GE(result.storage_factor, 1.0) << core::to_string(kind());

  // And the prototype serves one-shot batches through the same interface.
  util::Rng rng(1);
  const auto batch = pram::make_batch(pram::TraceFamily::kPermutation, 16,
                                      pipeline.scheme().m, rng);
  const auto cost = pipeline.run_batch(batch);
  EXPECT_GT(cost.time, 0u) << core::to_string(kind());
}

// The fault-rate-0 equivalence gate: wrapping ANY scheme in a
// FaultableMemory with an inert fault spec must stay bit-exact vs
// FlatMemory. This is stronger than "the wrapper forwards": with hooks
// installed the replicated schemes run their DEGRADED protocol
// (write-through + majority vote over all copies), so transparency here
// proves the degraded protocol itself is value-correct when nothing has
// actually failed.
TEST_P(AllKindsTest, FaultWrapperAtRateZeroIsTransparent) {
  const std::uint32_t n = 16;
  for (const std::uint64_t program_seed : {13ULL, 29ULL}) {
    auto ideal_spec = pram::programs::random_exclusive(n, 12, program_seed);
    auto sim_spec = pram::programs::random_exclusive(n, 12, program_seed);

    pram::MachineConfig cfg;
    cfg.n_processors = n;
    cfg.m_shared_cells = ideal_spec.m_required;
    cfg.policy = pram::ConflictPolicy::kErew;

    const faults::FaultSpec inert{.seed = 77};
    ASSERT_TRUE(inert.inert());
    auto faultable = std::make_unique<faults::FaultableMemory>(
        core::make_memory({.kind = kind(),
                           .n = n,
                           .seed = 5,
                           .min_vars = ideal_spec.m_required,
                           .region_words = width()}),
        inert);
    const faults::FaultableMemory* observer = faultable.get();

    pram::Machine ideal(cfg, std::move(ideal_spec.program));
    pram::Machine simulated(cfg, std::move(sim_spec.program),
                            std::move(faultable));

    util::Rng init(program_seed * 977 + 1);
    for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
      const auto v = static_cast<pram::Word>(init.below(1000));
      ideal.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
      simulated.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
    }
    ASSERT_TRUE(ideal.run().completed());
    ASSERT_TRUE(simulated.run().completed()) << core::to_string(kind());
    for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
      ASSERT_EQ(ideal.shared(VarId(static_cast<std::uint32_t>(i))),
                simulated.shared(VarId(static_cast<std::uint32_t>(i))))
          << core::to_string(kind()) << " seed " << program_seed
          << " cell " << i;
    }
    // The trace-consistency oracle watched every read and saw no lies,
    // no masked faults, no outages.
    const auto stats = observer->reliability();
    EXPECT_EQ(stats.wrong_reads, 0u) << core::to_string(kind());
    EXPECT_EQ(stats.faults_masked, 0u) << core::to_string(kind());
    EXPECT_EQ(stats.uncorrectable, 0u) << core::to_string(kind());
    EXPECT_EQ(stats.writes_dropped, 0u) << core::to_string(kind());
    EXPECT_EQ(observer->model().dead_module_count(), 0u);
  }
}

// Observability must be a pure observer: attaching a sink (metrics +
// phase timers + journal) to the rate-zero fault wrapper changes NO
// served value, and a healthy run journals no fault-kind events — the
// only counters that move are the benign serving tallies.
TEST_P(AllKindsTest, ObservedWrapperAtRateZeroStaysTransparent) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "compiled with PRAMSIM_OBS=OFF";
  }
  const std::uint32_t n = 16;
  const std::uint64_t program_seed = 13;
  auto ideal_spec = pram::programs::random_exclusive(n, 12, program_seed);
  auto sim_spec = pram::programs::random_exclusive(n, 12, program_seed);

  pram::MachineConfig cfg;
  cfg.n_processors = n;
  cfg.m_shared_cells = ideal_spec.m_required;
  cfg.policy = pram::ConflictPolicy::kErew;

  const faults::FaultSpec inert{.seed = 77};
  auto faultable = std::make_unique<faults::FaultableMemory>(
      core::make_memory({.kind = kind(),
                         .n = n,
                         .seed = 5,
                         .min_vars = ideal_spec.m_required,
                         .region_words = width()}),
      inert);
  obs::Sink sink;
  faultable->set_observer(&sink);

  pram::Machine ideal(cfg, std::move(ideal_spec.program));
  pram::Machine simulated(cfg, std::move(sim_spec.program),
                          std::move(faultable));

  util::Rng init(program_seed * 977 + 1);
  for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
    const auto v = static_cast<pram::Word>(init.below(1000));
    ideal.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
    simulated.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
  }
  ASSERT_TRUE(ideal.run().completed());
  ASSERT_TRUE(simulated.run().completed()) << core::to_string(kind());
  for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
    ASSERT_EQ(ideal.shared(VarId(static_cast<std::uint32_t>(i))),
              simulated.shared(VarId(static_cast<std::uint32_t>(i))))
        << core::to_string(kind()) << " cell " << i;
  }

  // A healthy observed run journals nothing alarming: no onsets, no
  // degraded votes/decodes, no wrong reads, no relocations.
  sink.journal.flush();
  for (const auto& event : sink.journal.events()) {
    EXPECT_TRUE(event.kind == obs::EventKind::kRehash)
        << core::to_string(kind()) << " journaled "
        << obs::to_string(event.kind);
  }
  EXPECT_EQ(sink.metrics.counters().count("oracle.wrong_reads"), 0u)
      << core::to_string(kind());
  EXPECT_EQ(sink.metrics.counters().count("fault.onsets"), 0u)
      << core::to_string(kind());
}

// Cached-wrapper equivalence gate: EVERY SchemeKind wrapped in
// cache::CachedMemory must stay bit-exact vs FlatMemory. The capacity is
// deliberately tiny (32 lines, far below the program footprint) so the
// run exercises misses, clock evictions, and dirty write-backs — not
// just an always-hot cache forwarding nothing.
TEST_P(AllKindsTest, CachedSchemeMatchesFlatMemoryBitExact) {
  const std::uint32_t n = 16;
  for (const std::uint64_t program_seed : {11ULL, 23ULL}) {
    auto ideal_spec = pram::programs::random_exclusive(n, 12, program_seed);
    auto sim_spec = pram::programs::random_exclusive(n, 12, program_seed);

    pram::MachineConfig cfg;
    cfg.n_processors = n;
    cfg.m_shared_cells = ideal_spec.m_required;
    cfg.policy = pram::ConflictPolicy::kErew;

    pram::Machine ideal(cfg, std::move(ideal_spec.program));
    pram::Machine simulated(
        cfg, std::move(sim_spec.program),
        core::make_memory({.kind = kind(),
                           .n = n,
                           .seed = 5,
                           .min_vars = ideal_spec.m_required,
                           .region_words = width(),
                           .cache_lines = 32}));

    util::Rng init(program_seed * 977 + 1);
    for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
      const auto v = static_cast<pram::Word>(init.below(1000));
      ideal.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
      simulated.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
    }
    const auto a = ideal.run();
    const auto b = simulated.run();
    ASSERT_TRUE(a.completed());
    ASSERT_TRUE(b.completed()) << core::to_string(kind());
    EXPECT_EQ(a.steps, b.steps);
    for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
      ASSERT_EQ(ideal.shared(VarId(static_cast<std::uint32_t>(i))),
                simulated.shared(VarId(static_cast<std::uint32_t>(i))))
          << core::to_string(kind()) << " seed " << program_seed
          << " cell " << i;
    }
  }
}

// And the composition the fault-model docs call out: CachedMemory OVER a
// rate-0 FaultableMemory (hooks installed but inert) stays bit-exact,
// with the oracle seeing only the cache's residual traffic.
TEST_P(AllKindsTest, CachedOverRateZeroFaultableIsTransparent) {
  const std::uint32_t n = 16;
  const std::uint64_t program_seed = 29;
  auto ideal_spec = pram::programs::random_exclusive(n, 12, program_seed);
  auto sim_spec = pram::programs::random_exclusive(n, 12, program_seed);

  pram::MachineConfig cfg;
  cfg.n_processors = n;
  cfg.m_shared_cells = ideal_spec.m_required;
  cfg.policy = pram::ConflictPolicy::kErew;

  const faults::FaultSpec inert{.seed = 77};
  ASSERT_TRUE(inert.inert());
  auto faultable = std::make_unique<faults::FaultableMemory>(
      core::make_memory({.kind = kind(),
                         .n = n,
                         .seed = 5,
                         .min_vars = ideal_spec.m_required,
                         .region_words = width()}),
      inert);
  const faults::FaultableMemory* observer = faultable.get();
  auto cached = std::make_unique<cache::CachedMemory>(
      std::move(faultable), cache::CacheConfig{.capacity = 32});

  pram::Machine ideal(cfg, std::move(ideal_spec.program));
  pram::Machine simulated(cfg, std::move(sim_spec.program),
                          std::move(cached));

  util::Rng init(program_seed * 977 + 1);
  for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
    const auto v = static_cast<pram::Word>(init.below(1000));
    ideal.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
    simulated.poke_shared(VarId(static_cast<std::uint32_t>(i)), v);
  }
  ASSERT_TRUE(ideal.run().completed());
  ASSERT_TRUE(simulated.run().completed()) << core::to_string(kind());
  for (std::uint64_t i = 0; i < ideal_spec.m_required; ++i) {
    ASSERT_EQ(ideal.shared(VarId(static_cast<std::uint32_t>(i))),
              simulated.shared(VarId(static_cast<std::uint32_t>(i))))
        << core::to_string(kind()) << " cell " << i;
  }
  const auto stats = observer->reliability();
  EXPECT_EQ(stats.wrong_reads, 0u) << core::to_string(kind());
  EXPECT_EQ(stats.uncorrectable, 0u) << core::to_string(kind());
}

// Durability transparency gate: snapshot/restore at checkpoint interval
// 1. After EVERY served step the scheme is serialized and restored into
// a FRESHLY CONSTRUCTED instance, which then serves the next step — so
// any mutable state a snapshot_body forgets (copy stamps, share rows,
// hash tables, relocation overlays) desynchronizes the run immediately.
// Reads and final memory must stay bit-exact vs an uninterrupted run,
// for every SchemeKind at both region widths.
TEST_P(AllKindsTest, SnapshotRestoreEveryStepIsTransparent) {
  const core::SchemeSpec spec{
      .kind = kind(), .n = 16, .seed = 5, .region_words = width()};
  auto reference = core::make_memory(spec);
  auto hopping = core::make_memory(spec);
  const std::uint64_t m = reference->size();
  ASSERT_EQ(m, hopping->size());

  util::Rng trace_rng(31);
  const auto trace =
      pram::make_trace(pram::TraceFamily::kUniform, 16, m, 12, trace_rng);

  core::PlanBuilder ref_builder;
  core::PlanBuilder hop_builder;
  pram::ServeContext ref_ctx;
  pram::ServeContext hop_ctx;
  std::vector<pram::Word> ref_values;
  std::vector<pram::Word> hop_values;
  for (std::size_t step = 0; step < trace.size(); ++step) {
    const auto& ref_plan = ref_builder.build(trace[step], *reference);
    ref_values.resize(ref_plan.reads.size());
    ref_ctx.bind(ref_values);
    (void)reference->serve(ref_plan, ref_ctx);

    const auto& hop_plan = hop_builder.build(trace[step], *hopping);
    hop_values.resize(hop_plan.reads.size());
    hop_ctx.bind(hop_values);
    (void)hopping->serve(hop_plan, hop_ctx);

    ASSERT_EQ(ref_values, hop_values)
        << core::to_string(kind()) << " w" << width() << " step " << step;

    // Checkpoint-interval-1: serialize, then resume on a fresh instance.
    pram::BufferSink sink;
    hopping->snapshot(sink);
    const auto bytes = sink.take();
    auto restored = core::make_memory(spec);
    pram::BufferSource source(bytes);
    ASSERT_TRUE(restored->restore(source))
        << core::to_string(kind()) << " w" << width() << " step " << step;
    ASSERT_TRUE(source.exhausted())
        << core::to_string(kind()) << " w" << width() << " step " << step;
    EXPECT_EQ(restored->steps_served(), hopping->steps_served());
    hopping = std::move(restored);
  }

  for (std::uint64_t v = 0; v < m; ++v) {
    const VarId var(static_cast<std::uint32_t>(v));
    ASSERT_EQ(reference->peek(var), hopping->peek(var))
        << core::to_string(kind()) << " w" << width() << " var " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EverySchemeKind, AllKindsTest,
    ::testing::Combine(::testing::ValuesIn(core::all_scheme_kinds()),
                       ::testing::Values(1u, 8u)),
    kind_name);

}  // namespace
}  // namespace pramsim
