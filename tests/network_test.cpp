// Tests for the mesh-of-trees topologies, path construction, and the
// cycle-accurate router.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "network/paths.hpp"
#include "network/router.hpp"
#include "network/topology.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pramsim::net {
namespace {

// ------------------------------------------------------- topology -------

TEST(Topology, SquareMotSummaryMatchesHandCounts) {
  // 4x4 2DMOT (the paper's Fig. 4), coalesced roots:
  // leaves 16; internal per tree 3; 8 trees -> 24, minus 4 coalesced = 20.
  const auto s = summarize(square_mot(4));
  EXPECT_EQ(s.leaves, 16u);
  EXPECT_EQ(s.switches, 20u);
  EXPECT_EQ(s.nodes, 36u);
  EXPECT_EQ(s.links, 48u);  // 8 trees x 6 edges
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.diameter_hops, 8u);
}

TEST(Topology, RectMotSummaryMatchesHandCounts) {
  // 2 x 8 crossbar-style MOT: row internal 2*(8-1)=14, col internal
  // 8*(2-1)=8 -> 22 switches; links 2*14 + 8*2 = 44.
  const auto s = summarize(rect_mot(2, 8));
  EXPECT_EQ(s.leaves, 16u);
  EXPECT_EQ(s.switches, 22u);
  EXPECT_EQ(s.nodes, 38u);
  EXPECT_EQ(s.links, 2u * 2 * 7 + 8u * 2 * 1);
  EXPECT_EQ(s.max_degree, 3u);
}

TEST(Topology, SwitchCountsMatchPaperAsymptotics) {
  // Fig. 8 claim: square sqrt(M) x sqrt(M) MOT introduces O(M) switches.
  for (std::uint32_t side : {8u, 16u, 32u, 64u}) {
    const auto s = summarize(square_mot(side));
    const double M = static_cast<double>(side) * side;
    EXPECT_LT(static_cast<double>(s.switches), 2.0 * M);
    EXPECT_GT(static_cast<double>(s.switches), 0.5 * M);
  }
  // Fig. 7 claim: n x M crossbar MOT uses O(nM) switches.
  for (std::uint32_t n : {4u, 8u, 16u}) {
    const std::uint32_t M = n * n;
    const auto s = summarize(rect_mot(n, M));
    const double nM = static_cast<double>(n) * M;
    EXPECT_LT(static_cast<double>(s.switches), 2.0 * nM);
    EXPECT_GT(static_cast<double>(s.switches), 0.5 * nM);
  }
}

class AdjacencyAuditTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, bool>> {};

TEST_P(AdjacencyAuditTest, ExplicitGraphMatchesClosedForm) {
  const auto [rows, cols, coalesce] = GetParam();
  MotShape shape{rows, cols, coalesce};
  const auto summary = summarize(shape);
  const auto adj = build_adjacency(shape);
  EXPECT_EQ(adj.size(), summary.nodes);
  std::uint64_t degree_sum = 0;
  std::uint32_t max_degree = 0;
  for (const auto& neighbors : adj) {
    degree_sum += neighbors.size();
    max_degree = std::max<std::uint32_t>(
        max_degree, static_cast<std::uint32_t>(neighbors.size()));
    // no duplicate links
    std::set<std::uint32_t> distinct(neighbors.begin(), neighbors.end());
    EXPECT_EQ(distinct.size(), neighbors.size());
  }
  EXPECT_EQ(degree_sum, 2 * summary.links);
  EXPECT_EQ(max_degree, summary.max_degree);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdjacencyAuditTest,
    ::testing::Values(std::make_tuple(4u, 4u, true),
                      std::make_tuple(8u, 8u, true),
                      std::make_tuple(16u, 16u, true),
                      std::make_tuple(4u, 4u, false),
                      std::make_tuple(2u, 8u, false),
                      std::make_tuple(8u, 32u, false),
                      std::make_tuple(16u, 64u, false)));

TEST(Topology, BoundedDegreeAtAllScales) {
  // The defining DMBDN constraint: degree stays <= 4 no matter the size.
  for (std::uint32_t side : {4u, 16u, 64u, 256u, 1024u}) {
    EXPECT_LE(summarize(square_mot(side)).max_degree, 4u) << side;
  }
}

TEST(Topology, AsciiSketchContainsTrees) {
  const auto sketch = ascii_sketch(square_mot(4));
  EXPECT_NE(sketch.find("RT0"), std::string::npos);
  EXPECT_NE(sketch.find("CT3"), std::string::npos);
  EXPECT_NE(sketch.find("(3,3)"), std::string::npos);
}

// ----------------------------------------------------------- paths ------

TEST(Paths, DescendFollowsBinaryDigits) {
  // Tree over 8 leaves; leaf 5 = 101b: root->right(3)->left(6)->right(13).
  const auto path = descend(TreeKind::kRow, 2, 5, 8);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], tree_edge(TreeKind::kRow, 2, 3, Direction::kDown));
  EXPECT_EQ(path[1], tree_edge(TreeKind::kRow, 2, 6, Direction::kDown));
  EXPECT_EQ(path[2], tree_edge(TreeKind::kRow, 2, 13, Direction::kDown));
}

TEST(Paths, AscendIsDescendReversedModuloDirection) {
  const auto down = descend(TreeKind::kCol, 7, 11, 16);
  const auto up = ascend(TreeKind::kCol, 7, 11, 16);
  ASSERT_EQ(down.size(), up.size());
  for (std::size_t i = 0; i < down.size(); ++i) {
    const auto d = down[i];
    const auto u = up[up.size() - 1 - i];
    EXPECT_EQ(d.raw & ~(1ULL << 61), u.raw & ~(1ULL << 61));
    EXPECT_NE(d.raw & (1ULL << 61), u.raw & (1ULL << 61));
  }
}

TEST(Paths, HpRequestPathHasPaperLength) {
  // down log S + up log S + down log S + module port.
  const std::uint32_t S = 16;
  const auto path = hp_request_path(S, 3, 9, 12);
  EXPECT_EQ(path.size(), 3u * 4u + 1u);
  EXPECT_EQ(path.back(), module_port(9 * S + 12));
}

TEST(Paths, LcaTurnaroundNeverLonger) {
  const std::uint32_t S = 32;
  util::Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const auto l = static_cast<std::uint32_t>(rng.below(S));
    const auto i = static_cast<std::uint32_t>(rng.below(S));
    const auto j = static_cast<std::uint32_t>(rng.below(S));
    const auto via_root = hp_request_path(S, l, i, j, false);
    const auto via_lca = hp_request_path(S, l, i, j, true);
    EXPECT_LE(via_lca.size(), via_root.size());
    EXPECT_EQ(via_lca.back(), via_root.back());
  }
}

TEST(Paths, LcaPathSameRowSkipsColumnTree) {
  // proc_row == mod_row: the LCA is the leaf itself; only the row descent
  // and the module port remain.
  const std::uint32_t S = 8;
  const auto path = hp_request_path(S, 5, 5, 2, true);
  EXPECT_EQ(path.size(), 3u + 1u);
}

TEST(Paths, ReversedFlipsDirectionsAndOrder) {
  const auto request = hp_request_path(8, 1, 6, 3);
  const auto reply = reversed(request);
  ASSERT_EQ(reply.size(), request.size());
  EXPECT_EQ(reply[0], request.back());  // module port is direction-less
  // Last reply edge is the first request edge with flipped direction.
  EXPECT_EQ(reply.back().raw, request.front().raw ^ (1ULL << 61));
}

TEST(Paths, RootModulePathLength) {
  const auto shape = rect_mot(8, 64);
  const auto path = root_module_request_path(shape, 5, 40);
  // log 64 down + log 8 up + port.
  EXPECT_EQ(path.size(), 6u + 3u + 1u);
  EXPECT_EQ(path.back(), module_port(40));
}

// ---------------------------------------------------------- router ------

TEST(Router, SinglePacketTakesPathLengthCycles) {
  std::vector<Packet> packets(1);
  packets[0].id = 0;
  packets[0].path = hp_request_path(16, 2, 7, 9);
  const auto hops = packets[0].path.size();
  const auto report = route_all(packets);
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.cycles, hops);
  EXPECT_EQ(packets[0].delivered_at, hops);
  EXPECT_EQ(report.total_hops, hops);
}

TEST(Router, ModulePortSerializesContenders) {
  // k packets all ending at the same module port: last one is delayed by
  // at least k-1 service cycles.
  const std::uint32_t S = 16;
  const std::uint32_t k = 8;
  std::vector<Packet> packets(k);
  for (std::uint32_t p = 0; p < k; ++p) {
    packets[p].id = p;
    packets[p].path = hp_request_path(S, p, 3, 5);
  }
  const auto report = route_all(packets);
  EXPECT_EQ(report.delivered, k);
  std::uint64_t last = 0;
  for (const auto& p : packets) {
    last = std::max(last, p.delivered_at);
  }
  EXPECT_GE(last, 3u * 4u + k);  // path length + serialized port service
  EXPECT_GE(report.max_edge_queue, 2u);
}

TEST(Router, DisjointPathsDontInterfere) {
  // Packets in different rows to different columns/modules never share an
  // edge: all deliver in exactly path-length cycles.
  const std::uint32_t S = 16;
  std::vector<Packet> packets(S);
  for (std::uint32_t p = 0; p < S; ++p) {
    packets[p].id = p;
    packets[p].path = hp_request_path(S, p, p, p);
  }
  const auto report = route_all(packets);
  EXPECT_EQ(report.delivered, S);
  for (const auto& p : packets) {
    EXPECT_EQ(p.delivered_at, p.path.size());
  }
  EXPECT_EQ(report.max_edge_queue, 1u);
}

TEST(Router, InjectionTimeHonored) {
  std::vector<Packet> packets(1);
  packets[0].id = 0;
  packets[0].injected_at = 10;
  packets[0].path = descend(TreeKind::kRow, 0, 3, 8);
  const auto report = route_all(packets);
  EXPECT_EQ(packets[0].delivered_at, 10u + 3u);
  EXPECT_GE(report.cycles, 13u);
}

TEST(Router, FifoArbitrationIsDeterministic) {
  const std::uint32_t S = 32;
  util::Rng rng(5);
  auto make_packets = [&](std::uint64_t seed) {
    util::Rng local(seed);
    std::vector<Packet> packets(64);
    for (std::uint32_t p = 0; p < 64; ++p) {
      packets[p].id = p;
      packets[p].path = hp_request_path(
          S, static_cast<std::uint32_t>(local.below(S)),
          static_cast<std::uint32_t>(local.below(S)),
          static_cast<std::uint32_t>(local.below(S)));
    }
    return packets;
  };
  (void)rng;
  auto a = make_packets(9);
  auto b = make_packets(9);
  const auto ra = route_all(a);
  const auto rb = route_all(b);
  EXPECT_EQ(ra.cycles, rb.cycles);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].delivered_at, b[i].delivered_at);
  }
}

TEST(Router, AllPacketsDeliveredUnderHeavyRandomLoad) {
  const std::uint32_t S = 64;
  util::Rng rng(11);
  std::vector<Packet> packets(512);
  std::uint64_t expected_hops = 0;
  for (std::uint32_t p = 0; p < 512; ++p) {
    packets[p].id = p;
    packets[p].path = hp_request_path(
        S, static_cast<std::uint32_t>(rng.below(S)),
        static_cast<std::uint32_t>(rng.below(S)),
        static_cast<std::uint32_t>(rng.below(S)));
    expected_hops += packets[p].path.size();
  }
  const auto report = route_all(packets);
  EXPECT_EQ(report.delivered, 512u);
  EXPECT_EQ(report.total_hops, expected_hops);
  EXPECT_GT(report.mean_latency, 0.0);
  EXPECT_GE(report.max_latency, 3u * 6u + 1u);
}

TEST(Router, MaxCyclesStopsEarly) {
  std::vector<Packet> packets(1);
  packets[0].id = 0;
  packets[0].path = hp_request_path(16, 2, 7, 9);
  const auto report = route_all(packets, /*max_cycles=*/3);
  EXPECT_EQ(report.delivered, 0u);
  EXPECT_EQ(report.cycles, 3u);
  EXPECT_FALSE(packets[0].delivered());
  EXPECT_EQ(packets[0].next_edge, 3u);
}

TEST(Router, StartCycleOffsetsClock) {
  std::vector<Packet> packets(1);
  packets[0].id = 0;
  packets[0].path = descend(TreeKind::kRow, 0, 1, 4);
  const auto report = route_all(packets, 1000, /*start_cycle=*/100);
  EXPECT_EQ(report.cycles, 2u);
  EXPECT_EQ(packets[0].delivered_at, 102u);
}

TEST(Router, ReplyPathsAlsoRoute) {
  // Round trip: route the request leg, then the reversed reply leg
  // injected at the delivery time. Total time = 2x one-way + port.
  const auto request = hp_request_path(16, 4, 10, 2);
  std::vector<Packet> leg1(1);
  leg1[0].id = 0;
  leg1[0].path = request;
  const auto r1 = route_all(leg1);
  ASSERT_EQ(r1.delivered, 1u);

  std::vector<Packet> leg2(1);
  leg2[0].id = 1;
  leg2[0].path = reversed(request);
  leg2[0].injected_at = leg1[0].delivered_at;
  const auto r2 = route_all(leg2, 10'000);
  EXPECT_EQ(r2.delivered, 1u);
  EXPECT_EQ(leg2[0].delivered_at, 2 * request.size());
}

}  // namespace
}  // namespace pramsim::net
